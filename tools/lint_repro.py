#!/usr/bin/env python
"""Repo static-analysis runner: ``python tools/lint_repro.py src``.

Thin shim that works from a plain checkout (no install needed): it puts
``<repo>/src`` on ``sys.path`` and delegates to the ``ppm check``
front-end (:mod:`repro.verify.check`), which runs the per-file lint
rules PPM001-PPM009 *and* the whole-program concurrency analysis
PPM010-PPM013 over one shared parse.  Exit status 1 when any finding is
reported, 0 when clean, 2 on usage errors.  Run with ``--list-rules``
to see the combined catalogue, ``--strict`` to add the plan/program/
dataflow verification sweeps.

The historic lint-only entry point survives as
``python -m repro.verify.lint`` (same rules, ``--select``/``--ignore``
filters, per-rule timings via ``--list-rules -v``).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.verify.check import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
