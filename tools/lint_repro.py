#!/usr/bin/env python
"""Repo-specific AST lint runner: ``python tools/lint_repro.py src``.

Thin shim over :mod:`repro.verify.lint` that works from a plain checkout
(no install needed): it puts ``<repo>/src`` on ``sys.path`` and
delegates.  Exit status 1 when any finding is reported, 0 when clean.
Run with ``--list-rules`` to see the registry.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.verify.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
