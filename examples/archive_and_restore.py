#!/usr/bin/env python3
"""Archive a file across 'disks' and survive losing two of them.

The downstream-user story for the whole library: encode a file into
per-disk strip files with an SD code (the file-based workflow of
Plank's open-source SD encoder/decoder, which the paper's experiments
were built on), delete two strips, and restore the original — first the
file contents, then the missing strips themselves.

Run:  python examples/archive_and_restore.py
"""

import hashlib
import os
import tempfile

from repro.codes import SDCode
from repro.core import PPMDecoder
from repro.filecodec import decode_file, encode_file, repair_files


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # something worth protecting
        source = os.path.join(workdir, "archive.bin")
        payload = os.urandom(1 << 20)  # 1 MB
        with open(source, "wb") as fh:
            fh.write(payload)
        digest = hashlib.sha256(payload).hexdigest()
        print(f"source: {len(payload)} bytes, sha256={digest[:16]}...")

        # encode across 8 'disks': tolerates 2 whole disks + 2 sectors
        code = SDCode(n=8, r=16, m=2, s=2)
        strips_dir = os.path.join(workdir, "strips")
        meta = encode_file(source, code, strips_dir, sector_bytes=4096)
        strip_files = sorted(f for f in os.listdir(strips_dir) if f.endswith(".dat"))
        total = sum(
            os.path.getsize(os.path.join(strips_dir, f)) for f in strip_files
        )
        print(
            f"encoded into {len(strip_files)} strips x {meta.num_stripes} stripes "
            f"({total / len(payload):.2f}x raw, storage cost {code.storage_cost:.2f})"
        )

        # catastrophe: two disks die
        for victim in ("archive_disk002.dat", "archive_disk006.dat"):
            os.remove(os.path.join(strips_dir, victim))
            print(f"lost {victim}")

        # restore the file via PPM decoding
        meta_path = os.path.join(strips_dir, "archive_meta.json")
        restored = os.path.join(workdir, "restored.bin")
        decode_file(meta_path, restored, decoder=PPMDecoder(parallel=False))
        with open(restored, "rb") as fh:
            restored_digest = hashlib.sha256(fh.read()).hexdigest()
        print(
            f"restored sha256={restored_digest[:16]}... "
            f"{'MATCH' if restored_digest == digest else 'MISMATCH'}"
        )
        assert restored_digest == digest

        # and bring the array back to full redundancy
        repaired = repair_files(meta_path)
        print(f"regenerated strips for disks {repaired}")
        assert all(
            os.path.exists(os.path.join(strips_dir, f)) for f in strip_files
        )
        print("array back at full redundancy")


if __name__ == "__main__":
    main()
