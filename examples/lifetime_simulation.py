#!/usr/bin/env python3
"""Array-lifetime simulation: cumulative compute PPM saves over years.

Replays a synthetic failure trace — Poisson whole-disk failures plus
latent sector errors, the combination the SD paper calls "how today's
storage systems actually fail" — against an SD-coded array, billing every
stripe repair under both the traditional (C1) and PPM decode policies.

Run:  python examples/lifetime_simulation.py [years]
"""

import sys

from repro.codes import SDCode
from repro.stripes import TraceConfig, simulate_lifetime


def main() -> None:
    years = float(sys.argv[1]) if len(sys.argv) > 1 else 3.0
    code = SDCode(n=12, r=16, m=2, s=2, w=8)
    print(code.describe())
    config = TraceConfig(years=years, disk_afr=0.04, lse_rate=0.15, seed=2015)
    print(
        f"trace: {years:.1f} years, AFR={config.disk_afr:.0%}/disk/yr, "
        f"LSE rate={config.lse_rate:.2f}/disk/yr"
    )
    report = simulate_lifetime(code, num_stripes=64, config=config)
    print(
        f"\nevents: {report.events_processed} "
        f"({report.disk_failures} disk failures, {report.lse_events} LSEs)"
    )
    print(f"stripe repairs: {report.stripes_repaired}")
    print(f"unrecoverable stripes: {report.unrecoverable_stripes}")
    c1 = report.mult_xors["C1"]
    ppm = report.mult_xors["PPM"]
    print(f"\nlifetime repair compute (mult_XORs per symbol of sector):")
    print(f"  traditional (C1): {c1:>12,}")
    print(f"  PPM  (min C2,C4): {ppm:>12,}")
    print(f"  saved: {report.improvement():.1%}")


if __name__ == "__main__":
    main()
