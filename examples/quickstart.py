#!/usr/bin/env python3
"""Quickstart: encode a stripe, lose disks + sectors, PPM-decode it back.

Walks the full public API surface:

1. build an SD code (the paper's asymmetric-parity subject),
2. fill a stripe with random data and encode its parity,
3. inject the paper's worst-case failure (m whole disks + s sectors),
4. decode with the traditional method and with PPM, comparing costs,
5. verify the recovered sectors bit-for-bit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.codes import SDCode
from repro.core import PPMDecoder, TraditionalDecoder, format_log_table, build_log_table
from repro.stripes import Stripe, StripeLayout, worst_case_sd


def main() -> None:
    # 1. an SD code: 8 disks x 16 rows, tolerating 2 disks + 2 sectors
    code = SDCode(n=8, r=16, m=2, s=2, w=8)
    print(code.describe())

    # 2. a stripe of random data, parity encoded in place
    layout = StripeLayout.of_code(code)
    stripe = Stripe.random(layout, code.field, sector_symbols=4096, rng=42)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()

    # 3. the paper's worst-case failure: m disks + s sectors on one row
    scenario = worst_case_sd(code, z=1, rng=7)
    print(f"\nfailure: {scenario.describe(layout)}")
    stripe.erase(scenario.faulty_blocks)

    # what PPM sees: the log table over the parity-check matrix
    print("\nlog table (first 8 rows):")
    print(format_log_table(build_log_table(code.H, scenario.faulty_blocks)[:8]))

    # 4. decode with both methods
    results = {}
    for name, decoder in [
        ("traditional", TraditionalDecoder(policy="normal")),
        ("ppm", PPMDecoder(threads=4)),
    ]:
        recovered, stats = decoder.decode(
            code, stripe, scenario.faulty_blocks,
            return_stats=True)
        results[name] = recovered
        print(
            f"\n{name}: {stats.mult_xors} mult_XORs over "
            f"{stats.symbols} symbols in {stats.wall_seconds * 1e3:.2f} ms "
            f"(mode: {stats.mode.value})"
        )
        if name == "ppm":
            plan = stats.plan
            print(
                f"  partition: p = {plan.p} independent sub-matrices, "
                f"{len(plan.rest.faulty_ids) if plan.rest else 0} dependent blocks"
            )
            print(f"  costs: {plan.costs.as_dict()}")
            print(f"  cost reduction vs C1: {plan.costs.reduction():.1%}")

    # 5. verify every recovered block
    for name, recovered in results.items():
        ok = all(
            np.array_equal(recovered[b], truth.get(b))
            for b in scenario.faulty_blocks
        )
        print(f"verification [{name}]: {'OK' if ok else 'FAILED'}")
        assert ok


if __name__ == "__main__":
    main()
