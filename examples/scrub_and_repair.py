#!/usr/bin/env python3
"""Scrubbing: catching silent data corruption with the parity check.

Erasure decoding handles *known* losses; silent corruption (bit rot,
misdirected writes — the paper's ref [12]) leaves every block present
but the stripe inconsistent.  A scrub recomputes the syndromes
``H @ B``; a single corrupted block is *located* by matching the
syndrome against column signatures and then repaired by erasure-decoding
it from the rest.

Run:  python examples/scrub_and_repair.py
"""

import numpy as np

from repro.codes import SDCode
from repro.core import TraditionalDecoder
from repro.stripes import (
    Stripe,
    StripeLayout,
    locate_single_corruption,
    repair_corruption,
    syndromes,
)


def main() -> None:
    code = SDCode(n=8, r=8, m=2, s=2)
    print(code.describe())
    layout = StripeLayout.of_code(code)
    stripe = Stripe.random(layout, code.field, sector_symbols=1024, rng=5)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()

    # a clean scrub
    clean = locate_single_corruption(code, stripe)
    print(f"\ninitial scrub: clean={clean.clean}")

    # bit rot flips part of one sector, silently
    victim = layout.block_id(3, 5)
    rng = np.random.default_rng(9)
    region = stripe.get(victim).copy()
    region[100:200] ^= rng.integers(1, 256, size=100).astype(region.dtype)
    stripe.put(victim, region)
    print(f"injected silent corruption into block {victim} (row 3, disk 5)")

    # the syndromes light up...
    dirty = [i for i, s in enumerate(syndromes(code, stripe)) if s.any()]
    print(f"scrub: nonzero syndromes on parity rows {dirty}")

    # ...the scrubber locates and repairs
    result = repair_corruption(code, stripe, TraditionalDecoder())
    print(
        f"located block {result.corrupted_block} "
        f"(expected {victim}): {'MATCH' if result.corrupted_block == victim else 'MISS'}"
    )
    restored = np.array_equal(stripe.get(victim), truth.get(victim))
    print(f"repaired content matches original: {restored}")
    final = locate_single_corruption(code, stripe)
    print(f"final scrub: clean={final.clean}")
    assert restored and final.clean


if __name__ == "__main__":
    main()
