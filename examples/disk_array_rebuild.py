#!/usr/bin/env python3
"""Disk-array rebuild: the failure mode SD codes were designed for.

Simulates the storage system of the paper's introduction: an array of
disks holding many stripes, hit by simultaneous whole-disk failures and
latent sector errors (how "today's storage systems actually fail",
Plank et al., FAST'13).  The array is rebuilt twice from the same failure
history — once with the traditional decoder, once with PPM — and the op
counts and wall times are compared.  Because every stripe shares the
same failure geometry, PPM's decode plan is built once and amortised,
exactly the real-world deployment story.

Run:  python examples/disk_array_rebuild.py [num_stripes]
"""

import copy
import sys
import time

from repro.codes import SDCode
from repro.core import PPMDecoder, TraditionalDecoder
from repro.gf import OpCounter
from repro.stripes import DiskArray


def build_failed_array(num_stripes: int) -> DiskArray:
    code = SDCode(n=8, r=16, m=2, s=2, w=8)
    array = DiskArray(code, num_stripes=num_stripes, sector_symbols=2048, rng=1)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    # two whole disks die...
    array.fail_disk(2)
    array.fail_disk(5)
    # ...and scrubbing uncovers latent sector errors elsewhere: up to s
    # per stripe, which is exactly what the SD code tolerates on top of
    # the m disk failures
    import numpy as np

    rng = np.random.default_rng(9)
    lse_count = 0
    for stripe in array.stripes:
        survivors = list(stripe.present_ids)
        picks = rng.choice(len(survivors), size=code.s, replace=False)
        stripe.erase([survivors[int(p)] for p in picks])
        lse_count += code.s
    print(
        f"array: {array.code.describe()}\n"
        f"failures: disks 2 and 5 + {lse_count} latent sector errors "
        f"across {num_stripes} stripes"
    )
    return array


def rebuild_with(array: DiskArray, decoder, label: str) -> None:
    t0 = time.perf_counter()
    repaired = array.rebuild(decoder)
    elapsed = time.perf_counter() - t0
    ok = array.fully_intact()
    print(
        f"{label:>12}: repaired {repaired} blocks in {elapsed:.3f} s, "
        f"{decoder.counter.mult_xors} mult_XORs, verified={ok}"
    )
    assert ok


def main() -> None:
    num_stripes = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    array = build_failed_array(num_stripes)
    snapshot = copy.deepcopy(array)

    rebuild_with(array, TraditionalDecoder(counter=OpCounter()), "traditional")
    rebuild_with(snapshot, PPMDecoder(threads=4, counter=OpCounter()), "ppm")


if __name__ == "__main__":
    main()
