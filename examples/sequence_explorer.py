#!/usr/bin/env python3
"""Calculation-sequence explorer: when does each of C1..C4 win?

Reproduces the paper's Section III-B exploration interactively: sweeps SD
configurations, prints the four costs for the worst-case scenario, marks
the winner, and reports how often C2 beats C4 (the paper: ~5% of cases,
only at small n).

Run:  python examples/sequence_explorer.py
"""

from repro.bench import sd_workload
from repro.core import SequencePolicy

CONFIGS = [
    (n, r, m, s)
    for n in (4, 5, 6, 9, 12, 16, 20, 24)
    for r in (8, 16)
    for m in (1, 2, 3)
    for s in (1, 2, 3)
    if m < n - 1 and s <= n - m  # s sector faults must fit in one row (z=1)
]


def main() -> None:
    print(f"{'config':<22}{'C1':>7}{'C2':>7}{'C3':>7}{'C4':>7}  winner")
    print("-" * 62)
    c2_wins = 0
    c2_win_ns = []
    for n, r, m, s in CONFIGS:
        wl = sd_workload(n, r, m, s, z=1, stripe_bytes=1 << 12, policy=SequencePolicy.AUTO)
        costs = wl.plan.costs
        d = costs.as_dict()
        winner = min(d, key=d.get)
        if costs.c2 < costs.c4:
            c2_wins += 1
            c2_win_ns.append(n)
        label = f"SD^{{{m},{s}}}_{{{n},{r}}}"
        print(
            f"{label:<22}{costs.c1:>7}{costs.c2:>7}{costs.c3:>7}{costs.c4:>7}"
            f"  {winner}"
        )
    share = c2_wins / len(CONFIGS)
    print("-" * 62)
    print(
        f"C2 < C4 in {c2_wins}/{len(CONFIGS)} configs ({share:.1%}); "
        f"paper reports ~5%, only at small n"
    )
    if c2_win_ns:
        print(f"n values where C2 won: {sorted(set(c2_win_ns))}")


if __name__ == "__main__":
    main()
