#!/usr/bin/env python3
"""LRC degraded reads: the cloud workload that motivates local parities.

Transient unavailability accounts for ~90% of datacenter failure events
(paper, Section I); reads of unavailable blocks trigger on-the-fly
decoding.  This example builds a (12, 4, 2)-LRC array, takes blocks
offline, and serves degraded reads three ways:

- single failure: repaired from one local group (tiny cost);
- multi-group failure, traditional decode: one big matrix;
- multi-group failure, PPM: the local repairs run as independent
  sub-matrices in parallel, the global parities clean up the rest.

Run:  python examples/degraded_read_lrc.py
"""

import numpy as np

from repro.codes import LRCCode
from repro.core import PPMDecoder, TraditionalDecoder, plan_decode
from repro.stripes import DiskArray, lrc_scenario


def main() -> None:
    code = LRCCode(k=12, l=4, g=2, w=8)
    print(code.describe())
    print(f"local groups: {[list(g) for g in code.groups]}")

    array = DiskArray(code, num_stripes=4, sector_symbols=4096, rng=3)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))

    # --- single-block unavailability: a local repair --------------------
    victim = 5
    group = code.group_of(victim)
    truth_region = array._truth[0].get(victim).copy()
    array.corrupt_sector(0, victim)
    decoder = TraditionalDecoder(policy="matrix_first")
    value = array.degraded_read(decoder, 0, victim)
    assert np.array_equal(value, truth_region)
    plan = plan_decode(code, [victim])
    print(
        f"\nsingle failure (block {victim}, group {group}): "
        f"{plan.predicted_cost} mult_XORs — touches only its "
        f"{code.group_sizes[group]}-block group"
    )

    # --- multi-group unavailability ------------------------------------------
    scenario = lrc_scenario(code, local_failures=4, extra_failures=1, rng=11)
    stripe_idx = 1
    for b in scenario.faulty_blocks:
        array.corrupt_sector(stripe_idx, b)
    print(f"\nmulti failure: blocks {list(scenario.faulty_blocks)}")

    for name, dec in [
        ("traditional", TraditionalDecoder(policy="normal")),
        ("ppm", PPMDecoder(threads=4)),
    ]:
        target = scenario.faulty_blocks[0]
        value = array.degraded_read(dec, stripe_idx, target)
        assert np.array_equal(value, array._truth[stripe_idx].get(target))
        plan = dec.plan(code, array.stripes[stripe_idx].erased_ids)
        extra = ""
        if plan.uses_partition:
            extra = (
                f", p = {plan.p} local repairs in parallel + "
                f"{len(plan.rest.faulty_ids) if plan.rest else 0} via globals"
            )
        print(f"  {name:>12}: {plan.predicted_cost} mult_XORs{extra}")


if __name__ == "__main__":
    main()
