"""Full-mode sweeps for the cost-model figures (4-6) — cheap, no data path."""

import pytest

from repro.bench import run_figure


@pytest.fixture(scope="module")
def fig4_full():
    return run_figure(4, fast=False)


def test_figure4_full_grid(fig4_full):
    # 9 (m, s) combos x 4 n values, minus nothing (all n > m)
    assert len(fig4_full.rows) == 36


def test_figure4_full_c4_always_wins_or_c2(fig4_full):
    for row in fig4_full.rows:
        c2, c3, c4 = row[3], row[4], row[5]
        assert min(c2, c4) <= 1.0  # PPM's choice beats C1 everywhere
        assert c3 > c2 or c3 == pytest.approx(c2)  # C3 never strictly best


def test_figure4_full_counted_tracks_model(fig4_full):
    for counted, model in zip(
        fig4_full.column("C4/C1"), fig4_full.column("model C4/C1")
    ):
        assert counted == pytest.approx(model, rel=0.02)


def test_figure5_full_monotone():
    report = run_figure(5, fast=False)
    keys = {(row[0], row[1]) for row in report.rows}
    assert len(keys) == 3 * 4  # m in 1..3, n in sweep
    for key in keys:
        series = sorted(
            (row for row in report.rows if (row[0], row[1]) == key),
            key=lambda row: row[2],
        )
        ratios = [row[3] for row in series]
        assert ratios == sorted(ratios, reverse=True), key


def test_figure6_full_monotone():
    """The closed-form ratio is strictly monotone in r; counted values
    track it within the incidental-zero tolerance (they can wiggle by a
    fraction of a percent between adjacent r, scenario-dependent)."""
    report = run_figure(6, fast=False)
    for m, s in {(row[0], row[1]) for row in report.rows}:
        series = sorted(
            (row for row in report.rows if (row[0], row[1]) == (m, s)),
            key=lambda row: row[3],
        )
        model = [row[5] for row in series]
        assert model == sorted(model, reverse=True), (m, s)
        for counted, predicted in zip((row[4] for row in series), model):
            assert counted == pytest.approx(predicted, rel=0.02)
