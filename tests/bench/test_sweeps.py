"""The paper's 85.78% headline statistic, reproduced to four decimals."""

import pytest

from repro.bench.sweeps import c4_over_c1_sweep, paper_average_report, sweep_stats


def test_paper_mean_and_range_exact():
    """Paper: 'the average value of C4/C1 is equal to 85.78% (in the
    range from 47.97% to 98.06%)' — the Figure-4 grid reproduces all
    three numbers to rounding."""
    stats = sweep_stats(c4_over_c1_sweep())
    assert stats.mean == pytest.approx(0.8578, abs=5e-4)
    assert stats.minimum == pytest.approx(0.4797, abs=5e-4)
    assert stats.maximum == pytest.approx(0.9807, abs=5e-4)


def test_sweep_grid_size():
    points = c4_over_c1_sweep()
    # n in 6..24 (19 values) x 1 r x 3 m x 3 s
    assert len(points) == 19 * 9


def test_custom_z_sweep():
    points = c4_over_c1_sweep(ns=[12], ss=[3], zs=[1, 2, 3])
    assert len(points) == 3 * 3  # 3 m values x 3 z values
    by_z = {}
    for n, r, m, s, z, ratio in points:
        if m == 2:
            by_z[z] = ratio
    assert by_z[1] > by_z[2] > by_z[3]  # Figure 5's trend


def test_sweep_stats_empty():
    with pytest.raises(ValueError):
        sweep_stats([])


def test_report_contents():
    report = paper_average_report()
    assert report.column("statistic") == [
        "configurations",
        "mean C4/C1",
        "min C4/C1",
        "max C4/C1",
    ]
    reproduced = report.rows[1][1]
    assert reproduced == pytest.approx(0.8578, abs=5e-4)
