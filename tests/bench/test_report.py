"""Unit tests for the Report renderer."""

import pytest

from repro.bench import Report, format_reports


def sample():
    r = Report(title="T", headers=("a", "b"))
    r.add(1, 0.5)
    r.add(2, 0.25)
    r.note("a note")
    return r


def test_add_validates():
    r = Report(title="T", headers=("a", "b"))
    with pytest.raises(ValueError):
        r.add(1)


def test_format_table():
    text = sample().format_table()
    assert "T" in text
    assert "a" in text and "b" in text
    assert "0.5000" in text
    assert "# a note" in text


def test_to_csv():
    csv = sample().to_csv()
    lines = csv.splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,0.5000"


def test_column():
    assert sample().column("a") == [1, 2]
    with pytest.raises(ValueError):
        sample().column("zzz")


def test_filtered():
    r = sample()
    assert r.filtered(a=1) == [(1, 0.5)]
    assert r.filtered(a=3) == []


def test_format_reports():
    text = format_reports([sample(), sample()])
    assert text.count("T\n=") == 2
