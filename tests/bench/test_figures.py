"""Integration tests: every figure driver runs and shows the paper's shapes.

These use tiny stripe sizes so the whole module stays fast; the assertions
are on trend directions (who wins, what grows), not absolute numbers.
"""

import pytest

from repro.bench import FIGURES, run_figure

TINY = 1 << 14  # 16 KB stripes for measured figures


@pytest.fixture(scope="module")
def fig4():
    return run_figure(4, fast=True)


def test_all_figures_registered():
    assert sorted(FIGURES) == [4, 5, 6, 7, 8, 9, 10, 11]


def test_run_figure_unknown():
    with pytest.raises(ValueError):
        run_figure(3)


def test_figure4_c4_beats_c1(fig4):
    for ratio in fig4.column("C4/C1"):
        assert ratio < 1.0


def test_figure4_counted_close_to_model(fig4):
    for counted, model in zip(fig4.column("C4/C1"), fig4.column("model C4/C1")):
        assert counted == pytest.approx(model, rel=0.02)


def test_figure4_ratio_grows_with_n(fig4):
    for m, s in {(row[0], row[1]) for row in fig4.rows}:
        series = [row for row in fig4.rows if (row[0], row[1]) == (m, s)]
        series.sort(key=lambda row: row[2])  # by n
        ratios = [row[5] for row in series]
        assert ratios == sorted(ratios), (m, s)


def test_figure5_ratio_falls_with_z():
    report = run_figure(5, fast=True)
    for m, n in {(row[0], row[1]) for row in report.rows}:
        series = sorted(
            (row for row in report.rows if (row[0], row[1]) == (m, n)),
            key=lambda row: row[2],
        )
        ratios = [row[3] for row in series]
        assert ratios == sorted(ratios, reverse=True), (m, n)


def test_figure6_ratio_falls_with_r():
    report = run_figure(6, fast=True)
    for m, s in {(row[0], row[1]) for row in report.rows}:
        series = sorted(
            (row for row in report.rows if (row[0], row[1]) == (m, s)),
            key=lambda row: row[3],
        )
        ratios = [row[4] for row in series]
        assert ratios == sorted(ratios, reverse=True), (m, s)


def test_figure7_gain_positive_and_peaks_by_cores():
    report = run_figure(7, fast=True, stripe_bytes=1 << 20)
    for m, s, n in {(r[0], r[1], r[2]) for r in report.rows}:
        series = sorted(
            (row for row in report.rows if (row[0], row[1], row[2]) == (m, s, n)),
            key=lambda row: row[3],
        )
        gains = [row[4] for row in series]
        assert all(g > 0 for g in gains), (m, s, n)
        best_t = series[gains.index(max(gains))][3]
        assert best_t <= 4, (m, s, n, best_t)  # the model CPU has 4 cores


def test_figure8_ppm_wins_on_cost():
    """Measured at tiny stripes (sanity); cost improvement always positive."""
    report = run_figure(8, fast=True, stripe_bytes=TINY, repeats=1, rs_words=(8,))
    for cost_impr in report.column("cost impr"):
        assert cost_impr > 0
    for speed in report.column("opt-SD MB/s"):
        assert speed > 0


def test_figure8_sim_positive_at_paper_scale():
    """At the paper's 32 MB stripes the simulated T=4 gain is positive."""
    report = run_figure(8, fast=True, stripe_bytes=1 << 25, measured=False)
    assert all(v is None for v in report.column("SD MB/s"))
    for sim in report.column("sim impr T=4"):
        assert sim > 0


def test_figure9_gain_grows_with_stripe_size():
    report = run_figure(9, fast=True)
    for m, s in {(row[0], row[1]) for row in report.rows}:
        series = sorted(
            (row for row in report.rows if (row[0], row[1]) == (m, s)),
            key=lambda row: row[2],
        )
        gains = [row[3] for row in series]
        assert gains == sorted(gains), (m, s)


def test_figure10_similar_across_cpus():
    report = run_figure(10, fast=True, stripe_bytes=1 << 25)
    keys = {(row[1], row[2], row[3]) for row in report.rows}
    for key in keys:
        gains = [row[4] for row in report.rows if (row[1], row[2], row[3]) == key]
        assert len(gains) == 3
        assert max(gains) - min(gains) < 0.25 * max(max(gains), 0.01), key


def test_figure11_measured_runs_at_tiny_sizes():
    report = run_figure(11, fast=True, stripe_bytes=TINY, strip_bytes=TINY, repeats=1)
    assert len(report.rows) == 6
    assert all(isinstance(v, float) for v in report.column("measured impr"))


def test_figure11_band_and_order():
    """At paper-scale sizes the LRC gain sits in a modest positive band."""
    report = run_figure(
        11, fast=True, stripe_bytes=1 << 25, strip_bytes=1 << 26, measured=False
    )
    sims = report.column("sim impr")
    assert all(0.0 < v < 0.6 for v in sims), sims
    # LRC gains stay below a comparable SD configuration's (paper's claim)
    sd = run_figure(7, fast=True, stripe_bytes=1 << 25)
    sd_gain = max(
        row[4] for row in sd.rows if (row[0], row[1], row[3]) == (2, 2, 4)
    )
    assert max(sims) < sd_gain + 0.2
