"""Integration tests for the extra experiments."""

import pytest

from repro.bench import EXTRAS, run_extra


def test_all_extras_registered():
    assert set(EXTRAS) == {
        "paper-average",
        "network-repair",
        "reliability",
        "c2-share",
        "energy",
        "parallel-strategies",
        "rebuild-strategies",
        "degraded-read-io",
        "xor-scheduling",
    }


def test_run_extra_unknown():
    with pytest.raises(ValueError):
        run_extra("frobnicate")


def test_c2_share_only_small_n():
    report = run_extra("c2-share")
    for n in report.column("n"):
        assert n <= 9  # the paper's boundary
    assert any("C2 < C4" in note for note in report.notes)


def test_energy_saves_and_stays_under_two_watts():
    report = run_extra("energy")
    for saving in report.column("saving"):
        assert saving > 0
    for watts in report.column("extra W"):
        assert watts < 2.0  # the paper's observation


def test_parallel_strategies_ppm_beats_traditional():
    report = run_extra("parallel-strategies")
    for trad, ppm in zip(report.column("trad s"), report.column("ppm s")):
        assert ppm < trad


def test_rebuild_hybrid_wins():
    report = run_extra("rebuild-strategies")
    for row in report.rows:
        _count, stripe_par, intra, hybrid = row
        assert hybrid <= stripe_par
        assert hybrid < intra


def test_degraded_read_lrc_cheapest():
    report = run_extra("degraded-read-io")
    by_code = {row[0]: row[1] for row in report.rows}
    assert by_code["LRC(12,4,2)"] < by_code["RS(16,12)"]
    assert by_code["LRC(12,4,2)"] < by_code["SD(14,16,2,2) row"]


def test_xor_scheduling_never_worse():
    report = run_extra("xor-scheduling")
    for naive, scheduled in zip(
        report.column("naive XORs"), report.column("scheduled XORs")
    ):
        assert scheduled <= naive
    assert max(report.column("saving")) > 0.3  # dense matrices save a lot
