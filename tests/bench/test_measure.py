"""Unit tests for the measured-decode helpers."""

import pytest

from repro.bench import (
    build_stripe,
    erased_blocks,
    measure_decoder,
    measure_improvement,
    measure_wall,
    sd_workload,
)
from repro.core import PPMDecoder, TraditionalDecoder


@pytest.fixture(scope="module")
def workload():
    return sd_workload(6, 4, 2, 2, z=1, stripe_bytes=1 << 14, seed=0)


def test_measure_decoder_basics(workload):
    result = measure_decoder(workload, TraditionalDecoder(), repeats=2)
    assert result.seconds > 0
    assert result.stripe_bytes == workload.stripe_bytes
    assert result.mult_xors == workload.plan.costs.c1
    assert result.mb_per_s > 0


def test_measure_decoder_shared_blocks(workload):
    stripe = build_stripe(workload, seed=1)
    blocks = erased_blocks(workload, stripe)
    a = measure_decoder(workload, TraditionalDecoder(), repeats=1, blocks=blocks)
    b = measure_decoder(
        workload, PPMDecoder(parallel=False), repeats=1, blocks=blocks
    )
    assert a.mult_xors != b.mult_xors or a.mult_xors == b.mult_xors  # both ran
    assert b.mult_xors == workload.plan.predicted_cost


def test_measure_improvement(workload):
    improvement = measure_improvement(workload, repeats=2)
    assert improvement.traditional.seconds > 0
    assert improvement.ppm.seconds > 0
    assert improvement.ratio > -1.0
    # op counts reflect the policies
    assert improvement.traditional.mult_xors == workload.plan.costs.c1
    assert improvement.ppm.mult_xors == min(
        workload.plan.costs.c2, workload.plan.costs.c4
    )


def test_measure_wall():
    calls = []
    elapsed = measure_wall(lambda: calls.append(1), repeats=3)
    assert elapsed >= 0
    assert len(calls) == 3
