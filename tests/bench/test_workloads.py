"""Unit tests for workload construction."""

import pytest

from repro.bench import (
    LRC_COST_FAMILIES,
    build_stripe,
    erased_blocks,
    lrc_workload,
    rs_workload,
    sd_workload,
    sector_symbols_for,
)
from repro.codes import SDCode, is_decodable


def test_sector_symbols_for():
    code = SDCode(8, 16, 2, 2, 8)  # 128 blocks, 1-byte symbols
    assert sector_symbols_for(code, 128 * 100) == 100
    assert sector_symbols_for(code, 1) == 1  # clamped
    code32 = SDCode(8, 16, 2, 2, 32)
    assert sector_symbols_for(code32, 128 * 100 * 4) == 100


def test_sd_workload():
    wl = sd_workload(8, 16, 2, 2, z=1, stripe_bytes=1 << 17, seed=1)
    assert wl.code.n == 8
    assert wl.plan.faulty_ids == wl.scenario.faulty_blocks
    assert is_decodable(wl.code, wl.scenario.faulty_blocks)
    assert wl.stripe_bytes == wl.code.num_blocks * wl.sector_symbols
    assert abs(wl.stripe_bytes - (1 << 17)) < wl.code.num_blocks


def test_sd_workload_deterministic():
    a = sd_workload(6, 8, 1, 1, seed=3)
    b = sd_workload(6, 8, 1, 1, seed=3)
    assert a.scenario == b.scenario


def test_rs_workload():
    wl = rs_workload(8, 6, r=4, stripe_bytes=1 << 14)
    assert wl.code.m == 2
    assert len(wl.scenario.failed_disks) == 2
    assert len(wl.scenario.faulty_blocks) == 8
    assert is_decodable(wl.code, wl.scenario.faulty_blocks)


def test_lrc_workload_families():
    for cost, (k, l, g) in LRC_COST_FAMILIES.items():
        assert (k + l + g) / k == pytest.approx(cost, abs=0.04), cost


def test_lrc_workload_fixed_modes():
    by_stripe = lrc_workload(1.5, fixed="stripe", stripe_bytes=1 << 16)
    by_strip = lrc_workload(1.5, fixed="strip", strip_bytes=1 << 12)
    assert by_strip.sector_symbols == 1 << 12
    assert by_stripe.stripe_bytes <= 1 << 16
    with pytest.raises(ValueError):
        lrc_workload(1.5, fixed="block")
    with pytest.raises(ValueError):
        lrc_workload(9.9)


def test_lrc_workload_scenario_spans_groups():
    wl = lrc_workload(1.7, stripe_bytes=1 << 12)
    code = wl.code
    # one failure per group plus one extra
    assert len(wl.scenario.faulty_blocks) == code.l + 1


def test_build_stripe_is_code_valid():
    wl = sd_workload(6, 4, 2, 2, stripe_bytes=1 << 12, seed=5)
    stripe = build_stripe(wl, seed=0)
    from repro.gf import RegionOps

    ops = RegionOps(wl.code.field)
    regions = [stripe.get(b) for b in range(wl.code.num_blocks)]
    syndromes = ops.matrix_apply(wl.code.H.array, regions)
    assert all(not s.any() for s in syndromes)


def test_erased_blocks_excludes_faulty():
    wl = sd_workload(6, 4, 2, 2, stripe_bytes=1 << 12, seed=6)
    stripe = build_stripe(wl, seed=0)
    blocks = erased_blocks(wl, stripe)
    assert set(blocks) == set(range(wl.code.num_blocks)) - set(
        wl.scenario.faulty_blocks
    )
