"""CLI coverage for the multi-figure commands (with a slimmed registry)."""

import pytest

from repro.cli import main


@pytest.fixture
def slim_figures(monkeypatch):
    import repro.bench as bench_pkg
    import repro.bench.figures as figures_mod

    slim = {5: figures_mod.figure5, 6: figures_mod.figure6}
    monkeypatch.setattr(figures_mod, "FIGURES", slim)
    monkeypatch.setattr(bench_pkg, "FIGURES", slim)
    return slim


def test_figures_command(slim_figures, capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "Figure 6" in out


def test_reproduce_with_extras(slim_figures, tmp_path, monkeypatch, capsys):
    import repro.bench as bench_pkg
    import repro.bench.extras as extras_mod

    slim_extras = {"degraded-read-io": extras_mod.degraded_read_io}
    monkeypatch.setattr(extras_mod, "EXTRAS", slim_extras)
    monkeypatch.setattr(bench_pkg, "EXTRAS", slim_extras)
    out_dir = tmp_path / "res"
    assert main(["reproduce", "--out", str(out_dir), "--extras"]) == 0
    assert (out_dir / "figure5.txt").exists()
    assert (out_dir / "figure6.csv").exists()
    assert (out_dir / "extra_degraded_read_io.txt").exists()
    capsys.readouterr()
