"""Unit tests for multi-corruption location."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import TraditionalDecoder
from repro.stripes import Stripe, StripeLayout, locate_corruptions


@pytest.fixture
def code():
    return SDCode(6, 4, 2, 2)


def valid_stripe(code, rng=0):
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 8, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    return stripe


def corrupt(stripe, block, seed):
    rng = np.random.default_rng(seed)
    region = stripe.get(block).copy()
    region ^= rng.integers(1, 256, size=region.shape).astype(region.dtype)
    stripe.put(block, region)


def test_clean_returns_empty(code):
    assert locate_corruptions(code, valid_stripe(code)) == []


def test_single_located_via_fast_path(code):
    stripe = valid_stripe(code, rng=1)
    corrupt(stripe, 9, seed=2)
    assert locate_corruptions(code, stripe) == [9]


@pytest.mark.parametrize("pair", [(3, 17), (0, 1), (5, 23)])
def test_pairs_located(code, pair):
    stripe = valid_stripe(code, rng=3)
    for b in pair:
        corrupt(stripe, b, seed=10 + b)
    assert locate_corruptions(code, stripe, max_errors=2) == sorted(pair)


def test_max_errors_one_gives_up_on_pairs(code):
    stripe = valid_stripe(code, rng=4)
    corrupt(stripe, 2, seed=5)
    corrupt(stripe, 11, seed=6)
    result = locate_corruptions(code, stripe, max_errors=1)
    assert not isinstance(result, list)
    assert result.needs_repair and not result.located


def test_beyond_capability_unlocated(code):
    """More corruptions than the search bound: detected, not located."""
    stripe = valid_stripe(code, rng=7)
    for b, s in [(1, 8), (6, 9), (14, 10), (20, 11)]:
        corrupt(stripe, b, seed=s)
    result = locate_corruptions(code, stripe, max_errors=2)
    if isinstance(result, list):
        # a false pair explanation is combinatorially possible but must
        # at least be a subset claim the syndrome fully supports; with 4
        # random corruptions on this code it does not occur
        pytest.fail(f"unexpectedly located {result}")
    assert result.needs_repair
