"""Unit tests for the disk-array substrate (rebuild, LSEs, degraded reads)."""

import numpy as np
import pytest

from repro.codes import LRCCode, SDCode
from repro.core import PPMDecoder, TraditionalDecoder
from repro.stripes import DiskArray


@pytest.fixture
def array():
    code = SDCode(6, 4, 2, 2)
    arr = DiskArray(code, num_stripes=3, sector_symbols=32, rng=0)
    decoder = TraditionalDecoder()
    # make stripes code-valid: overwrite parity with real encodings
    for stripe in arr.stripes:
        decoder.encode_into(arr.code, stripe)
    for stripe, truth in zip(arr.stripes, arr._truth):
        for b in range(arr.code.num_blocks):
            truth.put(b, stripe.get(b))
    return arr


def test_construction_validates():
    with pytest.raises(ValueError):
        DiskArray(SDCode(4, 4, 1, 1), num_stripes=0, sector_symbols=8)


def test_fail_disk(array):
    array.fail_disk(1)
    for stripe in array.stripes:
        assert 1 in {array.layout.disk_of(b) for b in stripe.erased_ids}
        assert len(stripe.erased_ids) == array.code.r
    with pytest.raises(IndexError):
        array.fail_disk(6)


def test_inject_lse(array):
    hits = array.inject_lse(5, rng=1)
    assert len(hits) == 5
    for si, b in hits:
        assert not array.stripes[si].has(b)
    with pytest.raises(ValueError):
        array.inject_lse(10**6, rng=1)


def test_rebuild_after_disk_and_lse(array):
    array.fail_disk(2)
    array.fail_disk(5)
    # one extra sector per stripe keeps each within the (m=2, s=2) budget
    for si in range(array.num_stripes):
        present = [
            b for b in array.stripes[si].present_ids
        ]
        array.corrupt_sector(si, present[0])
    repaired = array.rebuild(PPMDecoder(threads=2))
    assert repaired == array.num_stripes * (2 * array.code.r + 1)
    assert array.fully_intact()


def test_rebuild_noop_when_intact(array):
    assert array.rebuild(TraditionalDecoder()) == 0
    assert array.fully_intact()


def test_degraded_read(array):
    truth = array._truth[1].get(8).copy()
    array.corrupt_sector(1, 8)
    value = array.degraded_read(TraditionalDecoder(), 1, 8)
    assert np.array_equal(value, truth)
    # a read does not repair
    assert not array.stripes[1].has(8)


def test_degraded_read_present_block(array):
    value = array.degraded_read(TraditionalDecoder(), 0, 0)
    assert np.array_equal(value, array.stripes[0].get(0))


def test_verify_detects_corruption(array):
    region = array.stripes[0].get(0)
    corrupted = region.copy()
    corrupted[0] ^= 1
    array.stripes[0].put(0, corrupted)
    assert not array.verify()


def test_lrc_array_roundtrip():
    code = LRCCode(6, 2, 2)
    arr = DiskArray(code, num_stripes=2, sector_symbols=16, rng=3)
    decoder = TraditionalDecoder()
    for stripe, truth in zip(arr.stripes, arr._truth):
        decoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    arr.corrupt_sector(0, 1)
    arr.corrupt_sector(1, 7)
    assert arr.rebuild(PPMDecoder(threads=2)) == 2
    assert arr.fully_intact()
