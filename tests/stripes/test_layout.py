"""Unit tests for stripe geometry."""

import pytest

from repro.codes import SDCode
from repro.stripes import StripeLayout


@pytest.fixture
def layout():
    return StripeLayout(n=4, r=4)


def test_paper_numbering(layout):
    """Column i*n + j is the sector in row i, disk j (paper, Step 1)."""
    assert layout.block_id(0, 0) == 0
    assert layout.block_id(0, 3) == 3
    assert layout.block_id(1, 0) == 4
    assert layout.block_id(3, 2) == 14
    assert layout.position(14) == (3, 2)
    assert layout.num_blocks == 16


def test_bounds(layout):
    with pytest.raises(IndexError):
        layout.block_id(4, 0)
    with pytest.raises(IndexError):
        layout.block_id(0, 4)
    with pytest.raises(IndexError):
        layout.position(-1)
    with pytest.raises(IndexError):
        layout.position(16)
    with pytest.raises(ValueError):
        StripeLayout(0, 4)


def test_disk_and_row_views(layout):
    assert layout.blocks_of_disk(1) == (1, 5, 9, 13)
    assert layout.blocks_of_row(2) == (8, 9, 10, 11)
    with pytest.raises(IndexError):
        layout.blocks_of_disk(4)
    with pytest.raises(IndexError):
        layout.blocks_of_row(4)


def test_touched(layout):
    assert layout.rows_touched([2, 6, 10, 13, 14]) == (0, 1, 2, 3)
    assert layout.rows_touched([13, 14]) == (3,)
    assert layout.disks_touched([2, 6, 10]) == (2,)
    assert layout.rows_touched([]) == ()


def test_of_code():
    code = SDCode(6, 4, 2, 2)
    layout = StripeLayout.of_code(code)
    assert (layout.n, layout.r) == (6, 4)
