"""Unit tests for the in-memory stripe store."""

import numpy as np
import pytest

from repro.gf import GF
from repro.stripes import Stripe, StripeLayout


@pytest.fixture
def layout():
    return StripeLayout(4, 2)


@pytest.fixture
def field():
    return GF(8)


def test_random_stripe_full(layout, field):
    stripe = Stripe.random(layout, field, 32, rng=0)
    assert stripe.present_ids == tuple(range(8))
    assert stripe.erased_ids == ()
    assert stripe.get(3).shape == (32,)
    assert stripe.nbytes == 8 * 32


def test_random_deterministic(layout, field):
    a = Stripe.random(layout, field, 16, rng=7)
    b = Stripe.random(layout, field, 16, rng=7)
    assert a.equals_on(b, range(8))


def test_zeros(layout, field):
    stripe = Stripe.zeros(layout, field, 8)
    assert not stripe.get(0).any()


def test_put_copies(layout, field):
    stripe = Stripe(layout, field, 4)
    region = np.arange(4, dtype=field.dtype)
    stripe.put(0, region)
    region[0] = 99
    assert stripe.get(0)[0] == 0


def test_put_validation(layout, field):
    stripe = Stripe(layout, field, 4)
    with pytest.raises(TypeError):
        stripe.put(0, np.zeros(4, dtype=np.float32))
    with pytest.raises(ValueError):
        stripe.put(0, np.zeros(5, dtype=field.dtype))
    with pytest.raises(IndexError):
        stripe.put(8, np.zeros(4, dtype=field.dtype))
    with pytest.raises(ValueError):
        Stripe(layout, field, 0)


def test_erase_and_get(layout, field):
    stripe = Stripe.random(layout, field, 4, rng=1)
    stripe.erase([2, 5])
    assert stripe.erased_ids == (2, 5)
    assert not stripe.has(2)
    with pytest.raises(KeyError):
        stripe.get(2)
    # erasing an already-erased block is fine
    stripe.erase([2])
    with pytest.raises(IndexError):
        stripe.erase([99])


def test_gather(layout, field):
    stripe = Stripe.random(layout, field, 4, rng=2)
    regions = stripe.gather([3, 0])
    assert np.array_equal(regions[0], stripe.get(3))
    assert np.array_equal(regions[1], stripe.get(0))


def test_copy_is_deep(layout, field):
    stripe = Stripe.random(layout, field, 4, rng=3)
    clone = stripe.copy()
    clone.get(0)[0] ^= 1
    assert not np.array_equal(clone.get(0), stripe.get(0))


def test_equals_on(layout, field):
    a = Stripe.random(layout, field, 4, rng=4)
    b = a.copy()
    assert a.equals_on(b, [0, 1, 2])
    b.get(1)[0] ^= 1
    assert not a.equals_on(b, [0, 1])
    b.erase([0])
    assert not a.equals_on(b, [0])
