"""Unit tests for synthetic failure traces and lifetime simulation."""

import pytest

from repro.codes import SDCode
from repro.stripes import (
    StripeLayout,
    TraceConfig,
    TraceEvent,
    generate_trace,
    iter_repair_batches,
    simulate_lifetime,
)


@pytest.fixture
def layout():
    return StripeLayout(n=8, r=16)


def test_trace_is_time_ordered_and_bounded(layout):
    config = TraceConfig(years=2.0, disk_afr=0.5, lse_rate=1.0, seed=1)
    events = generate_trace(layout, num_stripes=16, config=config)
    assert events, "rates high enough to produce events"
    days = [e.day for e in events]
    assert days == sorted(days)
    assert all(0 < d <= 2.0 * 365 for d in days)
    for e in events:
        assert 0 <= e.disk < layout.n
        if e.kind == "lse":
            assert 0 <= e.stripe < 16
            assert 0 <= e.row < layout.r
        else:
            assert e.stripe is None


def test_trace_deterministic(layout):
    config = TraceConfig(years=1.0, disk_afr=0.3, lse_rate=0.5, seed=9)
    assert generate_trace(layout, 8, config) == generate_trace(layout, 8, config)


def test_trace_rates_scale(layout):
    low = TraceConfig(years=1.0, disk_afr=0.05, lse_rate=0.05, seed=3)
    high = TraceConfig(years=1.0, disk_afr=2.0, lse_rate=2.0, seed=3)
    n_low = len(generate_trace(layout, 8, low))
    n_high = len(generate_trace(layout, 8, high))
    assert n_high > n_low


def test_iter_repair_batches():
    events = [
        TraceEvent(day=1.0, kind="disk", disk=0),
        TraceEvent(day=1.5, kind="disk", disk=1),
        TraceEvent(day=10.0, kind="disk", disk=2),
    ]
    batches = list(iter_repair_batches(events, window_days=1.0))
    assert [len(b) for b in batches] == [2, 1]
    assert list(iter_repair_batches([], window_days=1.0)) == []


def test_simulate_lifetime_accounts_everything():
    code = SDCode(8, 8, 2, 2)
    config = TraceConfig(years=2.0, disk_afr=0.4, lse_rate=0.8, seed=5)
    report = simulate_lifetime(code, num_stripes=8, config=config)
    assert report.events_processed == report.disk_failures + report.lse_events
    assert report.events_processed > 0
    assert report.mult_xors["C1"] >= report.mult_xors["PPM"] > 0
    assert report.improvement() >= 0


def test_simulate_lifetime_detects_unrecoverable():
    """Rates far above the code's tolerance produce data-loss events."""
    code = SDCode(6, 4, 1, 1)
    config = TraceConfig(years=1.0, disk_afr=40.0, lse_rate=40.0, seed=6)
    report = simulate_lifetime(code, num_stripes=4, config=config, repair_window_days=30.0)
    assert report.unrecoverable_stripes > 0


def test_quiet_trace_is_free():
    code = SDCode(6, 4, 2, 2)
    config = TraceConfig(years=0.01, disk_afr=0.001, lse_rate=0.001, seed=7)
    report = simulate_lifetime(code, num_stripes=4, config=config)
    assert report.stripes_repaired == 0
    assert report.improvement() == 0.0
