"""Unit tests for repair-I/O accounting (the degraded-read motivation)."""

import pytest

from repro.codes import LRCCode, RSCode, SDCode
from repro.core import SequencePolicy, plan_decode
from repro.stripes import compare_degraded_read, degraded_read_cost, plan_io


def test_lrc_single_failure_reads_one_group():
    lrc = LRCCode(12, 4, 2)
    io = degraded_read_cost(lrc, [0])
    # group 0 is {0,1,2} + its local parity: read the 3 other members
    assert io.read_count == 3
    assert set(io.blocks_read) == {1, 2, lrc.local_parity_id(0)}
    assert io.mult_xors == 3


def test_rs_single_failure_reads_whole_row():
    rs = RSCode(16, 12, r=1)
    io = degraded_read_cost(rs, [0])
    # the parity-check method reads every other block of the codeword
    assert io.read_count == 15


def test_lrc_beats_rs_on_degraded_read():
    """The asymmetric-parity motivation (paper Section I), quantified."""
    comparison = compare_degraded_read(
        {"rs": RSCode(16, 12, r=1), "lrc": LRCCode(12, 4, 2)}, lost_block=0
    )
    assert comparison["lrc"].read_count < comparison["rs"].read_count
    assert comparison["lrc"].mult_xors < comparison["rs"].mult_xors


def test_sd_single_sector_reads_its_row():
    sd = SDCode(8, 16, 2, 2)
    io = degraded_read_cost(sd, [0])
    # one fault in row 0: its disk-parity constraint reads the row's others
    rows = {b // sd.n for b in io.blocks_read}
    assert rows == {0}
    assert io.read_count == sd.n - 1


def test_plan_io_counts_distinct_reads():
    sd = SDCode(6, 8, 2, 2)
    from repro.stripes import worst_case_sd

    scen = worst_case_sd(sd, z=1, rng=0)
    plan = plan_decode(sd, scen.faulty_blocks)
    io = plan_io(sd, plan)
    # recovered blocks reused by the rest phase are not device reads
    assert not set(io.blocks_read) & set(plan.faulty_ids)
    assert io.mult_xors == plan.predicted_cost
    assert len(io.disks_touched) <= sd.n - sd.m


def test_plan_io_traditional_mode():
    sd = SDCode(6, 8, 2, 2)
    plan = plan_decode(sd, [0, 1], SequencePolicy.MATRIX_FIRST)
    io = plan_io(sd, plan)
    assert io.blocks_read == plan.traditional.survivor_ids


def test_disks_touched_consistent():
    lrc = LRCCode(12, 4, 2)
    io = degraded_read_cost(lrc, [0])
    assert io.disks_touched == io.blocks_read  # r == 1: block id == disk id
