"""Unit tests for failure-scenario generation (the paper's methodology)."""

import numpy as np
import pytest

from repro.codes import LRCCode, SDCode, is_decodable
from repro.stripes import (
    FailureScenario,
    StripeLayout,
    lrc_scenario,
    random_scenario,
    worst_case_sd,
)


@pytest.fixture
def code():
    return SDCode(6, 4, 2, 2)


def test_scenario_validation():
    with pytest.raises(ValueError):
        FailureScenario(faulty_blocks=(3, 1))  # unsorted
    with pytest.raises(ValueError):
        FailureScenario(faulty_blocks=(1, 1))  # duplicate
    s = FailureScenario(faulty_blocks=(1, 3), sector_faults=(1, 3))
    assert s.num_faults == 2


def test_worst_case_shape(code):
    scen = worst_case_sd(code, z=1, rng=0)
    assert len(scen.failed_disks) == code.m
    assert len(scen.sector_faults) == code.s
    assert scen.num_faults == code.m * code.r + code.s
    layout = StripeLayout.of_code(code)
    assert scen.z(layout) == 1
    # all disk blocks of the failed disks are faulty
    for d in scen.failed_disks:
        for b in layout.blocks_of_disk(d):
            assert b in scen.faulty_blocks
    # sector faults avoid failed disks
    for b in scen.sector_faults:
        assert layout.disk_of(b) not in scen.failed_disks


@pytest.mark.parametrize("z", [1, 2])
def test_worst_case_z_rows(code, z):
    layout = StripeLayout.of_code(code)
    for seed in range(10):
        scen = worst_case_sd(code, z=z, rng=seed)
        assert scen.z(layout) == z


def test_worst_case_unconstrained_z(code):
    scen = worst_case_sd(code, z=None, rng=3)
    layout = StripeLayout.of_code(code)
    assert 1 <= scen.z(layout) <= code.s


def test_worst_case_decodable(code):
    for seed in range(20):
        scen = worst_case_sd(code, z=1, rng=seed)
        assert is_decodable(code, scen.faulty_blocks)


def test_worst_case_deterministic(code):
    a = worst_case_sd(code, z=1, rng=11)
    b = worst_case_sd(code, z=1, rng=11)
    assert a == b


def test_worst_case_z_validation(code):
    with pytest.raises(ValueError):
        worst_case_sd(code, z=3, rng=0)  # z > s
    with pytest.raises(ValueError):
        worst_case_sd(code, z=0, rng=0)


def test_worst_case_requires_m():
    with pytest.raises(TypeError):
        worst_case_sd(LRCCode(4, 2, 2), rng=0)


def test_random_scenario(code):
    scen = random_scenario(code, 3, rng=5)
    assert scen.num_faults == 3
    assert is_decodable(code, scen.faulty_blocks)


def test_lrc_scenario():
    lrc = LRCCode(8, 2, 2)
    scen = lrc_scenario(lrc, local_failures=2, extra_failures=1, rng=9)
    assert scen.num_faults == 3
    assert is_decodable(lrc, scen.faulty_blocks)
    with pytest.raises(ValueError):
        lrc_scenario(lrc, local_failures=3, rng=0)
    with pytest.raises(TypeError):
        lrc_scenario(SDCode(6, 4, 2, 2), local_failures=1, rng=0)


def test_describe(code):
    scen = worst_case_sd(code, z=1, rng=0)
    layout = StripeLayout.of_code(code)
    text = scen.describe(layout)
    assert "faulty blocks" in text
    assert "z=1" in text


# -- serving-path edge cases -------------------------------------------------
# Failure scenarios interacting with the degraded-read service: transient
# fault injection overlapping an in-flight read, and a double fault landing
# in the window between the coalesce flush and the decode.


def test_overlapping_fault_injection_during_inflight_degraded_read(code):
    """A transient fault firing on the stripe an in-flight degraded read
    is recovering must be absorbed by a retry, never corrupt the answer."""
    import asyncio

    from repro.service import BlobService, BlobStore, FaultInjector, ServiceConfig
    from repro.service.errors import NodeFault

    class FaultFirstAttempt(FaultInjector):
        """Faults exactly the first flush-time snapshot, then goes quiet."""

        def __init__(self):
            super().__init__(0.0)
            self.armed = True

        def check(self, stripe_id):
            if self.armed:
                self.armed = False
                raise NodeFault(f"overlapping fault on stripe {stripe_id}")

    store = BlobStore.build(code, 1, 16, rng=0)
    scenario = worst_case_sd(code, z=1, rng=0)
    store.apply_scenario(0, scenario)
    block = scenario.faulty_blocks[0]
    config = ServiceConfig(
        batch_trigger=1, flush_interval_s=0.0, backoff_base_s=0.0001
    )

    async def main():
        async with BlobService(store, config=config) as service:
            store.faults = FaultFirstAttempt()
            region = await service.degraded_get(0, block)
            assert service.metrics.faults_seen == 1
            assert service.metrics.retries == 1
            assert service.metrics.failures == 0
            return region

    region = asyncio.run(main())
    assert store.verify_block(0, block, region)


def test_double_fault_between_coalesce_flush_and_decode(code):
    """An erasure landing after the flush snapshot — even one that makes
    the stripe undecodable — cannot touch the in-flight batch."""
    import asyncio

    from repro.core import PPMDecoder
    from repro.service import BlobStore, CoalescingScheduler, ServiceConfig, ServiceMetrics

    store = BlobStore.build(code, 1, 16, rng=1)
    scenario = worst_case_sd(code, z=1, rng=1)  # already at m disks + s sectors
    store.apply_scenario(0, scenario)
    block = scenario.faulty_blocks[0]
    survivor = store.stripe(0).present_ids[0]
    decoder = PPMDecoder(parallel=False, compile=False)

    def decode_with_late_fault(snapshots, patterns):
        # the double fault arrives *during* the decode window: beyond the
        # code's tolerance, so a fresh decode of the stripe would now fail
        store.erase(0, [survivor])
        return [
            decoder.decode(code, blocks, pattern)
            for blocks, pattern in zip(snapshots, patterns)
        ]

    config = ServiceConfig(batch_trigger=1, flush_interval_s=0.0)
    metrics = ServiceMetrics()
    scheduler = CoalescingScheduler(store, decode_with_late_fault, config, metrics)

    async def main():
        region = await scheduler.submit(0, block)
        await scheduler.close()
        return region

    region = asyncio.run(main())
    assert store.verify_block(0, block, region)  # snapshot immunity
    assert survivor in store.pattern(0)  # the store did take the hit
    assert metrics.batch_errors == 0
