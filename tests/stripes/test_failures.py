"""Unit tests for failure-scenario generation (the paper's methodology)."""

import numpy as np
import pytest

from repro.codes import LRCCode, SDCode, is_decodable
from repro.stripes import (
    FailureScenario,
    StripeLayout,
    lrc_scenario,
    random_scenario,
    worst_case_sd,
)


@pytest.fixture
def code():
    return SDCode(6, 4, 2, 2)


def test_scenario_validation():
    with pytest.raises(ValueError):
        FailureScenario(faulty_blocks=(3, 1))  # unsorted
    with pytest.raises(ValueError):
        FailureScenario(faulty_blocks=(1, 1))  # duplicate
    s = FailureScenario(faulty_blocks=(1, 3), sector_faults=(1, 3))
    assert s.num_faults == 2


def test_worst_case_shape(code):
    scen = worst_case_sd(code, z=1, rng=0)
    assert len(scen.failed_disks) == code.m
    assert len(scen.sector_faults) == code.s
    assert scen.num_faults == code.m * code.r + code.s
    layout = StripeLayout.of_code(code)
    assert scen.z(layout) == 1
    # all disk blocks of the failed disks are faulty
    for d in scen.failed_disks:
        for b in layout.blocks_of_disk(d):
            assert b in scen.faulty_blocks
    # sector faults avoid failed disks
    for b in scen.sector_faults:
        assert layout.disk_of(b) not in scen.failed_disks


@pytest.mark.parametrize("z", [1, 2])
def test_worst_case_z_rows(code, z):
    layout = StripeLayout.of_code(code)
    for seed in range(10):
        scen = worst_case_sd(code, z=z, rng=seed)
        assert scen.z(layout) == z


def test_worst_case_unconstrained_z(code):
    scen = worst_case_sd(code, z=None, rng=3)
    layout = StripeLayout.of_code(code)
    assert 1 <= scen.z(layout) <= code.s


def test_worst_case_decodable(code):
    for seed in range(20):
        scen = worst_case_sd(code, z=1, rng=seed)
        assert is_decodable(code, scen.faulty_blocks)


def test_worst_case_deterministic(code):
    a = worst_case_sd(code, z=1, rng=11)
    b = worst_case_sd(code, z=1, rng=11)
    assert a == b


def test_worst_case_z_validation(code):
    with pytest.raises(ValueError):
        worst_case_sd(code, z=3, rng=0)  # z > s
    with pytest.raises(ValueError):
        worst_case_sd(code, z=0, rng=0)


def test_worst_case_requires_m():
    with pytest.raises(TypeError):
        worst_case_sd(LRCCode(4, 2, 2), rng=0)


def test_random_scenario(code):
    scen = random_scenario(code, 3, rng=5)
    assert scen.num_faults == 3
    assert is_decodable(code, scen.faulty_blocks)


def test_lrc_scenario():
    lrc = LRCCode(8, 2, 2)
    scen = lrc_scenario(lrc, local_failures=2, extra_failures=1, rng=9)
    assert scen.num_faults == 3
    assert is_decodable(lrc, scen.faulty_blocks)
    with pytest.raises(ValueError):
        lrc_scenario(lrc, local_failures=3, rng=0)
    with pytest.raises(TypeError):
        lrc_scenario(SDCode(6, 4, 2, 2), local_failures=1, rng=0)


def test_describe(code):
    scen = worst_case_sd(code, z=1, rng=0)
    layout = StripeLayout.of_code(code)
    text = scen.describe(layout)
    assert "faulty blocks" in text
    assert "z=1" in text
