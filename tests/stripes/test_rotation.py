"""Unit tests for rotated parity placement."""

import pytest

from repro.codes import SDCode
from repro.core import PPMDecoder, TraditionalDecoder
from repro.stripes import (
    RotatedDiskArray,
    logical_disk,
    parity_load,
    physical_disk,
)


def test_rotation_roundtrip():
    n = 7
    for stripe_index in range(10):
        for logical in range(n):
            phys = physical_disk(logical, stripe_index, n)
            assert logical_disk(phys, stripe_index, n) == logical


def test_parity_load_fixed_layout_is_skewed():
    code = SDCode(6, 4, 2, 2)
    load = parity_load(code, num_stripes=12, rotated=False)
    # fixed layout: parity concentrated on the coding disks
    assert load[4] > 0 and load[5] > 0
    assert load[0] in (0, 12)  # disk 0 holds no disk-parity (maybe sectors)
    assert max(load) - min(load) > 0


def test_parity_load_rotation_balances():
    code = SDCode(6, 4, 2, 2)
    stripes = 6 * 5  # a multiple of n gives perfect balance
    rotated = parity_load(code, num_stripes=stripes, rotated=True)
    assert max(rotated) - min(rotated) == 0
    fixed = parity_load(code, num_stripes=stripes, rotated=False)
    assert max(fixed) - min(fixed) > max(rotated) - min(rotated)
    assert sum(rotated) == sum(fixed) == stripes * len(code.parity_block_ids)


def make_array(num_stripes=5):
    code = SDCode(6, 4, 2, 2)
    array = RotatedDiskArray(code, num_stripes=num_stripes, sector_symbols=16, rng=0)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    return array


def test_physical_failure_hits_different_logical_columns():
    array = make_array()
    array.fail_disk(2)
    logical_columns = set()
    for stripe_index, stripe in enumerate(array.stripes):
        erased_disks = {array.layout.disk_of(b) for b in stripe.erased_ids}
        assert len(erased_disks) == 1
        logical_columns.update(erased_disks)
        # and the erased column maps back to physical disk 2
        (ld,) = erased_disks
        assert physical_disk(ld, stripe_index, array.code.n) == 2
    assert len(logical_columns) == min(5, array.code.n)


def test_rotated_rebuild():
    array = make_array()
    array.fail_disk(0)
    array.fail_disk(3)
    repaired = array.rebuild(PPMDecoder(threads=2))
    assert repaired == 2 * array.code.r * array.num_stripes
    assert array.fully_intact()


def test_physical_of():
    array = make_array(num_stripes=3)
    block = array.layout.block_id(0, 4)
    assert array.physical_of(0, block) == 4
    assert array.physical_of(1, block) == 5
    assert array.physical_of(2, block) == 0


def test_fail_disk_bounds():
    array = make_array(num_stripes=1)
    with pytest.raises(IndexError):
        array.fail_disk(6)
