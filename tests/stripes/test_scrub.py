"""Unit tests for scrubbing and single-corruption location."""

import numpy as np
import pytest

from repro.codes import LRCCode, SDCode
from repro.core import TraditionalDecoder
from repro.stripes import (
    Stripe,
    StripeLayout,
    locate_single_corruption,
    repair_corruption,
    scrub_array,
    syndromes,
)


def valid_stripe(code, symbols=16, rng=0):
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, symbols, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    return stripe


@pytest.fixture
def code():
    return SDCode(6, 4, 2, 2)


def corrupt(stripe, block, seed=3):
    rng = np.random.default_rng(seed)
    region = stripe.get(block).copy()
    noise = rng.integers(1, 256, size=region.shape).astype(region.dtype)
    stripe.put(block, region ^ noise)


def test_clean_stripe(code):
    stripe = valid_stripe(code)
    assert all(not s.any() for s in syndromes(code, stripe))
    result = locate_single_corruption(code, stripe)
    assert result.clean
    assert not result.needs_repair


def test_syndromes_require_full_stripe(code):
    stripe = valid_stripe(code)
    stripe.erase([0])
    with pytest.raises(ValueError):
        syndromes(code, stripe)


@pytest.mark.parametrize("block", [0, 5, 14, 22])
def test_locate_single_corruption(code, block):
    stripe = valid_stripe(code, rng=1)
    corrupt(stripe, block)
    result = locate_single_corruption(code, stripe)
    assert result.needs_repair
    assert result.located
    assert result.corrupted_block == block


def test_repair_corruption(code):
    stripe = valid_stripe(code, rng=2)
    truth = stripe.copy()
    corrupt(stripe, 7)
    result = repair_corruption(code, stripe, TraditionalDecoder())
    assert result.located and result.corrupted_block == 7
    assert np.array_equal(stripe.get(7), truth.get(7))
    # stripe is clean again
    assert locate_single_corruption(code, stripe).clean


def test_double_corruption_detected_but_not_located(code):
    stripe = valid_stripe(code, rng=4)
    corrupt(stripe, 1, seed=5)
    corrupt(stripe, 8, seed=6)
    result = locate_single_corruption(code, stripe)
    assert result.needs_repair
    # two corrupted columns generally match no single-column signature
    assert not result.located or result.corrupted_block in (1, 8)


def test_lrc_scrub():
    lrc = LRCCode(8, 2, 2)
    stripe = valid_stripe(lrc, rng=7)
    truth = stripe.copy()
    corrupt(stripe, 3, seed=8)
    result = repair_corruption(lrc, stripe, TraditionalDecoder())
    assert result.located and result.corrupted_block == 3
    assert stripe.equals_on(truth, range(lrc.num_blocks))


def test_scrub_array(code):
    stripes = [valid_stripe(code, rng=seed) for seed in (10, 11, 12)]
    truths = [s.copy() for s in stripes]
    corrupt(stripes[1], 4, seed=13)
    results = scrub_array(code, stripes, TraditionalDecoder())
    assert [r.clean for r in results] == [True, False, True]
    assert results[1].corrupted_block == 4
    for stripe, truth in zip(stripes, truths):
        assert stripe.equals_on(truth, range(code.num_blocks))
