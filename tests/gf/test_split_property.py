"""Hypothesis property tests: SPLIT byte-lane tables vs scalar field.mul.

The wide-word kernels (w = 16/32) decompose every product into per-byte
table gathers (``mul_region_split``); these properties pin that
decomposition to the ground-truth log/antilog multiply for arbitrary
constants and region contents — the compiled executor's MUL/MULXOR ops
at those widths stand entirely on this equivalence.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF, mul_region_split, split_tables

WIDE_WORDS = [16, 32]


def constant_and_region(w):
    return st.tuples(
        st.just(w),
        st.integers(min_value=1, max_value=(1 << w) - 1),
        st.lists(
            st.integers(min_value=0, max_value=(1 << w) - 1),
            min_size=1,
            max_size=64,
        ),
    )


def wide_cases():
    return st.sampled_from(WIDE_WORDS).flatmap(constant_and_region)


@settings(max_examples=200, deadline=None)
@given(wide_cases())
def test_mul_region_split_matches_scalar_mul(case):
    w, a, values = case
    field = GF(w)
    src = np.array(values, dtype=field.dtype)
    got = mul_region_split(field, src, a)
    expected = field.mul(field.dtype.type(a), src)
    assert got.dtype == field.dtype
    assert np.array_equal(got, expected)


@settings(max_examples=100, deadline=None)
@given(wide_cases())
def test_split_tables_lanes_reassemble_the_product(case):
    w, a, values = case
    field = GF(w)
    tables = split_tables(field, a)
    assert len(tables) == w // 8
    src = np.array(values, dtype=field.dtype)
    lanes = src.view(np.uint8).reshape(src.shape + (w // 8,))
    acc = np.zeros_like(src)
    for i, table in enumerate(tables):
        acc ^= table[lanes[:, i]]
    assert np.array_equal(acc, field.mul(field.dtype.type(a), src))


@settings(max_examples=50, deadline=None)
@given(wide_cases())
def test_mul_region_split_out_parameter(case):
    w, a, values = case
    field = GF(w)
    src = np.array(values, dtype=field.dtype)
    out = np.empty_like(src)
    result = mul_region_split(field, src, a, out=out)
    assert result is out
    assert np.array_equal(out, field.mul(field.dtype.type(a), src))
