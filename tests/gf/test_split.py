"""Unit tests for per-constant SPLIT multiplication tables (w = 16, 32)."""

import numpy as np
import pytest

from repro.gf import GF
from repro.gf.split import mul_region_split, split_tables


@pytest.fixture(params=[16, 32], ids=lambda w: f"w{w}")
def field(request):
    return GF(request.param)


def test_table_count_and_shape(field):
    tables = split_tables(field, 0x1234)
    assert len(tables) == field.w // 8
    for t in tables:
        assert t.shape == (256,)
        assert t.dtype == field.dtype
        assert not t.flags.writeable


def test_tables_cached(field):
    assert split_tables(field, 77) is split_tables(field, 77)


def test_table_entries(field):
    a = field.dtype.type(0xAB)
    tables = split_tables(field, int(a))
    for i, t in enumerate(tables):
        for b in (0, 1, 0x7F, 0xFF):
            x = field.dtype.type(b << (8 * i))
            assert t[b] == field.mul(a, x)


def test_mul_region_split_matches_field(field):
    rng = np.random.default_rng(5)
    src = rng.integers(0, field.order + 1, size=257).astype(field.dtype)
    for a in (1, 2, 0xFF, field.order - 1):
        got = mul_region_split(field, src, a)
        want = field.mul(field.dtype.type(a), src)
        assert np.array_equal(got, want)


def test_mul_region_split_out_param(field):
    rng = np.random.default_rng(6)
    src = rng.integers(0, field.order + 1, size=64).astype(field.dtype)
    out = np.empty_like(src)
    got = mul_region_split(field, src, 3, out=out)
    assert got is out
    assert np.array_equal(out, field.mul(field.dtype.type(3), src))


def test_mul_region_split_aliasing_out(field):
    rng = np.random.default_rng(7)
    src = rng.integers(0, field.order + 1, size=64).astype(field.dtype)
    expected = field.mul(field.dtype.type(9), src)
    mul_region_split(field, src, 9, out=src)
    assert np.array_equal(src, expected)


def test_split_rejected_for_w8():
    with pytest.raises(ValueError):
        split_tables(GF(8), 3)


def test_multidimensional_regions(field):
    rng = np.random.default_rng(8)
    src = rng.integers(0, field.order + 1, size=(4, 16)).astype(field.dtype)
    got = mul_region_split(field, src, 5)
    assert got.shape == src.shape
    assert np.array_equal(got, field.mul(field.dtype.type(5), src))
