"""Unit tests for the GF field object across all supported word sizes."""

import pickle

import numpy as np
import pytest

from repro.gf import GF

ALL_W = [4, 8, 16, 32]


@pytest.fixture(params=ALL_W, ids=lambda w: f"w{w}")
def field(request):
    return GF(request.param)


def elements(field, count=64, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, field.order + 1, size=count).astype(field.dtype)


def test_interning():
    assert GF(8) is GF(8)
    assert GF(8) is not GF(16)
    assert GF(8, 0x11D) is GF(8)


def test_pickle_roundtrip(field):
    clone = pickle.loads(pickle.dumps(field))
    assert clone is field


def test_unsupported_width():
    with pytest.raises(ValueError):
        GF(12)


def test_mul_identity_and_zero(field):
    xs = elements(field)
    one = field.dtype.type(1)
    zero = field.dtype.type(0)
    assert np.array_equal(field.mul(one, xs), xs)
    assert np.array_equal(field.mul(zero, xs), np.zeros_like(xs))
    assert field.mul(zero, zero) == 0
    assert field.mul(one, one) == 1


def test_mul_commutative(field):
    xs, ys = elements(field, seed=2), elements(field, seed=3)
    assert np.array_equal(field.mul(xs, ys), field.mul(ys, xs))


def test_mul_associative(field):
    xs, ys, zs = (elements(field, 32, seed=s) for s in (4, 5, 6))
    assert np.array_equal(
        field.mul(field.mul(xs, ys), zs), field.mul(xs, field.mul(ys, zs))
    )


def test_distributive_over_xor(field):
    xs, ys, zs = (elements(field, 32, seed=s) for s in (7, 8, 9))
    assert np.array_equal(
        field.mul(xs, ys ^ zs), field.mul(xs, ys) ^ field.mul(xs, zs)
    )


def test_inverse(field):
    xs = elements(field, seed=10)
    xs = xs[xs != 0]
    inv = field.inv(xs)
    assert np.all(field.mul(xs, inv) == 1)


def test_inv_zero_raises(field):
    with pytest.raises(ZeroDivisionError):
        field.inv(field.dtype.type(0))
    with pytest.raises(ZeroDivisionError):
        field.inv(np.array([1, 0], dtype=field.dtype))


def test_div(field):
    xs, ys = elements(field, seed=11), elements(field, seed=12)
    ys[ys == 0] = 1
    q = field.div(xs, ys)
    assert np.array_equal(field.mul(q, ys), xs)


def test_pow_matches_repeated_mul(field):
    a = field.dtype.type(2)
    acc = field.dtype.type(1)
    for e in range(10):
        assert field.pow(a, e) == acc
        acc = field.mul(acc, a)


def test_pow_zero_base(field):
    zero = field.dtype.type(0)
    assert field.pow(zero, 0) == 1  # convention: 0^0 == 1
    assert field.pow(zero, 3) == 0


def test_pow_negative_exponent(field):
    a = field.dtype.type(3)
    assert field.mul(field.pow(a, -1), a) == 1
    assert field.pow(a, -2) == field.pow(field.inv(a), 2)


def test_generator_order(field):
    """The element 2 generates the multiplicative group (primitivity)."""
    two = field.dtype.type(2)
    assert field.pow(two, field.order) == 1
    # order of 2 is exactly 2^w - 1: check via prime factors for small w
    if field.w <= 16:
        n = field.order
        factors = set()
        d, m = 2, n
        while d * d <= m:
            if m % d == 0:
                factors.add(d)
                while m % d == 0:
                    m //= d
            d += 1
        if m > 1:
            factors.add(m)
        for q in factors:
            assert field.pow(two, n // q) != 1


def test_generator_powers(field):
    powers = field.generator_powers(8)
    two = field.dtype.type(2)
    for i, value in enumerate(powers):
        assert value == field.pow(two, i)
    shifted = field.generator_powers(4, start=3)
    assert shifted[0] == field.pow(two, 3)


def test_scalar_return_types(field):
    out = field.mul(field.dtype.type(3), field.dtype.type(5))
    assert np.isscalar(out) or out.ndim == 0


def test_broadcasting(field):
    a = field.dtype.type(3)
    xs = elements(field, 16, seed=13)
    col = xs.reshape(4, 4)
    assert field.mul(a, col).shape == (4, 4)
    row = xs[:4]
    assert field.mul(col, row).shape == (4, 4)


def test_zeros_eye(field):
    z = field.zeros((2, 3))
    assert z.shape == (2, 3) and z.dtype == field.dtype and not z.any()
    i = field.eye(3)
    assert i.dtype == field.dtype and np.array_equal(i, np.eye(3, dtype=field.dtype))


def test_w8_matches_mul8_table():
    f = GF(8)
    xs = np.arange(256, dtype=np.uint8)
    for a in (1, 2, 0x53, 0xFF):
        assert np.array_equal(f.mul(np.uint8(a), xs), f.mul8_table[a])


def test_w32_known_product():
    """Peasant multiply agrees with explicit polynomial arithmetic."""
    from repro.gf.polynomials import poly_mod, poly_mul

    f = GF(32)
    for a, b in [(0xDEADBEEF, 0x12345678), (2, 1 << 31), (0xFFFFFFFF, 0xFFFFFFFF)]:
        expected = poly_mod(poly_mul(a, b), f.polynomial | (0))
        assert int(f.mul(f.dtype.type(a), f.dtype.type(b))) == expected
