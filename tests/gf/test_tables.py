"""Unit tests for GF table construction."""

import numpy as np
import pytest

from repro.gf.tables import build_logexp, build_mul8, dtype_for


def test_dtype_for():
    assert dtype_for(4) == np.uint8
    assert dtype_for(8) == np.uint8
    assert dtype_for(16) == np.uint16
    assert dtype_for(32) == np.uint32
    with pytest.raises(ValueError):
        dtype_for(64)


@pytest.mark.parametrize("w", [4, 8, 16])
def test_logexp_roundtrip(w):
    t = build_logexp(w)
    order = (1 << w) - 1
    assert t.order == order
    values = np.arange(1, 1 << w)
    # exp(log(v)) == v for every nonzero element
    assert np.array_equal(t.exp[t.log[values]], values.astype(t.exp.dtype))
    # log is a bijection on nonzero elements
    assert len(set(t.log[values].tolist())) == order


@pytest.mark.parametrize("w", [4, 8, 16])
def test_exp_is_doubled_plus_sentinel_slot(w):
    t = build_logexp(w)
    order = (1 << w) - 1
    assert len(t.exp) == 2 * order + 1
    assert np.array_equal(t.exp[:order], t.exp[order : 2 * order])
    assert t.exp[2 * order] == 0  # both-operands-zero sentinel slot
    assert t.log[0] == order


def test_logexp_rejects_unsupported_width():
    with pytest.raises(ValueError):
        build_logexp(32)


def test_logexp_rejects_non_primitive_polynomial():
    # 0x11B (the AES polynomial) is irreducible but x is not a generator.
    with pytest.raises(ValueError):
        build_logexp(8, polynomial=0x11B)
    with pytest.raises(ValueError):
        build_logexp(8, polynomial=0x101)  # x^8 + 1 is reducible


def test_logexp_cached():
    assert build_logexp(8) is build_logexp(8)


def test_mul8_table_basics():
    m = build_mul8()
    assert m.shape == (256, 256)
    assert m.dtype == np.uint8
    assert np.all(m[0] == 0) and np.all(m[:, 0] == 0)
    assert np.array_equal(m[1], np.arange(256, dtype=np.uint8))
    assert np.array_equal(m, m.T)  # commutativity
    # known products under 0x11D: 2*128 = 0x11D ^ 0x100 = 0x1D
    assert m[2, 128] == 0x1D
    assert m[2, 2] == 4


def test_mul8_rows_are_permutations():
    m = build_mul8()
    for a in (1, 2, 37, 255):
        assert sorted(m[a].tolist()) == list(range(256))


def test_mul8_readonly_and_cached():
    m = build_mul8()
    assert m is build_mul8()
    with pytest.raises(ValueError):
        m[1, 1] = 0
