"""Unit + property tests for XOR scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.gf.bitmatrix import expand_matrix, xor_count
from repro.gf.schedule import (
    execute_schedule,
    naive_schedule,
    pair_reuse_schedule,
    schedule_cost,
)


def reference_apply(bitmatrix, inputs):
    out = []
    for row in bitmatrix:
        acc = np.zeros_like(inputs[0])
        for j in np.nonzero(row)[0]:
            acc = acc ^ inputs[int(j)]
        out.append(acc)
    return out


def random_bitmatrix(rows, cols, density=0.5, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((rows, cols)) < density).astype(np.uint8)


def random_packets(count, size=16, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(count)]


def test_naive_schedule_cost_matches_xor_count():
    m = random_bitmatrix(6, 8, seed=2)
    assert schedule_cost(naive_schedule(m)) == xor_count(m)


def test_naive_schedule_correct():
    m = random_bitmatrix(5, 7, seed=3)
    packets = random_packets(7, seed=4)
    got = execute_schedule(naive_schedule(m), packets)
    want = reference_apply(m, packets)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


def test_zero_row_produces_zero_packet():
    m = np.zeros((2, 3), dtype=np.uint8)
    m[1, 0] = 1
    packets = random_packets(3, seed=5)
    out = execute_schedule(naive_schedule(m), packets)
    assert not out[0].any()
    assert np.array_equal(out[1], packets[0])


def test_pair_reuse_correct_and_no_worse():
    m = random_bitmatrix(8, 10, density=0.6, seed=6)
    packets = random_packets(10, seed=7)
    naive = naive_schedule(m)
    optimised = pair_reuse_schedule(m)
    got = execute_schedule(optimised, packets)
    want = execute_schedule(naive, packets)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)
    assert schedule_cost(optimised) <= schedule_cost(naive)


def test_pair_reuse_saves_on_shared_pairs():
    # three rows all containing the pair (0, 1): naive 6 xors, reuse 4
    m = np.array(
        [
            [1, 1, 1, 0],
            [1, 1, 0, 1],
            [1, 1, 1, 1],
        ],
        dtype=np.uint8,
    )
    naive = naive_schedule(m)
    optimised = pair_reuse_schedule(m)
    assert schedule_cost(naive) == 2 + 2 + 3
    assert schedule_cost(optimised) < schedule_cost(naive)
    packets = random_packets(4, seed=8)
    for g, w in zip(
        execute_schedule(optimised, packets), execute_schedule(naive, packets)
    ):
        assert np.array_equal(g, w)


def test_max_rounds_limits_optimisation():
    m = random_bitmatrix(8, 10, density=0.7, seed=9)
    limited = pair_reuse_schedule(m, max_rounds=1)
    unlimited = pair_reuse_schedule(m)
    assert schedule_cost(unlimited) <= schedule_cost(limited)
    packets = random_packets(10, seed=10)
    for g, w in zip(
        execute_schedule(limited, packets), execute_schedule(unlimited, packets)
    ):
        assert np.array_equal(g, w)


def test_execute_validates_inputs():
    m = random_bitmatrix(2, 3, seed=11)
    sched = naive_schedule(m)
    with pytest.raises(ValueError):
        execute_schedule(sched, random_packets(2))
    empty = naive_schedule(np.zeros((1, 0), dtype=np.uint8))
    with pytest.raises(ValueError):
        execute_schedule(empty, [])


def test_on_real_coding_matrix():
    """Scheduling a real SD decode bit-matrix reduces XORs and stays exact."""
    from repro.codes import SDCode
    from repro.core import plan_decode

    code = SDCode(6, 4, 2, 2)
    from repro.stripes import worst_case_sd

    scen = worst_case_sd(code, z=1, rng=0)
    plan = plan_decode(code, scen.faulty_blocks)
    w_matrix = plan.groups[0].weights.array
    expanded = expand_matrix(code.field, w_matrix)
    naive = naive_schedule(expanded)
    optimised = pair_reuse_schedule(expanded)
    assert schedule_cost(optimised) < schedule_cost(naive)
    packets = random_packets(expanded.shape[1], seed=12)
    for g, w in zip(
        execute_schedule(optimised, packets), execute_schedule(naive, packets)
    ):
        assert np.array_equal(g, w)


@given(st.integers(0, 10_000), st.integers(2, 7), st.integers(2, 9))
@settings(max_examples=40)
def test_property_schedules_agree(seed, rows, cols):
    m = random_bitmatrix(rows, cols, density=0.5, seed=seed)
    packets = random_packets(cols, seed=seed + 1)
    naive = execute_schedule(naive_schedule(m), packets)
    optimised = execute_schedule(pair_reuse_schedule(m), packets)
    reference = reference_apply(m, packets)
    for a, b, c in zip(naive, optimised, reference):
        assert np.array_equal(a, c)
        assert np.array_equal(b, c)
