"""Unit tests for region operations and the mult_XORs op counter."""

import threading

import numpy as np
import pytest

from repro.gf import GF, OpCounter, RegionOps

ALL_W = [4, 8, 16, 32]


@pytest.fixture(params=ALL_W, ids=lambda w: f"w{w}")
def ops(request):
    return RegionOps(GF(request.param))


def region(field, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, field.order + 1, size=n).astype(field.dtype)


def test_mul_region_matches_field_mul(ops):
    f = ops.field
    src = region(f)
    for a in (0, 1, 2, 7, f.order):
        assert np.array_equal(ops.mul_region(src, a), f.mul(f.dtype.type(a), src))


def test_mul_region_out_aliasing(ops):
    f = ops.field
    src = region(f, seed=1)
    expected = f.mul(f.dtype.type(3), src)
    out = ops.mul_region(src, 3, out=src)
    assert out is src
    assert np.array_equal(src, expected)


def test_mul_region_not_counted(ops):
    ops.mul_region(region(ops.field), 5)
    assert ops.counter.mult_xors == 0


def test_mult_xors_semantics(ops):
    f = ops.field
    src = region(f, seed=2)
    dst = region(f, seed=3)
    expected = dst ^ f.mul(f.dtype.type(9), src)
    result = ops.mult_xors(src, dst, 9)
    assert result is dst
    assert np.array_equal(dst, expected)


def test_mult_xors_counts(ops):
    src = region(ops.field, n=32)
    dst = np.zeros_like(src)
    ops.mult_xors(src, dst, 2)
    ops.mult_xors(src, dst, 1)
    assert ops.counter.mult_xors == 2
    assert ops.counter.xor_only == 1
    assert ops.counter.symbols == 64


def test_mult_xors_zero_coefficient_rejected(ops):
    src = region(ops.field)
    with pytest.raises(ValueError):
        ops.mult_xors(src, np.zeros_like(src), 0)


def test_mult_xors_shape_mismatch(ops):
    f = ops.field
    with pytest.raises(ValueError):
        ops.mult_xors(f.zeros(4), f.zeros(8), 1)


def test_region_dtype_checked(ops):
    wrong = np.zeros(8, dtype=np.float64)
    with pytest.raises(TypeError):
        ops.mult_xors(wrong, wrong.copy(), 1)


def test_linear_combination(ops):
    f = ops.field
    regions = [region(f, seed=s) for s in range(4)]
    coeffs = np.array([3, 0, 1, 5], dtype=f.dtype)
    out = ops.linear_combination(coeffs, regions)
    expected = (
        f.mul(f.dtype.type(3), regions[0])
        ^ regions[2]
        ^ f.mul(f.dtype.type(5), regions[3])
    )
    assert np.array_equal(out, expected)
    # zero coefficient not counted
    assert ops.counter.mult_xors == 3


def test_linear_combination_reuses_out(ops):
    f = ops.field
    regions = [region(f, seed=9)]
    out = f.zeros(64)
    got = ops.linear_combination(np.array([1], dtype=f.dtype), regions, out=out)
    assert got is out
    assert np.array_equal(out, regions[0])


def test_linear_combination_validates(ops):
    with pytest.raises(ValueError):
        ops.linear_combination(np.array([1], dtype=ops.field.dtype), [])
    with pytest.raises(ValueError):
        ops.linear_combination(np.array([], dtype=ops.field.dtype), [])


def test_matrix_apply_cost_is_nonzero_count(ops):
    f = ops.field
    matrix = np.array([[1, 0, 2], [0, 0, 1]], dtype=f.dtype)
    regions = [region(f, seed=s) for s in range(3)]
    outs = ops.matrix_apply(matrix, regions)
    assert len(outs) == 2
    assert ops.counter.mult_xors == 3  # u(matrix)
    assert np.array_equal(outs[1], regions[2])


def test_matrix_apply_validates_shape(ops):
    with pytest.raises(ValueError):
        ops.matrix_apply(ops.field.zeros((2, 2)), [ops.field.zeros(4)])


def test_counter_reset_snapshot():
    c = OpCounter()
    c.record(3, 100, xor_only=1)
    assert c.snapshot() == (3, 1, 100)
    c.reset()
    assert c.snapshot() == (0, 0, 0)


def test_counter_thread_safety():
    c = OpCounter()

    def work():
        for _ in range(1000):
            c.record(1, 10)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.mult_xors == 4000
    assert c.symbols == 40000


def test_shared_counter_between_ops():
    c = OpCounter()
    a = RegionOps(GF(8), c)
    b = RegionOps(GF(8), c)
    src = region(GF(8))
    a.mult_xors(src, np.zeros_like(src), 2)
    b.mult_xors(src, np.zeros_like(src), 3)
    assert c.mult_xors == 2
