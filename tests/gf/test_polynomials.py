"""Unit tests for GF(2) polynomial arithmetic and field-polynomial checks."""

import pytest

from repro.gf.polynomials import (
    DEFAULT_POLYNOMIALS,
    default_polynomial,
    is_irreducible,
    is_primitive,
    poly_degree,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_mulmod,
    poly_powmod,
)


def test_poly_degree():
    assert poly_degree(0) == -1
    assert poly_degree(1) == 0
    assert poly_degree(0b10) == 1
    assert poly_degree(0x11D) == 8


def test_poly_mul_matches_known_products():
    # (x + 1)(x + 1) = x^2 + 1 over GF(2)
    assert poly_mul(0b11, 0b11) == 0b101
    # (x^2 + x)(x + 1) = x^3 + x
    assert poly_mul(0b110, 0b11) == 0b1010
    assert poly_mul(0, 0b1011) == 0
    assert poly_mul(1, 0b1011) == 0b1011


def test_poly_mul_commutative_and_distributive():
    a, b, c = 0b110101, 0b1011, 0b111
    assert poly_mul(a, b) == poly_mul(b, a)
    assert poly_mul(a, b ^ c) == poly_mul(a, b) ^ poly_mul(a, c)


def test_poly_divmod_roundtrip():
    a, b = 0b110101101, 0b1011
    q, r = poly_divmod(a, b)
    assert poly_mul(q, b) ^ r == a
    assert poly_degree(r) < poly_degree(b)


def test_poly_mod_consistent_with_divmod():
    a, b = 0x1ABCD, 0x11D
    assert poly_mod(a, b) == poly_divmod(a, b)[1]


def test_poly_division_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        poly_mod(0b101, 0)
    with pytest.raises(ZeroDivisionError):
        poly_divmod(0b101, 0)


def test_poly_mulmod_matches_mul_then_mod():
    mod = 0x11D
    for a in (0, 1, 0x53, 0xCA, 0xFF):
        for b in (0, 1, 0x02, 0xFF):
            assert poly_mulmod(a, b, mod) == poly_mod(poly_mul(a, b), mod)


def test_poly_powmod_small_cases():
    mod = 0x13  # x^4 + x + 1, primitive for GF(16)
    # x^15 == 1 in GF(2^4)
    assert poly_powmod(0b10, 15, mod) == 1
    assert poly_powmod(0b10, 0, mod) == 1
    assert poly_powmod(0b10, 1, mod) == 0b10


def test_poly_gcd():
    # gcd((x+1)^2, (x+1)x) = x+1
    assert poly_gcd(0b101, 0b110) == 0b11
    assert poly_gcd(0, 0b101) == 0b101
    assert poly_gcd(0b101, 0) == 0b101


def test_known_irreducibles():
    assert is_irreducible(0b111)  # x^2 + x + 1
    assert is_irreducible(0b1011)  # x^3 + x + 1
    assert is_irreducible(0x13)
    assert is_irreducible(0x11D)


def test_known_reducibles():
    assert not is_irreducible(0b101)  # x^2 + 1 = (x+1)^2
    assert not is_irreducible(0b110)  # x^2 + x = x(x+1)
    assert not is_irreducible(1)  # degree 0
    assert not is_irreducible(0)


def test_default_polynomials_are_primitive():
    """Every shipped defining polynomial must be verified primitive."""
    for w, poly in DEFAULT_POLYNOMIALS.items():
        assert poly_degree(poly) == w
        assert is_primitive(poly, w), f"default polynomial for w={w} is not primitive"


def test_irreducible_but_not_primitive():
    # x^4 + x^3 + x^2 + x + 1 is irreducible but x has order 5, not 15.
    p = 0b11111
    assert is_irreducible(p)
    assert not is_primitive(p, 4)


def test_is_primitive_rejects_wrong_degree():
    assert not is_primitive(0x13, 8)


def test_default_polynomial_unknown_width():
    with pytest.raises(ValueError):
        default_polynomial(12)
    assert default_polynomial(8) == 0x11D
