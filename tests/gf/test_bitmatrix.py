"""Unit + property tests for the Cauchy-style bit-matrix representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    GF,
    OpCounter,
    apply_bitmatrix,
    bitmatrix_multiply,
    companion_matrix,
    expand_matrix,
    from_bitplanes,
    to_bitplanes,
    xor_count,
)


@pytest.fixture(params=[4, 8, 16], ids=lambda w: f"w{w}")
def field(request):
    return GF(request.param)


def test_companion_identity_and_zero(field):
    assert np.array_equal(companion_matrix(field, 1), np.eye(field.w, dtype=np.uint8))
    assert not companion_matrix(field, 0).any()


def test_companion_encodes_multiplication(field):
    rng = np.random.default_rng(0)
    for a in (2, 3, field.order):
        m = companion_matrix(field, a)
        for x in rng.integers(0, field.order + 1, size=8):
            bits = np.array([(int(x) >> i) & 1 for i in range(field.w)], dtype=np.uint8)
            out_bits = (m @ bits) & 1
            out = sum(int(b) << i for i, b in enumerate(out_bits))
            assert out == int(field.mul(field.dtype.type(a), field.dtype.type(x))), (a, x)


@given(st.integers(1, 255), st.integers(1, 255))
@settings(max_examples=60)
def test_companion_homomorphism(a, b):
    """M(a) @ M(b) == M(a*b): the representation is a ring homomorphism."""
    f = GF(8)
    ab = int(f.mul(f.dtype.type(a), f.dtype.type(b)))
    assert np.array_equal(
        bitmatrix_multiply(companion_matrix(f, a), companion_matrix(f, b)),
        companion_matrix(f, ab),
    )


@given(st.integers(1, 255))
@settings(max_examples=40)
def test_companion_invertible_for_nonzero(a):
    from repro.matrix import GFMatrix, is_invertible

    f = GF(8)
    m = GFMatrix(GF(8), companion_matrix(f, a))
    assert is_invertible(m)


def test_expand_matrix_shape_and_zero_blocks(field):
    coeffs = np.array([[1, 0], [2, 3]], dtype=field.dtype)
    expanded = expand_matrix(field, coeffs)
    w = field.w
    assert expanded.shape == (2 * w, 2 * w)
    assert not expanded[:w, w:].any()  # zero coefficient -> zero block
    assert np.array_equal(expanded[:w, :w], np.eye(w, dtype=np.uint8))


def test_xor_count():
    m = np.array([[1, 1, 0], [0, 0, 0], [1, 0, 0]], dtype=np.uint8)
    # row 0: 2 ones -> 1 xor; row 2: 1 one -> 0 xors
    assert xor_count(m) == 1
    assert xor_count(np.zeros((2, 2), dtype=np.uint8)) == 0


def test_bitplane_roundtrip(field):
    rng = np.random.default_rng(1)
    region = rng.integers(0, field.order + 1, size=77).astype(field.dtype)
    planes = to_bitplanes(region, field)
    assert planes.shape == (field.w, 77)
    assert np.array_equal(from_bitplanes(planes, field), region)


def test_bitplane_validation(field):
    with pytest.raises(TypeError):
        to_bitplanes(np.zeros(4, dtype=np.float32), field)
    with pytest.raises(ValueError):
        from_bitplanes(np.zeros((field.w + 1, 4), dtype=np.uint8), field)


def test_apply_bitmatrix_equals_field_arithmetic(field):
    """Bit-plane XOR execution == direct GF matrix application."""
    rng = np.random.default_rng(2)
    coeffs = rng.integers(0, field.order + 1, size=(2, 3)).astype(field.dtype)
    regions = [
        rng.integers(0, field.order + 1, size=32).astype(field.dtype)
        for _ in range(3)
    ]
    expanded = expand_matrix(field, coeffs)
    planes = [to_bitplanes(r, field) for r in regions]
    outs = apply_bitmatrix(expanded, planes, field.w)
    from repro.gf import RegionOps

    expected = RegionOps(field).matrix_apply(coeffs, regions)
    for got_planes, want in zip(outs, expected):
        assert np.array_equal(from_bitplanes(got_planes, field), want)


def test_apply_bitmatrix_counts_xors(field):
    coeffs = np.array([[3]], dtype=field.dtype)
    expanded = expand_matrix(field, coeffs)
    region = np.arange(16, dtype=field.dtype) & field.order
    counter = OpCounter()
    apply_bitmatrix(expanded, [to_bitplanes(region.astype(field.dtype), field)], field.w, counter)
    assert counter.mult_xors == int(expanded.sum())
    assert counter.xor_only == counter.mult_xors


def test_apply_bitmatrix_validation(field):
    with pytest.raises(ValueError):
        apply_bitmatrix(np.zeros((3, field.w), dtype=np.uint8), [], field.w)
    with pytest.raises(ValueError):
        apply_bitmatrix(np.zeros((field.w, field.w), dtype=np.uint8), [], field.w)
