"""Hypothesis property tests: GF(2^w) must satisfy the field axioms.

These are the invariants every layer above (matrices, codes, PPM) relies
on; we test them exhaustively-by-sampling for each supported word size.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF, RegionOps

WORD_SIZES = [4, 8, 16, 32]


def field_element(w):
    return st.integers(min_value=0, max_value=(1 << w) - 1)


def three_elements():
    return st.integers(0, len(WORD_SIZES) - 1).flatmap(
        lambda i: st.tuples(
            st.just(WORD_SIZES[i]),
            field_element(WORD_SIZES[i]),
            field_element(WORD_SIZES[i]),
            field_element(WORD_SIZES[i]),
        )
    )


@given(three_elements())
@settings(max_examples=200)
def test_mul_associative_commutative(args):
    w, a, b, c = args
    f = GF(w)
    a, b, c = f.dtype.type(a), f.dtype.type(b), f.dtype.type(c)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))


@given(three_elements())
@settings(max_examples=200)
def test_distributivity(args):
    w, a, b, c = args
    f = GF(w)
    a, b, c = f.dtype.type(a), f.dtype.type(b), f.dtype.type(c)
    assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)


@given(three_elements())
@settings(max_examples=200)
def test_multiplicative_inverse(args):
    w, a, _, _ = args
    f = GF(w)
    if a == 0:
        return
    a = f.dtype.type(a)
    assert f.mul(a, f.inv(a)) == 1
    assert f.div(a, a) == 1


@given(three_elements())
@settings(max_examples=100)
def test_no_zero_divisors(args):
    w, a, b, _ = args
    f = GF(w)
    a, b = f.dtype.type(a), f.dtype.type(b)
    product = f.mul(a, b)
    if a != 0 and b != 0:
        assert product != 0
    else:
        assert product == 0


@given(three_elements(), st.integers(min_value=0, max_value=300))
@settings(max_examples=100)
def test_pow_homomorphism(args, e):
    w, a, b, _ = args
    f = GF(w)
    a, b = f.dtype.type(a), f.dtype.type(b)
    # (a*b)^e == a^e * b^e in an abelian group
    assert f.pow(f.mul(a, b), e) == f.mul(f.pow(a, e), f.pow(b, e))


@given(three_elements(), st.integers(min_value=1, max_value=128))
@settings(max_examples=60)
def test_region_mul_is_pointwise_field_mul(args, size):
    w, a, seed, _ = args
    f = GF(w)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, f.order + 1, size=size).astype(f.dtype)
    ops = RegionOps(f)
    got = ops.mul_region(src, a)
    want = np.array([f.mul(f.dtype.type(a), x) for x in src], dtype=f.dtype)
    assert np.array_equal(got, want)


@given(three_elements(), st.integers(min_value=1, max_value=64))
@settings(max_examples=60)
def test_mult_xors_accumulates(args, size):
    """dst ^= a*src twice restores dst (characteristic-2 self-inverse)."""
    w, a, seed, _ = args
    if a == 0:
        return
    f = GF(w)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, f.order + 1, size=size).astype(f.dtype)
    dst = rng.integers(0, f.order + 1, size=size).astype(f.dtype)
    original = dst.copy()
    ops = RegionOps(f)
    ops.mult_xors(src, dst, a)
    ops.mult_xors(src, dst, a)
    assert np.array_equal(dst, original)
