"""Unit tests for cache-aware chunked matrix application."""

import numpy as np
import pytest

from repro.gf import GF, OpCounter, RegionOps
from repro.gf.chunking import DEFAULT_CHUNK_SYMBOLS, chunked_matrix_apply


@pytest.fixture(params=[8, 16], ids=lambda w: f"w{w}")
def ops(request):
    return RegionOps(GF(request.param))


def make_inputs(ops, rows=3, cols=4, length=1000, seed=0):
    rng = np.random.default_rng(seed)
    f = ops.field
    matrix = rng.integers(0, f.order + 1, size=(rows, cols)).astype(f.dtype)
    regions = [
        rng.integers(0, f.order + 1, size=length).astype(f.dtype) for _ in range(cols)
    ]
    return matrix, regions


@pytest.mark.parametrize("chunk", [1, 7, 100, 1000, 5000])
def test_matches_unchunked(ops, chunk):
    matrix, regions = make_inputs(ops)
    want = RegionOps(ops.field).matrix_apply(matrix, regions)
    got = chunked_matrix_apply(ops, matrix, regions, chunk_symbols=chunk)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


def test_op_counts_identical(ops):
    matrix, regions = make_inputs(ops, seed=1)
    a = RegionOps(ops.field, OpCounter())
    a.matrix_apply(matrix, regions)
    b = RegionOps(ops.field, OpCounter())
    chunked_matrix_apply(b, matrix, regions, chunk_symbols=64)
    # chunking multiplies call counts but total symbols are identical
    assert b.counter.symbols == a.counter.symbols
    chunks = -(-1000 // 64)
    assert b.counter.mult_xors == a.counter.mult_xors * chunks


def test_zero_coefficients_skipped(ops):
    f = ops.field
    matrix = np.array([[0, 1], [0, 0]], dtype=f.dtype)
    regions = [f.zeros(10) + 1, f.zeros(10) + 2]
    counter = OpCounter()
    out = chunked_matrix_apply(RegionOps(f, counter), matrix, regions, chunk_symbols=5)
    assert counter.mult_xors == 2  # one nonzero coefficient x two chunks
    assert np.array_equal(out[0], regions[1])
    assert not out[1].any()


def test_validation(ops):
    matrix, regions = make_inputs(ops)
    with pytest.raises(ValueError):
        chunked_matrix_apply(ops, matrix, regions[:-1])
    with pytest.raises(ValueError):
        chunked_matrix_apply(ops, matrix, regions, chunk_symbols=0)
    with pytest.raises(ValueError):
        chunked_matrix_apply(ops, matrix[:, :0], [])
    short = [regions[0], regions[1][:10], regions[2], regions[3]]
    with pytest.raises(ValueError):
        chunked_matrix_apply(ops, matrix, short)


def test_default_chunk_is_reasonable():
    assert 1 << 12 <= DEFAULT_CHUNK_SYMBOLS <= 1 << 20
