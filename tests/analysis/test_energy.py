"""Unit tests for the energy model (the paper's deferred evaluation)."""

import pytest

from repro.analysis import EnergyModel, decode_energy, energy_comparison
from repro.codes import SDCode
from repro.core import plan_decode
from repro.parallel import E5_2603
from repro.stripes import worst_case_sd

SYM = 1 << 20


@pytest.fixture(scope="module")
def plan():
    code = SDCode(12, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    return plan_decode(code, scen.faulty_blocks)


def test_bills_positive_and_decomposed(plan):
    bill = decode_energy(plan, E5_2603, threads=4, sector_symbols=SYM)
    assert bill.compute_j > 0
    assert bill.static_j > 0
    assert bill.threading_j >= 0
    assert bill.total_j == pytest.approx(
        bill.compute_j + bill.static_j + bill.threading_j
    )


def test_traditional_has_no_threading_cost(plan):
    bill = decode_energy(plan, E5_2603, threads=4, sector_symbols=SYM, traditional=True)
    assert bill.threading_j == 0


def test_ppm_saves_energy_overall(plan):
    """Fewer ops + shorter wall time beat the small threading overhead."""
    comparison = energy_comparison(plan, E5_2603, threads=4, sector_symbols=SYM)
    assert comparison.saving > 0
    assert comparison.ppm.compute_j < comparison.traditional.compute_j
    assert comparison.ppm.static_j < comparison.traditional.static_j


def test_extra_power_is_modest(plan):
    """The paper's claim: PPM's extra draw while active stays small (< 2 W)."""
    comparison = energy_comparison(plan, E5_2603, threads=4, sector_symbols=SYM)
    assert comparison.extra_threading_watts < 2.0


def test_compute_energy_scales_with_symbols(plan):
    small = decode_energy(plan, E5_2603, 4, sector_symbols=1 << 10)
    large = decode_energy(plan, E5_2603, 4, sector_symbols=1 << 20)
    assert large.compute_j == pytest.approx(small.compute_j * 1024, rel=1e-9)


def test_custom_model(plan):
    free_static = EnergyModel(static_watts=0.0)
    bill = decode_energy(plan, E5_2603, 4, SYM, model=free_static)
    assert bill.static_j == 0.0


def test_saving_zero_edge():
    from repro.analysis.energy import EnergyBill, EnergyComparison

    zero = EnergyBill(0.0, 0.0, 0.0)
    assert EnergyComparison(zero, zero).saving == 0.0
