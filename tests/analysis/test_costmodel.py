"""The paper's closed-form cost model vs the counted costs of real matrices.

This is the strongest internal-consistency check in the reproduction: the
formulas of Section III-B must agree with the nonzero counts our planner
produces on real SD matrices.  C1/C4 agree exactly for generic scenarios;
C2/C3 are upper bounds that the counted value may undershoot by a few ops
when a matrix product happens to produce zero coefficients.
"""

import itertools

import pytest

from repro.analysis import SDConfig, c1_minus_c4, c3_minus_c2, sd_costs
from repro.codes import SDCode
from repro.core import SequencePolicy, plan_decode
from repro.stripes import worst_case_sd


def test_paper_example_exact():
    costs = sd_costs(n=4, r=4, m=1, s=1, z=1)
    assert costs.c1 == 35
    assert costs.c2 == 31
    assert costs.c4 == 29
    assert costs.reduction() == pytest.approx(0.1714, abs=1e-4)


def test_identities():
    """C1 - C4 > 0 and C3 - C2 > 0 across the paper's parameter ranges."""
    for n, r, m, s in itertools.product((4, 10, 24), (4, 16, 24), (1, 2, 3), (1, 2, 3)):
        if m >= n:
            continue
        for z in range(1, min(s, r) + 1):
            assert c1_minus_c4(n, r, m, s, z) > 0, (n, r, m, s, z)
            assert c3_minus_c2(n, r, m, s, z) > 0, (n, r, m, s, z)


def test_c1_minus_c4_closed_form_at_z1():
    """At z = 1 the saving is m^2 * (z+1) * (r-1) (both paper variants agree)."""
    for n, r, m, s in [(8, 16, 2, 2), (6, 4, 1, 1), (12, 24, 3, 3)]:
        assert c1_minus_c4(n, r, m, s, 1) == m * m * 2 * (r - 1)


def test_config_validation():
    with pytest.raises(ValueError):
        SDConfig(4, 4, 4, 1)  # m >= n
    with pytest.raises(ValueError):
        SDConfig(4, 4, 1, 0)  # s < 1
    with pytest.raises(ValueError):
        SDConfig(4, 4, 1, 2, z=3)  # z > s
    assert SDConfig(8, 16, 2, 2).in_paper_ranges()
    assert not SDConfig(30, 16, 2, 2).in_paper_ranges()


@pytest.mark.parametrize(
    "n,r,m,s", [(6, 16, 1, 1), (8, 16, 2, 2), (6, 4, 2, 2), (9, 12, 3, 1)]
)
def test_formula_matches_counted_z1(n, r, m, s):
    """z = 1: closed form equals (C1, C4) and bounds (C2, C3) tightly."""
    code = SDCode(n, r, m, s)
    scen = worst_case_sd(code, z=1, rng=42)
    counted = plan_decode(code, scen.faulty_blocks, SequencePolicy.AUTO).costs
    predicted = sd_costs(n, r, m, s, 1)
    assert counted.c1 == predicted.c1
    assert counted.c4 == predicted.c4
    assert counted.c2 <= predicted.c2
    assert counted.c3 <= predicted.c3
    assert predicted.c2 - counted.c2 <= max(4, predicted.c2 // 50)
    assert predicted.c3 - counted.c3 <= max(4, predicted.c3 // 50)


@pytest.mark.parametrize("z", [1, 2, 3])
def test_formula_tracks_counted_for_z(z):
    """Across z, counted never exceeds the closed form and stays within 2%."""
    code = SDCode(10, 8, 3, 3)
    scen = worst_case_sd(code, z=z, rng=7)
    counted = plan_decode(code, scen.faulty_blocks, SequencePolicy.AUTO).costs
    predicted = sd_costs(10, 8, 3, 3, z)
    for key in ("c1", "c2", "c4"):
        c, p = getattr(counted, key), getattr(predicted, key)
        assert c <= p, key
        assert p - c <= max(4, p // 50), key


def test_ratios_shape_match_figure4():
    """C4/C1 grows with n and s, shrinks with growing m (Figure 4 trends)."""
    r = 16
    # growing n
    ratios_n = [sd_costs(n, r, 2, 2, 1).ratio("c4") for n in (6, 11, 16, 21)]
    assert ratios_n == sorted(ratios_n)
    # growing s
    ratios_s = [sd_costs(12, r, 2, s, 1).ratio("c4") for s in (1, 2, 3)]
    assert ratios_s == sorted(ratios_s)
    # growing m shrinks the ratio
    ratios_m = [sd_costs(12, r, m, 2, 1).ratio("c4") for m in (1, 2, 3)]
    assert ratios_m == sorted(ratios_m, reverse=True)


def test_ratio_shrinks_with_z_and_r():
    """Figures 5 and 6: C4/C1 decreases as z or r increases."""
    ratios_z = [sd_costs(12, 16, 2, 3, z).ratio("c4") for z in (1, 2, 3)]
    assert ratios_z == sorted(ratios_z, reverse=True)
    ratios_r = [sd_costs(12, r, 2, 3, 1).ratio("c4") for r in (4, 8, 16, 24)]
    assert ratios_r == sorted(ratios_r, reverse=True)
