"""Unit tests for predicted improvement ratios."""

import pytest

from repro.analysis import ImprovementBreakdown, cost_only_improvement, predicted_improvement
from repro.codes import SDCode
from repro.core import plan_decode
from repro.parallel import E5_2603
from repro.stripes import worst_case_sd


def test_cost_only_improvement_paper_example():
    # C1=35, C4=29 -> 35/29 - 1 = 20.69%
    assert cost_only_improvement(4, 4, 1, 1, 1) == pytest.approx(35 / 29 - 1)


def test_cost_only_improvement_uses_best_sequence():
    """When C2 < C4 the improvement baseline switches to C2."""
    # craft: small n where C2 can win; just assert it is max of the two
    for args in [(6, 16, 1, 1), (8, 16, 3, 3)]:
        from repro.analysis import sd_costs

        costs = sd_costs(*args, 1)
        expected = costs.c1 / min(costs.c2, costs.c4) - 1
        assert cost_only_improvement(*args, 1) == pytest.approx(expected)


def test_predicted_improvement_breakdown():
    code = SDCode(16, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    plan = plan_decode(code, scen.faulty_blocks)
    breakdown = predicted_improvement(plan, E5_2603, threads=4, sector_symbols=1 << 20)
    assert breakdown.total > breakdown.sequential > 0
    assert 0 < breakdown.parallel_share < 1


def test_parallel_share_zero_when_no_gain():
    b = ImprovementBreakdown(sequential=0.0, total=0.0)
    assert b.parallel_share == 0.0
    c = ImprovementBreakdown(sequential=0.2, total=0.1)
    assert c.parallel_share == 0.0  # clamped
