"""Unit tests for the MTTDL reliability analysis."""

import pytest

from repro.analysis import (
    ReliabilityModel,
    mttdl,
    mttdl_improvement,
    rebuild_hours,
)
from repro.codes import SDCode
from repro.core import plan_decode
from repro.parallel import E5_2603
from repro.stripes import worst_case_sd


@pytest.fixture(scope="module")
def plan():
    code = SDCode(12, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    return plan_decode(code, scen.faulty_blocks)


def test_mttdl_basic_scaling():
    model = ReliabilityModel(disk_afr=0.04)
    base = mttdl(12, 2, repair_hours=10.0, model=model)
    faster = mttdl(12, 2, repair_hours=5.0, model=model)
    # halving repair time multiplies MTTDL by 2^f = 4
    assert faster.mttdl_years == pytest.approx(4 * base.mttdl_years)
    # deeper fault tolerance helps enormously
    deeper = mttdl(12, 3, repair_hours=10.0, model=model)
    assert deeper.mttdl_years > base.mttdl_years


def test_mttdl_validation():
    model = ReliabilityModel()
    with pytest.raises(ValueError):
        mttdl(2, 2, 10.0, model)
    with pytest.raises(ValueError):
        mttdl(12, 2, 0.0, model)


def test_rebuild_hours_components(plan):
    compute_only = ReliabilityModel(media_bytes_per_s=0.0, capacity_bytes=1e12)
    with_media = ReliabilityModel(media_bytes_per_s=150e6, capacity_bytes=1e12)
    a = rebuild_hours(plan, E5_2603, 4, compute_only)
    b = rebuild_hours(plan, E5_2603, 4, with_media)
    assert b > a > 0
    media_hours = 1e12 / 150e6 / 3600
    assert b == pytest.approx(a + media_hours)


def test_ppm_rebuild_faster(plan):
    model = ReliabilityModel(media_bytes_per_s=0.0)
    trad = rebuild_hours(plan, E5_2603, 4, model, use_ppm=False)
    ppm = rebuild_hours(plan, E5_2603, 4, model, use_ppm=True)
    assert ppm < trad


def test_mttdl_improvement_compute_bound(plan):
    """With no media floor, PPM's decode gain compounds as (gain)^f."""
    model = ReliabilityModel(media_bytes_per_s=0.0)
    trad, ppm = mttdl_improvement(plan, 12, 2, E5_2603, threads=4, model=model)
    assert ppm.mttdl_years > trad.mttdl_years
    ratio = ppm.mttdl_years / trad.mttdl_years
    time_ratio = trad.repair_hours / ppm.repair_hours
    assert ratio == pytest.approx(time_ratio**2, rel=1e-6)


def test_mttdl_improvement_saturates_with_media_floor(plan):
    """Once rebuilds are disk-bound, decode speed stops mattering much."""
    compute_bound = ReliabilityModel(media_bytes_per_s=0.0)
    disk_bound = ReliabilityModel(media_bytes_per_s=150e6)
    t1, p1 = mttdl_improvement(plan, 12, 2, E5_2603, model=compute_bound)
    t2, p2 = mttdl_improvement(plan, 12, 2, E5_2603, model=disk_bound)
    gain_compute = p1.mttdl_years / t1.mttdl_years
    gain_disk = p2.mttdl_years / t2.mttdl_years
    assert gain_disk < gain_compute
    assert gain_disk >= 1.0
