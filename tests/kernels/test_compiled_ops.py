"""CompiledRegionOps: drop-in equality with the interpreted RegionOps.

Every compiled entry point must produce bit-identical regions AND
identical :class:`~repro.gf.OpCounter` snapshots to the interpreted
path — the compiler may only change *how fast* the answer arrives.
"""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import SequencePolicy
from repro.core.planner import plan_decode
from repro.gf import GF, OpCounter, RegionOps
from repro.kernels import CompiledRegionOps, ProgramCache

WORD_SIZES = [4, 8, 16, 32]


def pair(w):
    """(interpreted, compiled) ops over the same field, fresh counters."""
    field = GF(w)
    return RegionOps(field, OpCounter()), CompiledRegionOps(field, OpCounter())


def random_regions(field, count, length, rng):
    return [
        rng.integers(0, 1 << field.w, size=length, dtype=field.dtype)
        for _ in range(count)
    ]


@pytest.mark.parametrize("w", WORD_SIZES)
def test_matrix_apply_matches_interpreted(w):
    interp, compiled = pair(w)
    rng = np.random.default_rng(w)
    matrix = rng.integers(0, 1 << w, size=(4, 6), dtype=interp.field.dtype)
    regions = random_regions(interp.field, 6, 333, rng)
    expected = interp.matrix_apply(matrix, regions)
    got = compiled.matrix_apply(matrix, regions)
    for g, e in zip(got, expected):
        assert np.array_equal(g, e)
    assert compiled.counter.snapshot() == interp.counter.snapshot()


@pytest.mark.parametrize("w", WORD_SIZES)
def test_matrix_chain_apply_matches_interpreted(w):
    interp, compiled = pair(w)
    rng = np.random.default_rng(w + 10)
    m1 = rng.integers(0, 1 << w, size=(5, 6), dtype=interp.field.dtype)
    m2 = rng.integers(0, 1 << w, size=(3, 5), dtype=interp.field.dtype)
    regions = random_regions(interp.field, 6, 257, rng)
    expected = interp.matrix_chain_apply([m1, m2], regions)
    got = compiled.matrix_chain_apply([m1, m2], regions)
    for g, e in zip(got, expected):
        assert np.array_equal(g, e)
    assert compiled.counter.snapshot() == interp.counter.snapshot()


@pytest.mark.parametrize("w", WORD_SIZES)
def test_linear_combination_matches_interpreted(w):
    interp, compiled = pair(w)
    rng = np.random.default_rng(w + 20)
    coefficients = rng.integers(0, 1 << w, size=5, dtype=interp.field.dtype)
    regions = random_regions(interp.field, 5, 100, rng)
    expected = interp.linear_combination(coefficients, regions)
    got = compiled.linear_combination(coefficients, regions)
    assert np.array_equal(got, expected)
    assert compiled.counter.snapshot() == interp.counter.snapshot()


def test_linear_combination_out_parameter():
    interp, compiled = pair(8)
    rng = np.random.default_rng(3)
    coefficients = np.array([3, 1, 0, 7], dtype=interp.field.dtype)
    regions = random_regions(interp.field, 4, 64, rng)
    out = np.empty_like(regions[0])
    result = compiled.linear_combination(coefficients, regions, out=out)
    assert result is out
    assert np.array_equal(out, interp.linear_combination(coefficients, regions))


def test_linear_combination_zero_coefficients_zero_cost():
    interp, compiled = pair(8)
    rng = np.random.default_rng(4)
    regions = random_regions(interp.field, 3, 32, rng)
    zeros = np.zeros(3, dtype=interp.field.dtype)
    expected = interp.linear_combination(zeros, regions)
    got = compiled.linear_combination(zeros, regions)
    assert np.array_equal(got, expected)
    assert compiled.counter.snapshot() == interp.counter.snapshot()


def test_multidimensional_regions_fall_back_to_interpreted():
    interp, compiled = pair(8)
    rng = np.random.default_rng(5)
    matrix = rng.integers(0, 256, size=(2, 3), dtype=interp.field.dtype)
    regions = [
        rng.integers(0, 256, size=(8, 8), dtype=interp.field.dtype)
        for _ in range(3)
    ]
    expected = interp.matrix_apply(matrix, regions)
    got = compiled.matrix_apply(matrix, regions)
    for g, e in zip(got, expected):
        assert np.array_equal(g, e)
    assert compiled.counter.snapshot() == interp.counter.snapshot()
    assert len(compiled.programs) == 0  # nothing was compiled


def test_program_cache_hits_on_repeat_and_on_equal_content():
    field = GF(8)
    cache = ProgramCache()
    compiled = CompiledRegionOps(field, OpCounter(), programs=cache)
    rng = np.random.default_rng(6)
    matrix = rng.integers(0, 256, size=(3, 4), dtype=field.dtype)
    regions = random_regions(field, 4, 50, rng)
    compiled.matrix_apply(matrix, regions)
    assert (cache.stats.hits, cache.stats.misses) == (0, 1)
    compiled.matrix_apply(matrix, regions)
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)
    # a distinct array object with equal bytes is the same program
    compiled.matrix_apply(matrix.copy(), regions)
    assert (cache.stats.hits, cache.stats.misses) == (2, 1)


def test_program_cache_lru_eviction():
    field = GF(8)
    cache = ProgramCache(maxsize=2)
    compiled = CompiledRegionOps(field, OpCounter(), programs=cache)
    rng = np.random.default_rng(7)
    regions = random_regions(field, 2, 16, rng)
    mats = [
        np.full((1, 2), fill, dtype=field.dtype) for fill in (3, 5, 7)
    ]
    for m in mats:
        compiled.matrix_apply(m, regions)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    compiled.matrix_apply(mats[0], regions)  # evicted -> recompiled
    assert cache.stats.misses == 4


@pytest.mark.parametrize(
    "faulty,policy",
    [
        ((5, 7, 12, 15), SequencePolicy.PAPER),
        ((5, 7, 12, 15), SequencePolicy.NORMAL),
        ((0, 1), SequencePolicy.MATRIX_FIRST),
        ((5, 7, 12, 15, 17, 18), SequencePolicy.PAPER),
    ],
)
def test_run_plan_matches_stage_by_stage_decode(faulty, policy):
    code = SDCode(10, 8, 2, 2)
    plan = plan_decode(code, list(faulty), policy=policy)
    rng = np.random.default_rng(8)
    blocks = {
        b: rng.integers(0, 256, size=128, dtype=code.field.dtype)
        for b in range(code.num_blocks)
        if b not in faulty
    }
    interp = RegionOps(code.field, OpCounter())
    compiled = CompiledRegionOps(code.field, OpCounter())

    got = compiled.run_plan(plan, blocks)
    assert set(got) == set(faulty)
    # interpreted reference: execute the plan's stages by hand
    reference = dict(blocks)
    from repro.core.decoder import _run_rest, _run_traditional
    from repro.core.executor import run_groups_serial

    if plan.uses_partition:
        recovered, _timing = run_groups_serial(plan.groups, reference, interp)
        reference.update(recovered)
        recovered.update(_run_rest(plan, reference, recovered, interp))
    else:
        recovered = _run_traditional(plan, blocks, interp)
    for b in faulty:
        assert np.array_equal(got[b], recovered[b])
    assert compiled.counter.snapshot() == interp.counter.snapshot()


def test_run_plan_program_cache_is_identity_keyed():
    code = SDCode(10, 8, 2, 2)
    plan = plan_decode(code, [5, 7], policy=SequencePolicy.PAPER)
    compiled = CompiledRegionOps(code.field, OpCounter())
    first = compiled.plan_program(plan)
    assert compiled.plan_program(plan) is first
    assert compiled.programs.stats.hits == 1
