"""ProgramExecutor: chunked table-bound execution over 1-D regions."""

import numpy as np
import pytest

from repro.gf import GF, OpCounter, RegionOps
from repro.kernels import ProgramExecutor, lower_matrix

WORD_SIZES = [4, 8, 16, 32]


def random_case(w, rows=3, cols=5, length=257, seed=None):
    field = GF(w)
    rng = np.random.default_rng(w if seed is None else seed)
    matrix = rng.integers(0, 1 << w, size=(rows, cols), dtype=field.dtype)
    regions = [
        rng.integers(0, 1 << w, size=length, dtype=field.dtype)
        for _ in range(cols)
    ]
    return field, matrix, regions


@pytest.mark.parametrize("w", WORD_SIZES)
def test_execute_matches_interpreted_matrix_apply(w):
    field, matrix, regions = random_case(w)
    program = lower_matrix(field, matrix)
    got = ProgramExecutor(field).execute(program, regions)
    expected = RegionOps(field).matrix_apply(matrix, regions)
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert np.array_equal(g, e)


@pytest.mark.parametrize("w", WORD_SIZES)
def test_chunked_execution_equals_unchunked(w):
    field, matrix, regions = random_case(w, length=1000)
    program = lower_matrix(field, matrix)
    whole = ProgramExecutor(field).execute(program, regions)
    # chunk size that does not divide the length exercises the tail chunk
    chunked = ProgramExecutor(field, chunk_symbols=77).execute(program, regions)
    for g, e in zip(chunked, whole):
        assert np.array_equal(g, e)


def test_outs_buffers_are_written_in_place():
    field, matrix, regions = random_case(8)
    program = lower_matrix(field, matrix)
    outs = [np.empty_like(regions[0]) for _ in program.outputs]
    got = ProgramExecutor(field).execute(program, regions, outs=outs)
    assert all(g is o for g, o in zip(got, outs))
    expected = RegionOps(field).matrix_apply(matrix, regions)
    for o, e in zip(outs, expected):
        assert np.array_equal(o, e)


def test_non_contiguous_out_rejected():
    field, matrix, regions = random_case(8)
    program = lower_matrix(field, matrix)
    backing = np.empty((len(regions[0]), 2), dtype=field.dtype)
    outs = [backing[:, 0] for _ in program.outputs]
    with pytest.raises(ValueError, match="C-contiguous"):
        ProgramExecutor(field).execute(program, regions, outs=outs)


def test_input_validation():
    field, matrix, regions = random_case(8)
    program = lower_matrix(field, matrix)
    executor = ProgramExecutor(field)
    with pytest.raises(ValueError, match="input regions"):
        executor.execute(program, regions[:-1])
    short = list(regions)
    short[0] = short[0][:-1]
    with pytest.raises(ValueError, match="equal length"):
        executor.execute(program, short)
    wrong_dtype = list(regions)
    wrong_dtype[0] = wrong_dtype[0].astype(np.uint32)
    with pytest.raises(TypeError, match="dtype"):
        executor.execute(program, wrong_dtype)


def test_field_width_mismatch_rejected():
    field8, matrix, _regions = random_case(8)
    program = lower_matrix(field8, matrix)
    field16 = GF(16)
    regions16 = [np.zeros(8, dtype=field16.dtype) for _ in range(matrix.shape[1])]
    with pytest.raises(ValueError, match="w="):
        ProgramExecutor(field16).execute(program, regions16)


def test_counter_books_model_counts_once():
    field, matrix, regions = random_case(8, length=100)
    program = lower_matrix(field, matrix)
    counter = OpCounter()
    ProgramExecutor(field).execute(program, regions, counter=counter)
    interp_counter = OpCounter()
    RegionOps(field, interp_counter).matrix_apply(matrix, regions)
    assert counter.snapshot() == interp_counter.snapshot()


def test_binding_is_reused_across_calls():
    field, matrix, regions = random_case(8)
    program = lower_matrix(field, matrix)
    executor = ProgramExecutor(field)
    executor.execute(program, regions)
    keys = [key for key in executor._bound if key[0] == id(program)]
    assert keys  # bound at least once (for whichever backend ran)
    before = {key: executor._bound[key] for key in keys}
    executor.execute(program, regions)
    for key, entry in before.items():
        assert executor._bound[key] is entry


def test_rejects_nonpositive_chunk():
    with pytest.raises(ValueError, match="chunk_symbols"):
        ProgramExecutor(GF(8), chunk_symbols=0)
