"""Lowering: matrices, chains and whole decode plans to RegionPrograms."""

import numpy as np
import pytest

from repro.codes import LRCCode, RSCode, SDCode
from repro.core import SequencePolicy
from repro.core.planner import plan_decode
from repro.gf import GF
from repro.kernels import (
    lower_linear_combination,
    lower_matrix,
    lower_matrix_chain,
    lower_plan,
)
from repro.verify import expected_transfer, transfer_matrix

WORD_SIZES = [4, 8, 16, 32]


def random_matrix(field, rows, cols, rng):
    return rng.integers(0, 1 << field.w, size=(rows, cols), dtype=field.dtype)


@pytest.mark.parametrize("w", WORD_SIZES)
def test_lower_matrix_transfer_and_model_counts(w):
    field = GF(w)
    rng = np.random.default_rng(w)
    matrix = random_matrix(field, 3, 5, rng)
    program = lower_matrix(field, matrix)
    assert program.w == w
    assert program.num_inputs == 5
    assert len(program.outputs) == 3
    assert np.array_equal(transfer_matrix(program, field), matrix)
    assert program.mult_xors == int(np.count_nonzero(matrix))
    assert program.xor_only == int(np.count_nonzero(matrix == 1))


def test_lower_matrix_rejects_bad_shapes():
    field = GF(8)
    with pytest.raises(ValueError, match="2-D"):
        lower_matrix(field, np.zeros(4, dtype=field.dtype))
    with pytest.raises(ValueError, match="zero input columns"):
        lower_matrix(field, np.zeros((2, 0), dtype=field.dtype))


def test_lower_matrix_zero_rows_emit_zero_outputs():
    field = GF(8)
    matrix = np.array([[0, 0], [3, 0]], dtype=field.dtype)
    program = lower_matrix(field, matrix)
    expected = np.array([[0, 0], [3, 0]], dtype=field.dtype)
    assert np.array_equal(transfer_matrix(program, field), expected)


@pytest.mark.parametrize("w", WORD_SIZES)
def test_lower_matrix_chain_equals_gf_product(w):
    field = GF(w)
    rng = np.random.default_rng(w + 1)
    m1 = random_matrix(field, 4, 6, rng)
    m2 = random_matrix(field, 3, 4, rng)
    program = lower_matrix_chain(field, [m1, m2])
    # transfer of (m1 then m2) is the field product m2 @ m1
    expected = np.zeros((3, 6), dtype=field.dtype)
    for i in range(3):
        for j in range(6):
            acc = field.dtype.type(0)
            for k in range(4):
                acc ^= field.mul(m2[i, k], m1[k, j])
            expected[i, j] = acc
    assert np.array_equal(transfer_matrix(program, field), expected)
    assert program.mult_xors == int(np.count_nonzero(m1)) + int(
        np.count_nonzero(m2)
    )


def test_lower_matrix_chain_rejects_empty_and_mismatched():
    field = GF(8)
    with pytest.raises(ValueError, match="empty matrix chain"):
        lower_matrix_chain(field, [])
    m1 = np.ones((2, 3), dtype=field.dtype)
    m2 = np.ones((2, 4), dtype=field.dtype)  # needs 2 inputs, not 4
    with pytest.raises(ValueError, match="incompatible"):
        lower_matrix_chain(field, [m1, m2])


def test_lower_linear_combination_is_single_row():
    field = GF(8)
    coefficients = np.array([3, 0, 1, 7], dtype=field.dtype)
    program = lower_linear_combination(field, coefficients)
    assert len(program.outputs) == 1
    assert np.array_equal(
        transfer_matrix(program, field), coefficients.reshape(1, -1)
    )
    assert program.mult_xors == 3
    assert program.xor_only == 1
    with pytest.raises(ValueError, match="1-D"):
        lower_linear_combination(field, coefficients.reshape(2, 2))


def scenarios():
    sd = SDCode(10, 8, 2, 2)
    yield sd, (5, 7, 12, 15), SequencePolicy.PAPER
    yield sd, (5, 7, 12, 15), SequencePolicy.NORMAL
    yield sd, (0, 1), SequencePolicy.MATRIX_FIRST
    yield RSCode(8, 4), (0, 3), SequencePolicy.PAPER
    yield LRCCode(8, 2, 2), (0, 9), SequencePolicy.PAPER


@pytest.mark.parametrize("code,faulty,policy", list(scenarios()))
def test_lower_plan_matches_plan_semantics(code, faulty, policy):
    plan = plan_decode(code, list(faulty), policy=policy)
    compiled = lower_plan(code.field, plan)
    program = compiled.program
    assert compiled.output_ids == tuple(plan.faulty_ids)
    assert not set(compiled.input_ids) & set(plan.faulty_ids)
    assert program.mult_xors == plan.predicted_cost
    assert np.array_equal(
        transfer_matrix(program, code.field),
        expected_transfer(code.field, plan, compiled.input_ids),
    )


def test_lower_plan_unoptimized_agrees_with_optimized():
    code = SDCode(10, 8, 2, 2)
    plan = plan_decode(code, [5, 7, 12, 15], policy=SequencePolicy.PAPER)
    opt = lower_plan(code.field, plan, optimize=True)
    raw = lower_plan(code.field, plan, optimize=False, share=False)
    assert np.array_equal(
        transfer_matrix(opt.program, code.field),
        transfer_matrix(raw.program, code.field),
    )
    assert opt.program.mult_xors == raw.program.mult_xors
    assert opt.program.pool_size <= raw.program.pool_size
