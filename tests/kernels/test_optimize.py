"""Optimisation passes: pair CSE, dead-code elimination, slot compaction.

Semantic preservation is checked with the symbolic transfer matrix from
:mod:`repro.verify.program` — an optimised program must compute exactly
the same GF(2^w) linear map as the program it came from.
"""

import numpy as np

from repro.gf import GF
from repro.kernels import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    RegionProgram,
    compact_slots,
    eliminate_dead,
    lower_matrix,
    optimize_program,
    share_pairs,
)
from repro.verify import transfer_matrix


def test_share_pairs_materialises_common_pair():
    # rows 0 and 1 share the pair ((0,3),(1,5)); row 2 shares nothing
    rows = [
        [(0, 3), (1, 5), (2, 1)],
        [(0, 3), (1, 5)],
        [(0, 7)],
    ]
    pair_defs, rewritten, next_slot = share_pairs(rows, next_slot=4)
    assert pair_defs == [(4, ((0, 3), (1, 5)))]
    assert next_slot == 5
    assert rewritten[0] == [(2, 1), (4, 1)]
    assert rewritten[1] == [(4, 1)]
    assert rewritten[2] == [(0, 7)]


def test_share_pairs_tie_break_is_smallest_pair():
    # both pairs appear twice; the lexicographically smallest wins first
    rows = [
        [(0, 2), (1, 2)],
        [(0, 2), (1, 2)],
        [(0, 2), (2, 2)],
        [(0, 2), (2, 2)],
    ]
    pair_defs, _rewritten, _next = share_pairs(rows, next_slot=3)
    assert pair_defs[0][1] == ((0, 2), (1, 2))
    assert len(pair_defs) == 2


def test_share_pairs_unique_pairs_untouched():
    rows = [[(0, 3), (1, 5)], [(0, 9), (1, 11)]]
    pair_defs, rewritten, next_slot = share_pairs(rows, next_slot=2)
    assert pair_defs == []
    assert rewritten == [sorted(r) for r in rows]
    assert next_slot == 2


def test_eliminate_dead_drops_unread_definition():
    program = RegionProgram(
        w=8,
        num_inputs=1,
        pool_size=3,
        instructions=(
            (OP_MUL, 1, 0, 5),  # dead: never read, not an output
            (OP_MUL, 2, 0, 7),
        ),
        outputs=(2,),
        mult_xors=2,
        xor_only=0,
    )
    slim = eliminate_dead(program)
    assert slim.instructions == ((OP_MUL, 2, 0, 7),)
    # model counts are untouched by optimisation
    assert slim.mult_xors == 2


def test_eliminate_dead_keeps_accumulation_chains():
    program = RegionProgram(
        w=8,
        num_inputs=2,
        pool_size=3,
        instructions=(
            (OP_MUL, 2, 0, 5),
            (OP_MULXOR, 2, 1, 7),
        ),
        outputs=(2,),
        mult_xors=2,
        xor_only=0,
    )
    assert eliminate_dead(program).instructions == program.instructions


def test_compact_slots_reuses_dead_temporaries():
    # t=2 dies after feeding t=3; t=4 should reuse its id
    program = RegionProgram(
        w=8,
        num_inputs=1,
        pool_size=5,
        instructions=(
            (OP_MUL, 2, 0, 5),
            (OP_MUL, 3, 2, 7),  # last read of 2
            (OP_MUL, 4, 3, 9),
        ),
        outputs=(4,),
        mult_xors=3,
        xor_only=0,
    )
    packed = compact_slots(program)
    packed.validate()
    assert packed.pool_size < program.pool_size
    field = GF(8)
    assert np.array_equal(
        transfer_matrix(packed, field), transfer_matrix(program, field)
    )


def test_compact_slots_never_recycles_output_slots():
    program = RegionProgram(
        w=8,
        num_inputs=1,
        pool_size=4,
        instructions=(
            (OP_MUL, 2, 0, 5),  # an output, read later
            (OP_MUL, 3, 2, 7),  # also an output
        ),
        outputs=(2, 3),
        mult_xors=2,
        xor_only=0,
    )
    packed = compact_slots(program)
    packed.validate()
    assert len(set(packed.outputs)) == 2
    field = GF(8)
    assert np.array_equal(
        transfer_matrix(packed, field), transfer_matrix(program, field)
    )


def test_optimize_program_preserves_semantics_on_random_matrices():
    rng = np.random.default_rng(7)
    field = GF(8)
    for _ in range(10):
        matrix = rng.integers(0, 256, size=(4, 6), dtype=field.dtype)
        raw = lower_matrix(field, matrix, optimize=False)
        slim = optimize_program(raw)
        slim.validate()
        assert np.array_equal(
            transfer_matrix(slim, field), transfer_matrix(raw, field)
        )
        assert slim.pool_size <= raw.pool_size
        assert (slim.mult_xors, slim.xor_only) == (raw.mult_xors, raw.xor_only)


def test_shared_pairs_reduce_executed_ops_but_not_model_counts():
    field = GF(8)
    # every row contains the pair (col0 * 3, col1 * 5)
    matrix = np.array(
        [[3, 5, 1], [3, 5, 2], [3, 5, 4]], dtype=field.dtype
    )
    shared = lower_matrix(field, matrix, share=True)
    unshared = lower_matrix(field, matrix, share=False)
    assert shared.mult_xors == unshared.mult_xors == 9
    assert shared.executed_ops < unshared.executed_ops
    assert np.array_equal(
        transfer_matrix(shared, field), transfer_matrix(unshared, field)
    )
