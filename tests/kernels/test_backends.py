"""Executor backends: registry, selection, equivalence, fallback.

The contract under test: every registered backend is byte-identical to
the numpy baseline on every program it supports; a backend that raises
at runtime is quarantined and the execution silently replays on the
baseline; a misaligned caller buffer bypasses (no quarantine).  The
cross-backend equivalence sweep is hypothesis-driven across all word
sizes, including odd region lengths (paired-gather tail paths).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF, RegionOps
from repro.kernels import (
    BACKEND_CHOICES,
    BASELINE_BACKEND,
    ProgramExecutor,
    available_backends,
    default_backend,
    get_backend,
    lower_matrix,
    numba_available,
    register_backend,
    set_default_backend,
    unregister_backend,
)
from repro.kernels.backends import ExecutorBackend

WORD_SIZES = [4, 8, 16, 32]


def matrix_case(w, rows=3, cols=5, length=257, seed=None):
    field = GF(w)
    rng = np.random.default_rng(w if seed is None else seed)
    matrix = rng.integers(0, 1 << w, size=(rows, cols), dtype=field.dtype)
    regions = [
        rng.integers(0, 1 << w, size=length, dtype=field.dtype)
        for _ in range(cols)
    ]
    return field, matrix, regions


class TestRegistry:
    def test_baseline_registered_first(self):
        names = available_backends()
        assert names[0] == BASELINE_BACKEND
        assert "bitsliced" in names
        assert "splittab" in names

    def test_numba_registered_iff_available(self):
        assert ("numba" in available_backends()) == numba_available()

    def test_choices_cover_registry(self):
        assert "auto" in BACKEND_CHOICES
        for name in available_backends():
            assert name in BACKEND_CHOICES

    def test_get_backend_unknown_raises(self):
        with pytest.raises(KeyError, match="no executor backend"):
            get_backend("nonesuch")

    def test_baseline_cannot_be_unregistered(self):
        with pytest.raises(ValueError):
            unregister_backend(BASELINE_BACKEND)

    def test_register_unregister_roundtrip(self):
        class Dummy(ExecutorBackend):
            name = "dummy-roundtrip"

            def supports(self, field, program):
                return False

        backend = Dummy()
        register_backend(backend)
        try:
            assert get_backend("dummy-roundtrip") is backend
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Dummy())
        finally:
            unregister_backend("dummy-roundtrip")
        assert "dummy-roundtrip" not in available_backends()

    def test_executor_rejects_unknown_backend(self):
        with pytest.raises(KeyError):
            ProgramExecutor(GF(8), backend="nonesuch")


class TestSupports:
    @pytest.mark.parametrize("w", WORD_SIZES)
    def test_width_support_matrix(self, w):
        field, matrix, _ = matrix_case(w)
        program = lower_matrix(field, matrix)
        assert get_backend("numpy").supports(field, program)
        assert get_backend("bitsliced").supports(field, program) == (w in (4, 8))
        assert get_backend("splittab").supports(field, program) == (w in (16, 32))

    def test_unsupported_forced_backend_uses_baseline(self):
        # forcing splittab on a w=8 program silently runs the baseline
        field, matrix, regions = matrix_case(8)
        program = lower_matrix(field, matrix)
        executor = ProgramExecutor(field, backend="splittab")
        got = executor.execute(program, regions)
        expected = RegionOps(field).matrix_apply(matrix, regions)
        for g, e in zip(got, expected):
            assert np.array_equal(g, e)
        assert executor.stats()["backends"].keys() == {BASELINE_BACKEND}


class TestCrossBackendEquivalence:
    """Every backend must be byte-identical to the baseline."""

    @settings(max_examples=40, deadline=None)
    @given(
        w=st.sampled_from(WORD_SIZES),
        rows=st.integers(1, 5),
        cols=st.integers(1, 6),
        # odd lengths exercise the paired-gather scalar tails; tiny
        # lengths exercise the sub-pair edge
        length=st.integers(1, 513),
        seed=st.integers(0, 2**31),
    )
    def test_backends_match_baseline(self, w, rows, cols, length, seed):
        field = GF(w)
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 1 << w, size=(rows, cols), dtype=field.dtype)
        regions = [
            rng.integers(0, 1 << w, size=length, dtype=field.dtype)
            for _ in range(cols)
        ]
        program = lower_matrix(field, matrix)
        expected = ProgramExecutor(field, backend=BASELINE_BACKEND).execute(
            program, regions
        )
        for name in available_backends():
            if name == BASELINE_BACKEND:
                continue
            if not get_backend(name).supports(field, program):
                continue
            got = ProgramExecutor(field, backend=name).execute(program, regions)
            for g, e in zip(got, expected):
                assert np.array_equal(g, e), (name, w, length)

    @pytest.mark.parametrize("w", [4, 8])
    def test_bitsliced_odd_and_even_lengths(self, w):
        for length in (1, 2, 3, 255, 256, 257):
            field, matrix, regions = matrix_case(w, length=length, seed=length)
            program = lower_matrix(field, matrix)
            got = ProgramExecutor(field, backend="bitsliced").execute(
                program, regions
            )
            expected = RegionOps(field).matrix_apply(matrix, regions)
            for g, e in zip(got, expected):
                assert np.array_equal(g, e), length


class _ExplodingBackend(ExecutorBackend):
    """Supports everything, binds fine, dies on first chunk."""

    name = "exploding"

    def supports(self, field, program):
        return True

    def bind(self, field, program):
        return tuple(program.instructions)

    def execute_chunk(self, bound, pool, n, scratch):
        raise RuntimeError("synthetic mid-execution failure")


class TestFallbackAndQuarantine:
    def test_runtime_failure_falls_back_and_quarantines(self):
        field, matrix, regions = matrix_case(8)
        program = lower_matrix(field, matrix)
        register_backend(_ExplodingBackend())
        try:
            executor = ProgramExecutor(field, backend="exploding")
            got = executor.execute(program, regions)
            expected = RegionOps(field).matrix_apply(matrix, regions)
            for g, e in zip(got, expected):
                assert np.array_equal(g, e)
            stats = executor.stats()
            assert stats["backend_fallbacks"] == 1
            assert executor.tuning.is_quarantined("exploding")
            # tallied under the backend that actually completed
            assert BASELINE_BACKEND in stats["backends"]
            assert "exploding" not in stats["backends"]
            # second execution skips the quarantined backend entirely
            executor.execute(program, regions)
            assert executor.stats()["backend_fallbacks"] == 1
        finally:
            unregister_backend("exploding")

    def test_quarantine_voids_recorded_wins(self):
        field, matrix, regions = matrix_case(8)
        program = lower_matrix(field, matrix)
        executor = ProgramExecutor(field, backend="auto")
        executor.execute(program, regions)
        choices = executor.tuning.choices()
        assert choices, "auto-tune should record a winner"
        key, winner = next(iter(choices.items()))
        executor.tuning.quarantine(winner)
        assert executor.tuning.choice(key) is None

    def test_alignment_error_bypasses_without_quarantine(self):
        from repro.kernels.backends import RegionAlignmentError

        class Picky(ExecutorBackend):
            """Raises the alignment signal once, then executes fine."""

            name = "picky-alignment"

            def __init__(self):
                super().__init__()
                self.raised = False

            def supports(self, field, program):
                return True

            def bind(self, field, program):
                return get_backend(BASELINE_BACKEND).bind(field, program)

            def execute_chunk(self, bound, pool, n, scratch):
                if not self.raised:
                    self.raised = True
                    raise RegionAlignmentError("synthetic misaligned buffer")
                get_backend(BASELINE_BACKEND).execute_chunk(
                    bound, pool, n, scratch
                )

        field, matrix, regions = matrix_case(8)
        program = lower_matrix(field, matrix)
        expected = RegionOps(field).matrix_apply(matrix, regions)
        register_backend(Picky())
        try:
            executor = ProgramExecutor(field, backend="picky-alignment")
            got = executor.execute(program, regions)
            for g, e in zip(got, expected):
                assert np.array_equal(g, e)
            stats = executor.stats()
            assert stats["backend_bypasses"] == 1
            assert stats["backend_fallbacks"] == 0
            assert not executor.tuning.is_quarantined("picky-alignment")
            # the very next call uses the backend again (no sticky state)
            executor.execute(program, regions)
            stats = executor.stats()
            assert stats["backend_bypasses"] == 1
            assert "picky-alignment" in stats["backends"]
        finally:
            unregister_backend("picky-alignment")

    def test_bitsliced_handles_unaligned_buffers(self):
        # whether numpy accepts the unaligned uint16 view (executing
        # bitsliced) or refuses it (alignment bypass to the baseline),
        # the results must be correct and nothing gets quarantined
        field = GF(8)
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 256, size=(2, 3), dtype=np.uint8)
        program = lower_matrix(field, matrix)
        length = 64
        regions = []
        for _ in range(3):
            raw = bytearray(length + 1)
            view = np.frombuffer(raw, dtype=np.uint8, offset=1)  # odd pointer
            view[:] = rng.integers(0, 256, size=length, dtype=np.uint8)
            regions.append(view)
        executor = ProgramExecutor(field, backend="bitsliced")
        got = executor.execute(program, regions)
        expected = RegionOps(field).matrix_apply(matrix, regions)
        for g, e in zip(got, expected):
            assert np.array_equal(g, e)
        assert executor.stats()["backend_fallbacks"] == 0
        assert not executor.tuning.is_quarantined("bitsliced")


class TestDefaultBackendOverride:
    def test_process_default_applies_to_auto_executors(self):
        field, matrix, regions = matrix_case(8)
        program = lower_matrix(field, matrix)
        previous = default_backend()
        set_default_backend("bitsliced")
        try:
            executor = ProgramExecutor(field)
            executor.execute(program, regions)
            assert executor.stats()["backends"].keys() == {"bitsliced"}
        finally:
            set_default_backend(previous)

    def test_set_default_rejects_unknown(self):
        with pytest.raises((KeyError, ValueError)):
            set_default_backend("nonesuch")


class TestStatsAccounting:
    def test_per_backend_split_sums_to_totals(self):
        field, matrix, regions = matrix_case(8)
        program = lower_matrix(field, matrix)
        executor = ProgramExecutor(field, backend=BASELINE_BACKEND)
        for _ in range(3):
            executor.execute(program, regions)
        stats = executor.stats()
        assert stats["executions"] == 3
        per_backend = stats["backends"][BASELINE_BACKEND]
        assert per_backend["executions"] == 3
        assert per_backend["symbols"] == stats["symbols"]
