"""RegionProgram IR: structural invariants and derived properties."""

import pytest

from repro.kernels import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    RegionProgram,
)


def make(instructions, *, num_inputs=2, pool_size=4, outputs=(2,), w=8,
         mult_xors=0, xor_only=0):
    return RegionProgram(
        w=w,
        num_inputs=num_inputs,
        pool_size=pool_size,
        instructions=tuple(instructions),
        outputs=tuple(outputs),
        mult_xors=mult_xors,
        xor_only=xor_only,
    )


def test_valid_program_and_derived_counts():
    program = make(
        [
            (OP_MUL, 2, 0, 5),
            (OP_MULXOR, 2, 1, 7),
            (OP_COPY, 3, 2, 1),
            (OP_XOR, 3, 0, 1),
        ],
        outputs=(2, 3),
        mult_xors=4,
        xor_only=1,
    )
    program.validate()
    assert program.gathers == 2  # MUL + MULXOR
    assert program.xors == 2  # XOR + MULXOR
    assert program.executed_ops == 4
    assert program.constants == (5, 7)


def test_zero_copy_chain_validates():
    program = make([(OP_ZERO, 2, -1, 0), (OP_COPY, 3, 2, 1)], outputs=(3,))
    program.validate()
    assert program.constants == ()


def test_dst_in_input_range_rejected():
    with pytest.raises(ValueError, match="outside temp/output range"):
        make([(OP_COPY, 0, 1, 1)]).validate()


def test_src_out_of_range_rejected():
    with pytest.raises(ValueError, match="out of range"):
        make([(OP_COPY, 2, 9, 1)]).validate()


def test_src_aliasing_dst_rejected():
    with pytest.raises(ValueError, match="aliases"):
        make([(OP_ZERO, 2, -1, 0), (OP_XOR, 2, 2, 1)]).validate()


def test_read_before_definition_rejected():
    with pytest.raises(ValueError, match="read before definition"):
        make([(OP_COPY, 2, 3, 1)], outputs=(2,)).validate()


def test_accumulate_into_undefined_slot_rejected():
    with pytest.raises(ValueError, match="accumulate into undefined"):
        make([(OP_XOR, 2, 0, 1)]).validate()


@pytest.mark.parametrize("const", [0, 1, 256])
def test_mul_constant_out_of_range_rejected(const):
    with pytest.raises(ValueError, match="constant"):
        make([(OP_MUL, 2, 0, const)], w=8).validate()


def test_wide_field_admits_wide_constants():
    make([(OP_MUL, 2, 0, 40_000)], w=16).validate()


def test_undefined_output_rejected():
    with pytest.raises(ValueError, match="never defined"):
        make([(OP_COPY, 2, 0, 1)], outputs=(3,)).validate()


def test_input_slot_may_be_an_output():
    # a plan whose faulty block equals a survivor cannot occur, but the
    # IR itself permits passthrough outputs (defined := inputs)
    make([], outputs=(0,)).validate()


def test_unknown_opcode_rejected():
    with pytest.raises(ValueError, match="unknown opcode"):
        make([(9, 2, 0, 1)]).validate()


def test_pool_smaller_than_inputs_rejected():
    with pytest.raises(ValueError, match="pool_size"):
        make([], num_inputs=4, pool_size=2, outputs=(0,)).validate()


def test_no_inputs_rejected():
    with pytest.raises(ValueError, match="at least one input"):
        make([], num_inputs=0, pool_size=1, outputs=()).validate()
