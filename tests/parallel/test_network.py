"""Unit tests for the distributed-repair network model."""

import pytest

from repro.codes import LRCCode, RSCode
from repro.core import plan_decode
from repro.parallel import (
    E5_2603,
    NetworkModel,
    compare_repair_bills,
    default_placement,
    repair_bill,
)

SECTOR = 1 << 20  # 1 MB blocks


def test_default_placement_one_node_per_disk():
    lrc = LRCCode(6, 2, 2)
    placement = default_placement(lrc)
    assert placement == {b: b for b in range(lrc.n)}  # r == 1


def test_lrc_local_repair_bill():
    lrc = LRCCode(12, 4, 2)
    plan = plan_decode(lrc, [0])
    bill = repair_bill(lrc, plan, SECTOR, E5_2603)
    # group 0 = {0,1,2} + local parity: 3 remote blocks from 3 nodes
    assert bill.network_bytes == 3 * SECTOR
    assert bill.remote_nodes == 3
    assert bill.transfer_seconds > 0
    assert bill.compute_seconds > 0


def test_rs_repair_ships_more():
    rs = RSCode(16, 12, r=1)
    lrc = LRCCode(12, 4, 2)
    bills = compare_repair_bills(
        [
            ("rs", rs, plan_decode(rs, [0])),
            ("lrc", lrc, plan_decode(lrc, [0])),
        ],
        SECTOR,
        E5_2603,
    )
    assert bills["rs"].network_bytes > bills["lrc"].network_bytes
    assert bills["rs"].total_seconds > bills["lrc"].total_seconds


def test_local_blocks_are_free():
    """Survivors on the repair node itself cost no network."""
    lrc = LRCCode(12, 4, 2)
    plan = plan_decode(lrc, [0])
    # co-locate everything on the repair node
    placement = {b: 99 for b in range(lrc.n)}
    bill = repair_bill(lrc, plan, SECTOR, E5_2603, placement=placement, repair_node=99)
    assert bill.network_bytes == 0
    assert bill.remote_nodes == 0
    assert bill.transfer_seconds == 0.0


def test_parallel_fetch_waves():
    lrc = LRCCode(12, 4, 2)
    plan = plan_decode(lrc, [0])
    serial_net = NetworkModel(parallel_fetch=1)
    wide_net = NetworkModel(parallel_fetch=8)
    slow = repair_bill(lrc, plan, SECTOR, E5_2603, network=serial_net)
    fast = repair_bill(lrc, plan, SECTOR, E5_2603, network=wide_net)
    # 3 remote nodes: 3 latency waves vs 1
    assert slow.transfer_seconds > fast.transfer_seconds


def test_bandwidth_scales_transfer():
    lrc = LRCCode(12, 4, 2)
    plan = plan_decode(lrc, [0])
    fast = repair_bill(
        lrc, plan, SECTOR, E5_2603, network=NetworkModel(bandwidth_bytes_per_s=1e10)
    )
    slow = repair_bill(
        lrc, plan, SECTOR, E5_2603, network=NetworkModel(bandwidth_bytes_per_s=1e8)
    )
    assert slow.transfer_seconds > fast.transfer_seconds
    assert slow.network_bytes == fast.network_bytes
