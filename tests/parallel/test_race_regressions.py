"""Regression tests for the races the PPM010-013 analyzer surfaced.

Each test hammers one of the fixed structures from many threads and
asserts the invariant the fix restored.  Before the fixes these were
actual data races (unlocked OrderedDict reorders, WeakSet mutation,
lost-update tallies); with GIL scheduling they fail only
probabilistically, so the tests assert *accounting* invariants — counts
that add up exactly — which lost updates break reliably at this
iteration volume.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.codes import get_code
from repro.core.decoder import PPMDecoder
from repro.core.sequences import SequencePolicy
from repro.gf import GF
from repro.kernels import ProgramCache
from repro.kernels.executor import ProgramExecutor
from repro.kernels.lower import lower_matrix
from repro.pipeline import DecodePipeline
from repro.pipeline.plancache import PlanCache
from repro.pipeline.pool import live_pools, make_pool
from repro.repair.scrubber import StoreScrubber
from repro.service.store import BlobStore
from repro.stripes import DiskArray

THREADS = 8
ROUNDS = 200


def hammer(fn, threads=THREADS):
    """Run ``fn(i)`` concurrently from ``threads`` threads."""
    barrier = threading.Barrier(threads)

    def wrapped(i):
        barrier.wait()
        return fn(i)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(wrapped, i) for i in range(threads)]
        return [f.result() for f in futures]


@pytest.fixture
def code():
    return get_code("rs", n=6, k=4)


class TestPlanCacheLocking:
    def test_concurrent_gets_account_exactly(self, code):
        cache = PlanCache(maxsize=64)
        patterns = [(0,), (1,), (2,), (0, 1), (1, 2)]

        def worker(_i):
            for r in range(ROUNDS):
                cache.get(code, patterns[r % len(patterns)], SequencePolicy.PAPER)

        hammer(worker)
        stats = cache.stats
        # every lookup is either a hit or a miss — lost updates break this
        assert stats.hits + stats.misses == THREADS * ROUNDS
        # double-checked insert keeps one entry per pattern
        assert stats.evictions == 0
        assert len(cache) == len(patterns)

    def test_same_plan_returned_across_threads(self, code):
        cache = PlanCache(maxsize=8)
        plans = hammer(lambda _i: cache.get(code, (1,), SequencePolicy.PAPER))
        assert len({id(p) for p in plans}) == 1


class TestProgramCacheAdmission:
    def test_concurrent_misses_verify_and_account(self, code):
        cache = ProgramCache(maxsize=32)
        h = code.H.array

        def worker(_i):
            for _ in range(50):
                cache.matrix_program(code.field, h)

        hammer(worker)
        assert cache.stats.hits + cache.stats.misses == THREADS * 50
        assert len(cache) == 1


class TestExecutorSmallTables:
    def test_w4_table_cache_single_instance(self):
        from repro.kernels.backends import get_backend

        field = GF(4)
        executor = ProgramExecutor(field, backend="numpy")
        rng = np.random.default_rng(7)
        matrix = rng.integers(1, 16, size=(3, 4), dtype=field.dtype)
        program = lower_matrix(field, matrix)
        inputs = [
            rng.integers(0, 16, size=64, dtype=field.dtype) for _ in range(4)
        ]
        outs = hammer(lambda _i: [executor.execute(program, inputs) for _ in range(20)])
        # all threads agree on the result and the tables were built once
        first = outs[0][0]
        for result_list in outs:
            for result in result_list:
                for a, b in zip(first, result):
                    np.testing.assert_array_equal(a, b)
        baseline = get_backend("numpy")
        for const in program.constants:
            table = baseline._tables.get((4, field.polynomial, const))
            assert table is not None and not table.flags.writeable


class TestLivePoolRegistry:
    def test_concurrent_spawn_close_keeps_registry_consistent(self):
        pools = [make_pool("thread", 1) for _ in range(THREADS)]

        def worker(i):
            pool = pools[i]
            for _ in range(50):
                pool.submit(lambda: None).result()
                pool.close()

        hammer(worker)
        for pool in pools:
            pool.close()
        assert all(p not in live_pools() for p in pools)


class TestScrubberSerialization:
    def test_overlapping_scans_never_lose_counts(self, code):
        store = BlobStore.build(code, num_stripes=12, sector_symbols=16, rng=3)
        scrubber = StoreScrubber(store)

        def worker(i):
            scanned = 0
            for _ in range(20):
                if i % 2:
                    scanned += scrubber.scan_chunk(3).scanned
                else:
                    scanned += scrubber.scan_full_pass().scanned
            return scanned

        totals = hammer(worker, threads=4)
        # the tally must equal exactly the sum of what the scans reported
        assert scrubber.stripes_scrubbed == sum(totals)


class TestPipelineTallies:
    def test_concurrent_decode_batches_account_exactly(self, code):
        array = DiskArray(code, num_stripes=4, sector_symbols=32, rng=11)
        stripes = array.stripes
        for stripe in stripes:
            stripe.erase([1])
        pipeline = DecodePipeline(workers=2, pool="thread")

        def worker(_i):
            for _ in range(10):
                pipeline.decode_batch(code, stripes)

        hammer(worker, threads=4)
        metrics = pipeline.metrics()
        assert metrics.batches == 4 * 10
        assert metrics.stripes == 4 * 10 * len(stripes)
        pipeline.close()


class TestDecoderCaches:
    def test_shared_decoder_plans_once_per_pattern(self, code):
        decoder = PPMDecoder()
        plans = hammer(lambda _i: [decoder.plan(code, (1,)) for _ in range(50)])
        flat = [p for sub in plans for p in sub]
        assert len({id(p) for p in flat}) == 1
        ops = hammer(lambda _i: decoder.ops_for(code.field))
        assert len({id(o) for o in ops}) == 1


class TestBlobStoreWrites:
    def test_concurrent_writes_stay_consistent(self, code):
        store = BlobStore.build(code, num_stripes=4, sector_symbols=16, rng=5)
        region = store.read(0, 0).copy()

        def worker(i):
            for _ in range(50):
                store.write(i % 4, 0, region)
                store.snapshot_blocks(i % 4)

        hammer(worker, threads=4)
        for sid in range(4):
            assert store.verify_block(sid, 0, store.read(sid, 0))


class TestLatencyTrackerLocking:
    """The hedge trigger's EWMA/ring state mutates from every gather
    thread; lost updates would skew the trigger silently, so the
    accounting must stay exact under contention."""

    def test_concurrent_observes_account_exactly(self):
        from repro.pipeline import LatencyTracker

        tracker = LatencyTracker(window=THREADS * ROUNDS + 1)
        keys = ("a", "b", "c")

        def worker(i):
            for r in range(ROUNDS):
                tracker.observe(keys[r % len(keys)], 0.001 * (i + 1))

        hammer(worker)
        # window is wide enough that every observation survives: a lost
        # ring append or dropped EWMA update breaks the totals
        total = sum(tracker.samples(k) for k in keys)
        assert total == THREADS * ROUNDS
        for key in keys:
            assert tracker.ewma(key) is not None
            assert tracker.percentile(key, 0.5) is not None

    def test_window_bound_holds_under_contention(self):
        from repro.pipeline import LatencyTracker

        tracker = LatencyTracker(window=16)

        def worker(_i):
            for _ in range(ROUNDS):
                tracker.observe("k", 0.001)
                tracker.hedge_after("k", min_samples=1)

        hammer(worker)
        assert tracker.samples("k") == 16  # never exceeds the window

    def test_hedge_tallies_account_exactly(self):
        """The engine's _hedges/_hedge_wins/_verify_rejects counters sit
        behind _tally_lock; hammer the lock path via metrics snapshots
        taken while tallies mutate."""
        pipe = DecodePipeline(pool="serial")

        def worker(_i):
            for _ in range(ROUNDS):
                with pipe._tally_lock:
                    pipe._hedges += 1
                    pipe._hedge_wins += 1
                    pipe._verify_rejects += 1
                pipe.metrics()

        try:
            hammer(worker)
            metrics = pipe.metrics()
        finally:
            pipe.close()
        assert metrics.hedges == THREADS * ROUNDS
        assert metrics.hedge_wins == THREADS * ROUNDS
        assert metrics.verify_rejects == THREADS * ROUNDS
