"""Unit tests for host calibration."""

import pytest

from repro.parallel import (
    E5_2603,
    host_profile,
    measure_spawn_overhead,
    measure_throughput,
    scaled_paper_profile,
)


def test_measure_throughput_positive():
    tput = measure_throughput(w=8, region_symbols=1 << 14, repeats=3)
    assert tput > 1e5  # even a slow interpreter beats 100k symbol-ops/s


def test_measure_spawn_overhead_positive():
    overhead = measure_spawn_overhead(threads=2, repeats=2)
    assert 0 < overhead < 1.0


def test_host_profile_cached():
    a = host_profile(w=8)
    b = host_profile(w=8)
    assert a is b
    assert a.cores >= 1
    assert a.base_throughput > 0


def test_host_profile_refresh():
    a = host_profile(w=8)
    b = host_profile(w=8, refresh=True)
    assert b is host_profile(w=8)
    assert b.name == a.name


def test_scaled_paper_profile():
    host = host_profile(w=8)
    scaled = scaled_paper_profile(E5_2603, host)
    assert scaled.cores == E5_2603.cores
    assert scaled.ghz == E5_2603.ghz
    assert scaled.name == E5_2603.name
    # per-GHz base comes from the host measurement
    assert scaled.base_throughput == pytest.approx(host.base_throughput / host.ghz)
    assert scaled.spawn_overhead_s == host.spawn_overhead_s
