"""Unit tests for the calibrated parallel decode-time model.

These assert the *shapes* the paper reports (Figures 7 and 10), not
absolute times: improvement grows with T up to the core count and
reverses beyond it; similar improvements across CPU models; PPM with
T=1 still beats the baseline via cost reduction alone.
"""

import pytest

from repro.codes import SDCode
from repro.core import plan_decode
from repro.parallel import (
    E5_2603,
    E5_2650,
    I7_3930K,
    PAPER_CPUS,
    CPUProfile,
    improvement_ratio,
    simulate_decode_time,
    simulate_ppm_time,
    simulate_traditional_time,
)
from repro.stripes import worst_case_sd

SYM = 1 << 20  # ~1M symbols per sector: large enough to amortise spawn


@pytest.fixture(scope="module")
def plan():
    code = SDCode(16, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    return plan_decode(code, scen.faulty_blocks)


def test_paper_profiles():
    assert E5_2603.cores == 4 and E5_2603.ghz == 1.8
    assert I7_3930K.cores == 6 and I7_3930K.ghz == 3.2
    assert E5_2650.cores == 8 and E5_2650.ghz == 2.0
    assert len(PAPER_CPUS) == 3


def test_traditional_time_scales_with_cost(plan):
    t_normal = simulate_traditional_time(plan, E5_2603, SYM)
    t_mf = simulate_traditional_time(plan, E5_2603, SYM, matrix_first=True)
    assert t_normal.total_seconds == pytest.approx(
        plan.costs.c1 * SYM / E5_2603.throughput
    )
    assert t_mf.total_seconds == pytest.approx(plan.costs.c2 * SYM / E5_2603.throughput)


def test_ppm_t1_gains_from_cost_reduction_only(plan):
    trad, ppm = simulate_decode_time(plan, E5_2603, threads=1, sector_symbols=SYM)
    gain = improvement_ratio(trad, ppm)
    assert gain > 0
    assert ppm.spawn_seconds == 0
    # T=1 total equals C4's serial time
    assert ppm.total_seconds == pytest.approx(plan.costs.c4 * SYM / E5_2603.throughput)


def test_improvement_grows_until_core_count(plan):
    gains = []
    for t in range(1, E5_2603.cores + 1):
        trad, ppm = simulate_decode_time(plan, E5_2603, threads=t, sector_symbols=SYM)
        gains.append(improvement_ratio(trad, ppm))
    assert all(b > a for a, b in zip(gains, gains[1:])), gains


def test_oversubscription_hurts(plan):
    at_cores = simulate_ppm_time(plan, E5_2603, threads=4, sector_symbols=SYM)
    beyond = simulate_ppm_time(plan, E5_2603, threads=8, sector_symbols=SYM)
    assert beyond.total_seconds > at_cores.total_seconds


def test_similar_improvement_across_cpus(plan):
    """Figure 10: PPM's relative gain is CPU-independent (same T)."""
    gains = []
    for cpu in PAPER_CPUS:
        trad, ppm = simulate_decode_time(plan, cpu, threads=4, sector_symbols=SYM)
        gains.append(improvement_ratio(trad, ppm))
    spread = max(gains) - min(gains)
    assert spread < 0.2 * max(gains), gains


def test_faster_cpu_is_faster_absolute(plan):
    slow = simulate_ppm_time(plan, E5_2603, threads=4, sector_symbols=SYM)
    fast = simulate_ppm_time(plan, I7_3930K, threads=4, sector_symbols=SYM)
    assert fast.total_seconds < slow.total_seconds


def test_small_sectors_erode_parallel_gain(plan):
    """Figure 9's left edge: spawn overhead dominates tiny stripes."""
    tiny_trad, tiny_ppm = simulate_decode_time(plan, E5_2603, 4, sector_symbols=256)
    big_trad, big_ppm = simulate_decode_time(plan, E5_2603, 4, sector_symbols=SYM)
    tiny_gain = improvement_ratio(tiny_trad, tiny_ppm)
    big_gain = improvement_ratio(big_trad, big_ppm)
    assert big_gain > tiny_gain


def test_non_partition_plan_is_serial():
    code = SDCode(6, 4, 2, 2)
    plan = plan_decode(code, [0, 1])  # single group, no rest
    from repro.core import SequencePolicy, plan_decode as pd

    forced = pd(code, [0, 1], SequencePolicy.MATRIX_FIRST)
    sim = simulate_ppm_time(forced, E5_2603, threads=4, sector_symbols=SYM)
    assert sim.spawn_seconds == 0
    assert sim.rest_seconds == 0


def test_validation():
    code = SDCode(6, 4, 2, 2)
    plan = plan_decode(code, [0, 1])
    with pytest.raises(ValueError):
        simulate_ppm_time(plan, E5_2603, threads=0, sector_symbols=SYM)
    zero = simulate_traditional_time(plan, E5_2603, SYM)
    with pytest.raises(ZeroDivisionError):
        improvement_ratio(zero, type(zero)(0.0, 0.0, 0.0))


def test_with_throughput():
    p = CPUProfile("x", cores=2, ghz=2.0, base_throughput=1e6)
    q = p.with_throughput(2e6)
    assert q.throughput == 4e6
    assert q.cores == 2
