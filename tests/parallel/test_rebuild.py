"""Unit tests for multi-stripe rebuild schedulers."""

import copy

import pytest

from repro.codes import SDCode
from repro.core import TraditionalDecoder, plan_decode
from repro.parallel import (
    E5_2603,
    HybridRebuilder,
    IntraStripeRebuilder,
    StripeParallelRebuilder,
    simulate_rebuild_time,
)
from repro.stripes import DiskArray, worst_case_sd


@pytest.fixture(scope="module")
def failed_array():
    code = SDCode(6, 8, 2, 2)
    array = DiskArray(code, num_stripes=5, sector_symbols=32, rng=0)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    array.fail_disk(1)
    array.fail_disk(4)
    array.inject_lse(5, rng=1)
    return array


@pytest.mark.parametrize(
    "rebuilder_cls,kwargs",
    [
        (StripeParallelRebuilder, {}),
        (StripeParallelRebuilder, {"use_ppm": True}),
        (HybridRebuilder, {}),
        (IntraStripeRebuilder, {}),
    ],
)
def test_all_strategies_recover(failed_array, rebuilder_cls, kwargs):
    array = copy.deepcopy(failed_array)
    expected = sum(len(s.erased_ids) for s in array.stripes)
    result = rebuilder_cls(threads=2, **kwargs).rebuild(array)
    assert result.blocks_repaired == expected
    assert array.fully_intact()
    assert result.wall_seconds > 0
    assert result.strategy


def test_noop_on_intact_array():
    code = SDCode(6, 4, 2, 2)
    array = DiskArray(code, num_stripes=2, sector_symbols=16, rng=3)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    result = StripeParallelRebuilder(threads=2).rebuild(array)
    assert result.blocks_repaired == 0


def test_thread_validation():
    with pytest.raises(ValueError):
        StripeParallelRebuilder(threads=0)


def test_strategy_labels():
    assert "traditional" in StripeParallelRebuilder().strategy
    assert "PPM serial" in StripeParallelRebuilder(use_ppm=True).strategy
    assert "hybrid" in HybridRebuilder().strategy
    assert "intra-stripe" in IntraStripeRebuilder().strategy


def test_simulated_rebuild_time_shapes():
    """With many stripes, stripe-level parallelism beats intra-stripe."""
    code = SDCode(16, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=4)
    plan = plan_decode(code, scen.faulty_blocks)
    plans = [plan] * 32
    sym = 1 << 18
    hybrid = simulate_rebuild_time(plans, E5_2603, 4, sym, "hybrid")
    stripe_par = simulate_rebuild_time(plans, E5_2603, 4, sym, "stripe-parallel")
    intra = simulate_rebuild_time(plans, E5_2603, 4, sym, "intra-stripe")
    # hybrid keeps stripe-level parallelism AND the cheaper sequence
    assert hybrid.total_seconds < stripe_par.total_seconds
    assert hybrid.total_seconds < intra.total_seconds
    with pytest.raises(ValueError):
        simulate_rebuild_time(plans, E5_2603, 4, sym, "magic")


def test_pipeline_rebuilder_shares_a_live_pipeline(failed_array):
    from repro.parallel import PipelineRebuilder
    from repro.pipeline import DecodePipeline

    array = copy.deepcopy(failed_array)
    expected = sum(len(s.erased_ids) for s in array.stripes)
    with DecodePipeline(pool="serial") as pipeline:
        rebuilder = PipelineRebuilder(pipeline=pipeline)
        result = rebuilder.rebuild(array)
        metrics = pipeline.metrics()
    assert result.blocks_repaired == expected
    assert array.fully_intact()
    assert result.strategy == "pipeline (batched, shared)"
    # shared-pipeline rebuilds ride the background admission class
    assert metrics.background_batches == metrics.batches > 0
