"""Unit + property tests for group-to-thread assignment strategies."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.parallel import assign_lpt, assign_round_robin, lpt_advantage, makespan


def test_round_robin_matches_algorithm1():
    buckets = assign_round_robin([10, 20, 30, 40, 50], 2)
    assert buckets == [[0, 2, 4], [1, 3]]


def test_round_robin_clamps_threads():
    buckets = assign_round_robin([1, 2], 8)
    assert len(buckets) == 2


def test_lpt_balances_skewed_costs():
    costs = [100, 1, 1, 1, 1, 1]
    rr = makespan(costs, assign_round_robin(costs, 2))
    lpt = makespan(costs, assign_lpt(costs, 2))
    # round-robin puts 100+1+1 on worker 0; LPT pairs 100 alone
    assert lpt == 100
    assert rr > lpt


def test_equal_costs_no_advantage():
    costs = [7] * 12
    assert lpt_advantage(costs, 4) == 0.0


def test_makespan_empty():
    assert makespan([], []) == 0
    assert lpt_advantage([], 4) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        assign_round_robin([1], 0)
    with pytest.raises(ValueError):
        assign_lpt([1], 0)


@given(
    st.lists(st.integers(1, 1000), min_size=1, max_size=30),
    st.integers(1, 8),
)
@settings(max_examples=80)
def test_assignments_are_partitions(costs, threads):
    for strategy in (assign_round_robin, assign_lpt):
        buckets = strategy(costs, threads)
        flat = sorted(i for bucket in buckets for i in bucket)
        assert flat == list(range(len(costs)))


@given(
    st.lists(st.integers(1, 1000), min_size=1, max_size=30),
    st.integers(1, 8),
)
@settings(max_examples=80)
@example(costs=[2, 3, 2, 3, 5, 3], threads=2)  # LPT=10 > round-robin=9
def test_lpt_within_list_scheduling_bound(costs, threads):
    # LPT is not pointwise better than round-robin (the pinned example
    # loses by 1: {5,3,2} vs {2,2,5}/{3,3,3}); the guarantee it does
    # carry is Graham's list-scheduling bound, stated here against the
    # computable quantities: makespan <= mean load + (1 - 1/m) * max cost.
    lpt = makespan(costs, assign_lpt(costs, threads))
    workers = min(threads, len(costs))
    assert lpt <= sum(costs) / workers + (1 - 1 / workers) * max(costs) + 1e-9
    # the trivial lower bounds hold
    assert lpt >= max(costs)
    assert lpt * workers >= sum(costs)


def test_lpt_advantage_on_lrc_like_groups():
    """Uneven LRC group costs: LPT visibly beats round-robin."""
    # group costs proportional to group sizes 6,1,1,6 at T=2:
    # round-robin: {6+1, 1+6} = 7 balanced by luck; permute to force skew
    costs = [6, 6, 1, 1]
    rr = makespan(costs, assign_round_robin(costs, 2))  # {6+1, 6+1} = 7
    lpt = makespan(costs, assign_lpt(costs, 2))
    assert lpt == 7 and rr == 7
    costs = [6, 1, 6, 1]
    rr = makespan(costs, assign_round_robin(costs, 2))  # {6+6, 1+1} = 12
    lpt = makespan(costs, assign_lpt(costs, 2))
    assert rr == 12 and lpt == 7
    assert lpt_advantage(costs, 2) == pytest.approx(1 - 7 / 12)
