"""ScrubCursor resumability and StoreScrubber findings classification.

Covers the edge cases the repair loop must get right: corruption in a
*parity* block (scrubbing is not a data-only checksum pass), two
corruptions in one stripe (reported ambiguous at online search depth —
never mis-repaired), and key-set churn between chunks.
"""

from __future__ import annotations

import pytest

from repro.repair import StoreScrubber
from repro.stripes import ScrubCursor

from .conftest import make_store


# -- cursor ------------------------------------------------------------------


def test_cursor_walks_in_sorted_order():
    cursor = ScrubCursor([3, 1, 2])
    assert cursor.next_chunk(2) == [1, 2]
    assert cursor.next_chunk(2) == [3]  # never crosses the wrap boundary
    assert cursor.passes_completed == 1
    assert cursor.next_chunk(2) == [1, 2]


def test_cursor_resume_restores_position():
    cursor = ScrubCursor(range(6))
    cursor.next_chunk(4)
    saved = cursor.position
    fresh = ScrubCursor(range(6))
    fresh.resume(saved)
    assert fresh.next_chunk(2) == [4, 5]
    assert fresh.passes_completed == 1


def test_cursor_survives_key_churn():
    cursor = ScrubCursor([0, 1, 2, 3])
    assert cursor.next_chunk(2) == [0, 1]
    cursor.update_keys([0, 1, 2, 3, 4, 5])  # stripes added mid-pass
    assert cursor.next_chunk(3) == [2, 3, 4]
    cursor.update_keys([4, 5])  # and removed: position 5 is past the end,
    assert cursor.next_chunk(3) == [4, 5]  # so the cursor wraps to a new pass
    assert cursor.passes_completed == 2


def test_cursor_empty_and_validation():
    cursor = ScrubCursor([])
    assert cursor.next_chunk(3) == []
    with pytest.raises(ValueError):
        cursor.next_chunk(0)
    with pytest.raises(ValueError):
        cursor.resume(-1)
    with pytest.raises(ValueError):
        ScrubCursor([1], position=-2)


# -- scrubber ----------------------------------------------------------------


def test_clean_store_scans_clean(code):
    store = make_store(code, num_stripes=3, damaged=0.0)
    scrubber = StoreScrubber(store)
    findings = scrubber.scan_full_pass()
    assert findings.clean
    assert findings.scanned == 3


def test_data_block_corruption_located(code):
    store = make_store(code, num_stripes=2, damaged=0.0)
    block = code.data_block_ids[0]
    store.corrupt(1, [block])
    findings = StoreScrubber(store).scan_full_pass()
    assert dict(findings.findings).keys() == {1}
    report = dict(findings.findings)[1]
    assert report.status == "corrupt"
    assert report.corrupted_blocks == (block,)


def test_parity_block_corruption_located(code):
    """Corruption in a *parity* block is found and attributed to the
    parity block — not blamed on the (intact) data it protects."""
    store = make_store(code, num_stripes=2, damaged=0.0)
    parity = code.parity_block_ids[-1]
    store.corrupt(0, [parity])
    findings = StoreScrubber(store).scan_full_pass()
    report = dict(findings.findings)[0]
    assert report.status == "corrupt"
    assert report.corrupted_blocks == (parity,)


def test_double_corruption_is_ambiguous_at_online_depth(code):
    """Two corruptions in one stripe: at the online search depth
    (max_errors=1) the scrubber must say *ambiguous*, never name a
    single wrong block a repair would then destroy."""
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.corrupt(0, [2, 11])
    report = dict(StoreScrubber(store, max_errors=1).scan_full_pass().findings)[0]
    assert report.status == "ambiguous"
    assert report.corrupted_blocks == ()


def test_double_corruption_located_at_depth_two(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.corrupt(0, [2, 11])
    report = dict(StoreScrubber(store, max_errors=2).scan_full_pass().findings)[0]
    assert report.status == "corrupt"
    assert report.corrupted_blocks == (2, 11)


def test_erased_stripe_reported_not_syndrome_checked(code):
    store = make_store(code, num_stripes=1, damaged=1.0)
    report = dict(StoreScrubber(store).scan_full_pass().findings)[0]
    assert report.status == "erased"
    assert report.erased_blocks == store.pattern(0)


def test_scan_chunk_resumes_and_wraps(code):
    store = make_store(code, num_stripes=4, damaged=0.0)
    store.corrupt(3, [code.data_block_ids[1]])
    scrubber = StoreScrubber(store)
    first = scrubber.scan_chunk(3)  # stripes 0..2: clean
    assert first.scanned == 3 and first.clean
    second = scrubber.scan_chunk(3)  # stripe 3 only (wrap boundary)
    assert second.scanned == 1
    assert second.passes_completed == 1
    assert dict(second.findings)[3].status == "corrupt"
    assert scrubber.stripes_scrubbed == 4
