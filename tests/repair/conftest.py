"""Shared fixtures for the repair subsystem tests."""

from __future__ import annotations

import pytest

from repro.codes import SDCode

from ..service.conftest import make_store

__all__ = ["make_store"]


@pytest.fixture
def code():
    return SDCode(6, 4, 2, 2)
