"""TokenBucket: unlimited mode, burst headroom, proportional waits."""

from __future__ import annotations

import asyncio

import pytest

from repro.repair import TokenBucket


def run(coro):
    return asyncio.run(coro)


def test_burst_must_be_positive():
    with pytest.raises(ValueError):
        TokenBucket(10.0, 0)


def test_negative_tokens_rejected():
    bucket = TokenBucket(10.0, 4)

    async def main():
        with pytest.raises(ValueError):
            await bucket.acquire(-1)

    run(main())


def test_zero_rate_is_unlimited():
    bucket = TokenBucket(0.0, 1)
    assert bucket.unlimited

    async def main():
        # far beyond burst, still instant
        return await bucket.acquire(10_000)

    assert run(main()) == 0.0
    assert bucket.waited_seconds == 0.0


def test_burst_passes_unthrottled():
    bucket = TokenBucket(5.0, 8)

    async def main():
        return await bucket.acquire(8)

    assert run(main()) == 0.0


def test_deficit_waits_proportionally():
    bucket = TokenBucket(1000.0, 10)

    async def main():
        loop = asyncio.get_running_loop()
        await bucket.acquire(10)  # drain the burst
        t0 = loop.time()
        waited = await bucket.acquire(20)  # 20-token deficit at 1000/s
        return waited, loop.time() - t0

    waited, elapsed = run(main())
    assert waited == pytest.approx(0.02, abs=0.01)
    assert elapsed >= waited * 0.5  # genuinely slept, loop clocks are coarse
    assert bucket.waited_seconds == pytest.approx(waited)


def test_refill_is_capped_at_burst():
    bucket = TokenBucket(1000.0, 4)

    async def main():
        await bucket.acquire(4)
        await asyncio.sleep(0.01)  # refill window far beyond the cap
        first = await bucket.acquire(4)  # covered by the (capped) refill
        second = await bucket.acquire(4)  # must wait again: no banked excess
        return first, second

    first, second = run(main())
    assert first == 0.0
    assert second > 0.0
