"""RepairManager: the scan-queue-drain loop, its safety rails, and the
service wiring — including the scrub-vs-degraded-read race."""

from __future__ import annotations

import asyncio

import pytest

from repro.pipeline import DecodePipeline
from repro.repair import RepairConfig, RepairManager
from repro.service import BlobService, ServiceConfig

from .conftest import make_store


def run(coro):
    return asyncio.run(coro)


def make_manager(store, **config_kwargs):
    config_kwargs.setdefault("scrub_stripes", 64)
    pipeline = DecodePipeline(pool="serial")
    manager = RepairManager(store, pipeline, RepairConfig(**config_kwargs))
    return manager, pipeline


def store_matches_truth(store) -> bool:
    return all(
        (store.stripe(sid).get(b) == store.truth(sid).get(b)).all()
        for sid in store.stripe_ids
        for b in store.stripe(sid).present_ids
    )


def test_tick_heals_corruption_and_erasure(code):
    store = make_store(code, num_stripes=4, damaged=0.0)
    store.corrupt(1, [code.data_block_ids[2]])
    store.corrupt(3, [code.parity_block_ids[0]])
    store.erase(2, [0, 5])
    manager, pipeline = make_manager(store)

    async def main():
        with pipeline:
            findings = await manager.tick()
            assert len(findings.findings) == 3
            return await manager.wait_healthy(timeout_s=10.0)

    assert run(main())
    assert store_matches_truth(store)
    assert not any(store.stripe(sid).erased_ids for sid in store.stripe_ids)
    assert manager.metrics.corruptions_found == 2
    assert manager.metrics.erasures_found == 1
    assert manager.metrics.stripes_repaired == 3
    assert manager.metrics.blocks_repaired >= 4
    assert manager.metrics.repair_failures == 0
    assert manager.metrics.verify_failures == 0
    assert manager.unrepairable == {}
    assert len(manager.queue) == 0


def test_corruption_repairs_before_erasure(code):
    """Queue ordering end-to-end: with both kinds pending in one tick,
    the corrupt stripe (serving wrong bytes *now*) is healed first."""
    store = make_store(code, num_stripes=2, damaged=0.0)
    store.erase(0, [1])
    store.corrupt(1, [code.data_block_ids[0]])
    manager, pipeline = make_manager(store, repair_batch=1)

    order: list[int] = []
    real_write_back = manager._write_back

    def spying_write_back(task, recovered):
        order.append(task.stripe_id)
        real_write_back(task, recovered)

    manager._write_back = spying_write_back

    async def main():
        with pipeline:
            await manager.tick()

    run(main())
    assert order == [1, 0]  # corruption (stripe 1) before erasure (stripe 0)
    assert store_matches_truth(store)


def test_ambiguous_is_reported_never_repaired(code):
    """Two corruptions at online depth: the stripe must be quarantined,
    not 'repaired' onto a wrong single-block guess."""
    store = make_store(code, num_stripes=2, damaged=0.0)
    store.corrupt(0, [2, 11], rng=5)
    before = {b: store.stripe(0).get(b).copy() for b in range(code.num_blocks)}
    manager, pipeline = make_manager(store, max_errors=1)

    async def main():
        with pipeline:
            await manager.tick()
            # a second tick must not retry or double-log the same verdict
            await manager.tick()

    run(main())
    assert manager.unrepairable == {0: "ambiguous"}
    assert manager.metrics.stripes_repaired == 0
    assert len(manager.queue) == 0
    for b, region in before.items():
        assert (store.stripe(0).get(b) == region).all(), (
            f"block {b} was modified despite the ambiguous verdict"
        )

    async def barrier():
        with pipeline:
            return await manager.wait_healthy(timeout_s=2.0)

    # ambiguous is not *actionable*: the barrier reports done (nothing
    # repair can safely do) while health() still carries the quarantine
    pipeline = DecodePipeline(pool="serial")
    assert run(barrier())
    assert manager.health()["unrepairable"] == {0: "ambiguous"}


def test_changed_diagnosis_supersedes_unrepairable(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.corrupt(0, [2, 11], rng=5)
    manager, pipeline = make_manager(store, max_errors=1)

    async def main():
        with pipeline:
            await manager.tick()
            assert manager.unrepairable == {0: "ambiguous"}
            # one corrupt block is overwritten with truth (say, by an
            # operator restore): the stripe becomes single-corrupt and
            # the next scan must lift the quarantine and heal it
            store.stripe(0).put(2, store.truth(0).get(2).copy())
            await manager.tick()

    run(main())
    assert manager.unrepairable == {}
    assert manager.metrics.stripes_repaired == 1
    assert store_matches_truth(store)


def test_rate_limit_meters_and_records_waits(code):
    store = make_store(code, num_stripes=3, damaged=0.0)
    for sid in range(3):
        store.erase(sid, [0, 5])
    manager, pipeline = make_manager(
        store, rate_blocks_per_s=500.0, burst_blocks=2, repair_batch=1
    )

    async def main():
        with pipeline:
            await manager.tick()

    run(main())
    assert store_matches_truth(store)
    # 6 blocks through a 2-block burst at 500/s: some wait was inevitable
    assert manager.metrics.rate_wait_seconds > 0.0
    assert manager.bucket.waited_seconds == pytest.approx(
        manager.metrics.rate_wait_seconds
    )


def test_lifecycle_background_loop(code):
    store = make_store(code, num_stripes=2, damaged=0.0)
    store.corrupt(0, [3])
    manager, pipeline = make_manager(store, scrub_interval_s=0.005)

    async def main():
        with pipeline:
            manager.start()
            assert manager.running
            with pytest.raises(RuntimeError):
                manager.start()
            manager.kick()
            deadline = asyncio.get_running_loop().time() + 5.0
            while manager.metrics.stripes_repaired < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.005)
            await manager.stop()
            assert not manager.running
            await manager.stop()  # idempotent

    run(main())
    assert store_matches_truth(store)


def test_service_wires_repair_lifecycle_and_metrics(code):
    store = make_store(code, num_stripes=4, damaged=0.25)
    store.corrupt(0, [code.data_block_ids[1]])
    config = ServiceConfig(
        batch_trigger=2,
        flush_interval_s=0.002,
        repair=RepairConfig(scrub_interval_s=0.005, scrub_stripes=64),
    )

    async def main():
        async with BlobService(store, config=config) as service:
            assert service.repair is not None
            assert service.repair.running
            healed = await service.repair.wait_healthy(timeout_s=10.0)
            doc = service.metrics_dict()
            assert doc["repair"]["scrub"]["corruptions_found"] >= 1
            assert doc["repair"]["repair"]["stripes_repaired"] >= 1
            assert doc["repair"]["health"]["queue_depth"] == 0
            repair = service.repair
            return healed, repair
        # close() must have stopped the loop

    healed, repair = run(main())
    assert healed
    assert not repair.running
    assert store_matches_truth(store)


def test_unconfigured_service_has_no_repair(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def main():
        async with BlobService(store, config=ServiceConfig()) as service:
            assert service.repair is None
            assert "repair" not in service.metrics_dict()

    run(main())


def test_scrub_racing_inflight_degraded_read(code):
    """A repair that lands between a degraded read's enqueue and its
    flush must not break the read: the flush re-reads the (now-empty)
    pattern and serves the healed block from its snapshot."""
    store = make_store(code, num_stripes=1, damaged=1.0)
    block = store.pattern(0)[0]
    config = ServiceConfig(
        batch_trigger=100,
        flush_interval_s=30.0,  # hold the read queued until we drain
        repair=RepairConfig(scrub_stripes=64),
    )

    async def main():
        async with BlobService(store, config=config) as service:
            pending = asyncio.create_task(service.degraded_get(0, block))
            deadline = asyncio.get_running_loop().time() + 5.0
            while service.scheduler.pending < 1:  # enqueued under the
                await asyncio.sleep(0.001)  # erased pattern
                assert asyncio.get_running_loop().time() < deadline
            healed = await service.repair.wait_healthy(timeout_s=10.0)
            assert healed
            assert store.pattern(0) == ()  # repair fully healed the stripe
            await service.scheduler.drain()
            region = await pending
            assert store.verify_block(0, block, region)
            assert service.metrics.failures == 0

    run(main())
    assert store_matches_truth(store)


def test_straggler_timeout_is_transient_not_unrepairable(code):
    """A timed-out repair decode is a hung worker, not a bad stripe: it
    counts as a failure but the stripe stays eligible for the next pass
    (and heals once the pipeline recovers)."""
    from repro.pipeline import StragglerTimeout

    store = make_store(code, num_stripes=2, damaged=0.0)
    store.erase(0, [1])
    manager, pipeline = make_manager(store)

    real_decode_batch = pipeline.decode_batch
    strikes = {"left": 2}  # batch attempt + single retry both time out

    def flaky_decode_batch(*args, **kwargs):
        if strikes["left"] > 0:
            strikes["left"] -= 1
            raise StragglerTimeout(0.1, (), (0,))
        return real_decode_batch(*args, **kwargs)

    pipeline.decode_batch = flaky_decode_batch

    async def main():
        with pipeline:
            await manager.tick()
            while len(manager.queue):
                await manager.tick()
            assert manager.metrics.repair_failures >= 1
            assert manager.unrepairable == {}
            # the next scrub pass re-finds the erasure and heals it
            await manager.tick()
            while len(manager.queue):
                await manager.tick()

    run(main())
    assert not store.stripe(0).erased_ids
    assert store_matches_truth(store)
