"""RepairQueue: urgency ordering, dedup-by-stripe merging, staleness."""

from __future__ import annotations

import pytest

from repro.repair import RepairQueue, RepairTask


def test_task_validates_kind():
    with pytest.raises(ValueError, match="kind"):
        RepairTask(0, "smudge", (1,))


def test_task_validates_block_order():
    with pytest.raises(ValueError, match="sorted"):
        RepairTask(0, "erasure", (2, 1))
    with pytest.raises(ValueError, match="sorted"):
        RepairTask(0, "erasure", (1, 1))


def test_corruption_drains_before_erasure():
    queue = RepairQueue()
    queue.push(RepairTask(10, "erasure", (0,)))
    queue.push(RepairTask(11, "corruption", (3,)))
    queue.push(RepairTask(12, "erasure", (1,)))
    queue.push(RepairTask(13, "corruption", (4,)))
    order = [queue.pop().stripe_id for _ in range(4)]
    # corruptions first, FIFO within each kind
    assert order == [11, 13, 10, 12]
    assert queue.pop() is None


def test_push_merges_blocks_for_a_queued_stripe():
    queue = RepairQueue()
    assert queue.push(RepairTask(5, "erasure", (0, 2)))
    assert queue.push(RepairTask(5, "erasure", (2, 7)))
    assert len(queue) == 1
    task = queue.pop()
    assert task.blocks == (0, 2, 7)
    assert task.kind == "erasure"


def test_merge_keeps_the_more_urgent_kind():
    queue = RepairQueue()
    queue.push(RepairTask(5, "erasure", (0,)))
    queue.push(RepairTask(5, "corruption", (1,)))
    task = queue.pop()
    assert task.kind == "corruption"
    assert task.blocks == (0, 1)
    # the superseded erasure-priority heap entry must not resurrect it
    assert queue.pop() is None
    assert len(queue) == 0


def test_identical_repush_reports_no_change():
    queue = RepairQueue()
    assert queue.push(RepairTask(5, "corruption", (1,)))
    assert not queue.push(RepairTask(5, "corruption", (1,)))
    assert len(queue) == 1


def test_upgraded_stripe_drains_at_its_new_priority():
    queue = RepairQueue()
    queue.push(RepairTask(1, "erasure", (0,)))
    queue.push(RepairTask(2, "erasure", (0,)))
    queue.push(RepairTask(2, "corruption", (0,)))  # upgrade stripe 2
    assert queue.pop().stripe_id == 2
    assert queue.pop().stripe_id == 1


def test_pop_batch_bounds_and_orders():
    queue = RepairQueue()
    for sid in range(5):
        queue.push(RepairTask(sid, "erasure", (0,)))
    queue.push(RepairTask(9, "corruption", (0,)))
    batch = queue.pop_batch(3)
    assert [t.stripe_id for t in batch] == [9, 0, 1]
    assert len(queue) == 3
    assert len(queue.pop_batch(10)) == 3
    with pytest.raises(ValueError):
        queue.pop_batch(0)


def test_discard_and_membership():
    queue = RepairQueue()
    queue.push(RepairTask(3, "erasure", (0,)))
    assert 3 in queue
    assert queue.stripe_ids == (3,)
    assert queue.discard(3)
    assert not queue.discard(3)
    assert 3 not in queue
    assert queue.pop() is None
