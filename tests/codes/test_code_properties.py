"""Hypothesis property tests over randomly-parameterised codes.

Invariants every construction must satisfy regardless of parameters:
full-rank H, decodable parity positions (encodability), pairwise
linearly-independent columns (single-corruption locatability), sane
geometry bookkeeping.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import LRCCode, RSCode, SDCode
from repro.codes.search import is_decodable
from repro.matrix import GFMatrix, rank


@st.composite
def sd_params(draw):
    n = draw(st.integers(4, 10))
    r = draw(st.integers(2, 8))
    m = draw(st.integers(1, min(3, n - 2)))
    s = draw(st.integers(0, min(3, (n - m) * r - 2)))
    return n, r, m, s


@st.composite
def lrc_params(draw):
    k = draw(st.integers(2, 14))
    l = draw(st.integers(1, min(4, k)))
    g = draw(st.integers(0, 3))
    return k, l, g


@given(sd_params())
@settings(max_examples=40, deadline=None)
def test_sd_h_full_rank(params):
    code = SDCode(*params)
    assert rank(code.H) == code.H.rows


@given(sd_params())
@settings(max_examples=40, deadline=None)
def test_sd_parity_encodable_and_counted(params):
    code = SDCode(*params)
    n, r, m, s = params
    assert len(code.parity_block_ids) == m * r + s == code.H.rows
    assert is_decodable(code, code.parity_block_ids)
    assert len(code.data_block_ids) + len(code.parity_block_ids) == code.num_blocks


@given(sd_params())
@settings(max_examples=30, deadline=None)
def test_sd_columns_pairwise_independent(params):
    """No two columns are scalar multiples (locatability / 2-erasure).

    Requires minimum distance >= 3, i.e. m + s >= 2 (an SD code with
    m = 1, s = 0 is RAID-5-like: same-row columns are identical).
    """
    n, r, m, s = params
    if m + s < 2:
        return
    code = SDCode(*params)
    h = code.H
    f = code.field
    rng = np.random.default_rng(0)
    cols = rng.choice(code.num_blocks, size=min(8, code.num_blocks), replace=False)
    for idx, a in enumerate(cols):
        for b in cols[idx + 1 :]:
            pair = h.take_columns([int(a), int(b)])
            assert rank(pair) == 2, (a, b)


@given(lrc_params())
@settings(max_examples=40, deadline=None)
def test_lrc_geometry_consistent(params):
    k, l, g = params
    code = LRCCode(k, l, g)
    assert sum(code.group_sizes) == k
    assert code.n == k + l + g
    covered = [b for group in code.groups for b in group]
    assert sorted(covered) == list(range(k))
    for gi in range(l):
        for b in code.groups[gi]:
            assert code.group_of(b) == gi
    assert rank(code.H) == code.H.rows


@given(lrc_params())
@settings(max_examples=30, deadline=None)
def test_lrc_single_failures_always_local(params):
    """Any single data-block loss decodes via its local row alone."""
    k, l, g = params
    code = LRCCode(k, l, g)
    from repro.core import plan_decode

    for b in (0, k - 1):
        plan = plan_decode(code, [b])
        assert plan.p == 1
        group = code.group_of(b)
        expected = set(code.groups[group]) | {code.local_parity_id(group)}
        assert set(plan.groups[0].survivor_ids) | {b} == expected


@given(st.integers(3, 16), st.integers(1, 3), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_rs_mds_sampled(n, m, r):
    if m >= n:
        return
    code = RSCode(n, n - m, r=r)
    rng = np.random.default_rng(1)
    disks = rng.choice(n, size=m, replace=False)
    faulty = [code.block_id(i, int(j)) for j in disks for i in range(r)]
    assert is_decodable(code, faulty)


@given(sd_params(), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_sd_syndrome_of_encoded_stripe_is_zero(params, seed):
    from repro.core import TraditionalDecoder
    from repro.gf import RegionOps
    from repro.stripes import Stripe, StripeLayout

    code = SDCode(*params)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 4, rng=seed)
    TraditionalDecoder().encode_into(code, stripe)
    ops = RegionOps(code.field)
    regions = [stripe.get(b) for b in range(code.num_blocks)]
    assert all(not s.any() for s in ops.matrix_apply(code.H.array, regions))
