"""Unit tests for STAR codes (triple-failure XOR baseline)."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import CodeConstructionError, StarCode, get_code, is_decodable
from repro.matrix import rank


@pytest.mark.parametrize("p", [3, 5, 7])
def test_geometry(p):
    code = StarCode(p)
    assert code.n == p + 3
    assert code.r == p - 1
    assert len(code.parity_block_ids) == 3 * (p - 1)
    assert code.H.shape == (3 * (p - 1), (p + 3) * (p - 1))


def test_prime_required():
    with pytest.raises(CodeConstructionError):
        StarCode(4)
    with pytest.raises(CodeConstructionError):
        StarCode(9)


def test_binary_full_rank():
    code = StarCode(5)
    h = code.H.array
    assert set(np.unique(h).tolist()) <= {0, 1}
    assert rank(code.H) == code.H.rows


@pytest.mark.parametrize("p", [3, 5])
def test_tolerates_any_three_disks(p):
    code = StarCode(p)
    for combo in combinations(range(code.n), 3):
        faulty = [code.block_id(i, j) for j in combo for i in range(code.r)]
        assert is_decodable(code, faulty), combo


def test_four_disks_fail():
    code = StarCode(5)
    faulty = [code.block_id(i, j) for j in (0, 1, 2, 3) for i in range(code.r)]
    assert not is_decodable(code, faulty)


def test_row_parity_rows_match_evenodd_structure():
    code = StarCode(5)
    h = code.H.array
    for i in range(code.r):
        support = set(np.nonzero(h[i])[0].tolist())
        expected = {code.block_id(i, j) for j in range(5)} | {code.block_id(i, 5)}
        assert support == expected


def test_diagonal_and_antidiagonal_differ():
    """The two diagonal parity families must impose distinct constraints."""
    code = StarCode(5)
    h = code.H.array
    diag = h[code.r : 2 * code.r, : 5 * code.r]
    anti = h[2 * code.r :, : 5 * code.r]
    assert not np.array_equal(diag, anti)


def test_registered():
    assert isinstance(get_code("star", p=5), StarCode)


def test_decode_roundtrip():
    from repro.core import PPMDecoder, TraditionalDecoder
    from repro.stripes import Stripe, StripeLayout

    code = StarCode(5)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 32, rng=0)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    faulty = [code.block_id(i, j) for j in (0, 3, 6) for i in range(code.r)]
    stripe.erase(faulty)
    recovered = PPMDecoder(threads=2).decode(code, stripe, faulty)
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b))
