"""Unit tests for SD codes, anchored on the paper's worked example."""

import numpy as np
import pytest

from repro.codes import (
    KNOWN_COEFFICIENTS,
    CodeConstructionError,
    SDCode,
    default_coefficients,
    is_decodable,
)
from repro.gf import GF


@pytest.fixture
def paper_code():
    """SD^{1,1}_{4,4}(8|1,2) from Figure 2."""
    return SDCode(4, 4, 1, 1, 8)


def test_paper_example_h(paper_code):
    """H must match Figure 2: 4 XOR rows + the 2^c row."""
    h = paper_code.H
    assert h.shape == (5, 16)
    for i in range(4):
        expected = np.zeros(16, dtype=np.uint8)
        expected[4 * i : 4 * i + 4] = 1
        assert np.array_equal(h.array[i], expected)
    f = GF(8)
    two = f.dtype.type(2)
    assert h.array[4].tolist() == [int(f.pow(two, c)) for c in range(16)]


def test_paper_example_coefficients(paper_code):
    assert paper_code.coefficients == (1, 2)
    assert KNOWN_COEFFICIENTS[(4, 4, 1, 1, 8)] == (1, 2)


def test_paper_failure_scenario_decodable(paper_code):
    """Figure 2's failure set {b2, b6, b10, b13, b14} must decode."""
    assert is_decodable(paper_code, [2, 6, 10, 13, 14])


def test_geometry(paper_code):
    assert paper_code.num_blocks == 16
    assert paper_code.block_id(2, 1) == 9
    assert paper_code.position(9) == (2, 1)
    with pytest.raises(IndexError):
        paper_code.block_id(4, 0)
    with pytest.raises(IndexError):
        paper_code.position(16)


def test_parity_layout(paper_code):
    # disk 3 is the coding disk; the last data-disk sector (3,2)=14 codes.
    assert paper_code.coding_disks == (3,)
    assert paper_code.coding_sector_ids == (14,)
    assert paper_code.parity_block_ids == (3, 7, 11, 14, 15)
    assert len(paper_code.data_block_ids) == 11


def test_parity_positions_encodable(paper_code):
    """Encoding = decoding the parity positions; F must be invertible."""
    assert is_decodable(paper_code, paper_code.parity_block_ids)


def test_h_row_grouping_matches_algorithm1():
    """Rows m*i .. m*i+m-1 must belong to stripe row i (Algorithm 1)."""
    code = SDCode(6, 4, 2, 2, 8)
    h = code.H
    for i in range(code.r):
        for q in range(code.m):
            row = h.array[code.m * i + q]
            support = np.nonzero(row)[0]
            assert support.min() >= i * code.n
            assert support.max() < (i + 1) * code.n


def test_sector_rows_span_stripe():
    code = SDCode(6, 4, 2, 2, 8)
    h = code.H
    for t in range(code.s):
        assert np.all(h.array[code.m * code.r + t] != 0)


def test_default_coefficients_known_and_generic():
    assert default_coefficients(6, 4, 2, 2, 8) == (1, 42, 26, 61)
    generic = default_coefficients(8, 16, 2, 2, 8)
    assert generic == (1, 2, 4, 8)


def test_larger_field_words():
    for w in (16, 32):
        code = SDCode(6, 4, 2, 1, w)
        assert code.H.shape == (9, 24)
        assert is_decodable(code, [0, 5, 6, 11, 12, 17, 18, 23, 9])


def test_coding_sectors_wrap_rows():
    code = SDCode(4, 4, 1, 4, 8)
    # 3 data disks per row; 4 coding sectors spill into row 2
    assert code.coding_sector_ids == (10, 12, 13, 14)


def test_parameter_validation():
    with pytest.raises(ValueError):
        SDCode(4, 4, 0, 1)
    with pytest.raises(ValueError):
        SDCode(4, 4, 4, 1)
    with pytest.raises(ValueError):
        SDCode(4, 4, 1, -1)
    with pytest.raises(ValueError):
        SDCode(4, 4, 1, 12)  # s leaves no data
    with pytest.raises(ValueError):
        SDCode(1, 4, 1, 1)
    with pytest.raises(ValueError):
        SDCode(4, 0, 1, 1)


def test_coefficient_validation():
    with pytest.raises(ValueError):
        SDCode(4, 4, 1, 1, coefficients=(1,))  # wrong count
    with pytest.raises(CodeConstructionError):
        SDCode(4, 4, 1, 1, coefficients=(1, 1))  # duplicate
    with pytest.raises(CodeConstructionError):
        SDCode(4, 4, 1, 1, coefficients=(0, 2))  # zero
    with pytest.raises(CodeConstructionError):
        SDCode(4, 4, 1, 1, 4, coefficients=(1, 200))  # exceeds GF(16)


def test_describe(paper_code):
    text = paper_code.describe()
    assert "SD^{1,1}_{4,4}" in text
    assert "(8|1,2)" in text


def test_storage_cost(paper_code):
    assert paper_code.storage_cost == pytest.approx(16 / 11)
