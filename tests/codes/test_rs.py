"""Unit tests for the RS baseline (Vandermonde and Cauchy styles)."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import CodeConstructionError, RSCode, is_decodable


def test_geometry():
    rs = RSCode(6, 4, r=4)
    assert rs.m == 2
    assert rs.coding_disks == (4, 5)
    assert rs.num_blocks == 24
    assert len(rs.parity_block_ids) == 8
    assert rs.H.shape == (8, 24)


def test_symmetric_parity():
    """Every parity constraint touches exactly n blocks (symmetric)."""
    rs = RSCode(6, 4, r=2)
    weights = np.count_nonzero(rs.H.array, axis=1)
    assert set(weights.tolist()) == {6}


def test_block_diagonal_structure():
    rs = RSCode(5, 3, r=3)
    h = rs.H.array
    for i in range(3):
        block = h[2 * i : 2 * i + 2, 5 * i : 5 * i + 5]
        assert np.count_nonzero(block) == 10
    # nothing outside the diagonal blocks
    total = np.count_nonzero(h)
    assert total == 30


def test_mds_any_m_disks():
    """Vandermonde RS: every m-disk failure decodes (the MDS property)."""
    rs = RSCode(6, 4, r=2)
    for combo in combinations(range(6), 2):
        faulty = [rs.block_id(i, j) for j in combo for i in range(2)]
        assert is_decodable(rs, faulty), combo


def test_mds_any_m_blocks_single_row():
    rs = RSCode(8, 5, r=1)
    for combo in combinations(range(8), 3):
        assert is_decodable(rs, list(combo)), combo


def test_more_than_m_failures_in_row_fails():
    rs = RSCode(6, 4, r=1)
    assert not is_decodable(rs, [0, 1, 2])


def test_cauchy_style_mds():
    rs = RSCode(8, 5, r=1, style="cauchy")
    for combo in combinations(range(8), 3):
        assert is_decodable(rs, list(combo)), combo


def test_cauchy_systematic_identity():
    rs = RSCode(6, 4, r=1, style="cauchy")
    h = rs.H.array
    assert np.array_equal(h[:, 4:], np.eye(2, dtype=h.dtype))


def test_word_sizes():
    for w in (8, 16, 32):
        rs = RSCode(10, 8, r=1, w=w)
        assert is_decodable(rs, [0, 9])


def test_parameter_validation():
    with pytest.raises(ValueError):
        RSCode(4, 0)
    with pytest.raises(ValueError):
        RSCode(4, 4)
    with pytest.raises(ValueError):
        RSCode(4, 2, style="fancy")
    with pytest.raises(CodeConstructionError):
        RSCode(20, 10, w=4)  # n exceeds GF(16) points


def test_describe():
    assert "(6,4)-RS[vandermonde]" in RSCode(6, 4).describe()
