"""Unit tests for LRC codes, anchored on the paper's (4,2,2) example."""

import numpy as np
import pytest

from repro.codes import LRCCode, is_decodable, verify_code


@pytest.fixture
def paper_lrc():
    """The (4, 2, 2)-LRC of Figure 1b."""
    return LRCCode(4, 2, 2)


def test_geometry(paper_lrc):
    assert paper_lrc.n == 8
    assert paper_lrc.r == 1
    assert paper_lrc.k == 4
    assert paper_lrc.groups == ((0, 1), (2, 3))
    assert paper_lrc.local_parity_id(0) == 4
    assert paper_lrc.local_parity_id(1) == 5
    assert paper_lrc.global_parity_id(0) == 6
    assert paper_lrc.global_parity_id(1) == 7
    assert paper_lrc.parity_block_ids == (4, 5, 6, 7)


def test_asymmetric_parity(paper_lrc):
    """Local parities touch 2 data blocks; globals touch 4 — asymmetric."""
    h = paper_lrc.H.array
    local_weights = [np.count_nonzero(h[i, :4]) for i in range(2)]
    global_weights = [np.count_nonzero(h[i, :4]) for i in range(2, 4)]
    assert local_weights == [2, 2]
    assert global_weights == [4, 4]


def test_local_rows_are_xor(paper_lrc):
    h = paper_lrc.H.array
    assert h[0].tolist() == [1, 1, 0, 0, 1, 0, 0, 0]
    assert h[1].tolist() == [0, 0, 1, 1, 0, 1, 0, 0]


def test_single_failure_per_group_decodable(paper_lrc):
    assert is_decodable(paper_lrc, [0])
    assert is_decodable(paper_lrc, [1, 3])
    assert is_decodable(paper_lrc, [4, 5])


def test_multi_failure_decodable(paper_lrc):
    # one whole group failed plus its local parity: uses globals
    assert is_decodable(paper_lrc, [0, 1, 4])
    assert is_decodable(paper_lrc, [0, 1, 2, 3])


def test_too_many_failures_not_decodable(paper_lrc):
    # 5 failures > l + g = 4 constraints
    assert not is_decodable(paper_lrc, [0, 1, 2, 3, 4])


def test_group_of(paper_lrc):
    assert paper_lrc.group_of(0) == 0
    assert paper_lrc.group_of(3) == 1
    assert paper_lrc.group_of(4) == 0  # local parity
    assert paper_lrc.group_of(6) is None  # global parity


def test_uneven_groups():
    lrc = LRCCode(7, 3, 2)
    assert lrc.group_sizes == (3, 2, 2)
    assert lrc.groups == ((0, 1, 2), (3, 4), (5, 6))
    assert sum(lrc.group_sizes) == 7


def test_explicit_group_sizes():
    lrc = LRCCode(6, 2, 1, group_sizes=[4, 2])
    assert lrc.groups == ((0, 1, 2, 3), (4, 5))
    with pytest.raises(ValueError):
        LRCCode(6, 2, 1, group_sizes=[4, 1])
    with pytest.raises(ValueError):
        LRCCode(6, 2, 1, group_sizes=[6, 0])


def test_parameter_validation():
    with pytest.raises(ValueError):
        LRCCode(0, 1, 1)
    with pytest.raises(ValueError):
        LRCCode(4, 5, 1)
    with pytest.raises(ValueError):
        LRCCode(4, 1, -1)
    with pytest.raises(IndexError):
        LRCCode(4, 2, 2).local_parity_id(2)
    with pytest.raises(IndexError):
        LRCCode(4, 2, 2).global_parity_id(2)


def test_storage_cost():
    assert LRCCode(4, 2, 2).storage_cost == 2.0
    assert LRCCode(40, 2, 2).storage_cost == pytest.approx(1.1)


def test_verify_paper_instance(paper_lrc):
    assert verify_code(paper_lrc, samples=150)


def test_larger_instances_verify():
    for k, l, g in [(8, 2, 2), (12, 3, 2), (6, 2, 1)]:
        assert verify_code(LRCCode(k, l, g), samples=80), (k, l, g)


def test_encoding_positions_decodable(paper_lrc):
    assert is_decodable(paper_lrc, paper_lrc.parity_block_ids)
