"""Unit tests for coefficient search and scenario verification."""

import numpy as np
import pytest

from repro.codes import (
    LRCCode,
    PMDSCode,
    SDCode,
    find_sd_coefficients,
    is_decodable,
    sample_lrc_information_pattern,
    sample_pmds_pattern,
    sample_sd_pattern,
    verify_code,
)


def test_is_decodable_trivia():
    code = SDCode(4, 4, 1, 1)
    assert is_decodable(code, [])
    # more faults than parity rows can never decode
    assert not is_decodable(code, [0, 1, 2, 3, 4, 5])


def test_sample_sd_pattern_shape():
    code = SDCode(6, 4, 2, 2)
    rng = np.random.default_rng(0)
    for _ in range(20):
        pattern = sample_sd_pattern(code, rng)
        assert len(pattern) == code.m * code.r + code.s
        assert len(set(pattern)) == len(pattern)
        # m whole disks present
        disks = {}
        for b in pattern:
            _, d = code.position(b)
            disks[d] = disks.get(d, 0) + 1
        full = [d for d, c in disks.items() if c >= code.r]
        assert len(full) >= code.m


def test_sample_pmds_pattern_shape():
    code = PMDSCode(6, 4, 2, 1)
    rng = np.random.default_rng(1)
    for _ in range(20):
        pattern = sample_pmds_pattern(code, rng)
        # m per row + s extra (extras may double up rows)
        assert len(pattern) == code.m * code.r + code.s
        per_row = {}
        for b in pattern:
            i, _ = code.position(b)
            per_row[i] = per_row.get(i, 0) + 1
        assert all(c >= code.m for c in per_row.values())


def test_sample_lrc_pattern_bounded():
    code = LRCCode(8, 2, 2)
    rng = np.random.default_rng(2)
    for _ in range(50):
        pattern = sample_lrc_information_pattern(code, rng)
        assert len(pattern) <= code.l + code.g
        assert all(0 <= b < code.n for b in pattern)


def test_verify_paper_instances():
    assert verify_code(SDCode(4, 4, 1, 1), samples=60)
    assert verify_code(SDCode(6, 4, 2, 2), samples=60)
    assert verify_code(LRCCode(4, 2, 2), samples=60)


def test_verify_rejects_bad_coefficients():
    """A deliberately degenerate instance must fail verification.

    On GF(2^4) the generator has order 15, so with n = 16 disks the
    coefficient 2^j repeats at j = 0 and j = 15: disks 0 and 15 get
    identical parity-check columns and any scenario failing both is
    singular.
    """
    code = SDCode(16, 2, 2, 1, w=4)
    assert not verify_code(code, samples=400, seed=3)


def test_find_sd_coefficients_returns_known():
    assert find_sd_coefficients(4, 4, 1, 1, 8, samples=30) == (1, 2)


def test_find_sd_coefficients_generic():
    coeffs = find_sd_coefficients(5, 4, 1, 1, 8, tries=16, samples=30)
    assert len(coeffs) == 2
    assert coeffs[0] == 1
    code = SDCode(5, 4, 1, 1, 8, coefficients=coeffs)
    assert verify_code(code, samples=40)


def test_pmds_stricter_than_sd():
    """A PMDS failure pattern is harder: per-row erasures need not align."""
    code = PMDSCode(6, 4, 2, 1)
    rng = np.random.default_rng(4)
    pattern = sample_pmds_pattern(code, rng)
    # the pattern spreads erasures across columns, unlike sample_sd_pattern
    assert is_decodable(code, pattern) in (True, False)  # well-formed call
