"""Unit tests for the code registry."""

import pytest

from repro.codes import (
    EvenOddCode,
    LRCCode,
    SDCode,
    available_codes,
    get_code,
    register_code,
)
from repro.codes.base import ErasureCode


def test_available():
    kinds = available_codes()
    assert set(kinds) == {"sd", "pmds", "lrc", "rs", "evenodd", "rdp", "star"}
    assert list(kinds) == sorted(kinds)


def test_get_code_constructs():
    sd = get_code("sd", n=4, r=4, m=1, s=1)
    assert isinstance(sd, SDCode)
    lrc = get_code("lrc", k=4, l=2, g=2)
    assert isinstance(lrc, LRCCode)
    eo = get_code("evenodd", p=5)
    assert isinstance(eo, EvenOddCode)


def test_get_code_unknown():
    with pytest.raises(ValueError, match="unknown code kind"):
        get_code("raid0")


def test_register_custom_code():
    class Dummy(ErasureCode):
        kind = "dummy-test"

        def __init__(self):
            from repro.gf import GF

            super().__init__(n=2, r=1, field=GF(8))

        @property
        def parity_block_ids(self):
            return (1,)

        def parity_check_matrix(self):
            from repro.matrix import GFMatrix

            return GFMatrix.from_rows(self.field, [[1, 1]])

    register_code("dummy-test", Dummy)
    try:
        assert isinstance(get_code("dummy-test"), Dummy)
        with pytest.raises(ValueError, match="already registered"):
            register_code("dummy-test", Dummy)
    finally:
        from repro.codes.registry import _REGISTRY

        _REGISTRY.pop("dummy-test", None)
