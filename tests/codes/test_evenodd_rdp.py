"""Unit tests for the XOR-only symmetric baselines EVENODD and RDP."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import CodeConstructionError, EvenOddCode, RDPCode, is_decodable
from repro.matrix import rank


@pytest.mark.parametrize("p", [3, 5, 7])
def test_evenodd_geometry(p):
    code = EvenOddCode(p)
    assert code.n == p + 2
    assert code.r == p - 1
    assert len(code.parity_block_ids) == 2 * (p - 1)
    assert code.H.shape == (2 * (p - 1), (p + 2) * (p - 1))


@pytest.mark.parametrize("p", [3, 5, 7])
def test_rdp_geometry(p):
    code = RDPCode(p)
    assert code.n == p + 1
    assert code.r == p - 1
    assert code.H.shape == (2 * (p - 1), (p + 1) * (p - 1))


def test_prime_required():
    with pytest.raises(CodeConstructionError):
        EvenOddCode(4)
    with pytest.raises(CodeConstructionError):
        RDPCode(6)
    with pytest.raises(CodeConstructionError):
        EvenOddCode(1)


@pytest.mark.parametrize("code_cls", [EvenOddCode, RDPCode])
def test_binary_matrices(code_cls):
    h = code_cls(5).H.array
    assert set(np.unique(h).tolist()) <= {0, 1}


@pytest.mark.parametrize("code_cls", [EvenOddCode, RDPCode])
def test_full_rank(code_cls):
    code = code_cls(5)
    assert rank(code.H) == code.H.rows


@pytest.mark.parametrize("p", [3, 5])
def test_evenodd_tolerates_any_two_disks(p):
    code = EvenOddCode(p)
    for combo in combinations(range(code.n), 2):
        faulty = [code.block_id(i, j) for j in combo for i in range(code.r)]
        assert is_decodable(code, faulty), combo


@pytest.mark.parametrize("p", [3, 5])
def test_rdp_tolerates_any_two_disks(p):
    code = RDPCode(p)
    for combo in combinations(range(code.n), 2):
        faulty = [code.block_id(i, j) for j in combo for i in range(code.r)]
        assert is_decodable(code, faulty), combo


def test_evenodd_three_disks_fail():
    code = EvenOddCode(5)
    faulty = [code.block_id(i, j) for j in (0, 1, 2) for i in range(code.r)]
    assert not is_decodable(code, faulty)


def test_evenodd_row_parity_rows():
    code = EvenOddCode(5)
    h = code.H.array
    # row-parity constraint i covers the p data disks of row i plus disk p
    for i in range(code.r):
        support = set(np.nonzero(h[i])[0].tolist())
        expected = {code.block_id(i, j) for j in range(5)} | {code.block_id(i, 5)}
        assert support == expected


def test_rdp_diagonal_includes_row_parity_disk():
    """RDP's diagonals must cross the row-parity disk (its defining trick)."""
    code = RDPCode(5)
    h = code.H.array
    row_parity_cols = {code.block_id(i, code.p - 1) for i in range(code.r)}
    diagonal_rows = h[code.r :]
    touched = set(np.nonzero(diagonal_rows.any(axis=0))[0].tolist())
    assert touched & row_parity_cols
