"""Unit tests for the extended CLI commands."""

import os

import pytest

from repro.cli import main


def test_verify_code_pass(capsys):
    assert main(["verify-code", "sd", "n=4", "r=4", "m=1", "s=1", "--samples", "20"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_verify_code_fail(capsys):
    # the degenerate GF(16) instance with repeating generator powers
    rc = main(["verify-code", "sd", "n=16", "r=2", "m=2", "s=1", "w=4", "--samples", "300"])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().out


def test_search(capsys):
    assert main(
        ["search", "--n", "4", "--r", "4", "--m", "1", "--s", "1", "--samples", "20"]
    ) == 0
    assert "SD^{1,1}_{4,4}(8|1,2)" in capsys.readouterr().out


def test_io_compare(capsys):
    assert main(["io-compare", "--k", "12"]) == 0
    out = capsys.readouterr().out
    assert "LRC(12,4,2)" in out
    assert "RS(16,12)" in out


def test_lifetime(capsys):
    assert main(
        ["lifetime", "--years", "1", "--stripes", "8", "--n", "8", "--r", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "repair compute" in out
    assert "saved=" in out


def test_reproduce_writes_files(tmp_path, capsys):
    out_dir = tmp_path / "res"
    # regenerating all figures is slow; patch FIGURES down to one cheap entry
    import repro.bench as bench_pkg
    import repro.bench.figures as figures_mod

    original = dict(figures_mod.FIGURES)
    try:
        slim = {5: figures_mod.figure5}
        figures_mod.FIGURES = slim
        bench_pkg.FIGURES = slim
        assert main(["reproduce", "--out", str(out_dir)]) == 0
    finally:
        figures_mod.FIGURES = original
        bench_pkg.FIGURES = original
    assert os.path.exists(out_dir / "figure5.txt")
    assert os.path.exists(out_dir / "figure5.csv")
    content = (out_dir / "figure5.csv").read_text()
    assert content.startswith("m,n,z,")
