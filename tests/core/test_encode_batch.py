"""Compiled encode path: lower_encode, encode_batch, stale-parity safety.

Encoding is decoding with every parity position faulty (paper, footnote
1); the compiled path lowers that plan once per code and runs all
stripes of a batch through one fused program.  The contract: byte
identity with the naive per-stripe encode, parity consistency (H @ B ==
0), and — the stale-parity regression — complete independence from
whatever bytes happen to sit in the parity blocks before encoding.
"""

import numpy as np
import pytest

from repro.codes import RSCode, SDCode
from repro.core import PPMDecoder, SequencePolicy, TraditionalDecoder
from repro.gf import GF, RegionOps
from repro.kernels import CompiledRegionOps, ProgramCache, lower_encode
from repro.pipeline import DecodePipeline
from repro.stripes import Stripe, StripeLayout


@pytest.fixture(scope="module")
def sd_code():
    return SDCode(6, 8, 2, 2)


@pytest.fixture(scope="module")
def rs_code():
    return RSCode(n=6, k=4, r=2, w=8)


def data_stripes(code, count, symbols=32, rng=0):
    """Stripes with random data blocks and *garbage* parity blocks."""
    layout = StripeLayout.of_code(code)
    gen = np.random.default_rng(rng)
    stripes = []
    for _ in range(count):
        stripe = Stripe.random(layout, code.field, symbols, gen)
        stripes.append(stripe)
    return stripes


def naive_encode(code, stripe):
    return TraditionalDecoder().encode(code, stripe)


class TestLowerEncode:
    def test_ids_partition_the_code(self, sd_code):
        compiled = lower_encode(sd_code.field, sd_code)
        assert tuple(compiled.output_ids) == tuple(sd_code.parity_block_ids)
        assert set(compiled.input_ids) <= set(sd_code.data_block_ids)
        assert compiled.program.label.startswith("encode:")

    def test_program_encodes_correctly(self, sd_code):
        from repro.kernels import ProgramExecutor

        compiled = lower_encode(sd_code.field, sd_code)
        stripe = data_stripes(sd_code, 1, rng=3)[0]
        inputs = [stripe.get(b) for b in compiled.input_ids]
        outputs = ProgramExecutor(sd_code.field).execute(
            compiled.program, inputs
        )
        expected = naive_encode(sd_code, stripe)
        for bid, region in zip(compiled.output_ids, outputs):
            assert np.array_equal(region, expected[bid]), bid

    def test_cache_returns_same_program(self, sd_code):
        cache = ProgramCache()
        a = cache.encode_program(sd_code.field, sd_code)
        b = cache.encode_program(sd_code.field, sd_code)
        assert a is b


class TestEncodeBatch:
    @pytest.mark.parametrize("count", [1, 4])
    def test_matches_per_stripe_encode(self, sd_code, count):
        stripes = data_stripes(sd_code, count, rng=count)
        decoder = PPMDecoder(parallel=False)
        got = decoder.encode_batch(sd_code, stripes)
        assert len(got) == count
        for stripe, parities in zip(stripes, got):
            expected = naive_encode(sd_code, stripe)
            assert sorted(parities) == sorted(expected)
            for bid in expected:
                assert np.array_equal(parities[bid], expected[bid]), bid

    def test_traditional_decoder_batch(self, rs_code):
        stripes = data_stripes(rs_code, 3, rng=9)
        got = TraditionalDecoder().encode_batch(rs_code, stripes)
        for stripe, parities in zip(stripes, got):
            expected = naive_encode(rs_code, stripe)
            for bid in expected:
                assert np.array_equal(parities[bid], expected[bid]), bid

    def test_varying_stripe_lengths(self, sd_code):
        # the fused program must slice each stripe back at its own length
        layout = StripeLayout.of_code(sd_code)
        gen = np.random.default_rng(21)
        stripes = [
            Stripe.random(layout, sd_code.field, symbols, gen)
            for symbols in (16, 33, 64)
        ]
        got = PPMDecoder(parallel=False).encode_batch(sd_code, stripes)
        for stripe, parities in zip(stripes, got):
            expected = naive_encode(sd_code, stripe)
            for bid in expected:
                assert np.array_equal(parities[bid], expected[bid]), bid

    def test_encode_into_batch_satisfies_parity_check(self, sd_code):
        stripes = data_stripes(sd_code, 3, rng=5)
        PPMDecoder(parallel=False).encode_into_batch(sd_code, stripes)
        ops = RegionOps(sd_code.field)
        for stripe in stripes:
            regions = [stripe.get(b) for b in range(sd_code.num_blocks)]
            syndromes = ops.matrix_apply(sd_code.H.array, regions)
            assert all(not s.any() for s in syndromes)

    def test_policy_respected(self, sd_code):
        stripes = data_stripes(sd_code, 2, rng=11)
        for policy in (SequencePolicy.PAPER, SequencePolicy.MATRIX_FIRST):
            decoder = PPMDecoder(parallel=False, policy=policy)
            got = decoder.encode_batch(sd_code, stripes)
            for stripe, parities in zip(stripes, got):
                expected = naive_encode(sd_code, stripe)
                for bid in expected:
                    assert np.array_equal(parities[bid], expected[bid]), (
                        policy,
                        bid,
                    )


class TestStaleParityRegression:
    """Encode must only read data blocks, never resident parity bytes."""

    def test_encode_ignores_stale_parity(self, sd_code):
        stripes = data_stripes(sd_code, 2, rng=7)
        decoder = PPMDecoder(parallel=False)
        clean = decoder.encode_batch(sd_code, stripes)
        # poison every parity block with garbage, re-encode: identical
        gen = np.random.default_rng(8)
        for stripe in stripes:
            for bid in sd_code.parity_block_ids:
                stripe.put(
                    bid,
                    gen.integers(
                        0, 256, size=stripe.get(bid).shape, dtype=np.uint8
                    ),
                )
        poisoned = decoder.encode_batch(sd_code, stripes)
        for a, b in zip(clean, poisoned):
            for bid in a:
                assert np.array_equal(a[bid], b[bid]), bid

    def test_single_stripe_encode_ignores_stale_parity(self, sd_code):
        stripe = data_stripes(sd_code, 1, rng=17)[0]
        decoder = PPMDecoder(parallel=False)
        clean = decoder.encode(sd_code, stripe)
        for bid in sd_code.parity_block_ids:
            stripe.put(bid, np.full_like(stripe.get(bid), 0xAB))
        poisoned = decoder.encode(sd_code, stripe)
        for bid in clean:
            assert np.array_equal(clean[bid], poisoned[bid]), bid

    def test_encode_program_never_reads_parity_slots(self, sd_code):
        compiled = lower_encode(sd_code.field, sd_code)
        assert not set(compiled.input_ids) & set(sd_code.parity_block_ids)


class TestPipelineEncodeBatch:
    def test_matches_decoder_batch(self, sd_code):
        stripes = data_stripes(sd_code, 4, rng=13)
        with DecodePipeline(pool="serial") as pipeline:
            got = pipeline.encode_batch(sd_code, stripes)
        expected = PPMDecoder(parallel=False).encode_batch(sd_code, stripes)
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            assert sorted(a) == sorted(b)
            for bid in a:
                assert np.array_equal(a[bid], b[bid]), bid

    def test_return_stats(self, sd_code):
        stripes = data_stripes(sd_code, 2, rng=14)
        with DecodePipeline(pool="serial") as pipeline:
            results, stats = pipeline.encode_batch(
                sd_code, stripes, return_stats=True
            )
        assert len(results) == 2
        assert stats.stripes == 2
