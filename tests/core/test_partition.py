"""Unit tests for independence exploitation and the matrix partition."""

import numpy as np
import pytest

from repro.codes import LRCCode, RSCode, SDCode
from repro.core import partition, partition_sd
from repro.gf import GF
from repro.matrix import GFMatrix
from repro.stripes import StripeLayout, worst_case_sd


def test_group_of_f_rows_with_identical_support():
    """f rows sharing an l of size f form one independent group."""
    f = GF(8)
    h = GFMatrix(
        f,
        np.array(
            [
                [1, 2, 1, 0],
                [1, 3, 0, 1],
                [0, 0, 1, 1],
            ],
            dtype=f.dtype,
        ),
    )
    part = partition(h, [0, 1])
    assert part.p == 1
    (group,) = part.groups
    assert group.faulty_ids == (0, 1)
    assert group.row_ids == (0, 1)
    assert part.rest_row_ids == ()
    assert part.discarded_row_ids == (2,)  # no faulty support: a pure check
    assert part.rest_faulty_ids == ()
    assert not part.has_rest


def test_overdetermined_group_selects_and_marks_redundant():
    """More matching rows than faults: pick t, mark the rest redundant."""
    f = GF(8)
    h = GFMatrix(
        f,
        np.array(
            [
                [1, 1, 0],
                [2, 1, 0],
                [3, 1, 0],
            ],
            dtype=f.dtype,
        ),
    )
    part = partition(h, [0])
    assert part.p == 1
    (group,) = part.groups
    assert group.row_ids == (0,)
    assert group.redundant_row_ids == (1, 2)


def test_dependent_rows_in_group_fall_to_rest():
    """Rows matching in support but linearly dependent cannot decode alone."""
    f = GF(8)
    # rows 0-2 share support {0,1} but are rank 1 on the faulty columns
    h = GFMatrix(
        f,
        np.array(
            [
                [1, 1, 1, 0],
                [1, 1, 0, 1],
                [2, 2, 1, 1],
            ],
            dtype=f.dtype,
        ),
    )
    part = partition(h, [0, 1])
    assert part.p == 0
    assert set(part.rest_row_ids) == {0, 1, 2}
    assert part.rest_faulty_ids == (0, 1)


def test_overlapping_groups_defer_to_rest():
    """A group overlapping an accepted one goes to H_rest."""
    f = GF(8)
    h = GFMatrix(
        f,
        np.array(
            [
                [1, 0, 0],  # singleton recovers block 0
                [1, 2, 0],  # support {0,1}: overlaps, must defer
                [1, 3, 0],
            ],
            dtype=f.dtype,
        ),
    )
    part = partition(h, [0, 1])
    assert [g.faulty_ids for g in part.groups] == [(0,)]
    assert part.rest_faulty_ids == (1,)
    assert set(part.rest_row_ids) == {1, 2}


def test_t_zero_rows_discarded():
    f = GF(8)
    h = GFMatrix(f, np.array([[1, 0, 1], [0, 1, 0]], dtype=f.dtype))
    part = partition(h, [1])
    assert part.discarded_row_ids == (0,)
    assert part.p == 1


def test_paper_case_4_maximum_parallelism():
    """Every faulty block independent, H_rest empty (paper case 4)."""
    code = RSCode(6, 4, r=4)
    # one failure per row: each row's 2 parity rows recover it independently
    faulty = [code.block_id(i, i) for i in range(4)]
    part = partition(code.H, faulty)
    assert part.p == 4
    assert part.rest_faulty_ids == ()


def test_paper_case_1_no_parallelism():
    """No independent sub-matrix: everything in H_rest (paper case 1)."""
    code = RSCode(6, 4, r=1)
    part = partition(code.H, [0, 1])
    # both parity rows have support {0,1}: a single group of size 2...
    # which IS independent. Force case 1 with an LRC double failure in
    # one group plus a global-parity loss.
    lrc = LRCCode(4, 2, 2)
    part = partition(lrc.H, [0, 1, 6])
    # local row 0 has support {0,1}; globals have {0,1,6}-ish supports
    assert part.rest_faulty_ids != ()


@pytest.mark.parametrize(
    "n,r,m,s,z",
    [(6, 8, 1, 1, 1), (6, 8, 2, 2, 1), (8, 16, 2, 2, 2), (10, 8, 3, 3, 3)],
)
def test_sd_worst_case_structure(n, r, m, s, z):
    """SD worst case: p == r - z groups of m faults; rest is m*z + s square."""
    code = SDCode(n, r, m, s)
    scen = worst_case_sd(code, z=z, rng=1)
    part = partition(code.H, scen.faulty_blocks)
    assert part.p == r - z
    for g in part.groups:
        assert len(g.faulty_ids) == m
        assert len(g.row_ids) == m
    assert len(part.rest_faulty_ids) == m * z + s


@pytest.mark.parametrize(
    "n,r,m,s,z",
    [(6, 8, 1, 1, 1), (6, 8, 2, 2, 1), (8, 16, 2, 2, 2), (12, 8, 3, 2, 2)],
)
def test_fast_path_agrees_with_general(n, r, m, s, z):
    code = SDCode(n, r, m, s)
    for seed in range(5):
        scen = worst_case_sd(code, z=z, rng=seed)
        general = partition(code.H, scen.faulty_blocks)
        fast = partition_sd(code, scen.faulty_blocks)
        assert fast.p == general.p
        assert sorted(g.faulty_ids for g in fast.groups) == sorted(
            g.faulty_ids for g in general.groups
        )
        assert fast.rest_faulty_ids == general.rest_faulty_ids


def test_fast_path_discards_clean_rows():
    code = SDCode(6, 4, 2, 2)
    # only one faulty sector, in row 0
    part = partition_sd(code, [0])
    assert part.p == 1
    # rows of stripe rows 1..3 discarded
    assert len(part.discarded_row_ids) == code.m * 3
    # sector rows always in rest, but no rest faults remain
    assert part.rest_faulty_ids == ()


def test_partial_disk_failure_fast_path():
    """c < m faults in a row still form a group (select c of m rows)."""
    code = SDCode(6, 4, 2, 2)
    part = partition_sd(code, [1])  # one fault, row 0
    (group,) = part.groups
    assert group.faulty_ids == (1,)
    assert len(group.row_ids) == 1
    assert len(group.redundant_row_ids) == 1


def test_lrc_partition():
    """LRC: single failures per group are independent; extras to rest."""
    lrc = LRCCode(8, 2, 2)
    # one data failure in each group + one global parity lost
    faulty = [0, 4, lrc.global_parity_id(0)]
    part = partition(lrc.H, faulty)
    assert part.p >= 2
    recovered = set(part.independent_faulty_ids)
    assert {0, 4} <= recovered | set(part.rest_faulty_ids)


def test_algorithm1_typo_regression_c_le_m():
    """Pin the `c <= m` reading of Algorithm 1 against the printed typo.

    The paper's Algorithm 1 as printed says a stripe row becomes an
    independent group when ``c > m`` — a typo: the worked example,
    Figure 3 and the surrounding text all recover rows with ``c <= m``
    faults independently and send rows with *more* faults than disk
    parities to H_rest (see the `core/partition.py` module docstring).
    This regression test pins the implemented behaviour at both sides of
    the boundary so a future "fix" toward the printed text fails loudly.
    """
    code = SDCode(6, 4, 2, 2)
    # row 0 loses exactly c == m == 2 blocks, row 1 loses c == 3 > m
    faulty = [0, 1, 6, 7, 8]
    part = partition_sd(code, faulty)
    # c == m: independent group, recovered in the parallel phase...
    assert [g.faulty_ids for g in part.groups] == [(0, 1)]
    # ...and c > m: the whole row goes to H_rest (the printed `c > m`
    # reading would have grouped row 1 and restd row 0 instead)
    assert part.rest_faulty_ids == (6, 7, 8)
    # row 1's disk-parity rows feed H_rest, none are discarded
    row1_parity = set(range(code.m * 1, code.m * 1 + code.m))
    assert row1_parity <= set(part.rest_row_ids)
    # the general log-table partition agrees on SD scenarios (the
    # equivalence the module docstring promises)
    general = partition(code.H, faulty)
    assert sorted(g.faulty_ids for g in part.groups) == sorted(
        g.faulty_ids for g in general.groups
    )
    assert part.rest_faulty_ids == general.rest_faulty_ids


def test_algorithm1_typo_regression_boundary_sweep():
    """Every c in 0..r-fault ladder lands on the documented side."""
    code = SDCode(8, 4, 2, 2)
    for c in range(0, code.n - 1):
        faulty = list(range(c))  # c faults in stripe row 0
        if not faulty:
            continue
        part = partition_sd(code, faulty)
        if c <= code.m:
            assert part.p == 1, f"c={c} <= m must form an independent group"
            assert part.groups[0].faulty_ids == tuple(range(c))
            assert part.rest_faulty_ids == ()
        else:
            assert part.p == 0, f"c={c} > m must fall through to H_rest"
            assert part.rest_faulty_ids == tuple(range(c))
