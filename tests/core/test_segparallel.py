"""Unit tests for the segment-parallel (block-level) baseline decoder."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import (
    PPMDecoder,
    SegmentParallelDecoder,
    SequencePolicy,
    TraditionalDecoder,
)
from repro.stripes import Stripe, StripeLayout, worst_case_sd


@pytest.fixture(scope="module")
def setup():
    code = SDCode(6, 8, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 101, rng=1)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    return code, scen, stripe, truth


@pytest.mark.parametrize("threads", [1, 2, 3, 8])
def test_recovers_exact_data(setup, threads):
    """Segment boundaries (including uneven 101/T splits) stay correct."""
    code, scen, stripe, truth = setup
    decoder = SegmentParallelDecoder(threads=threads)
    recovered = decoder.decode(code, stripe, scen.faulty_blocks)
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_pays_same_ops_as_ppm_serial(setup):
    """Data-parallelism composes with PPM's sequence optimisation."""
    code, scen, stripe, _ = setup
    seg = SegmentParallelDecoder(threads=4)
    _, seg_stats = seg.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    ppm = PPMDecoder(parallel=False)
    _, ppm_stats = ppm.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    # total symbols processed are identical; mult_XORs calls are per
    # segment, so counts scale by the segment count
    assert seg_stats.symbols == ppm_stats.symbols
    assert seg_stats.plan.predicted_cost == ppm_stats.plan.predicted_cost


def test_policy_respected(setup):
    code, scen, stripe, truth = setup
    decoder = SegmentParallelDecoder(threads=2, policy=SequencePolicy.MATRIX_FIRST)
    recovered, stats = decoder.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    assert stats.plan.mode.value == "traditional_matrix_first"
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_more_threads_than_symbols():
    code = SDCode(4, 4, 1, 1)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 2, rng=2)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase([2, 6])
    recovered = SegmentParallelDecoder(threads=16).decode(code, stripe, [2, 6])
    for b in (2, 6):
        assert np.array_equal(recovered[b], truth.get(b))


def test_thread_validation():
    with pytest.raises(ValueError):
        SegmentParallelDecoder(threads=0)
