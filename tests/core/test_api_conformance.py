"""Shared API-conformance suite: every decoder speaks the same dialect.

The redesign's contract, checked uniformly across the registry:

- constructors take keyword-only uniform parameters (``threads=``,
  ``policy=``, ``verify=``, ``counter=`` where meaningful) and reject
  positional use;
- ``decode(code, stripe, faulty)`` returns ``{block_id: region}``, and
  ``decode(..., return_stats=True)`` returns ``(recovered, stats)``
  with mult_XOR accounting;
- the legacy ``decode_with_stats`` shim still works but warns;
- ``get_decoder(kind, **params)`` constructs every registered kind.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import (
    BitMatrixDecoder,
    PPMDecoder,
    ProcessParallelDecoder,
    RowParallelDecoder,
    SegmentParallelDecoder,
    TraditionalDecoder,
    available_decoders,
    get_decoder,
    register_decoder,
)
from repro.gf import OpCounter
from repro.pipeline import DecodePipeline
from repro.stripes import Stripe, StripeLayout, worst_case_sd

#: kind -> (constructor params, decoder classes covered)
DECODER_PARAMS: dict[str, dict] = {
    "traditional": {},
    "ppm": {"threads": 2},
    "row_parallel": {"threads": 2},
    "segment_parallel": {"threads": 2},
    "process_parallel": {"threads": 2},
    "bitmatrix": {},
    "pipeline": {"workers": 2, "pool": "serial"},
}

DECODER_CLASSES = [
    TraditionalDecoder,
    PPMDecoder,
    RowParallelDecoder,
    SegmentParallelDecoder,
    ProcessParallelDecoder,
    BitMatrixDecoder,
    DecodePipeline,
]


@pytest.fixture(scope="module")
def setup():
    code = SDCode(6, 6, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 32, rng=1)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    return code, list(scen.faulty_blocks), stripe, truth


def make(kind):
    return get_decoder(kind, **DECODER_PARAMS[kind])


def close(decoder):
    if hasattr(decoder, "close"):
        decoder.close()


def test_registry_covers_every_decoder_class():
    assert set(DECODER_PARAMS) == set(available_decoders())


def test_get_decoder_unknown_kind_lists_available():
    with pytest.raises(ValueError, match="bitmatrix"):
        get_decoder("magic")


def test_register_decoder_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_decoder("ppm", PPMDecoder)


@pytest.mark.parametrize("cls", DECODER_CLASSES)
def test_constructors_are_keyword_only(cls):
    signature = inspect.signature(cls.__init__)
    for name, param in signature.parameters.items():
        if name == "self":
            continue
        assert param.kind is inspect.Parameter.KEYWORD_ONLY, (
            f"{cls.__name__}.__init__ parameter {name!r} is not keyword-only"
        )
    with pytest.raises(TypeError):
        cls("positional")


@pytest.mark.parametrize("kind", sorted(DECODER_PARAMS))
def test_decode_returns_recovered_mapping(setup, kind):
    code, faulty, stripe, truth = setup
    decoder = make(kind)
    try:
        recovered = decoder.decode(code, stripe, faulty)
    finally:
        close(decoder)
    assert sorted(recovered) == sorted(faulty)
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b)), (kind, b)


@pytest.mark.parametrize("kind", sorted(DECODER_PARAMS))
def test_decode_return_stats_flag(setup, kind):
    code, faulty, stripe, truth = setup
    decoder = make(kind)
    try:
        recovered, stats = decoder.decode(code, stripe, faulty, return_stats=True)
    finally:
        close(decoder)
    assert sorted(recovered) == sorted(faulty)
    assert stats.mult_xors > 0
    assert stats.symbols > 0
    assert stats.wall_seconds >= 0.0


@pytest.mark.parametrize("kind", sorted(set(DECODER_PARAMS) - {"pipeline"}))
def test_decode_with_stats_shim_warns_but_works(setup, kind):
    code, faulty, stripe, truth = setup
    decoder = make(kind)
    try:
        with pytest.warns(DeprecationWarning, match="decode_with_stats"):
            recovered, stats = decoder.decode_with_stats(code, stripe, faulty)
    finally:
        close(decoder)
    assert sorted(recovered) == sorted(faulty)
    assert stats.mult_xors > 0
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b)), (kind, b)


@pytest.mark.parametrize(
    "kind", ["traditional", "ppm", "segment_parallel", "process_parallel", "bitmatrix"]
)
def test_counter_parameter_is_uniform(setup, kind):
    code, faulty, stripe, _ = setup
    counter = OpCounter()
    decoder = get_decoder(kind, counter=counter, **DECODER_PARAMS[kind])
    try:
        _, stats = decoder.decode(code, stripe, faulty, return_stats=True)
    finally:
        close(decoder)
    mult_xors, _, _ = counter.snapshot()
    assert mult_xors == stats.mult_xors


@pytest.mark.parametrize("kind", sorted(DECODER_PARAMS))
def test_verify_parameter_is_uniform(setup, kind):
    code, faulty, stripe, truth = setup
    decoder = get_decoder(kind, verify=True, **DECODER_PARAMS[kind])
    try:
        recovered = decoder.decode(code, stripe, faulty)
    finally:
        close(decoder)
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b)), (kind, b)


def test_traditional_sequence_alias_warns():
    with pytest.warns(DeprecationWarning, match="sequence"):
        decoder = TraditionalDecoder(sequence="matrix_first")
    assert decoder.sequence == "matrix_first"


def test_all_decoders_agree_bit_for_bit(setup):
    code, faulty, stripe, truth = setup
    outputs = {}
    for kind in sorted(DECODER_PARAMS):
        decoder = make(kind)
        try:
            outputs[kind] = decoder.decode(code, stripe, faulty)
        finally:
            close(decoder)
    for kind, recovered in outputs.items():
        for b in faulty:
            assert np.array_equal(recovered[b], truth.get(b)), (kind, b)
