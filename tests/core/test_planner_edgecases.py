"""Planner edge cases across codes, word sizes and degenerate scenarios."""

import numpy as np
import pytest

from repro.codes import EvenOddCode, LRCCode, RDPCode, SDCode, StarCode
from repro.core import (
    PPMDecoder,
    SequencePolicy,
    TraditionalDecoder,
    partition,
    plan_decode,
)
from repro.stripes import Stripe, StripeLayout, worst_case_sd


def roundtrip(code, faulty, rng=0, symbols=8):
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, symbols, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(faulty)
    recovered = PPMDecoder(parallel=False).decode(code, stripe, faulty)
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b)), b
    return recovered


def test_single_fault_plan_is_one_group():
    code = SDCode(6, 8, 2, 2)
    plan = plan_decode(code, [0])
    assert plan.p == 1
    assert plan.rest is None
    assert plan.costs.c3 == plan.costs.c4
    roundtrip(code, [0])


def test_sd_without_sector_parity():
    """s = 0 degenerates SD to per-row MDS; everything is independent."""
    code = SDCode(6, 8, 2, 0)
    assert code.H.rows == 2 * 8
    disks = (1, 4)
    faulty = [code.block_id(i, j) for j in disks for i in range(code.r)]
    plan = plan_decode(code, faulty)
    assert plan.p == code.r
    assert plan.rest is None
    roundtrip(code, faulty, rng=1)


def test_parity_only_failure():
    """Losing only parity blocks is decodable (re-encoding)."""
    code = SDCode(6, 4, 2, 2)
    faulty = list(code.parity_block_ids[:4])
    plan = plan_decode(code, faulty)
    assert plan.predicted_cost > 0
    roundtrip(code, faulty, rng=2)


def test_deep_stripe():
    code = SDCode(6, 24, 2, 2)
    scen = worst_case_sd(code, z=2, rng=3)
    plan = plan_decode(code, scen.faulty_blocks)
    assert plan.p == 24 - 2
    roundtrip(code, scen.faulty_blocks, rng=4, symbols=4)


@pytest.mark.parametrize("w", [16, 32])
def test_wide_words(w):
    code = SDCode(6, 4, 2, 1, w)
    scen = worst_case_sd(code, z=1, rng=5)
    plan = plan_decode(code, scen.faulty_blocks)
    assert plan.costs.c4 <= plan.costs.c1
    roundtrip(code, scen.faulty_blocks, rng=6)


@pytest.mark.parametrize(
    "code",
    [EvenOddCode(5), RDPCode(5), StarCode(5)],
    ids=lambda c: c.kind,
)
def test_xor_codes_partition_single_disk(code):
    """One lost disk in an XOR code: every row repairs independently."""
    faulty = [code.block_id(i, 0) for i in range(code.r)]
    part = partition(code.H, faulty)
    assert part.p == code.r
    assert part.rest_faulty_ids == ()
    roundtrip(code, faulty, rng=7)


def test_evenodd_double_disk_uses_rest():
    code = EvenOddCode(5)
    faulty = [code.block_id(i, j) for j in (0, 1) for i in range(code.r)]
    plan = plan_decode(code, faulty)
    # double failure couples rows through the diagonals: H_rest is live
    assert plan.rest is not None or plan.p > 0
    roundtrip(code, faulty, rng=8)


def test_lrc_local_parity_loss_is_reencoding():
    code = LRCCode(8, 2, 2)
    faulty = [code.local_parity_id(0)]
    plan = plan_decode(code, faulty)
    assert plan.p == 1
    assert plan.groups[0].survivor_ids == code.groups[0]
    roundtrip(code, faulty, rng=9)


def test_lrc_global_plus_local():
    code = LRCCode(8, 2, 2)
    faulty = [0, code.global_parity_id(1)]
    plan = plan_decode(code, faulty)
    roundtrip(code, faulty, rng=10)


def test_policy_auto_never_beaten_by_forced():
    code = SDCode(8, 8, 2, 2)
    scen = worst_case_sd(code, z=1, rng=11)
    auto = plan_decode(code, scen.faulty_blocks, SequencePolicy.AUTO)
    for policy in (
        SequencePolicy.NORMAL,
        SequencePolicy.MATRIX_FIRST,
        SequencePolicy.PPM_MATRIX_FIRST_REST,
        SequencePolicy.PPM_NORMAL_REST,
    ):
        forced = plan_decode(code, scen.faulty_blocks, policy)
        assert auto.predicted_cost <= forced.predicted_cost, policy


def test_plans_are_immutable_dataclasses():
    code = SDCode(6, 4, 2, 2)
    plan = plan_decode(code, [0, 1])
    with pytest.raises(AttributeError):
        plan.mode = None


def test_plan_reuse_across_stripes():
    """One plan decodes many stripes with the same failure geometry."""
    code = SDCode(6, 4, 2, 2)
    scen = worst_case_sd(code, z=1, rng=12)
    decoder = PPMDecoder(parallel=False)
    layout = StripeLayout.of_code(code)
    plans = set()
    for seed in range(3):
        stripe = Stripe.random(layout, code.field, 8, rng=seed)
        TraditionalDecoder().encode_into(code, stripe)
        truth = stripe.copy()
        stripe.erase(scen.faulty_blocks)
        recovered, stats = decoder.decode(
            code, stripe, scen.faulty_blocks,
            return_stats=True)
        plans.add(id(stats.plan))
        for b in scen.faulty_blocks:
            assert np.array_equal(recovered[b], truth.get(b))
    assert len(plans) == 1  # cached plan reused
