"""Unit tests for the XOR-only bit-matrix decode backend."""

import numpy as np
import pytest

from repro.codes import LRCCode, SDCode
from repro.core import BitMatrixDecoder, SequencePolicy, TraditionalDecoder
from repro.stripes import Stripe, StripeLayout, worst_case_sd


def valid_stripe(code, symbols=32, rng=0):
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, symbols, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    return stripe


@pytest.fixture(scope="module")
def sd_setup():
    code = SDCode(6, 8, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    stripe = valid_stripe(code, rng=1)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    return code, scen, stripe, truth


@pytest.mark.parametrize(
    "policy",
    [
        SequencePolicy.PAPER,
        SequencePolicy.NORMAL,
        SequencePolicy.MATRIX_FIRST,
        SequencePolicy.PPM_MATRIX_FIRST_REST,
        SequencePolicy.PPM_NORMAL_REST,
    ],
)
def test_recovers_under_every_policy(sd_setup, policy):
    code, scen, stripe, truth = sd_setup
    decoder = BitMatrixDecoder(policy=policy)
    recovered = decoder.decode(code, stripe, scen.faulty_blocks)
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b)), (policy, b)


def test_agrees_with_gf_backend(sd_setup):
    code, scen, stripe, _ = sd_setup
    a = BitMatrixDecoder().decode(code, stripe, scen.faulty_blocks)
    b = TraditionalDecoder().decode(code, stripe, scen.faulty_blocks)
    for bid in scen.faulty_blocks:
        assert np.array_equal(a[bid], b[bid])


def test_all_ops_are_xors(sd_setup):
    code, scen, stripe, _ = sd_setup
    decoder = BitMatrixDecoder()
    _, stats = decoder.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    assert stats.mult_xors > 0
    assert decoder.counter.xor_only == decoder.counter.mult_xors


def test_xor_cost_reflects_blowup(sd_setup):
    """The bit-matrix backend pays ~w^2/2 XORs per dense coefficient."""
    code, scen, _, _ = sd_setup
    decoder = BitMatrixDecoder()
    xors = decoder.xor_cost(code, scen.faulty_blocks)
    gf_ops = decoder.plan(code, scen.faulty_blocks).predicted_cost
    assert xors > gf_ops  # strictly more XORs than GF table ops
    assert xors < gf_ops * code.field.w * code.field.w  # bounded by w^2


def test_ppm_partition_still_reduces_xor_cost(sd_setup):
    """PPM's sequence choice helps the XOR backend too."""
    code, scen, _, _ = sd_setup
    ppm = BitMatrixDecoder(policy=SequencePolicy.PPM_NORMAL_REST)
    mf = BitMatrixDecoder(policy=SequencePolicy.PPM_MATRIX_FIRST_REST)
    assert ppm.xor_cost(code, scen.faulty_blocks) < mf.xor_cost(
        code, scen.faulty_blocks
    )


def test_lrc_roundtrip():
    code = LRCCode(8, 2, 2)
    stripe = valid_stripe(code, rng=2)
    truth = stripe.copy()
    faulty = [0, 4, 6]
    stripe.erase(faulty)
    recovered = BitMatrixDecoder().decode(code, stripe, faulty)
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b))


def test_w16_roundtrip():
    code = SDCode(6, 4, 2, 1, w=16)
    stripe = valid_stripe(code, rng=3)
    truth = stripe.copy()
    scen = worst_case_sd(code, z=1, rng=4)
    stripe.erase(scen.faulty_blocks)
    recovered = BitMatrixDecoder().decode(code, stripe, scen.faulty_blocks)
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_encode_via_bitmatrix():
    code = SDCode(4, 4, 1, 1)
    layout = StripeLayout.of_code(code)
    stripe = Stripe.random(layout, code.field, 16, rng=5)
    a = BitMatrixDecoder().encode(code, stripe)
    b = TraditionalDecoder().encode(code, stripe)
    for bid in code.parity_block_ids:
        assert np.array_equal(a[bid], b[bid])
