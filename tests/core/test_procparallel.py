"""Unit tests for the process-parallel decoder."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import ProcessParallelDecoder, SequencePolicy, TraditionalDecoder
from repro.stripes import Stripe, StripeLayout, worst_case_sd


@pytest.fixture(scope="module")
def setup():
    code = SDCode(6, 6, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 64, rng=1)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    return code, scen, stripe, truth


@pytest.mark.parametrize("threads", [1, 2])
def test_recovers_exact_data(setup, threads):
    code, scen, stripe, truth = setup
    with ProcessParallelDecoder(threads=threads) as decoder:
        recovered = decoder.decode(code, stripe, scen.faulty_blocks)
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_agrees_with_thread_decoder(setup):
    from repro.core import PPMDecoder

    code, scen, stripe, _ = setup
    with ProcessParallelDecoder(threads=2) as decoder:
        a = decoder.decode(code, stripe, scen.faulty_blocks)
    b = PPMDecoder(threads=2).decode(code, stripe, scen.faulty_blocks)
    for bid in scen.faulty_blocks:
        assert np.array_equal(a[bid], b[bid])


def test_op_accounting(setup):
    """Child work is accounted in the parent counter."""
    code, scen, stripe, _ = setup
    with ProcessParallelDecoder(threads=2) as decoder:
        _, stats = decoder.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    assert stats.mult_xors == stats.plan.predicted_cost


def test_whole_matrix_fallback(setup):
    code, scen, stripe, truth = setup
    with ProcessParallelDecoder(threads=2, policy=SequencePolicy.MATRIX_FIRST) as decoder:
        recovered, stats = decoder.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    assert stats.plan.mode.value == "traditional_matrix_first"
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_thread_validation():
    with pytest.raises(ValueError):
        ProcessParallelDecoder(threads=0)


def test_processes_alias_deprecated():
    """The pre-redesign ``processes=`` keyword still works but warns."""
    with pytest.warns(DeprecationWarning, match="processes"):
        decoder = ProcessParallelDecoder(processes=2)
    assert decoder.threads == 2
    assert decoder.processes == 2
    decoder.close()


def test_pool_spawned_once_across_batch(setup):
    """Regression: the worker pool must persist across decode calls.

    The pre-redesign implementation rebuilt a ProcessPoolExecutor inside
    every ``decode``, paying the fork cost per stripe.
    """
    code, scen, stripe, truth = setup
    with ProcessParallelDecoder(threads=2) as decoder:
        for _ in range(3):
            recovered = decoder.decode(code, stripe, scen.faulty_blocks)
        assert decoder.pool.spawn_count == 1
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_pool_respawns_after_close(setup):
    code, scen, stripe, _ = setup
    decoder = ProcessParallelDecoder(threads=2)
    decoder.decode(code, stripe, scen.faulty_blocks)
    decoder.close()
    assert not decoder.pool.alive
    decoder.decode(code, stripe, scen.faulty_blocks)
    assert decoder.pool.spawn_count == 2
    decoder.close()
