"""Unit tests for the process-parallel decoder."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import ProcessParallelDecoder, SequencePolicy, TraditionalDecoder
from repro.stripes import Stripe, StripeLayout, worst_case_sd


@pytest.fixture(scope="module")
def setup():
    code = SDCode(6, 6, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 64, rng=1)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    return code, scen, stripe, truth


@pytest.mark.parametrize("processes", [1, 2])
def test_recovers_exact_data(setup, processes):
    code, scen, stripe, truth = setup
    decoder = ProcessParallelDecoder(processes=processes)
    recovered = decoder.decode(code, stripe, scen.faulty_blocks)
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_agrees_with_thread_decoder(setup):
    from repro.core import PPMDecoder

    code, scen, stripe, _ = setup
    a = ProcessParallelDecoder(processes=2).decode(code, stripe, scen.faulty_blocks)
    b = PPMDecoder(threads=2).decode(code, stripe, scen.faulty_blocks)
    for bid in scen.faulty_blocks:
        assert np.array_equal(a[bid], b[bid])


def test_op_accounting(setup):
    """Child work is accounted in the parent counter."""
    code, scen, stripe, _ = setup
    decoder = ProcessParallelDecoder(processes=2)
    _, stats = decoder.decode_with_stats(code, stripe, scen.faulty_blocks)
    assert stats.mult_xors == stats.plan.predicted_cost


def test_whole_matrix_fallback(setup):
    code, scen, stripe, truth = setup
    decoder = ProcessParallelDecoder(processes=2, policy=SequencePolicy.MATRIX_FIRST)
    recovered, stats = decoder.decode_with_stats(code, stripe, scen.faulty_blocks)
    assert stats.plan.mode.value == "traditional_matrix_first"
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_process_validation():
    with pytest.raises(ValueError):
        ProcessParallelDecoder(processes=0)
