"""Unit tests for the log table data structure."""

import numpy as np
import pytest

from repro.core import LogTableEntry, build_log_table, format_log_table
from repro.gf import GF
from repro.matrix import GFMatrix


def small_h():
    f = GF(8)
    return GFMatrix(
        f,
        np.array(
            [
                [1, 1, 0, 0],
                [0, 2, 3, 0],
                [0, 0, 0, 5],
                [1, 1, 1, 1],
            ],
            dtype=f.dtype,
        ),
    )


def test_entry_validation():
    LogTableEntry(0, 2, (1, 3))
    with pytest.raises(ValueError):
        LogTableEntry(0, 1, (1, 3))


def test_build_basic():
    entries = build_log_table(small_h(), [1, 3])
    assert [(e.t, e.l) for e in entries] == [
        (1, (1,)),
        (1, (1,)),
        (1, (3,)),
        (2, (1, 3)),
    ]
    assert [e.i for e in entries] == [0, 1, 2, 3]


def test_no_faults():
    entries = build_log_table(small_h(), [])
    assert all(e.t == 0 and e.l == () for e in entries)
    assert len(entries) == 4


def test_faulty_dedup_and_sort():
    a = build_log_table(small_h(), [3, 1, 1])
    b = build_log_table(small_h(), [1, 3])
    assert a == b


def test_zero_coefficient_not_counted():
    # column 0 has zeros in rows 1 and 2
    entries = build_log_table(small_h(), [0])
    assert [e.t for e in entries] == [1, 0, 0, 1]


def test_bounds():
    with pytest.raises(IndexError):
        build_log_table(small_h(), [4])
    with pytest.raises(IndexError):
        build_log_table(small_h(), [-1])


def test_format():
    text = format_log_table(build_log_table(small_h(), [1, 3]))
    assert "i  t_i  l_i" in text
    assert "(1, 3)" in text
