"""Unit tests for the parallel group executor."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import (
    PPMDecoder,
    TraditionalDecoder,
    plan_decode,
    run_group,
    run_groups_parallel,
    run_groups_serial,
)
from repro.gf import RegionOps
from repro.stripes import Stripe, StripeLayout, worst_case_sd


@pytest.fixture(scope="module")
def setup():
    code = SDCode(6, 8, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    plan = plan_decode(code, scen.faulty_blocks)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 32, rng=1)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    blocks = {b: stripe.get(b) for b in stripe.present_ids}
    return code, plan, blocks, truth


def test_run_group(setup):
    code, plan, blocks, truth = setup
    group = plan.groups[0]
    out = run_group(group, blocks, RegionOps(code.field))
    assert sorted(out) == sorted(group.faulty_ids)
    for b, region in out.items():
        assert np.array_equal(region, truth.get(b))


def test_serial_equals_parallel(setup):
    code, plan, blocks, truth = setup
    serial, s_timing = run_groups_serial(plan.groups, blocks, RegionOps(code.field))
    parallel, p_timing = run_groups_parallel(
        plan.groups, blocks, RegionOps(code.field), threads=4
    )
    assert sorted(serial) == sorted(parallel)
    for b in serial:
        assert np.array_equal(serial[b], parallel[b])
        assert np.array_equal(serial[b], truth.get(b))
    assert len(s_timing.thread_seconds) == 1
    assert len(p_timing.thread_seconds) == 4
    assert p_timing.wall_seconds > 0
    assert p_timing.busy_seconds > 0


def test_thread_count_clamped(setup):
    code, plan, blocks, _ = setup
    # more threads than groups: clamped to the group count
    _, timing = run_groups_parallel(
        plan.groups, blocks, RegionOps(code.field), threads=1000
    )
    assert len(timing.thread_seconds) == len(plan.groups)


def test_single_thread_short_circuits(setup):
    code, plan, blocks, _ = setup
    _, timing = run_groups_parallel(plan.groups, blocks, RegionOps(code.field), threads=1)
    assert len(timing.thread_seconds) == 1
    assert timing.spawn_seconds == 0.0


def test_op_counter_complete_across_threads(setup):
    """Thread-parallel execution must not lose op counts."""
    code, plan, blocks, _ = setup
    ops_serial = RegionOps(code.field)
    run_groups_serial(plan.groups, blocks, ops_serial)
    ops_parallel = RegionOps(code.field)
    run_groups_parallel(plan.groups, blocks, ops_parallel, threads=4)
    assert ops_serial.counter.mult_xors == ops_parallel.counter.mult_xors
    assert ops_serial.counter.mult_xors == sum(g.cost for g in plan.groups)


def test_round_robin_assignment_matches_algorithm1(setup):
    """Group p lands on worker p mod T (observable via PPMDecoder timing)."""
    code, plan, blocks, truth = setup
    decoder = PPMDecoder(threads=3)
    recovered, stats = decoder.decode(code, blocks, plan.faulty_ids, return_stats=True)
    assert stats.phase1 is not None
    assert len(stats.phase1.thread_seconds) == 3
    for b in plan.partition.independent_faulty_ids:
        assert np.array_equal(recovered[b], truth.get(b))
