"""Hypothesis property tests: encode/decode roundtrips and PPM invariants.

The central invariants:

1. For any decodable failure scenario, every decoder recovers the exact
   lost data (traditional normal == traditional matrix-first == PPM).
2. PPM's measured op count equals the chosen C_i, and C4 <= C1 whenever a
   partition exists.
3. The partition never assigns one faulty block to two groups and always
   covers all faults (groups + rest).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import SDCode, is_decodable
from repro.core import PPMDecoder, SequencePolicy, TraditionalDecoder, partition, plan_decode
from repro.stripes import Stripe, StripeLayout


@st.composite
def sd_code_and_faults(draw):
    n = draw(st.integers(4, 8))
    r = draw(st.integers(2, 6))
    m = draw(st.integers(1, min(2, n - 2)))
    s = draw(st.integers(0, 2))
    if s > (n - m) * r - 2:
        s = 0
    code = SDCode(n, r, m, s, 8)
    max_faults = m * r + s
    count = draw(st.integers(1, max_faults))
    faults = draw(
        st.lists(
            st.integers(0, code.num_blocks - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return code, tuple(sorted(faults))


@given(sd_code_and_faults(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_all_decoders_recover_exactly(params, seed):
    code, faults = params
    if not is_decodable(code, faults):
        return
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 8, rng=seed)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(faults)
    results = []
    for decoder in (
        TraditionalDecoder(policy="normal"),
        TraditionalDecoder(policy="matrix_first"),
        PPMDecoder(parallel=False),
        PPMDecoder(threads=2),
    ):
        recovered = decoder.decode(code, stripe, faults)
        results.append(recovered)
        for b in faults:
            assert np.array_equal(recovered[b], truth.get(b))
    # decoders agree among themselves too
    for other in results[1:]:
        for b in faults:
            assert np.array_equal(results[0][b], other[b])


@given(sd_code_and_faults())
@settings(max_examples=60, deadline=None)
def test_partition_covers_and_is_disjoint(params):
    code, faults = params
    part = partition(code.H, faults)
    seen: set[int] = set()
    for g in part.groups:
        assert not (seen & set(g.faulty_ids)), "groups overlap"
        seen.update(g.faulty_ids)
    assert seen | set(part.rest_faulty_ids) == set(faults)
    assert not (seen & set(part.rest_faulty_ids))
    # row sets disjoint
    rows: set[int] = set(part.rest_row_ids) | set(part.discarded_row_ids)
    for g in part.groups:
        assert not (rows & set(g.row_ids))
        rows.update(g.row_ids)
        rows.update(g.redundant_row_ids)


@given(sd_code_and_faults())
@settings(max_examples=40, deadline=None)
def test_measured_cost_equals_chosen_ci(params):
    code, faults = params
    if not is_decodable(code, faults):
        return
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 4, rng=0)
    TraditionalDecoder().encode_into(code, stripe)
    stripe.erase(faults)
    decoder = PPMDecoder(parallel=False, policy=SequencePolicy.PAPER)
    _, stats = decoder.decode(code, stripe, faults, return_stats=True)
    assert stats.mult_xors == stats.plan.predicted_cost
    assert stats.plan.predicted_cost == min(stats.plan.costs.c2, stats.plan.costs.c4)


@given(sd_code_and_faults())
@settings(max_examples=40, deadline=None)
def test_paper_policy_never_worse_than_traditional_normal(params):
    """min(C2, C4) <= C1: PPM never loses to the baseline on op count."""
    code, faults = params
    if not is_decodable(code, faults):
        return
    plan = plan_decode(code, faults, SequencePolicy.PAPER)
    assert plan.predicted_cost <= plan.costs.c1
