"""Unit tests for calculation-sequence costs and policy choice."""

import pytest

from repro.core import ExecutionMode, SequenceCosts, SequencePolicy


@pytest.fixture
def paper_costs():
    """The worked example's costs (C3 from our exact computation)."""
    return SequenceCosts(c1=35, c2=31, c3=37, c4=29)


def test_cost_of(paper_costs):
    assert paper_costs.cost_of(ExecutionMode.TRADITIONAL_NORMAL) == 35
    assert paper_costs.cost_of(ExecutionMode.TRADITIONAL_MATRIX_FIRST) == 31
    assert paper_costs.cost_of(ExecutionMode.PPM_REST_MATRIX_FIRST) == 37
    assert paper_costs.cost_of(ExecutionMode.PPM_REST_NORMAL) == 29


def test_forced_policies(paper_costs):
    assert paper_costs.choose(SequencePolicy.NORMAL) is ExecutionMode.TRADITIONAL_NORMAL
    assert (
        paper_costs.choose(SequencePolicy.MATRIX_FIRST)
        is ExecutionMode.TRADITIONAL_MATRIX_FIRST
    )
    assert (
        paper_costs.choose(SequencePolicy.PPM_MATRIX_FIRST_REST)
        is ExecutionMode.PPM_REST_MATRIX_FIRST
    )
    assert (
        paper_costs.choose(SequencePolicy.PPM_NORMAL_REST)
        is ExecutionMode.PPM_REST_NORMAL
    )


def test_paper_policy_picks_min_c2_c4(paper_costs):
    assert paper_costs.choose(SequencePolicy.PAPER) is ExecutionMode.PPM_REST_NORMAL
    flipped = SequenceCosts(c1=35, c2=20, c3=37, c4=29)
    assert (
        flipped.choose(SequencePolicy.PAPER) is ExecutionMode.TRADITIONAL_MATRIX_FIRST
    )


def test_paper_policy_prefers_ppm_on_tie():
    tied = SequenceCosts(c1=35, c2=29, c3=37, c4=29)
    assert tied.choose(SequencePolicy.PAPER) is ExecutionMode.PPM_REST_NORMAL


def test_auto_policy_considers_all_four():
    weird = SequenceCosts(c1=10, c2=50, c3=8, c4=50)
    assert weird.choose(SequencePolicy.AUTO) is ExecutionMode.PPM_REST_MATRIX_FIRST
    c1_best = SequenceCosts(c1=5, c2=50, c3=50, c4=50)
    assert c1_best.choose(SequencePolicy.AUTO) is ExecutionMode.TRADITIONAL_NORMAL


def test_as_dict_ratio_reduction(paper_costs):
    assert paper_costs.as_dict() == {"C1": 35, "C2": 31, "C3": 37, "C4": 29}
    assert paper_costs.ratio("c4") == pytest.approx(29 / 35)
    assert paper_costs.ratio("C2") == pytest.approx(31 / 35)
    assert paper_costs.reduction() == pytest.approx(6 / 35)


def test_zero_c1_guarded():
    zero = SequenceCosts(c1=0, c2=0, c3=0, c4=0)
    with pytest.raises(ZeroDivisionError):
        zero.ratio("c4")
    with pytest.raises(ZeroDivisionError):
        zero.reduction()
