"""The paper's worked example, asserted exactly.

SD^{1,1}_{4,4}(8|1,2) with faulty sectors {b2, b6, b10, b13, b14}
(Figures 2 and 3, Section II-B/III-B):

- log table rows (0,1,(2)), (1,1,(6)), (2,1,(10)), (3,2,(13,14)),
  (4,5,(2,6,10,13,14));
- partition: p = 3 singleton groups {b2}, {b6}, {b10}; H_rest = rows
  {3, 4} recovering {b13, b14};
- costs C1 = 35, C2 = 31, C4 = 29; PPM picks C4; the reduction
  (C1-C4)/C1 = 17.14%.
"""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import (
    ExecutionMode,
    PPMDecoder,
    SequencePolicy,
    TraditionalDecoder,
    build_log_table,
    partition,
    partition_sd,
    plan_decode,
)
from repro.stripes import Stripe, StripeLayout

FAULTY = (2, 6, 10, 13, 14)


@pytest.fixture(scope="module")
def code():
    return SDCode(4, 4, 1, 1, 8)


def test_log_table_matches_figure3(code):
    entries = build_log_table(code.H, FAULTY)
    assert [(e.i, e.t, e.l) for e in entries] == [
        (0, 1, (2,)),
        (1, 1, (6,)),
        (2, 1, (10,)),
        (3, 2, (13, 14)),
        (4, 5, (2, 6, 10, 13, 14)),
    ]


def test_partition_matches_figure3(code):
    part = partition(code.H, FAULTY)
    assert part.p == 3
    assert [g.faulty_ids for g in part.groups] == [(2,), (6,), (10,)]
    assert [g.row_ids for g in part.groups] == [(0,), (1,), (2,)]
    assert part.rest_row_ids == (3, 4)
    assert part.rest_faulty_ids == (13, 14)
    assert part.discarded_row_ids == ()
    assert part.independent_faulty_ids == (2, 6, 10)
    assert part.has_rest


def test_sd_fast_path_identical(code):
    general = partition(code.H, FAULTY)
    fast = partition_sd(code, FAULTY)
    assert fast.p == general.p
    assert [g.faulty_ids for g in fast.groups] == [g.faulty_ids for g in general.groups]
    assert fast.rest_faulty_ids == general.rest_faulty_ids


def test_costs_match_section_iii_b(code):
    plan = plan_decode(code, FAULTY, SequencePolicy.PAPER)
    assert plan.costs.c1 == 35
    assert plan.costs.c2 == 31
    assert plan.costs.c4 == 29
    assert plan.costs.reduction() == pytest.approx(0.1714, abs=1e-4)
    assert plan.mode is ExecutionMode.PPM_REST_NORMAL


def test_c2_less_than_c1_as_figure2_notes(code):
    plan = plan_decode(code, FAULTY, SequencePolicy.AUTO)
    assert plan.costs.c2 == 31 < plan.costs.c1 == 35


def test_decoders_recover_exact_data(code):
    layout = StripeLayout.of_code(code)
    stripe = Stripe.random(layout, code.field, 128, rng=2015)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(FAULTY)
    for decoder in (
        TraditionalDecoder(policy="normal"),
        TraditionalDecoder(policy="matrix_first"),
        PPMDecoder(threads=1, parallel=False),
        PPMDecoder(threads=3),
    ):
        recovered = decoder.decode(code, stripe, FAULTY)
        assert sorted(recovered) == list(FAULTY)
        for b in FAULTY:
            assert np.array_equal(recovered[b], truth.get(b)), (decoder, b)


def test_measured_op_counts_equal_predictions(code):
    layout = StripeLayout.of_code(code)
    stripe = Stripe.random(layout, code.field, 16, rng=7)
    TraditionalDecoder().encode_into(code, stripe)
    stripe.erase(FAULTY)
    expectations = [
        (TraditionalDecoder(policy="normal"), 35),
        (TraditionalDecoder(policy="matrix_first"), 31),
        (PPMDecoder(parallel=False), 29),
        (PPMDecoder(policy=SequencePolicy.PPM_MATRIX_FIRST_REST, parallel=False), 37),
    ]
    for decoder, expected in expectations:
        _, stats = decoder.decode(code, stripe, FAULTY, return_stats=True)
        assert stats.mult_xors == expected, type(decoder).__name__
