"""Unit tests for the traditional and PPM decoders."""

import numpy as np
import pytest

from repro.codes import LRCCode, RSCode, SDCode
from repro.core import (
    ExecutionMode,
    PPMDecoder,
    SequencePolicy,
    TraditionalDecoder,
)
from repro.gf import OpCounter
from repro.stripes import Stripe, StripeLayout, lrc_scenario, worst_case_sd


def valid_stripe(code, symbols=32, rng=0):
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, symbols, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    return stripe


@pytest.fixture(scope="module")
def sd_code():
    return SDCode(6, 8, 2, 2)


def check_recovery(code, decoder, faulty, symbols=32, rng=1):
    stripe = valid_stripe(code, symbols, rng)
    truth = stripe.copy()
    stripe.erase(faulty)
    recovered = decoder.decode(code, stripe, faulty)
    assert sorted(recovered) == sorted(faulty)
    for b in faulty:
        assert np.array_equal(recovered[b], truth.get(b)), b
    # survivors untouched
    for b in stripe.present_ids:
        assert np.array_equal(stripe.get(b), truth.get(b))


def test_traditional_both_sequences(sd_code):
    scen = worst_case_sd(sd_code, z=1, rng=2)
    check_recovery(sd_code, TraditionalDecoder(policy="normal"), scen.faulty_blocks)
    check_recovery(sd_code, TraditionalDecoder(policy="matrix_first"), scen.faulty_blocks)


def test_traditional_rejects_unknown_sequence():
    with pytest.raises(ValueError):
        TraditionalDecoder(policy="fastest")


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_ppm_thread_counts(sd_code, threads):
    scen = worst_case_sd(sd_code, z=1, rng=3)
    check_recovery(sd_code, PPMDecoder(threads=threads), scen.faulty_blocks)


def test_ppm_serial_mode(sd_code):
    scen = worst_case_sd(sd_code, z=2, rng=4)
    check_recovery(sd_code, PPMDecoder(parallel=False), scen.faulty_blocks)


def test_ppm_thread_validation():
    with pytest.raises(ValueError):
        PPMDecoder(threads=0)


def test_ppm_and_traditional_agree(sd_code):
    scen = worst_case_sd(sd_code, z=1, rng=5)
    stripe = valid_stripe(sd_code, rng=6)
    stripe_b = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    stripe_b.erase(scen.faulty_blocks)
    a = TraditionalDecoder().decode(sd_code, stripe, scen.faulty_blocks)
    b = PPMDecoder(threads=3).decode(sd_code, stripe_b, scen.faulty_blocks)
    for bid in scen.faulty_blocks:
        assert np.array_equal(a[bid], b[bid])


def test_stats_costs_match_plan(sd_code):
    scen = worst_case_sd(sd_code, z=1, rng=7)
    stripe = valid_stripe(sd_code, symbols=16, rng=8)
    stripe.erase(scen.faulty_blocks)
    decoder = PPMDecoder(parallel=False)
    _, stats = decoder.decode(sd_code, stripe, scen.faulty_blocks, return_stats=True)
    assert stats.mult_xors == stats.plan.predicted_cost
    assert stats.symbols == stats.mult_xors * 16
    assert stats.wall_seconds > 0


def test_ppm_cheaper_than_traditional(sd_code):
    """The headline: PPM's op count beats the traditional baseline."""
    scen = worst_case_sd(sd_code, z=1, rng=9)
    stripe = valid_stripe(sd_code, symbols=16, rng=10)
    stripe.erase(scen.faulty_blocks)
    _, t_stats = TraditionalDecoder().decode(
        sd_code, stripe, scen.faulty_blocks,
        return_stats=True)
    _, p_stats = PPMDecoder(parallel=False).decode(
        sd_code, stripe, scen.faulty_blocks,
        return_stats=True)
    assert p_stats.mult_xors < t_stats.mult_xors


def test_plan_cache_reused(sd_code):
    scen = worst_case_sd(sd_code, z=1, rng=11)
    decoder = PPMDecoder(parallel=False)
    p1 = decoder.plan(sd_code, scen.faulty_blocks)
    p2 = decoder.plan(sd_code, list(scen.faulty_blocks))
    assert p1 is p2


def test_shared_counter():
    code = SDCode(4, 4, 1, 1)
    counter = OpCounter()
    decoder = PPMDecoder(parallel=False, counter=counter)
    stripe = valid_stripe(code, rng=12)
    stripe.erase([2, 6])
    decoder.decode(code, stripe, [2, 6])
    assert counter.mult_xors > 0


def test_encode_matches_reference(sd_code):
    """PPM encoding (parity as faults) equals traditional encoding."""
    layout = StripeLayout.of_code(sd_code)
    stripe = Stripe.random(layout, sd_code.field, 16, rng=13)
    a = TraditionalDecoder().encode(sd_code, stripe)
    b = PPMDecoder(threads=2).encode(sd_code, stripe)
    assert sorted(a) == sorted(b) == sorted(sd_code.parity_block_ids)
    for bid in a:
        assert np.array_equal(a[bid], b[bid])


def test_encode_into(sd_code):
    layout = StripeLayout.of_code(sd_code)
    stripe = Stripe.random(layout, sd_code.field, 8, rng=14)
    PPMDecoder(threads=2).encode_into(sd_code, stripe)
    # resulting stripe satisfies H @ B == 0
    from repro.gf import RegionOps

    ops = RegionOps(sd_code.field)
    regions = [stripe.get(b) for b in range(sd_code.num_blocks)]
    syndromes = ops.matrix_apply(sd_code.H.array, regions)
    assert all(not s.any() for s in syndromes)


def test_lrc_decode():
    lrc = LRCCode(8, 2, 2)
    scen = lrc_scenario(lrc, local_failures=2, extra_failures=1, rng=15)
    check_recovery(lrc, PPMDecoder(threads=2), scen.faulty_blocks, rng=16)
    check_recovery(lrc, TraditionalDecoder(), scen.faulty_blocks, rng=17)


def test_rs_decode():
    rs = RSCode(6, 4, r=4)
    faulty = [rs.block_id(i, j) for j in (1, 4) for i in range(4)]
    check_recovery(rs, TraditionalDecoder(), faulty, rng=18)
    check_recovery(rs, PPMDecoder(threads=2), faulty, rng=19)


def test_word_sizes_roundtrip():
    for w in (16, 32):
        code = SDCode(6, 4, 2, 1, w)
        scen = worst_case_sd(code, z=1, rng=20)
        check_recovery(code, PPMDecoder(threads=2), scen.faulty_blocks, rng=21)


def test_ppm_falls_back_to_whole_matrix_when_c2_wins(sd_code):
    """If policy AUTO finds C2 < C4, PPM must execute the whole-matrix MF."""
    # craft costs where C2 wins by using a scenario with tiny parallel phase:
    # all faults in one stripe row -> single group, no rest.
    plan_faulty = [0, 1]
    decoder = PPMDecoder(policy=SequencePolicy.MATRIX_FIRST, parallel=False)
    stripe = valid_stripe(sd_code, rng=22)
    truth = stripe.copy()
    stripe.erase(plan_faulty)
    recovered, stats = decoder.decode(sd_code, stripe, plan_faulty, return_stats=True)
    assert stats.mode is ExecutionMode.TRADITIONAL_MATRIX_FIRST
    for b in plan_faulty:
        assert np.array_equal(recovered[b], truth.get(b))
