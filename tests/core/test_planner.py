"""Unit tests for decode planning."""

import numpy as np
import pytest

from repro.codes import LRCCode, SDCode
from repro.core import (
    ExecutionMode,
    SequencePolicy,
    evaluate_costs,
    plan_decode,
)
from repro.matrix import GFMatrix, SingularMatrixError, u
from repro.stripes import worst_case_sd


@pytest.fixture(scope="module")
def code():
    return SDCode(6, 8, 2, 2)


@pytest.fixture(scope="module")
def scenario(code):
    return worst_case_sd(code, z=1, rng=0)


def test_plan_shapes(code, scenario):
    plan = plan_decode(code, scenario.faulty_blocks)
    assert plan.faulty_ids == scenario.faulty_blocks
    assert plan.p == code.r - 1  # z = 1
    # every group recovers m blocks from an m x ? weight matrix
    for g in plan.groups:
        assert g.weights.rows == code.m
        assert g.weights.cols == len(g.survivor_ids)
        assert len(g.faulty_ids) == code.m
    rest = plan.rest
    assert rest is not None
    assert len(rest.faulty_ids) == code.m * 1 + code.s
    assert rest.f_inv.rows == rest.f_inv.cols == len(rest.faulty_ids)


def test_rest_survivors_include_recovered(code, scenario):
    """Step 4: blocks recovered in phase 1 act as survivors for H_rest."""
    plan = plan_decode(code, scenario.faulty_blocks)
    recovered = set(plan.partition.independent_faulty_ids)
    assert recovered & set(plan.rest.survivor_ids)


def test_costs_consistent_with_matrices(code, scenario):
    plan = plan_decode(code, scenario.faulty_blocks, SequencePolicy.AUTO)
    group_total = sum(u(g.weights) for g in plan.groups)
    assert plan.costs.c3 == group_total + u(plan.rest.weights)
    assert plan.costs.c4 == group_total + u(plan.rest.f_inv) + u(plan.rest.s)
    assert plan.costs.c1 == u(plan.traditional.f_inv) + u(plan.traditional.s)
    assert plan.costs.c2 == u(plan.traditional.weights)


def test_group_weights_recover_truth_algebraically(code, scenario):
    """W_i rows applied to H-consistent symbol vectors give the lost symbols."""
    plan = plan_decode(code, scenario.faulty_blocks)
    # build one H-consistent symbol vector by "encoding" a random stripe
    rng = np.random.default_rng(3)
    from repro.core import TraditionalDecoder
    from repro.stripes import Stripe, StripeLayout

    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 1, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    symbols = {b: stripe.get(b)[0] for b in range(code.num_blocks)}
    for g in plan.groups:
        vec = np.array([symbols[b] for b in g.survivor_ids], dtype=code.field.dtype)
        got = g.weights.matvec(vec)
        want = np.array([symbols[b] for b in g.faulty_ids], dtype=code.field.dtype)
        assert np.array_equal(got, want)


def test_policy_respected(code, scenario):
    for policy, mode in [
        (SequencePolicy.NORMAL, ExecutionMode.TRADITIONAL_NORMAL),
        (SequencePolicy.MATRIX_FIRST, ExecutionMode.TRADITIONAL_MATRIX_FIRST),
        (SequencePolicy.PPM_NORMAL_REST, ExecutionMode.PPM_REST_NORMAL),
        (SequencePolicy.PPM_MATRIX_FIRST_REST, ExecutionMode.PPM_REST_MATRIX_FIRST),
    ]:
        assert plan_decode(code, scenario.faulty_blocks, policy).mode is mode


def test_empty_faulty_rejected(code):
    with pytest.raises(ValueError):
        plan_decode(code, [])


def test_excess_faults_raise(code):
    too_many = list(range(code.H.rows + 1))
    with pytest.raises(SingularMatrixError):
        plan_decode(code, too_many)


def test_undecodable_scenario_raises():
    lrc = LRCCode(4, 2, 2)
    with pytest.raises(SingularMatrixError):
        plan_decode(lrc, [0, 1, 2, 3, 4])  # > l + g failures... equals rows? 5 > 4


def test_no_rest_plan_when_all_independent():
    code = SDCode(6, 4, 2, 2)
    # two faults in one stripe row only: a single group, no rest
    plan = plan_decode(code, [0, 1])
    assert plan.rest is None
    assert plan.costs.c3 == plan.costs.c4 == sum(g.cost for g in plan.groups)


def test_plan_accepts_raw_matrix(code, scenario):
    direct = plan_decode(code.H, scenario.faulty_blocks)
    via_code = plan_decode(code, scenario.faulty_blocks)
    assert direct.costs == via_code.costs


def test_evaluate_costs_shortcut(code, scenario):
    costs = evaluate_costs(code, scenario.faulty_blocks)
    assert costs == plan_decode(code, scenario.faulty_blocks).costs


def test_survivor_column_compaction(code, scenario):
    """No plan matrix should carry an all-zero survivor column."""
    plan = plan_decode(code, scenario.faulty_blocks, SequencePolicy.AUTO)
    for matrix in [plan.traditional.s, plan.rest.s] + [g.weights for g in plan.groups]:
        assert isinstance(matrix, GFMatrix)
        if matrix.cols:
            assert matrix.array.any(axis=0).all()
