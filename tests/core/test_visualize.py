"""Unit tests for the ASCII matrix/partition renderer."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import inspect, plan_decode, render_matrix, render_partition
from repro.gf import GF
from repro.matrix import GFMatrix

FAULTY = [2, 6, 10, 13, 14]


@pytest.fixture(scope="module")
def code():
    return SDCode(4, 4, 1, 1)


def test_render_matrix_marks_faulty_columns(code):
    text = render_matrix(code.H, FAULTY)
    header = text.splitlines()[0]
    assert header.count("*") == len(FAULTY)


def test_render_matrix_truncates():
    f = GF(8)
    wide = GFMatrix(f, np.ones((2, 60), dtype=f.dtype))
    text = render_matrix(wide, max_cols=10)
    assert "..." in text
    # 10 columns rendered, not 60
    assert text.splitlines()[1].count("1") == 10


def test_render_matrix_row_labels(code):
    text = render_matrix(code.H, FAULTY, row_labels={0: "H0", 4: "Hr"})
    lines = text.splitlines()
    assert lines[1].startswith("H0")
    assert lines[5].startswith("Hr")


def test_render_partition_lists_groups_and_rest(code):
    plan = plan_decode(code, FAULTY)
    text = render_partition(plan)
    assert "H0: rows [0] -> blocks [2]" in text
    assert "H_rest: rows [3, 4] -> blocks [13, 14]" in text
    assert "normal, 20 mult_XORs" in text


def test_render_partition_empty_rest(code):
    plan = plan_decode(code, [2])
    text = render_partition(plan)
    assert "H_rest: empty" in text


def test_inspect_full_dump(code):
    text = inspect(code, FAULTY)
    assert "log table" in text
    assert "partition (p = 3)" in text
    assert "'C1': 35" in text
    assert "ppm_rest_normal (29 mult_XORs)" in text


def test_inspect_without_matrix(code):
    text = inspect(code, FAULTY, show_matrix=False)
    assert "parity-check matrix" not in text


def test_cli_inspect(capsys):
    from repro.cli import main

    assert main(["inspect", "sd", "n=4", "r=4", "m=1", "s=1", "--faulty", "2,6,10,13,14"]) == 0
    out = capsys.readouterr().out
    assert "p = 3" in out
    assert "'C4': 29" in out


def test_cli_inspect_default_scenario(capsys):
    from repro.cli import main

    assert main(["inspect", "sd", "n=6", "r=4", "m=2", "s=2", "--no-matrix"]) == 0
    out = capsys.readouterr().out
    assert "partition" in out
