"""Unit tests for the equation-oriented (row-parallel) baseline decoder."""

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import (
    PPMDecoder,
    RowParallelDecoder,
    TraditionalDecoder,
    plan_decode,
    simulate_row_parallel_time,
)
from repro.parallel import E5_2603, simulate_ppm_time
from repro.stripes import Stripe, StripeLayout, worst_case_sd


@pytest.fixture(scope="module")
def setup():
    code = SDCode(6, 8, 2, 2)
    scen = worst_case_sd(code, z=1, rng=0)
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 32, rng=1)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    return code, scen, stripe, truth


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_recovers_exact_data(setup, threads):
    code, scen, stripe, truth = setup
    decoder = RowParallelDecoder(threads=threads)
    recovered = decoder.decode(code, stripe, scen.faulty_blocks)
    for b in scen.faulty_blocks:
        assert np.array_equal(recovered[b], truth.get(b))


def test_cost_is_c2(setup):
    """The baseline always pays the whole-matrix matrix-first cost."""
    code, scen, stripe, _ = setup
    decoder = RowParallelDecoder(threads=2)
    _, stats = decoder.decode(code, stripe, scen.faulty_blocks, return_stats=True)
    assert stats.mult_xors == stats.plan.costs.c2


def test_no_cost_reduction_vs_ppm(setup):
    """PPM's op count beats the equation-oriented baseline (C4 < C2 here)."""
    code, scen, stripe, _ = setup
    _, rp_stats = RowParallelDecoder(threads=2).decode(
        code, stripe, scen.faulty_blocks,
        return_stats=True)
    _, ppm_stats = PPMDecoder(parallel=False).decode(
        code, stripe, scen.faulty_blocks,
        return_stats=True)
    assert ppm_stats.mult_xors < rp_stats.mult_xors


def test_timing_reported(setup):
    code, scen, stripe, _ = setup
    _, stats = RowParallelDecoder(threads=3).decode(
        code, stripe, scen.faulty_blocks,
        return_stats=True)
    assert stats.phase1 is not None
    assert len(stats.phase1.thread_seconds) == 3


def test_thread_validation():
    with pytest.raises(ValueError):
        RowParallelDecoder(threads=0)


def test_simulated_time_model():
    code = SDCode(16, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=2)
    plan = plan_decode(code, scen.faulty_blocks)
    sym = 1 << 20
    serial = simulate_row_parallel_time(plan, E5_2603, 1, sym)
    assert serial.total_seconds == pytest.approx(
        plan.costs.c2 * sym / E5_2603.throughput
    )
    par = simulate_row_parallel_time(plan, E5_2603, 4, sym)
    assert par.total_seconds < serial.total_seconds
    with pytest.raises(ValueError):
        simulate_row_parallel_time(plan, E5_2603, 0, sym)


def test_ppm_vs_row_parallel_tradeoff():
    """PPM always wins on total work (C4 < C2 -> CPU/energy); the
    equation-oriented baseline can hide its extra ops behind threads in a
    bandwidth-free model because it has no serial rest phase.  At T = 1
    PPM is therefore strictly faster; at high T the baseline's makespan
    can undercut PPM's serial rest (the trade-off the paper's related
    work discussion implies)."""
    code = SDCode(16, 16, 2, 2)
    scen = worst_case_sd(code, z=1, rng=3)
    plan = plan_decode(code, scen.faulty_blocks)
    sym = 1 << 22
    assert plan.predicted_cost < plan.costs.c2  # fewer ops, always
    ppm_serial = simulate_ppm_time(plan, E5_2603, 1, sym)
    rp_serial = simulate_row_parallel_time(plan, E5_2603, 1, sym)
    assert ppm_serial.total_seconds < rp_serial.total_seconds
    # the baseline parallelises all of C2; PPM keeps H_rest serial
    rp4 = simulate_row_parallel_time(plan, E5_2603, 4, sym)
    ppm4 = simulate_ppm_time(plan, E5_2603, 4, sym)
    assert rp4.total_seconds < rp_serial.total_seconds
    assert ppm4.total_seconds < ppm_serial.total_seconds
