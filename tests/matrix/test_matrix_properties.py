"""Hypothesis property tests for GF matrix algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.matrix import GFMatrix, invert, is_invertible, rank, u


@st.composite
def square_matrix(draw, max_n=6):
    w = draw(st.sampled_from([8, 16]))
    n = draw(st.integers(1, max_n))
    f = GF(w)
    data = draw(
        st.lists(
            st.lists(st.integers(0, f.order), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
    return GFMatrix(f, np.array(data, dtype=f.dtype))


@given(square_matrix())
@settings(max_examples=80)
def test_inverse_roundtrip_when_invertible(m):
    if not is_invertible(m):
        return
    identity = GFMatrix.identity(m.field, m.rows)
    assert (m @ invert(m)) == identity
    assert (invert(m) @ m) == identity


@given(square_matrix())
@settings(max_examples=80)
def test_rank_bounds(m):
    r = rank(m)
    assert 0 <= r <= m.rows
    assert (r == m.rows) == is_invertible(m)
    # rank of the transpose matches
    assert rank(m.T) == r


@given(square_matrix(), square_matrix())
@settings(max_examples=60)
def test_u_subadditive_under_product(a, b):
    """u(A@B) <= rows*cols; and matmul preserves the field."""
    if a.field is not b.field or a.cols != b.rows:
        return
    p = a @ b
    assert 0 <= u(p) <= p.rows * p.cols
    assert p.field is a.field


@given(square_matrix())
@settings(max_examples=60)
def test_addition_self_inverse(m):
    assert (m + m) == GFMatrix.zeros(m.field, m.rows, m.cols)


@given(square_matrix())
@settings(max_examples=60)
def test_matmul_distributes_over_addition(m):
    f = m.field
    rng = np.random.default_rng(42)
    b = GFMatrix(f, rng.integers(0, f.order + 1, size=(m.cols, 3)).astype(f.dtype))
    c = GFMatrix(f, rng.integers(0, f.order + 1, size=(m.cols, 3)).astype(f.dtype))
    assert (m @ (b + c)) == ((m @ b) + (m @ c))
