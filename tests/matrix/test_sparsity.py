"""Unit tests for nonzero-structure analysis (the u(M) cost unit)."""

import numpy as np

from repro.gf import GF
from repro.matrix import GFMatrix, column_weights, density, row_support, row_weights, u


def sample():
    f = GF(8)
    return GFMatrix(
        f,
        np.array(
            [
                [1, 0, 2],
                [0, 0, 0],
                [3, 4, 5],
            ],
            dtype=f.dtype,
        ),
    )


def test_u():
    assert u(sample()) == 5
    assert u(GFMatrix.zeros(GF(8), 2, 2)) == 0
    assert u(GFMatrix.identity(GF(8), 7)) == 7


def test_row_weights():
    assert row_weights(sample()).tolist() == [2, 0, 3]


def test_column_weights():
    assert column_weights(sample()).tolist() == [2, 1, 2]


def test_row_support():
    m = sample()
    assert row_support(m, 0) == (0, 2)
    assert row_support(m, 1) == ()
    assert row_support(m, 2) == (0, 1, 2)


def test_density():
    assert density(sample()) == 5 / 9
    assert density(GFMatrix.zeros(GF(8), 0, 5)) == 0.0
