"""Unit tests for the F/S split and column compaction."""

import numpy as np
import pytest

from repro.gf import GF
from repro.matrix import GFMatrix, nonzero_columns, split_fs


@pytest.fixture
def field():
    return GF(8)


def example_h(field):
    # 3x6 matrix with a deliberate zero column at global id 4
    data = np.array(
        [
            [1, 1, 1, 0, 0, 0],
            [0, 2, 0, 4, 0, 0],
            [1, 0, 3, 0, 0, 9],
        ],
        dtype=field.dtype,
    )
    return GFMatrix(field, data)


def test_split_basic(field):
    h = example_h(field)
    split = split_fs(h, faulty=[1, 3])
    assert split.faulty_ids == (1, 3)
    assert np.array_equal(split.F.array, h.array[:, [1, 3]])
    # survivors: 0, 2, 5 (column 4 is all-zero and dropped)
    assert split.survivor_ids == (0, 2, 5)
    assert np.array_equal(split.S.array, h.array[:, [0, 2, 5]])


def test_split_keeps_zero_columns_when_asked(field):
    h = example_h(field)
    split = split_fs(h, faulty=[1], drop_zero_survivor_columns=False)
    assert split.survivor_ids == (0, 2, 3, 4, 5)
    assert split.S.cols == 5


def test_split_preserves_faulty_order(field):
    h = example_h(field)
    split = split_fs(h, faulty=[3, 1])
    # F columns follow the matrix's column order, labelled by global id
    assert split.faulty_ids == (1, 3)


def test_split_with_column_ids(field):
    h = example_h(field)
    ids = [10, 11, 12, 13, 14, 15]
    split = split_fs(h, faulty=[11, 99], column_ids=ids)
    # 99 is not a column of this sub-matrix and is ignored
    assert split.faulty_ids == (11,)
    assert 14 not in split.survivor_ids  # zero column dropped
    assert split.survivor_ids == (10, 12, 13, 15)


def test_split_validates_column_ids_length(field):
    with pytest.raises(ValueError):
        split_fs(example_h(field), faulty=[0], column_ids=[1, 2])


def test_split_no_faulty(field):
    h = example_h(field)
    split = split_fs(h, faulty=[])
    assert split.F.cols == 0
    assert split.F.rows == 3


def test_nonzero_columns(field):
    h = example_h(field)
    assert nonzero_columns(h, [0]) == [0, 1, 2]
    assert nonzero_columns(h, [1, 2]) == [0, 1, 2, 3, 5]
    assert nonzero_columns(h, []) == []
