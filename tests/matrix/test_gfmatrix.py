"""Unit tests for GFMatrix construction, structure and arithmetic."""

import numpy as np
import pytest

from repro.gf import GF
from repro.matrix import GFMatrix


@pytest.fixture(params=[8, 16, 32], ids=lambda w: f"w{w}")
def field(request):
    return GF(request.param)


def random_matrix(field, rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return GFMatrix(field, rng.integers(0, field.order + 1, size=(rows, cols)))


def test_construction_copies_by_default(field):
    src = field.zeros((2, 2))
    m = GFMatrix(field, src)
    src[0, 0] = 1
    assert m[0, 0] == 0


def test_construction_rejects_bad_shapes(field):
    with pytest.raises(ValueError):
        GFMatrix(field, field.zeros(3))
    with pytest.raises(ValueError):
        GFMatrix(field, np.zeros((2, 2, 2), dtype=field.dtype))


def test_construction_coerces_dtype():
    f = GF(8)
    m = GFMatrix(f, [[1, 2], [3, 4]])
    assert m.array.dtype == f.dtype


def test_entries_validated():
    f = GF(4)
    with pytest.raises(ValueError):
        GFMatrix(f, np.array([[200]], dtype=np.int64))


def test_zeros_identity(field):
    z = GFMatrix.zeros(field, 2, 3)
    assert z.shape == (2, 3) and z.nonzero_count == 0
    i = GFMatrix.identity(field, 3)
    assert i.nonzero_count == 3
    assert i[1, 1] == 1 and i[0, 1] == 0


def test_from_rows(field):
    m = GFMatrix.from_rows(field, [[1, 2], [3, 4]])
    assert m.shape == (2, 2)
    assert m[1, 0] == 3


def test_equality_and_hash(field):
    a = random_matrix(field, 3, 3, seed=1)
    b = GFMatrix(field, a.array)
    assert a == b
    assert hash(a) == hash(b)
    b[0, 0] ^= 1
    assert a != b
    assert (a == "nope") is False or True  # NotImplemented path does not raise


def test_take_rows_columns(field):
    m = random_matrix(field, 4, 5, seed=2)
    r = m.take_rows([2, 0])
    assert r.shape == (2, 5)
    assert np.array_equal(r.array[0], m.array[2])
    c = m.take_columns([4, 1])
    assert c.shape == (4, 2)
    assert np.array_equal(c.array[:, 0], m.array[:, 4])


def test_take_is_independent_copy(field):
    m = random_matrix(field, 3, 3, seed=3)
    r = m.take_rows([0])
    r[0, 0] ^= 1
    assert m[0, 0] != r[0, 0]


def test_stacking(field):
    a = random_matrix(field, 2, 3, seed=4)
    b = random_matrix(field, 2, 2, seed=5)
    h = a.hstack(b)
    assert h.shape == (2, 5)
    c = random_matrix(field, 1, 3, seed=6)
    v = a.vstack(c)
    assert v.shape == (3, 3)


def test_stacking_field_mismatch():
    a = GFMatrix.zeros(GF(8), 1, 1)
    b = GFMatrix.zeros(GF(16), 1, 1)
    with pytest.raises(ValueError):
        a.hstack(b)
    with pytest.raises(ValueError):
        a.vstack(b)


def test_addition_is_xor(field):
    a = random_matrix(field, 2, 2, seed=7)
    b = random_matrix(field, 2, 2, seed=8)
    s = a + b
    assert np.array_equal(s.array, a.array ^ b.array)
    # subtraction == addition in characteristic 2
    assert (s - b) == a


def test_addition_shape_mismatch(field):
    with pytest.raises(ValueError):
        random_matrix(field, 2, 2) + random_matrix(field, 2, 3)


def test_scale(field):
    m = random_matrix(field, 2, 2, seed=9)
    s = m.scale(1)
    assert s == m
    z = m.scale(0)
    assert z.nonzero_count == 0


def test_matmul_identity(field):
    m = random_matrix(field, 3, 3, seed=10)
    i = GFMatrix.identity(field, 3)
    assert (m @ i) == m
    assert (i @ m) == m


def test_matmul_associative(field):
    a = random_matrix(field, 2, 3, seed=11)
    b = random_matrix(field, 3, 4, seed=12)
    c = random_matrix(field, 4, 2, seed=13)
    assert ((a @ b) @ c) == (a @ (b @ c))


def test_matmul_against_reference(field):
    """Compare the vectorised matmul with a scalar triple loop."""
    a = random_matrix(field, 3, 4, seed=14)
    b = random_matrix(field, 4, 2, seed=15)
    got = (a @ b).array
    want = field.zeros((3, 2))
    for i in range(3):
        for j in range(2):
            acc = field.dtype.type(0)
            for k in range(4):
                acc ^= field.mul(a[i, k], b[k, j])
            want[i, j] = acc
    assert np.array_equal(got, want)


def test_matmul_shape_checks(field):
    with pytest.raises(ValueError):
        random_matrix(field, 2, 3) @ random_matrix(field, 2, 3)
    a = GFMatrix.zeros(GF(8), 2, 2)
    b = GFMatrix.zeros(GF(16), 2, 2)
    with pytest.raises(ValueError):
        a @ b


def test_matvec(field):
    m = random_matrix(field, 3, 3, seed=16)
    v = np.array([1, 0, 2], dtype=field.dtype)
    got = m.matvec(v)
    want = m.array[:, 0] ^ field.mul(field.dtype.type(2), m.array[:, 2])
    assert np.array_equal(got, want)


def test_transpose(field):
    m = random_matrix(field, 2, 4, seed=17)
    t = m.T
    assert t.shape == (4, 2)
    assert np.array_equal(t.array, m.array.T)


def test_array_view_readonly(field):
    m = random_matrix(field, 2, 2, seed=18)
    with pytest.raises(ValueError):
        m.array[0, 0] = 1
