"""Unit tests for Gaussian elimination: inversion, rank, row selection."""

import numpy as np
import pytest

from repro.gf import GF
from repro.matrix import (
    GFMatrix,
    SingularMatrixError,
    invert,
    is_invertible,
    rank,
    select_independent_rows,
    solve,
)


@pytest.fixture(params=[8, 16, 32], ids=lambda w: f"w{w}")
def field(request):
    return GF(request.param)


def random_invertible(field, n, seed=0):
    rng = np.random.default_rng(seed)
    while True:
        m = GFMatrix(field, rng.integers(0, field.order + 1, size=(n, n)))
        if is_invertible(m):
            return m


def test_invert_identity(field):
    i = GFMatrix.identity(field, 4)
    assert invert(i) == i


def test_invert_roundtrip(field):
    m = random_invertible(field, 5, seed=1)
    mi = invert(m)
    assert (m @ mi) == GFMatrix.identity(field, 5)
    assert (mi @ m) == GFMatrix.identity(field, 5)


def test_invert_diagonal(field):
    d = GFMatrix(field, np.diag([3, 5, 7]).astype(field.dtype))
    di = invert(d)
    expected = np.diag([int(field.inv(field.dtype.type(v))) for v in (3, 5, 7)])
    assert np.array_equal(di.array, expected.astype(field.dtype))


def test_invert_requires_pivoting(field):
    """A matrix with a zero in the leading position needs a row swap."""
    m = GFMatrix(field, np.array([[0, 1], [1, 0]], dtype=field.dtype))
    mi = invert(m)
    assert (m @ mi) == GFMatrix.identity(field, 2)


def test_invert_singular_raises(field):
    s = GFMatrix(field, np.array([[1, 1], [1, 1]], dtype=field.dtype))
    with pytest.raises(SingularMatrixError):
        invert(s)
    z = GFMatrix.zeros(field, 3, 3)
    with pytest.raises(SingularMatrixError):
        invert(z)


def test_invert_non_square_raises(field):
    with pytest.raises(ValueError):
        invert(GFMatrix.zeros(field, 2, 3))


def test_rank(field):
    assert rank(GFMatrix.identity(field, 4)) == 4
    assert rank(GFMatrix.zeros(field, 3, 5)) == 0
    # duplicate rows collapse
    row = np.array([[1, 2, 3]], dtype=field.dtype)
    m = GFMatrix(field, np.vstack([row, row, row]))
    assert rank(m) == 1


def test_rank_rectangular(field):
    m = random_invertible(field, 4, seed=2)
    wide = m.take_rows([0, 1])
    assert rank(wide) == 2


def test_is_invertible(field):
    assert is_invertible(random_invertible(field, 3, seed=3))
    assert not is_invertible(GFMatrix.zeros(field, 2, 2))
    assert not is_invertible(GFMatrix.zeros(field, 2, 3))


def test_solve(field):
    m = random_invertible(field, 4, seed=4)
    rng = np.random.default_rng(5)
    x = rng.integers(0, field.order + 1, size=4).astype(field.dtype)
    b = m.matvec(x)
    got = solve(m, b)
    assert np.array_equal(got, x)


def test_select_independent_rows_prefers_earliest(field):
    rows = np.array(
        [[1, 0], [1, 0], [0, 1]],
        dtype=field.dtype,
    )
    m = GFMatrix(field, rows)
    assert select_independent_rows(m, 2) == [0, 2]


def test_select_independent_rows_full_default(field):
    m = random_invertible(field, 4, seed=6)
    assert select_independent_rows(m) == [0, 1, 2, 3]


def test_select_independent_rows_insufficient(field):
    rows = np.array([[1, 1], [1, 1]], dtype=field.dtype)
    with pytest.raises(SingularMatrixError):
        select_independent_rows(GFMatrix(field, rows), 2)


def test_select_independent_rows_scaled_duplicates(field):
    """Rows that are scalar multiples of each other are dependent."""
    base = np.array([1, 2, 3], dtype=field.dtype)
    scaled = GF(field.w).mul(field.dtype.type(5), base)
    other = np.array([0, 0, 1], dtype=field.dtype)
    m = GFMatrix(field, np.vstack([base, scaled, other]))
    assert select_independent_rows(m, 2) == [0, 2]


def test_invert_large(field):
    m = random_invertible(field, 24, seed=7)
    assert (m @ invert(m)) == GFMatrix.identity(field, 24)
