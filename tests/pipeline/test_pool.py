"""Worker-pool lifecycle: lazy spawn, persistence, re-spawn, accounting."""

from __future__ import annotations

import threading

import pytest

from repro.pipeline import (
    ProcessWorkerPool,
    SerialPool,
    ThreadWorkerPool,
    WorkerPool,
    available_pools,
    make_pool,
)


def test_available_pools():
    assert available_pools() == ("process", "serial", "thread")


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_make_pool(kind):
    pool = make_pool(kind, workers=2)
    assert pool.kind == kind
    assert pool.workers == 2
    pool.close()


def test_make_pool_unknown_kind():
    with pytest.raises(ValueError, match="unknown pool kind"):
        make_pool("gpu")


@pytest.mark.parametrize("cls", [SerialPool, ThreadWorkerPool, ProcessWorkerPool])
def test_worker_validation(cls):
    with pytest.raises(ValueError):
        cls(0)


def test_lazy_spawn_and_persistence():
    pool = ThreadWorkerPool(2)
    assert not pool.alive
    assert pool.spawn_count == 0
    try:
        assert pool.submit(int, "7").result() == 7
        assert pool.alive
        assert pool.spawn_count == 1
        # further submissions reuse the same executor
        for _ in range(5):
            pool.submit(len, "abc").result()
        assert pool.spawn_count == 1
        assert pool.spawn_seconds >= 0.0
    finally:
        pool.close()


def test_close_then_respawn():
    pool = ThreadWorkerPool(1)
    pool.submit(int, "1").result()
    pool.close()
    assert not pool.alive
    assert pool.submit(int, "2").result() == 2
    assert pool.spawn_count == 2
    pool.close()


def test_serial_pool_never_spawns():
    pool = SerialPool()
    assert pool.submit(sum, [1, 2, 3]).result() == 6
    assert pool.spawn_count == 0
    assert not pool.alive
    pool.close()  # no-op, must not raise


def test_serial_pool_propagates_exceptions():
    pool = SerialPool()
    future = pool.submit(int, "not a number")
    with pytest.raises(ValueError):
        future.result()


def test_run_buckets_preserves_order():
    with ThreadWorkerPool(4) as pool:
        results = pool.run_buckets(lambda bucket: sum(bucket), [[1], [2, 3], [4, 5, 6]])
    assert results == [1, 5, 15]


def test_map_preserves_order():
    with SerialPool() as pool:
        assert pool.map(lambda x: x * x, range(5)) == [0, 1, 4, 9, 16]


def test_thread_pool_actually_uses_worker_threads():
    seen = set()
    with ThreadWorkerPool(2) as pool:
        pool.map(lambda _: seen.add(threading.current_thread().name), range(8))
    assert all(name.startswith("ppm-pool") for name in seen)


def test_context_manager_closes():
    with ThreadWorkerPool(1) as pool:
        pool.submit(int, "3").result()
        assert pool.alive
    assert not pool.alive


def test_base_pool_is_serial():
    pool = WorkerPool(1)
    assert pool.submit(int, "9").result() == 9


# -- the atexit registry -----------------------------------------------------


def test_live_registry_tracks_spawned_pools():
    from repro.pipeline import live_pools

    pool = ThreadWorkerPool(1)
    assert pool not in live_pools()  # lazy: nothing spawned yet
    try:
        pool.submit(int, "1").result()
        assert pool in live_pools()
    finally:
        pool.close()
    assert pool not in live_pools()


def test_serial_pool_never_enters_registry():
    from repro.pipeline import live_pools

    pool = SerialPool()
    pool.submit(int, "1").result()
    assert pool not in live_pools()


def test_close_live_pools_closes_everything():
    from repro.pipeline import close_live_pools, live_pools

    pools = [ThreadWorkerPool(1) for _ in range(3)]
    for pool in pools:
        pool.submit(int, "1").result()
    assert all(pool in live_pools() for pool in pools)
    close_live_pools()
    assert not any(pool.alive for pool in pools)
    assert all(pool not in live_pools() for pool in pools)


def test_close_live_pools_survives_a_broken_pool():
    from repro.pipeline import close_live_pools

    bad, good = ThreadWorkerPool(1), ThreadWorkerPool(1)
    bad.submit(int, "1").result()
    good.submit(int, "1").result()
    bad.close = lambda: (_ for _ in ()).throw(RuntimeError("broken"))  # type: ignore[method-assign]
    try:
        close_live_pools()  # must not raise
    finally:
        WorkerPool.close(bad)  # real cleanup
    assert not good.alive


def test_atexit_hook_is_registered():
    import atexit

    from repro.pipeline import close_live_pools
    from repro.pipeline import pool as pool_module

    assert pool_module.close_live_pools is close_live_pools
    # unregister returns None either way; re-register to leave state intact,
    # but first prove the hook was there by unregistering it
    atexit.unregister(close_live_pools)
    atexit.register(close_live_pools)


def test_respawn_after_registry_close_reenters_registry():
    from repro.pipeline import close_live_pools, live_pools

    pool = ThreadWorkerPool(1)
    pool.submit(int, "1").result()
    close_live_pools()
    assert not pool.alive
    pool.submit(int, "2").result()  # persistent pools respawn on demand
    assert pool in live_pools()
    pool.close()


def test_shutdown_hook_installs_exactly_once():
    """Re-running the installer (module reload) must not stack duplicate
    atexit hooks: the marker on the atexit module dedups them."""
    import atexit

    from repro.pipeline import pool as pool_module

    marker = getattr(atexit, pool_module._HOOK_ATTR)
    assert marker is pool_module.close_live_pools
    pool_module._install_shutdown_hook()
    pool_module._install_shutdown_hook()
    # still exactly one registration: unregister once, and the marker
    # protocol lets a fresh install restore it cleanly
    atexit.unregister(pool_module.close_live_pools)
    pool_module._install_shutdown_hook()
    assert getattr(atexit, pool_module._HOOK_ATTR) is pool_module.close_live_pools


def test_swallowed_close_error_is_logged(caplog):
    """close_live_pools keeps going past a broken pool but must leave a
    debug trace, not vanish the error entirely."""
    import logging

    from repro.pipeline import close_live_pools

    bad = ThreadWorkerPool(1)
    bad.submit(int, "1").result()
    bad.close = lambda: (_ for _ in ()).throw(RuntimeError("broken"))  # type: ignore[method-assign]
    try:
        with caplog.at_level(logging.DEBUG, logger="repro.pipeline.pool"):
            close_live_pools()
    finally:
        WorkerPool.close(bad)
    assert any("ignoring error closing pool" in r.message for r in caplog.records)


# -- deadlines and first-failure cancellation --------------------------------


def test_first_failure_cancels_outstanding_buckets():
    """A worker exception must not leave sibling buckets running: queued
    work is cancelled, the first failure propagates, and the pool is
    immediately reusable."""
    from repro.pipeline import StragglerTimeout  # noqa: F401  (public surface)

    sibling_ran = threading.Event()

    def run(bucket):
        if bucket == ["boom"]:
            raise ValueError("injected bucket failure")
        sibling_ran.set()
        return bucket

    with ThreadWorkerPool(1) as pool:
        with pytest.raises(ValueError, match="injected bucket failure"):
            # one worker: the raiser runs first, the sibling is still
            # queued when the failure is observed and must be cancelled
            pool.run_buckets(run, [["boom"], ["sibling"]])
        assert not sibling_ran.wait(0.2)
        # the pool survives a failed gather
        assert pool.run_buckets(sum, [[1, 2]]) == [3]


def test_deadline_raises_straggler_timeout_with_finished_buckets():
    from repro.pipeline import StragglerTimeout

    release = threading.Event()

    def run(bucket):
        if bucket == ["slow"]:
            release.wait(10.0)
        return list(bucket)

    with ThreadWorkerPool(2) as pool:
        try:
            with pytest.raises(StragglerTimeout) as exc_info:
                pool.run_buckets(run, [["fast"], ["slow"]], deadline_s=0.25)
        finally:
            release.set()
    exc = exc_info.value
    assert isinstance(exc, TimeoutError)  # catchable as the stdlib type
    assert exc.deadline_s == 0.25
    assert exc.completed == (0,)
    assert exc.pending == (1,)
    assert exc.results[0] == ["fast"]
    assert "1 of 2 bucket(s)" in str(exc)


def test_deadline_met_returns_normally():
    with ThreadWorkerPool(2) as pool:
        assert pool.run_buckets(sum, [[1], [2, 3]], deadline_s=5.0) == [1, 5]


def test_map_deadline():
    from repro.pipeline import StragglerTimeout

    release = threading.Event()

    def work(x):
        if x == 1:
            release.wait(10.0)
        return x * x

    with ThreadWorkerPool(2) as pool:
        try:
            with pytest.raises(StragglerTimeout) as exc_info:
                pool.map(work, [0, 1], deadline_s=0.25)
        finally:
            release.set()
    assert exc_info.value.completed == (0,)
    assert exc_info.value.results[0] == 0


def test_serial_pool_deadline_is_best_effort():
    """SerialPool futures are already resolved at submit time, so a
    deadline can never expire mid-gather — but the parameter must be
    accepted for pool interchangeability."""
    with SerialPool() as pool:
        assert pool.run_buckets(sum, [[1, 2]], deadline_s=0.001) == [3]
