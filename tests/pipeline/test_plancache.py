"""Plan-cache correctness: LRU behaviour, keying, verification, counters."""

from __future__ import annotations

import pytest

from repro.codes import SDCode
from repro.core import SequencePolicy, plan_decode
from repro.pipeline import PlanCache
from repro.stripes import worst_case_sd


@pytest.fixture(scope="module")
def code():
    return SDCode(6, 6, 2, 2)


@pytest.fixture(scope="module")
def faulty(code):
    return list(worst_case_sd(code, z=1, rng=0).faulty_blocks)


def test_miss_then_hit_returns_same_plan(code, faulty):
    cache = PlanCache()
    first = cache.get(code, faulty)
    second = cache.get(code, faulty)
    assert first is second
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5
    assert len(cache) == 1


def test_cached_plan_matches_direct_planning(code, faulty):
    cached = PlanCache().get(code, faulty, SequencePolicy.PAPER)
    direct = plan_decode(code, faulty, SequencePolicy.PAPER)
    assert cached.mode == direct.mode
    assert cached.faulty_ids == direct.faulty_ids
    assert cached.costs == direct.costs


def test_pattern_order_and_duplicates_normalised(code, faulty):
    cache = PlanCache()
    cache.get(code, faulty)
    cache.get(code, list(reversed(faulty)))
    cache.get(code, faulty + [faulty[0]])
    assert cache.stats.misses == 1
    assert cache.stats.hits == 2


def test_policy_is_part_of_the_key(code, faulty):
    """Changing the sequence policy must not reuse another policy's plan."""
    cache = PlanCache()
    paper = cache.get(code, faulty, SequencePolicy.PAPER)
    normal = cache.get(code, faulty, SequencePolicy.NORMAL)
    assert cache.stats.misses == 2
    assert cache.stats.hits == 0
    assert paper is not normal
    assert paper is cache.get(code, faulty, SequencePolicy.PAPER)


def test_different_patterns_are_distinct_entries(code):
    cache = PlanCache()
    cache.get(code, [0, 7])
    cache.get(code, [1, 8])
    assert cache.stats.misses == 2
    assert len(cache) == 2


def test_lru_eviction(code):
    cache = PlanCache(maxsize=2)
    cache.get(code, [0, 7])
    cache.get(code, [1, 8])
    cache.get(code, [0, 7])  # refresh: [1, 8] is now least recent
    cache.get(code, [2, 9])  # evicts [1, 8]
    assert cache.stats.evictions == 1
    assert len(cache) == 2
    cache.get(code, [0, 7])
    assert cache.stats.hits == 2  # survived the eviction
    cache.get(code, [1, 8])
    assert cache.stats.misses == 4  # re-planned after eviction


def test_maxsize_validation():
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


def test_verify_certifies_misses(code, faulty):
    cache = PlanCache(verify=True)
    plan = cache.get(code, faulty)
    assert plan is cache.get(code, faulty)  # hit skips re-verification


def test_clear_and_reset_stats(code, faulty):
    cache = PlanCache()
    cache.get(code, faulty)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.misses == 1  # counters survive clear()
    cache.reset_stats()
    assert cache.stats.lookups == 0
    assert cache.stats.hit_rate == 0.0


def test_stats_as_dict(code, faulty):
    cache = PlanCache()
    cache.get(code, faulty)
    cache.get(code, faulty)
    assert cache.stats.as_dict() == {
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "hit_rate": 0.5,
    }


def test_key_of_matches_get(code, faulty):
    key = PlanCache.key_of(code, faulty, SequencePolicy.PAPER)
    assert key == (id(code.H), tuple(sorted(set(faulty))), SequencePolicy.PAPER)
