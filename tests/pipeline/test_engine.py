"""Batched decode engine: correctness, accounting, metrics, integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import PPMDecoder, SequencePolicy, TraditionalDecoder, get_decoder
from repro.gf import OpCounter
from repro.pipeline import BatchStats, DecodePipeline, PipelineMetrics, SerialPool
from repro.stripes import DiskArray, Stripe, StripeLayout, worst_case_sd


@pytest.fixture(scope="module")
def code():
    return SDCode(6, 6, 2, 2)


@pytest.fixture(scope="module")
def faulty(code):
    return list(worst_case_sd(code, z=1, rng=0).faulty_blocks)


def make_stripes(code, count, symbols=32, rng=1):
    layout = StripeLayout.of_code(code)
    gen = np.random.default_rng(rng)
    encoder = TraditionalDecoder()
    stripes = []
    for _ in range(count):
        stripe = Stripe.random(layout, code.field, symbols, gen)
        encoder.encode_into(code, stripe)
        stripes.append(stripe)
    return stripes


def reference_decode(code, stripes, faulty):
    decoder = PPMDecoder(parallel=False)
    return [decoder.decode(code, s, faulty) for s in stripes]


def assert_results_equal(expected, got):
    assert len(expected) == len(got)
    for exp, out in zip(expected, got):
        assert set(exp) == set(out)
        for bid in exp:
            assert np.array_equal(exp[bid], out[bid])


@pytest.mark.parametrize("pool", ["serial", "thread", "process"])
def test_batch_bit_identical_to_uncached_decoder(code, faulty, pool):
    stripes = make_stripes(code, 5)
    expected = reference_decode(code, stripes, faulty)
    with DecodePipeline(workers=2, pool=pool) as pipe:
        got = pipe.decode_batch(code, stripes, faulty)
    assert_results_equal(expected, got)


def test_mixed_patterns_in_one_batch(code):
    stripes = make_stripes(code, 4)
    patterns = [[0, 7], [1, 8], [0, 7], [2, 9]]
    decoder = PPMDecoder(parallel=False)
    expected = [
        decoder.decode(code, s, pat) for s, pat in zip(stripes, patterns)
    ]
    with DecodePipeline(workers=2, pool="serial") as pipe:
        got, stats = pipe.decode_batch(code, stripes, patterns, return_stats=True)
    assert_results_equal(expected, got)
    assert stats.patterns == 3
    assert stats.plan_misses == 3
    assert stats.plan_hits == 1  # the repeated [0, 7] stripe


def test_faulty_none_reads_erased_ids(code, faulty):
    stripes = make_stripes(code, 3)
    truths = [s.copy() for s in stripes]
    for s in stripes:
        s.erase(faulty)
    with DecodePipeline(workers=1, pool="serial") as pipe:
        got = pipe.decode_batch(code, stripes)
    for truth, out in zip(truths, got):
        assert set(out) == set(faulty)
        for bid in faulty:
            assert np.array_equal(out[bid], truth.get(bid))


def test_faulty_none_rejects_plain_mappings(code):
    blocks = {b: np.zeros(4, dtype=code.field.dtype) for b in range(code.num_blocks)}
    with DecodePipeline(pool="serial") as pipe:
        with pytest.raises(TypeError, match="faulty=None requires Stripe"):
            pipe.decode_batch(code, [blocks])


def test_intact_stripes_decode_to_empty(code, faulty):
    stripes = make_stripes(code, 3)
    patterns = [list(faulty), [], list(faulty)]
    with DecodePipeline(pool="serial") as pipe:
        got, stats = pipe.decode_batch(code, stripes, patterns, return_stats=True)
    assert got[1] == {}
    assert set(got[0]) == set(faulty)
    assert stats.stripes == 3
    assert stats.patterns == 1


def test_pattern_count_mismatch_raises(code, faulty):
    stripes = make_stripes(code, 2)
    with DecodePipeline(pool="serial") as pipe:
        with pytest.raises(ValueError, match="erasure patterns for"):
            pipe.decode_batch(code, stripes, [faulty])


def test_single_decode_protocol(code, faulty):
    stripe = make_stripes(code, 1)[0]
    expected = reference_decode(code, [stripe], faulty)[0]
    with DecodePipeline(pool="serial") as pipe:
        out = pipe.decode(code, stripe, faulty)
        out2, stats = pipe.decode(code, stripe, faulty, return_stats=True)
    assert_results_equal([expected], [out])
    assert isinstance(stats, BatchStats)
    assert stats.stripes == 1
    assert stats.plan_hits == 1  # second decode reused the cached plan


def test_counter_matches_batch_stats(code, faulty):
    """The shared OpCounter and BatchStats tell the same mult_XORs story."""
    counter = OpCounter()
    stripes = make_stripes(code, 4)
    with DecodePipeline(pool="serial", counter=counter) as pipe:
        _, s1 = pipe.decode_batch(code, stripes, faulty, return_stats=True)
        _, s2 = pipe.decode_batch(code, stripes, faulty, return_stats=True)
    mult_xors, _, symbols = counter.snapshot()
    assert mult_xors == s1.mult_xors + s2.mult_xors
    assert symbols == s1.symbols + s2.symbols
    assert pipe.metrics().mult_xors == mult_xors


def test_fused_batch_costs_same_region_ops_as_one_stripe(code, faulty):
    """Fusion: N stripes of one pattern cost the same *op count* as one."""
    with DecodePipeline(pool="serial") as pipe:
        _, one = pipe.decode_batch(code, make_stripes(code, 1), faulty, return_stats=True)
    with DecodePipeline(pool="serial") as pipe:
        _, many = pipe.decode_batch(code, make_stripes(code, 6), faulty, return_stats=True)
    assert many.mult_xors == one.mult_xors
    assert many.symbols == 6 * one.symbols


def test_single_stripe_ops_match_serial_ppm(code, faulty):
    """A batch of one pays exactly the serial PPM decoder's op bill."""
    stripe = make_stripes(code, 1)[0]
    _, ref_stats = PPMDecoder(parallel=False).decode(
        code, stripe, faulty, return_stats=True
    )
    with DecodePipeline(pool="serial") as pipe:
        _, stats = pipe.decode_batch(code, [stripe], faulty, return_stats=True)
    assert stats.mult_xors == ref_stats.mult_xors


def test_process_pool_accounting_matches_thread(code, faulty):
    stripes = make_stripes(code, 4)
    with DecodePipeline(workers=2, pool="thread") as pipe:
        _, t_stats = pipe.decode_batch(code, stripes, faulty, return_stats=True)
    with DecodePipeline(workers=2, pool="process") as pipe:
        _, p_stats = pipe.decode_batch(code, stripes, faulty, return_stats=True)
    assert p_stats.mult_xors == t_stats.mult_xors
    assert p_stats.symbols == t_stats.symbols


def test_policy_flows_into_plans(code, faulty):
    with DecodePipeline(pool="serial", policy=SequencePolicy.NORMAL) as pipe:
        _, stats = pipe.decode(code, make_stripes(code, 1)[0], faulty, return_stats=True)
    plan = pipe.plans.get(code, faulty, SequencePolicy.NORMAL)
    assert not plan.uses_partition
    assert stats.mult_xors == plan.predicted_cost


def test_verify_mode_certifies_plans(code, faulty):
    with DecodePipeline(pool="serial", verify=True) as pipe:
        got = pipe.decode_batch(code, make_stripes(code, 2), faulty)
    assert all(set(out) == set(faulty) for out in got)


def test_round_robin_assignment(code, faulty):
    stripes = make_stripes(code, 3)
    expected = reference_decode(code, stripes, faulty)
    with DecodePipeline(workers=2, pool="thread", assignment="round_robin") as pipe:
        got = pipe.decode_batch(code, stripes, faulty)
    assert_results_equal(expected, got)


def test_invalid_assignment_rejected():
    with pytest.raises(ValueError, match="assignment"):
        DecodePipeline(assignment="random")


def test_metrics_snapshot(code, faulty):
    with DecodePipeline(workers=2, pool="thread") as pipe:
        assert pipe.metrics().stripes == 0
        pipe.decode_batch(code, make_stripes(code, 4), faulty)
        pipe.decode_batch(code, make_stripes(code, 4), faulty)
        m = pipe.metrics()
    assert isinstance(m, PipelineMetrics)
    assert m.stripes == 8
    assert m.batches == 2
    assert m.stripes_per_sec > 0
    assert m.plan_cache_hit_rate == 7 / 8
    assert m.pool_kind == "thread"
    assert m.workers == 2
    assert m.pool_spawns == 1  # persistent across both batches
    assert len(m.worker_busy_fraction) == 2
    assert m.queue_depth_peak >= 1
    as_dict = m.as_dict()
    assert as_dict["plan_cache"]["hits"] == 7
    assert as_dict["pool"]["spawns"] == 1
    assert "stripes/sec" in m.format_table()


def test_metrics_coalesce_factor_and_evictions(code, faulty):
    stripes = make_stripes(code, 4)
    with DecodePipeline(pool="serial") as pipe:
        pipe.decode_batch(code, stripes, faulty)  # 4 stripes, 1 pattern
        m = pipe.metrics()
        assert m.patterns == 1
        assert m.coalesce_factor == pytest.approx(4.0)
        # two patterns in one batch halves the fusion
        pipe.decode_batch(code, stripes, [list(faulty), [0, 7], list(faulty), [0, 7]])
        m = pipe.metrics()
        assert m.patterns == 3
        assert m.coalesce_factor == pytest.approx(8 / 3)
        assert m.evictions == m.plan_cache_evictions + m.program_cache_evictions
    as_dict = m.as_dict()
    assert as_dict["patterns"] == 3
    assert as_dict["coalesce_factor"] == pytest.approx(8 / 3)
    assert as_dict["evictions"] == m.evictions
    assert "coalesce factor" in m.format_table()


def test_metrics_coalesce_factor_idle_is_zero():
    m = PipelineMetrics()
    assert m.coalesce_factor == 0.0
    assert m.evictions == 0


def test_executor_stats_merged_across_compiled_ops(code, faulty):
    stripes = make_stripes(code, 3)
    with DecodePipeline(pool="serial", compile=True) as pipe:
        assert pipe.executor_stats() == {}  # nothing compiled yet
        pipe.decode_batch(code, stripes, faulty)
        stats = pipe.executor_stats()
    assert stats["executions"] > 0
    assert stats["symbols"] > 0
    assert stats["exec_seconds"] >= 0.0
    # mult_XORs accounting reconciles: executor symbols == pipeline symbols
    assert stats["symbols"] == pipe.metrics().symbols


def test_executor_stats_empty_when_interpreted(code, faulty):
    with DecodePipeline(pool="serial", compile=False) as pipe:
        pipe.decode_batch(code, make_stripes(code, 2), faulty)
        assert pipe.executor_stats() == {}


def test_shared_pool_instance(code, faulty):
    pool = SerialPool()
    with DecodePipeline(pool=pool) as pipe:
        assert pipe.pool is pool
        assert pipe.workers == pool.workers
        pipe.decode_batch(code, make_stripes(code, 2), faulty)


def test_registry_constructs_pipeline():
    pipe = get_decoder("pipeline", workers=2, pool="serial")
    assert isinstance(pipe, DecodePipeline)
    pipe.close()


def valid_array(code, num_stripes=3, symbols=16, rng=0):
    arr = DiskArray(code, num_stripes=num_stripes, sector_symbols=symbols, rng=rng)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(arr.stripes, arr._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    return arr


def test_array_rebuild_routes_through_decode_batch(code):
    arr = valid_array(code)
    arr.fail_disk(2)
    with DecodePipeline(workers=2, pool="thread") as pipe:
        repaired = arr.rebuild(pipe)
    assert repaired == code.r * arr.num_stripes
    assert arr.fully_intact()
    # all stripes shared the disk-loss pattern: one miss, rest hits
    m = pipe.metrics()
    assert m.plan_cache_misses == 1
    assert m.plan_cache_hits == arr.num_stripes - 1


def test_array_rebuild_nothing_to_do(code):
    arr = valid_array(code)
    with DecodePipeline(pool="serial") as pipe:
        assert arr.rebuild(pipe) == 0
    assert arr.fully_intact()


def test_pipeline_rebuilder_strategy(code):
    from repro.parallel import PipelineRebuilder

    arr = valid_array(code, rng=5)
    arr.fail_disk(1)
    result = PipelineRebuilder(threads=2).rebuild(arr)
    assert result.blocks_repaired == code.r * arr.num_stripes
    assert result.strategy == "pipeline (batched)"
    assert arr.fully_intact()


def test_degraded_read_with_pipeline(code, faulty):
    arr = valid_array(code, rng=7)
    victim = faulty[0]
    truth = arr._truth[0].get(victim).copy()
    arr.corrupt_sector(0, victim)
    with DecodePipeline(pool="serial") as pipe:
        value = arr.degraded_read(pipe, 0, victim)
    assert np.array_equal(value, truth)
