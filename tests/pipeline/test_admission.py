"""PriorityAdmission: foreground-first gating with bounded deferral."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import TraditionalDecoder
from repro.pipeline import DecodePipeline, PriorityAdmission
from repro.stripes import Stripe, StripeLayout, worst_case_sd


def test_validates_inputs():
    with pytest.raises(ValueError):
        PriorityAdmission(max_defer_s=-1)
    gate = PriorityAdmission()
    with pytest.raises(ValueError):
        with gate.admit("urgent"):
            pass


def test_foreground_admits_immediately_and_counts():
    gate = PriorityAdmission()
    with gate.admit("foreground"):
        assert gate.foreground_active == 1
        with gate.admit("foreground"):  # classes never block their own kind
            assert gate.foreground_active == 2
    assert gate.foreground_active == 0
    assert gate.deferred_batches == 0


def test_background_defers_until_foreground_clears():
    gate = PriorityAdmission(max_defer_s=5.0)
    entered = threading.Event()
    release = threading.Event()
    order: list[str] = []

    def foreground():
        with gate.admit("foreground"):
            entered.set()
            release.wait(timeout=5.0)
            order.append("foreground-done")

    def background():
        entered.wait(timeout=5.0)
        with gate.admit("background"):
            order.append("background-ran")

    fg = threading.Thread(target=foreground)
    bg = threading.Thread(target=background)
    fg.start()
    bg.start()
    entered.wait(timeout=5.0)
    release.set()
    fg.join(timeout=5.0)
    bg.join(timeout=5.0)
    assert order == ["foreground-done", "background-ran"]
    assert gate.deferred_batches == 1
    assert gate.deferred_seconds > 0.0


def test_anti_starvation_bound():
    """Background proceeds after max_defer_s even under a foreground
    batch that never finishes."""
    gate = PriorityAdmission(max_defer_s=0.02)
    release = threading.Event()

    def stuck_foreground():
        with gate.admit("foreground"):
            release.wait(timeout=5.0)

    fg = threading.Thread(target=stuck_foreground)
    fg.start()
    while not gate.foreground_active:
        pass
    try:
        with gate.admit("background"):
            assert gate.foreground_active == 1  # still running; we gave up waiting
            assert gate.background_active == 1
    finally:
        release.set()
        fg.join(timeout=5.0)
    assert gate.deferred_batches == 1
    assert gate.deferred_seconds >= 0.02


def test_zero_defer_disables_the_gate():
    gate = PriorityAdmission(max_defer_s=0.0)
    with gate.admit("foreground"):
        with gate.admit("background"):  # no deferral at all
            pass
    assert gate.deferred_batches == 0


def test_idle_background_is_not_deferred():
    gate = PriorityAdmission()
    with gate.admit("background"):
        pass
    assert gate.deferred_batches == 0
    assert gate.deferred_seconds == 0.0


def test_pipeline_counts_background_batches():
    code = SDCode(6, 4, 2, 2)
    layout = StripeLayout.of_code(code)
    gen = np.random.default_rng(1)
    encoder = TraditionalDecoder()
    stripes = []
    for _ in range(2):
        stripe = Stripe.random(layout, code.field, 16, gen)
        encoder.encode_into(code, stripe)
        stripes.append(stripe)
    faulty = [list(worst_case_sd(code, z=1, rng=0).faulty_blocks)] * 2
    with DecodePipeline(pool="serial") as pipeline:
        pipeline.decode_batch(code, stripes, faulty)
        pipeline.decode_batch(code, stripes, faulty, priority="background")
        with pytest.raises(ValueError):
            pipeline.decode_batch(code, stripes, faulty, priority="urgent")
        metrics = pipeline.metrics()
    assert metrics.background_batches == 1
    assert metrics.batches == 2
    doc = metrics.as_dict()
    assert doc["background_batches"] == 1
    assert "deferred" in metrics.format_table()
