"""Hedged execution, worker self-verification and decode deadlines.

Determinism notes: the SD(6,4,2,2) worst-case pattern plans into a
single parallel task, so every ``decode_batch`` call here is exactly
one worker execution — warmup counts below rely on that.  Injectors
are either seeded :class:`FaultInjector` instances or tiny scripted
doubles (the engine duck-types ``worker_delay`` /
``corrupt_worker_output``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.pipeline import build_batch
from repro.codes import SDCode
from repro.pipeline import DecodePipeline, LatencyTracker, StragglerTimeout
from repro.service.store import FaultInjector
from repro.stripes import worst_case_sd

SYMBOLS = 64
WARMUP = 30  # executions needed before the measured call (min_samples <= 30)


@pytest.fixture(scope="module")
def workload():
    code = SDCode(6, 4, 2, 2)
    faulty = list(worst_case_sd(code, z=1, rng=7).faulty_blocks)
    stripes = build_batch(code, 2, SYMBOLS, seed=7)
    expected = [
        {bid: np.array(stripe.get(bid)) for bid in faulty} for stripe in stripes
    ]
    return code, stripes, faulty, expected


class ScriptedInjector:
    """Stall execution number ``at`` (1-based) by ``delay_s``; no corruption."""

    def __init__(self, at: int, delay_s: float):
        self.at = at
        self.delay_s = delay_s
        self.calls = 0

    def worker_delay(self) -> float:
        self.calls += 1
        return self.delay_s if self.calls == self.at else 0.0

    def corrupt_worker_output(self, regions) -> bool:
        return False


def _assert_truth(expected, outs):
    for exp, out in zip(expected, outs):
        for bid, region in exp.items():
            assert np.array_equal(region, out[bid]), f"block {bid} corrupt"


def test_hedge_fires_on_straggler_and_wins(workload):
    code, stripes, faulty, expected = workload
    faults = ScriptedInjector(at=WARMUP + 1, delay_s=0.6)
    with DecodePipeline(
        workers=2,
        pool="thread",
        hedge=True,
        hedge_percentile=0.9,
        hedge_factor=2.0,
        hedge_min_samples=8,
        faults=faults,
    ) as pipe:
        for _ in range(WARMUP):
            _assert_truth(expected, pipe.decode_batch(code, stripes, faulty))
        assert pipe.metrics().hedges == 0  # healthy executions never hedge
        import time

        t0 = time.perf_counter()
        outs = pipe.decode_batch(code, stripes, faulty)
        wall = time.perf_counter() - t0
        metrics = pipe.metrics()
    _assert_truth(expected, outs)
    assert metrics.hedges == 1
    assert metrics.hedge_wins == 1
    # the hedge rescued the call from the 0.6 s stall
    assert wall < 0.5


def test_hedge_loser_output_is_discarded_not_merged(workload):
    """After a hedge win the stalled primary eventually finishes; its
    output must be dropped, and later calls stay correct."""
    code, stripes, faulty, expected = workload
    faults = ScriptedInjector(at=WARMUP + 1, delay_s=0.3)
    with DecodePipeline(
        workers=2,
        pool="thread",
        hedge=True,
        hedge_percentile=0.9,
        hedge_min_samples=8,
        faults=faults,
    ) as pipe:
        for _ in range(WARMUP + 1):
            pipe.decode_batch(code, stripes, faulty)
        # the loser resolves mid-flight here; every later call must be clean
        for _ in range(5):
            _assert_truth(expected, pipe.decode_batch(code, stripes, faulty))
        assert pipe.metrics().hedge_wins == 1


def test_verify_workers_rejects_corrupted_output(workload):
    code, stripes, faulty, expected = workload
    faults = FaultInjector(rate=0.0, rng=3, corrupt_worker_rate=0.99)
    with DecodePipeline(
        workers=2, pool="thread", verify_workers=True, faults=faults
    ) as pipe:
        for _ in range(5):
            _assert_truth(expected, pipe.decode_batch(code, stripes, faulty))
        metrics = pipe.metrics()
    assert faults.corrupt_injected >= 1
    # every injected corruption was caught and recomputed on the
    # trusted path — none reached a caller (asserted above)
    assert metrics.verify_rejects == faults.corrupt_injected


def test_corruption_leaks_without_verify_workers(workload):
    """The negative control: with verification off the same injector
    demonstrably poisons results, so the syndrome check is load-bearing."""
    code, stripes, faulty, expected = workload
    faults = FaultInjector(rate=0.0, rng=3, corrupt_worker_rate=0.99)
    with DecodePipeline(workers=2, pool="thread", faults=faults) as pipe:
        outs = pipe.decode_batch(code, stripes, faulty)
    assert faults.corrupt_injected >= 1
    leaked = any(
        not np.array_equal(region, out[bid])
        for exp, out in zip(expected, outs)
        for bid, region in exp.items()
    )
    assert leaked


def test_verify_workers_clean_path_is_silent(workload):
    code, stripes, faulty, expected = workload
    with DecodePipeline(workers=2, pool="thread", verify_workers=True) as pipe:
        _assert_truth(expected, pipe.decode_batch(code, stripes, faulty))
        assert pipe.metrics().verify_rejects == 0


class AlwaysSlow:
    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def worker_delay(self) -> float:
        return self.delay_s

    def corrupt_worker_output(self, regions) -> bool:
        return False


def test_decode_batch_deadline_raises_straggler_timeout(workload):
    code, stripes, faulty, _expected = workload
    with DecodePipeline(
        workers=2, pool="thread", deadline_s=0.1, faults=AlwaysSlow(5.0)
    ) as pipe:
        with pytest.raises(StragglerTimeout) as exc_info:
            pipe.decode_batch(code, stripes, faulty)
        assert pipe.metrics().straggler_timeouts == 1
    assert exc_info.value.pending  # the stalled bucket is named


def test_per_call_deadline_overrides_constructor(workload):
    code, stripes, faulty, expected = workload
    with DecodePipeline(
        workers=2, pool="thread", deadline_s=0.05, faults=AlwaysSlow(0.3)
    ) as pipe:
        # a generous per-call deadline lets the stalled worker finish
        outs = pipe.decode_batch(code, stripes, faulty, deadline_s=30.0)
        assert pipe.metrics().straggler_timeouts == 0
    _assert_truth(expected, outs)


def test_constructor_validation():
    with pytest.raises(ValueError, match="hedge_percentile"):
        DecodePipeline(pool="serial", hedge_percentile=0.0)
    with pytest.raises(ValueError, match="hedge_factor"):
        DecodePipeline(pool="serial", hedge_factor=0.5)
    with pytest.raises(ValueError, match="hedge_min_samples"):
        DecodePipeline(pool="serial", hedge_min_samples=0)
    with pytest.raises(ValueError, match="deadline_s"):
        DecodePipeline(pool="serial", deadline_s=0.0)


# -- the latency tracker -----------------------------------------------------


def test_latency_tracker_ewma_and_percentile():
    tracker = LatencyTracker(alpha=0.5, window=8)
    assert tracker.ewma("k") is None
    assert tracker.percentile("k", 0.99) is None
    tracker.observe("k", 1.0)
    assert tracker.ewma("k") == pytest.approx(1.0)
    tracker.observe("k", 3.0)
    assert tracker.ewma("k") == pytest.approx(2.0)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0):
        tracker.observe("other", value)
    # nearest-rank quantile over the window
    assert tracker.percentile("other", 0.5) == pytest.approx(3.0)
    assert tracker.samples("other") == 5


def test_latency_tracker_window_slides():
    tracker = LatencyTracker(window=4)
    for _ in range(4):
        tracker.observe("k", 100.0)
    for _ in range(4):
        tracker.observe("k", 1.0)  # evicts every 100.0
    assert tracker.percentile("k", 1.0) == pytest.approx(1.0)
    assert tracker.samples("k") == 4  # ring is bounded by the window


def test_hedge_after_needs_min_samples():
    tracker = LatencyTracker()
    for _ in range(7):
        tracker.observe("k", 0.01)
    assert tracker.hedge_after("k", min_samples=8) is None
    tracker.observe("k", 0.01)
    trigger = tracker.hedge_after("k", percentile=0.95, factor=2.0, min_samples=8)
    assert trigger == pytest.approx(0.02)
