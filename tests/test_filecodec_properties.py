"""Hypothesis property tests for the file codec: any payload, any loss
within tolerance, exact roundtrip."""

import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import SDCode
from repro.filecodec import decode_file, encode_file


@given(
    size=st.integers(0, 20_000),
    seed=st.integers(0, 2**31 - 1),
    lost=st.sets(st.integers(0, 5), max_size=2),
)
@settings(max_examples=15, deadline=None)
def test_roundtrip_any_size_and_loss(tmp_path_factory, size, seed, lost):
    tmp = tmp_path_factory.mktemp("fc")
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
    src = tmp / "f.bin"
    src.write_bytes(payload)
    code = SDCode(6, 2, 2, 1)
    out = tmp / "enc"
    encode_file(str(src), code, str(out), sector_bytes=256)
    for disk in lost:
        os.remove(out / f"f_disk{disk:03d}.dat")
    restored = tmp / "r.bin"
    decode_file(str(out / "f_meta.json"), str(restored))
    assert restored.read_bytes() == payload
