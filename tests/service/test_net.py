"""The JSON-lines TCP wire: round-trips, error mapping, lifecycle."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.service import BlobService, ServiceConfig, connect, serve
from repro.service.errors import BlockUnavailableError, DeadlineExceeded, ServiceError

from .conftest import SYMBOLS, make_store


def run_with_server(code, store, body, config=None):
    """Start service + TCP server, run ``body(client)``, tear down."""
    config = config or ServiceConfig(batch_trigger=2, flush_interval_s=0.002)

    async def main():
        async with BlobService(store, config=config) as service:
            server = await serve(service, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            client = await connect(("127.0.0.1", port))
            try:
                return await body(client, service)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

    return asyncio.run(main())


def test_ping_get_put_metrics_roundtrip(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def body(client, service):
        await client.ping()
        data = await client.get(0, 0)
        assert store.verify_block(0, 0, np.asarray(data, dtype=code.field.dtype))
        payload = list(range(SYMBOLS))
        await client.put(0, 0, payload)
        assert await client.get(0, 0) == payload
        metrics = await client.metrics()
        assert metrics["requests"]["gets"] == 2
        assert metrics["requests"]["puts"] == 1

    run_with_server(code, store, body)


def test_degraded_get_over_the_wire(code):
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]

    async def body(client, service):
        data = await client.degraded_get(0, block)
        assert store.verify_block(0, block, np.asarray(data, dtype=code.field.dtype))

    run_with_server(code, store, body)


def test_errors_map_back_to_typed_exceptions(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def body(client, service):
        with pytest.raises(BlockUnavailableError):
            await client.get(99, 0)  # unknown stripe
        config = ServiceConfig(batch_trigger=100, flush_interval_s=30.0)
        service.config = config
        service.scheduler._config = config
        store.erase(0, [0])
        with pytest.raises(DeadlineExceeded):
            await client.degraded_get(0, 0, deadline_s=0.02)
        # the connection survives typed errors
        await client.ping()

    run_with_server(code, store, body)


def test_bad_requests_are_rejected_not_fatal(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def body(client, service):
        with pytest.raises(ServiceError):
            await client._roundtrip({"op": "frobnicate"})
        with pytest.raises(ServiceError):
            await client._roundtrip({"op": "get", "stripe": "nope", "block": 0})
        await client.ping()  # still connected

    run_with_server(code, store, body)


def test_malformed_json_closes_the_connection(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def body(client, service):
        client._writer.write(b"this is not json\n")
        await client._writer.drain()
        line = await client._reader.readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["kind"] == "BadRequest"
        assert await client._reader.readline() == b""  # server hung up

    run_with_server(code, store, body)


def test_concurrent_clients_coalesce_on_the_server(code):
    store = make_store(code, num_stripes=4)
    block = store.pattern(0)[0]
    config = ServiceConfig(batch_trigger=4, flush_interval_s=0.05)

    async def main():
        async with BlobService(store, config=config) as service:
            server = await serve(service, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            clients = [
                await connect(("127.0.0.1", port)) for _ in range(4)
            ]
            try:
                results = await asyncio.gather(
                    *(
                        client.degraded_get(sid, block)
                        for sid, client in enumerate(clients)
                    )
                )
                for sid, data in enumerate(results):
                    region = np.asarray(data, dtype=code.field.dtype)
                    assert store.verify_block(sid, block, region)
                assert service.metrics.flushes == 1  # all four fused
            finally:
                for client in clients:
                    await client.close()
                server.close()
                await server.wait_closed()

    asyncio.run(main())


def test_client_refuses_use_after_close(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def body(client, service):
        await client.close()
        with pytest.raises(ServiceError):
            await client.ping()

    run_with_server(code, store, body)
