"""CoalescingScheduler: triggers, admission, fault windows, lifecycle."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import PPMDecoder
from repro.service import CoalescingScheduler, FaultInjector, ServiceConfig, ServiceMetrics
from repro.service.errors import (
    BatchDecodeError,
    NodeFault,
    ServiceClosedError,
    ServiceOverloadError,
)

from .conftest import make_store


def make_scheduler(code, store, config, decode=None):
    metrics = ServiceMetrics()
    if decode is None:
        decoder = PPMDecoder(parallel=False, compile=False)

        def decode(snapshots, patterns):
            return [
                decoder.decode(code, blocks, pattern)
                for blocks, pattern in zip(snapshots, patterns)
            ]

    return CoalescingScheduler(store, decode, config, metrics), metrics


def test_size_trigger_fuses_one_flush(code):
    """batch_trigger concurrent same-pattern reads -> exactly one flush."""
    store = make_store(code, num_stripes=3)
    config = ServiceConfig(batch_trigger=3, flush_interval_s=10.0)
    scheduler, metrics = make_scheduler(code, store, config)
    block = store.pattern(0)[0]

    async def main():
        results = await asyncio.gather(
            *(scheduler.submit(sid, block) for sid in range(3))
        )
        await scheduler.close()
        return results

    results = asyncio.run(main())
    assert metrics.flushes == 1
    assert metrics.flushed_reads == 3
    assert metrics.coalesce_factor == pytest.approx(3.0)
    for sid, region in enumerate(results):
        assert store.verify_block(sid, block, region)


def test_deadline_trigger_frees_a_lone_read(code):
    """An under-full group flushes after flush_interval_s regardless."""
    store = make_store(code, num_stripes=1)
    config = ServiceConfig(batch_trigger=100, flush_interval_s=0.005)
    scheduler, metrics = make_scheduler(code, store, config)
    block = store.pattern(0)[0]

    async def main():
        region = await asyncio.wait_for(scheduler.submit(0, block), timeout=5.0)
        await scheduler.close()
        return region

    region = asyncio.run(main())
    assert store.verify_block(0, block, region)
    assert metrics.flushes == 1
    assert metrics.flushed_reads == 1


def test_admission_control_sheds_beyond_max_pending(code):
    store = make_store(code, num_stripes=3)
    config = ServiceConfig(batch_trigger=100, flush_interval_s=10.0, max_pending=2)
    scheduler, metrics = make_scheduler(code, store, config)
    block = store.pattern(0)[0]

    async def main():
        queued = [
            asyncio.create_task(scheduler.submit(sid, block)) for sid in range(2)
        ]
        await asyncio.sleep(0)  # let both submits enqueue
        assert scheduler.pending == 2
        with pytest.raises(ServiceOverloadError):
            await scheduler.submit(2, block)
        await scheduler.drain()
        return await asyncio.gather(*queued)

    results = asyncio.run(main())
    assert metrics.rejected == 1
    assert len(results) == 2
    assert metrics.queue_depth_peak == 2


def test_distinct_patterns_get_distinct_groups(code):
    store = make_store(code, num_stripes=2, damaged=0.0)
    store.erase(0, [0])
    store.erase(1, [1])
    config = ServiceConfig(batch_trigger=100, flush_interval_s=10.0)
    scheduler, metrics = make_scheduler(code, store, config)

    async def main():
        tasks = [
            asyncio.create_task(scheduler.submit(0, 0)),
            asyncio.create_task(scheduler.submit(1, 1)),
        ]
        await asyncio.sleep(0)
        assert set(scheduler.open_patterns) == {(0,), (1,)}
        await scheduler.drain()
        return await asyncio.gather(*tasks)

    results = asyncio.run(main())
    assert metrics.flushes == 2  # one per pattern, even drained together
    assert store.verify_block(0, 0, results[0])
    assert store.verify_block(1, 1, results[1])


def test_double_fault_while_queued_decodes_under_wider_pattern(code):
    """A second erasure arriving between enqueue and flush is honoured:
    the flush re-reads the pattern, so the read still returns truth."""
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.erase(0, [0])
    config = ServiceConfig(batch_trigger=100, flush_interval_s=10.0)
    scheduler, metrics = make_scheduler(code, store, config)

    async def main():
        task = asyncio.create_task(scheduler.submit(0, 0))
        await asyncio.sleep(0)  # queued under pattern (0,)
        store.erase(0, [1])  # double fault before the flush
        await scheduler.drain()
        return await task

    region = asyncio.run(main())
    assert store.verify_block(0, 0, region)
    assert metrics.flushes == 1


class _TargetedFault(FaultInjector):
    """Faults exactly one stripe's next check; everything else passes."""

    def __init__(self, victim: int):
        super().__init__(0.0)
        self.victim: int | None = victim

    def check(self, stripe_id: int) -> None:
        if stripe_id == self.victim:
            self.victim = None
            raise NodeFault(f"targeted fault on stripe {stripe_id}")


def test_fault_at_flush_time_fails_only_that_read(code):
    """A NodeFault snapshotting one stripe must not poison its riders."""
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]
    config = ServiceConfig(batch_trigger=100, flush_interval_s=10.0)
    scheduler, metrics = make_scheduler(code, store, config)

    async def main():
        tasks = [
            asyncio.create_task(scheduler.submit(sid, block)) for sid in range(2)
        ]
        await asyncio.sleep(0)
        # arm the injector *after* enqueue so the fault lands at flush time
        store.faults = _TargetedFault(victim=0)
        await scheduler.drain()
        return await asyncio.gather(*tasks, return_exceptions=True)

    results = asyncio.run(main())
    assert isinstance(results[0], NodeFault)  # the faulted snapshot failed
    assert isinstance(results[1], np.ndarray)  # its rider still decoded
    assert store.verify_block(1, block, results[1])
    assert metrics.flushed_reads == 1


def test_batch_decode_error_wraps_and_hits_every_rider(code):
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]
    config = ServiceConfig(batch_trigger=2, flush_interval_s=10.0)

    def broken(snapshots, patterns):
        raise ValueError("poisoned batch plan")

    scheduler, metrics = make_scheduler(code, store, config, decode=broken)

    async def main():
        return await asyncio.gather(
            *(scheduler.submit(sid, block) for sid in range(2)),
            return_exceptions=True,
        )

    results = asyncio.run(main())
    assert len(results) == 2
    for exc in results:
        assert isinstance(exc, BatchDecodeError)
        assert isinstance(exc.__cause__, ValueError)
    assert metrics.batch_errors == 1


def test_infrastructure_error_is_not_wrapped_as_decode_failure(code):
    """A RuntimeError from a dying pool reaches every rider *raw*:
    wrapping it as BatchDecodeError would tell the server layer the
    batch was poisoned and trigger a pointless fallback decode."""
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]
    config = ServiceConfig(batch_trigger=2, flush_interval_s=10.0)

    def dying_pool(snapshots, patterns):
        raise RuntimeError("cannot schedule new futures after shutdown")

    scheduler, metrics = make_scheduler(code, store, config, decode=dying_pool)

    async def main():
        return await asyncio.gather(
            *(scheduler.submit(sid, block) for sid in range(2)),
            return_exceptions=True,
        )

    results = asyncio.run(main())
    assert len(results) == 2
    for exc in results:
        assert isinstance(exc, RuntimeError)
        assert not isinstance(exc, BatchDecodeError)
    assert metrics.batch_errors == 1


def test_decode_error_with_single_decode_falls_back_per_rider(code):
    """With a single_decode hook, a decode-shaped batch failure routes
    every rider through the fallback; nobody sees an exception."""
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]
    config = ServiceConfig(batch_trigger=2, flush_interval_s=10.0)

    def broken(snapshots, patterns):
        raise ValueError("poisoned batch plan")

    metrics = ServiceMetrics()
    decoder = PPMDecoder(parallel=False, compile=False)

    def single(stripe_id, blk, inject):
        recovered = decoder.decode(
            code, store.snapshot_blocks(stripe_id, inject=False),
            store.pattern(stripe_id),
        )
        return recovered[blk]

    scheduler = CoalescingScheduler(
        store, broken, config, metrics, single_decode=single
    )

    async def main():
        return await asyncio.gather(
            *(scheduler.submit(sid, block) for sid in range(2))
        )

    results = asyncio.run(main())
    for sid, region in enumerate(results):
        assert store.verify_block(sid, block, region)
    assert metrics.batch_errors == 1
    assert metrics.fallbacks == 2


def test_cancelled_read_is_skipped_by_the_flush(code):
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]
    config = ServiceConfig(batch_trigger=100, flush_interval_s=10.0)
    scheduler, metrics = make_scheduler(code, store, config)

    async def main():
        task = asyncio.create_task(scheduler.submit(0, block))
        await asyncio.sleep(0)
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)
        await scheduler.drain()

    asyncio.run(main())
    assert metrics.flushes == 0  # nothing live reached the decode
    assert metrics.flushed_reads == 0


def test_closed_scheduler_refuses_submissions(code):
    store = make_store(code, num_stripes=1)
    config = ServiceConfig()
    scheduler, _ = make_scheduler(code, store, config)

    async def main():
        await scheduler.close()
        with pytest.raises(ServiceClosedError):
            await scheduler.submit(0, store.pattern(0)[0])

    asyncio.run(main())


def test_scheduler_rejects_raw_node_fault_leak(code):
    """Faults raised by the store during submit-time pattern lookup
    propagate as NodeFault (retryable), not as a generic error."""
    store = make_store(code, num_stripes=1)
    store.faults = FaultInjector(0.999999, rng=0, max_consecutive=1)
    config = ServiceConfig(batch_trigger=1, flush_interval_s=0.0)
    scheduler, _ = make_scheduler(code, store, config)
    block = store.pattern(0)[0]  # pattern() itself doesn't inject

    async def main():
        with pytest.raises(NodeFault):
            # first snapshot faults; with batch_trigger=1 the flush is
            # immediate so the fault surfaces on this submit
            await scheduler.submit(0, block)

    asyncio.run(main())


def test_straggler_timeout_classified_as_decode_error():
    """A straggling batch gather must route riders through the
    single-stripe fallback, not surface as infrastructure failure."""
    from repro.pipeline import StragglerTimeout
    from repro.service.scheduler import _is_decode_error

    assert _is_decode_error(StragglerTimeout(0.5, (0,), (1,)))
    assert not _is_decode_error(RuntimeError("pool closed"))
