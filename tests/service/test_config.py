"""ServiceConfig validation and backoff schedule."""

from __future__ import annotations

import dataclasses

import pytest

from repro.service import ServiceConfig


def test_defaults_encode_the_benchmark_gate():
    config = ServiceConfig()
    assert config.batch_trigger == 8
    assert config.coalesce is True
    assert config.fallback_single is True
    assert config.max_retries >= 2  # must cover FaultInjector.max_consecutive


@pytest.mark.parametrize(
    "kwargs",
    [
        {"batch_trigger": 0},
        {"flush_interval_s": -0.1},
        {"max_pending": 0},
        {"default_deadline_s": 0.0},
        {"max_retries": -1},
        {"backoff_base_s": -1.0},
        {"backoff_base_s": 0.2, "backoff_cap_s": 0.1},
    ],
)
def test_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        ServiceConfig(**kwargs)


def test_config_is_frozen():
    config = ServiceConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.batch_trigger = 4  # type: ignore[misc]


def test_backoff_is_exponential_and_capped():
    config = ServiceConfig(backoff_base_s=0.001, backoff_cap_s=0.004)
    assert config.backoff(0) == pytest.approx(0.001)
    assert config.backoff(1) == pytest.approx(0.002)
    assert config.backoff(2) == pytest.approx(0.004)
    assert config.backoff(3) == pytest.approx(0.004)  # capped
    assert config.backoff(30) == pytest.approx(0.004)
