"""The serve/loadgen/service-bench CLI commands (small, fast configs)."""

from __future__ import annotations

import json

from repro.cli import main

SMALL = [
    "--n", "6", "--r", "4", "--m", "2", "--s", "2",
    "--stripes", "4", "--symbols", "16", "--seed", "3",
]


def test_loadgen_in_process(capsys):
    assert main(
        ["loadgen", *SMALL, "--requests", "30", "--fault-rate", "0.1",
         "--concurrency", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "30/30 requests ok" in out
    assert "0 failed" in out
    assert "coalesce factor" in out
    assert "p99" in out


def test_loadgen_naive_mode(capsys):
    assert main(
        ["loadgen", *SMALL, "--requests", "10", "--fault-rate", "0.0", "--naive"]
    ) == 0
    out = capsys.readouterr().out
    assert "10/10 requests ok" in out


def test_loadgen_writes_json(tmp_path, capsys):
    out_file = tmp_path / "loadgen.json"
    assert main(
        ["loadgen", *SMALL, "--requests", "12", "--fault-rate", "0.0",
         "--json", str(out_file)]
    ) == 0
    doc = json.loads(out_file.read_text())
    assert doc["loadgen"]["completed"] == 12
    assert doc["loadgen"]["corrupt"] == 0
    assert "coalescing" in doc["service"]
    assert "pipeline" in doc["service"]


def test_service_bench_gate(tmp_path, capsys):
    out_file = tmp_path / "BENCH_service.json"
    assert main(
        ["service-bench", *SMALL, "--requests", "40", "--concurrency", "16",
         "--fault-rate", "0.1", "--batch-trigger", "4",
         "--min-speedup", "1.0", "--json", str(out_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "0 failed / 0 corrupt" in out
    doc = json.loads(out_file.read_text())
    assert doc["failed_requests"] == 0
    assert doc["speedup"] > 0


def test_service_bench_min_speedup_gate_fails(tmp_path, capsys, monkeypatch):
    import repro.bench.service as bench_service

    def tiny_bench(**kwargs):
        result = {
            "workload": {"code": "SD", "num_stripes": 1, "requests": 1,
                         "concurrency": 1, "fault_rate": 0.0,
                         "batch_trigger": 8, "flush_interval_s": 0.002},
            "naive": {"loadgen": {"requests_per_sec": 100.0,
                                  "latency": {"p50_s": 0.0, "p99_s": 0.0}}},
            "coalesced": {
                "loadgen": {"requests_per_sec": 110.0,
                            "latency": {"p50_s": 0.0, "p99_s": 0.0}},
                "service": {"resilience": {"faults_seen": 0, "retries": 0,
                                           "fallbacks": 0}},
            },
            "speedup": 1.1,
            "p99_s": 0.001,
            "failed_requests": 0,
            "corrupt_responses": 0,
            "coalesce_factor": 2.0,
            "results_verified": True,
        }
        return result

    monkeypatch.setattr(bench_service, "run_service_bench", tiny_bench)
    assert main(["service-bench", "--min-speedup", "5.0"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_serve_parser_has_the_knobs():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "9999", "--fault-rate", "0.2", "--naive"]
    )
    assert args.port == 9999
    assert args.fault_rate == 0.2
    assert args.naive is True
    assert args.func is not None


def test_loadgen_with_repair_flags(capsys):
    """--repair wires a manager into the served store; erasure-only
    damage keeps the run deterministic (reads racing a corruption
    scrub may legitimately see wrong bytes until healed)."""
    assert main(
        ["loadgen", *SMALL, "--requests", "20", "--damaged", "0.25",
         "--repair", "--concurrency", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "20/20 requests ok" in out


def test_loadgen_exits_nonzero_on_served_corruption(capsys):
    """Corruption with repair OFF: reads of corrupt blocks verify wrong
    and the summary must say so (nonzero exit, nonzero corrupt count)."""
    assert main(
        ["loadgen", *SMALL, "--requests", "60", "--damaged", "0.0",
         "--corrupt-fraction", "1.0", "--concurrency", "8"]
    ) == 1
    out = capsys.readouterr().out
    assert "corrupt" in out
    assert "FAIL" in out


def test_repair_bench_cli_gate(tmp_path, capsys):
    out_file = tmp_path / "BENCH_repair.json"
    assert main(
        ["repair-bench", *SMALL, "--requests", "30", "--concurrency", "8",
         "--damaged", "0.25", "--corrupt-fraction", "0.25",
         "--max-p99-ratio", "100.0", "--json", str(out_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "HEALED" in out
    doc = json.loads(out_file.read_text())
    assert doc["healed"] is True
    assert doc["truth_verified"] is True
    assert doc["unhealthy_stripes_after"] == 0


def test_repair_parser_knobs():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["repair-bench", "--corrupt-fraction", "0.1", "--repair-rate", "64",
         "--scrub-stripes", "4", "--heal-timeout", "5.0"]
    )
    assert args.corrupt_fraction == 0.1
    assert args.repair_rate == 64.0
    assert args.scrub_stripes == 4
    assert args.heal_timeout == 5.0
