"""connect(): one entry point to any backend, and multi-endpoint load.

Covers the unified client facade (endpoint string/tuple → TCP, backend
→ LocalClient, Client → pass-through, junk → TypeError), the verified
read paths every transport shares, and ``run_loadgen_multi`` fanning
one seeded workload across several endpoints concurrently.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    BlobService,
    Client,
    ClientPool,
    LocalClient,
    ServiceConfig,
    TcpClient,
    build_request_schedule,
    connect,
    run_loadgen_multi,
    serve,
)

from .conftest import make_store


def fast_config() -> ServiceConfig:
    return ServiceConfig(
        batch_trigger=4, flush_interval_s=0.002, backoff_base_s=0.0001
    )


def test_connect_type_dispatch(code):
    async def run():
        service = BlobService(make_store(code), config=fast_config())
        async with service:
            local = await connect(service)
            assert isinstance(local, LocalClient)
            assert local.backend is service
            assert await connect(local) is local  # Client passes through

            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                tcp = await connect(f"127.0.0.1:{port}")
                assert isinstance(tcp, TcpClient)
                await tcp.ping()
                await tcp.close()
                pooled = await connect(("127.0.0.1", port), connections=3)
                assert isinstance(pooled, ClientPool)
                await pooled.ping()
                await pooled.close()
            finally:
                server.close()
                await server.wait_closed()
        with pytest.raises(TypeError, match="cannot connect"):
            await connect(42)

    asyncio.run(run())


def test_verified_reads_local_and_wire(code):
    """get_verified/degraded_get_verified agree across transports."""

    async def run():
        service = BlobService(make_store(code), config=fast_config())
        async with service:
            sid = service.store.stripe_ids[0]
            stripe = service.store.stripe(sid)
            present, erased = stripe.present_ids[0], stripe.erased_ids[0]

            local = await connect(service)
            data, ok = await local.get_verified(sid, present)
            assert ok
            data, ok = await local.degraded_get_verified(sid, erased, 5.0)
            assert ok

            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                remote = await connect(f"127.0.0.1:{port}", connections=2)
                data, ok = await remote.get_verified(sid, present)
                assert ok
                data, ok = await remote.degraded_get_verified(sid, erased, 5.0)
                assert ok
                # verification is server-side: tamper with the stored
                # block and the verdict flips without the client knowing
                truth = service.store.truth(sid).get(present)
                stripe.put(present, truth * 0 + (truth + 1) % 251)
                _, ok = await remote.get_verified(sid, present)
                assert not ok
                await remote.close()
            finally:
                server.close()
                await server.wait_closed()

    asyncio.run(run())


def test_run_loadgen_multi_aggregates(code):
    """Two backends driven concurrently: per-endpoint + aggregate."""

    async def run():
        services = [
            BlobService(make_store(code, seed=seed), config=fast_config())
            for seed in (5, 6)
        ]
        async with services[0], services[1]:
            clients = [await connect(s) for s in services]
            schedules = [
                build_request_schedule(s, 20, seed=1, degraded_fraction=0.5)
                for s in services
            ]
            result = await run_loadgen_multi(
                clients, schedules, concurrency=4, verify=True
            )
        assert set(result) == {"endpoints", "aggregate"}
        assert len(result["endpoints"]) == 2
        for summary in result["endpoints"].values():
            assert summary["completed"] == 20
            assert summary["failed"] == 0
            assert summary["corrupt"] == 0
        agg = result["aggregate"]
        assert agg["requests"] == 40
        assert agg["completed"] == 40
        assert agg["corrupt"] == 0
        assert agg["requests_per_sec"] > 0
        assert agg["latency"]["p99_s"] >= agg["latency"]["p50_s"]

    asyncio.run(run())


def test_run_loadgen_multi_validates_lengths(code):
    async def run():
        service = BlobService(make_store(code), config=fast_config())
        async with service:
            client = await connect(service)
            with pytest.raises(ValueError):
                await run_loadgen_multi([client], [[], []], concurrency=1)

    asyncio.run(run())


def test_service_client_shim_still_connects(code):
    """The deprecated pre-cluster entry point keeps working."""
    from repro.service import ServiceClient

    async def run():
        service = BlobService(make_store(code), config=fast_config())
        async with service:
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.warns(DeprecationWarning, match="ServiceClient"):
                    client = await ServiceClient.connect("127.0.0.1", port)
                assert isinstance(client, Client)
                await client.ping()
                sid = service.store.stripe_ids[0]
                block = service.store.stripe(sid).present_ids[0]
                data = await client.get(sid, block)
                assert service.verify_block(sid, block, data)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

    asyncio.run(run())
