"""BlobStore semantics and the bounded transient-fault injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import BlobStore, FaultInjector
from repro.service.errors import BlockUnavailableError, NodeFault
from repro.stripes import worst_case_sd

from .conftest import SYMBOLS, make_store


def test_build_retains_ground_truth(code):
    store = make_store(code, num_stripes=3, damaged=0.0)
    assert store.stripe_ids == (0, 1, 2)
    for sid in store.stripe_ids:
        for block in store.stripe(sid).present_ids:
            assert store.verify_block(sid, block, store.read(sid, block))


def test_read_erased_raises_block_unavailable(code):
    store = make_store(code, num_stripes=1)
    erased = store.pattern(0)
    assert erased  # damage_store applied a worst-case scenario
    with pytest.raises(BlockUnavailableError):
        store.read(0, erased[0])
    with pytest.raises(BlockUnavailableError):
        store.read(99, 0)  # unknown stripe


def test_write_through_updates_truth(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    region = np.arange(SYMBOLS, dtype=store.code.field.dtype)
    store.write(0, 0, region)
    assert store.verify_block(0, 0, region)


def test_snapshot_is_point_in_time(code):
    """A double fault after the snapshot cannot touch an in-flight decode."""
    store = make_store(code, num_stripes=1, damaged=0.0)
    snap = store.snapshot_blocks(0)
    victim = next(iter(snap))
    store.erase(0, [victim])  # double fault lands *after* the snapshot
    assert victim in snap  # the snapshot still holds the survivor
    assert store.verify_block(0, victim, snap[victim])
    assert victim not in store.snapshot_blocks(0)  # but new snapshots see it


def test_repair_restores_reads(code):
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]
    truth_region = store.truth(0).get(block)
    store.repair(0, {block: truth_region})
    assert np.array_equal(store.read(0, block), truth_region)


def test_apply_scenario_matches_pattern(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    scenario = worst_case_sd(code, z=1, rng=3)
    store.apply_scenario(0, scenario)
    assert store.pattern(0) == tuple(sorted(scenario.faulty_blocks))


# -- FaultInjector ----------------------------------------------------------


def test_injector_validates_inputs():
    with pytest.raises(ValueError):
        FaultInjector(rate=1.0)
    with pytest.raises(ValueError):
        FaultInjector(rate=-0.1)
    with pytest.raises(ValueError):
        FaultInjector(rate=0.5, max_consecutive=0)


def test_injector_zero_rate_never_fires():
    inj = FaultInjector(0.0, rng=0)
    for _ in range(100):
        inj.check(0)
    assert inj.injected == 0


def test_injector_bounds_consecutive_faults():
    """The bound is the retry guarantee: after max_consecutive faults the
    next check on that stripe always succeeds."""
    inj = FaultInjector(0.99, rng=0, max_consecutive=2)
    streak = 0
    for _ in range(200):
        try:
            inj.check(5)
            streak = 0
        except NodeFault:
            streak += 1
            assert streak <= 2
    assert inj.injected > 0


def test_injector_rate_roughly_respected():
    inj = FaultInjector(0.1, rng=42, max_consecutive=100)
    faults = 0
    for i in range(2000):
        try:
            inj.check(i % 50)
        except NodeFault:
            faults += 1
    assert 100 < faults < 320  # ~10% of 2000, loose bounds


def test_store_read_surfaces_injected_faults(code):
    store = BlobStore.build(
        code, 1, SYMBOLS, rng=0, faults=FaultInjector(0.99, rng=0)
    )
    with pytest.raises(NodeFault):
        for _ in range(10):
            store.read(0, 0)
    # the recovery channel bypasses injection entirely
    snap = store.snapshot_blocks(0, inject=False)
    assert snap
