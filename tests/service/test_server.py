"""BlobService: the request API, the degradation ladder, observability."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service import BlobService, FaultInjector, ServiceConfig
from repro.service.errors import (
    BatchDecodeError,
    DeadlineExceeded,
    NodeFault,
    ServiceClosedError,
)

from .conftest import SYMBOLS, make_store


def run(coro):
    return asyncio.run(coro)


def fast_config(**kwargs) -> ServiceConfig:
    kwargs.setdefault("batch_trigger", 2)
    kwargs.setdefault("flush_interval_s", 0.002)
    kwargs.setdefault("backoff_base_s", 0.0001)
    kwargs.setdefault("backoff_cap_s", 0.001)
    return ServiceConfig(**kwargs)


def test_get_present_block(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def main():
        async with BlobService(store, config=fast_config()) as service:
            block = store.stripe(0).present_ids[0]
            region = await service.get(0, block)
            assert store.verify_block(0, block, region)
            assert service.metrics.gets == 1
            assert service.metrics.degraded_gets == 0

    run(main())


def test_get_erased_block_transparently_decodes(code):
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]

    async def main():
        async with BlobService(store, config=fast_config()) as service:
            region = await service.get(0, block)
            assert store.verify_block(0, block, region)
            # counted once as a get *and* once as a degraded read
            assert service.metrics.gets == 1
            assert service.metrics.degraded_gets == 1

    run(main())


def test_put_writes_through(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    region = np.arange(SYMBOLS, dtype=code.field.dtype)

    async def main():
        async with BlobService(store, config=fast_config()) as service:
            await service.put(0, 0, region)
            got = await service.get(0, 0)
            assert np.array_equal(got, region)
            assert service.metrics.puts == 1

    run(main())


def test_transient_faults_absorbed_by_retries(code):
    """max_consecutive < max_retries ==> zero client-visible failures."""
    store = make_store(code, num_stripes=2, fault_rate=0.4, seed=3)
    block = store.pattern(0)[0]

    async def main():
        async with BlobService(store, config=fast_config(max_retries=3)) as service:
            for _ in range(10):
                region = await service.get(0, block)
                assert store.verify_block(0, block, region)
            assert service.metrics.failures == 0
            if service.metrics.faults_seen:
                assert service.metrics.retries == service.metrics.faults_seen

    run(main())


def test_retries_exhausted_raises_node_fault(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.faults = FaultInjector(0.999999, rng=0, max_consecutive=100)

    async def main():
        async with BlobService(store, config=fast_config(max_retries=1)) as service:
            with pytest.raises(NodeFault):
                await service.get(0, store.stripe(0).present_ids[0])
            assert service.metrics.failures == 1

    run(main())


def test_deadline_expiry_raises_and_counts(code):
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]
    # a flush deadline far beyond the request deadline: the queued read
    # can never resolve in time
    config = ServiceConfig(batch_trigger=100, flush_interval_s=30.0)

    async def main():
        async with BlobService(store, config=config) as service:
            with pytest.raises(DeadlineExceeded):
                await service.degraded_get(0, block, deadline_s=0.02)
            assert service.metrics.timeouts == 1
            assert service.metrics.failures == 1

    run(main())


def test_nonpositive_deadline_fails_immediately(code):
    store = make_store(code, num_stripes=1)

    async def main():
        async with BlobService(store, config=fast_config()) as service:
            with pytest.raises(DeadlineExceeded):
                await service.degraded_get(0, store.pattern(0)[0], deadline_s=0.0)

    run(main())


def test_batch_error_falls_back_to_single_decode(code):
    """A poisoned batch path degrades latency, never correctness."""
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]

    async def main():
        async with BlobService(store, config=fast_config(batch_trigger=1)) as service:
            def broken(snapshots, patterns):
                raise ValueError("poisoned batch plan")

            service.scheduler._decode_batch = broken
            region = await service.degraded_get(0, block)
            assert store.verify_block(0, block, region)
            assert service.metrics.fallbacks == 1
            assert service.metrics.batch_errors == 1
            assert service.metrics.failures == 0

    run(main())


def test_batch_error_without_fallback_surfaces(code):
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]
    config = fast_config(batch_trigger=1, fallback_single=False)

    async def main():
        async with BlobService(store, config=config) as service:
            def broken(snapshots, patterns):
                raise ValueError("poisoned batch plan")

            service.scheduler._decode_batch = broken
            with pytest.raises(BatchDecodeError):
                await service.degraded_get(0, block)
            assert service.metrics.fallbacks == 0
            assert service.metrics.failures == 1

    run(main())


def test_infrastructure_error_surfaces_distinctly(code):
    """A dying pool's RuntimeError must not be masked as a decode
    failure: no fallback attempt, the caller sees the real exception."""
    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]

    async def main():
        async with BlobService(store, config=fast_config(batch_trigger=1)) as service:
            def dying_pool(snapshots, patterns):
                raise RuntimeError("cannot schedule new futures after shutdown")

            service.scheduler._decode_batch = dying_pool
            with pytest.raises(RuntimeError, match="after shutdown"):
                await service.degraded_get(0, block)
            # fallback was NOT exercised: it cannot fix a dead pool and
            # would only mask the shutdown from the caller
            assert service.metrics.fallbacks == 0
            assert service.metrics.batch_errors == 1
            assert service.metrics.failures == 1

    run(main())


def test_naive_mode_never_touches_the_scheduler(code):
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]

    async def main():
        config = fast_config(coalesce=False)
        async with BlobService(store, config=config) as service:
            for sid in range(2):
                region = await service.degraded_get(sid, block)
                assert store.verify_block(sid, block, region)
            assert service.metrics.flushes == 0
            assert service.metrics.degraded_gets == 2

    run(main())


def test_coalesced_serving_is_bit_identical_to_truth(code):
    store = make_store(code, num_stripes=4)
    pattern = store.pattern(0)

    async def main():
        async with BlobService(store, config=fast_config(batch_trigger=4)) as service:
            results = await asyncio.gather(
                *(
                    service.degraded_get(sid, block)
                    for sid in range(4)
                    for block in pattern[:2]
                )
            )
            index = 0
            for sid in range(4):
                for block in pattern[:2]:
                    assert store.verify_block(sid, block, results[index])
                    index += 1
            assert service.metrics.flushes >= 1
            assert service.metrics.coalesce_factor > 1.0

    run(main())


def test_metrics_dict_reconciles_serving_and_pipeline_views(code):
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]

    async def main():
        async with BlobService(store, config=fast_config()) as service:
            await asyncio.gather(
                *(service.degraded_get(sid, block) for sid in range(2))
            )
            doc = service.metrics_dict()
            assert doc["requests"]["degraded_gets"] == 2
            assert doc["pipeline"]["stripes"] == 2
            assert doc["pipeline"]["mult_xors"] > 0
            assert "kernels" in doc
            assert doc["coalescing"]["flushed_reads"] == 2

    run(main())


def test_closed_service_refuses_requests(code):
    store = make_store(code, num_stripes=1, damaged=0.0)

    async def main():
        service = BlobService(store, config=fast_config())
        await service.close()
        with pytest.raises(ServiceClosedError):
            await service.get(0, 0)
        await service.close()  # idempotent

    run(main())


def test_external_pipeline_is_not_closed_by_the_service(code):
    from repro.pipeline import DecodePipeline

    store = make_store(code, num_stripes=1)
    block = store.pattern(0)[0]

    async def main():
        with DecodePipeline(pool="serial") as pipeline:
            async with BlobService(
                store, config=fast_config(), pipeline=pipeline
            ) as service:
                await service.degraded_get(0, block)
            # service exit must leave the borrowed pipeline usable
            assert pipeline.metrics().stripes == 1

    run(main())


def test_get_backoff_is_clamped_to_the_deadline_budget(code):
    """A retry backoff larger than the remaining budget must not sleep
    through the caller's deadline: the request fails *within* it, as
    DeadlineExceeded, instead of surfacing NodeFault seconds late."""
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.faults = FaultInjector(0.999999, rng=0, max_consecutive=100)
    config = fast_config(max_retries=3, backoff_base_s=30.0, backoff_cap_s=30.0)

    async def main():
        async with BlobService(store, config=config) as service:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            with pytest.raises(DeadlineExceeded):
                await service.get(0, 0, deadline_s=0.2)
            elapsed = loop.time() - t0
            assert elapsed < 2.0  # nowhere near the 30 s backoff
            assert service.metrics.timeouts >= 1
            assert service.metrics.failures >= 1

    asyncio.run(main())


def test_put_backoff_is_clamped_to_the_deadline_budget(code):
    store = make_store(code, num_stripes=1, damaged=0.0)
    store.faults = FaultInjector(0.999999, rng=0, max_consecutive=100)
    config = fast_config(max_retries=3, backoff_base_s=30.0, backoff_cap_s=30.0)
    region = np.arange(SYMBOLS, dtype=code.field.dtype)

    async def main():
        async with BlobService(store, config=config) as service:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            with pytest.raises(DeadlineExceeded):
                await service.put(0, 0, region, deadline_s=0.2)
            assert loop.time() - t0 < 2.0

    asyncio.run(main())


def test_degraded_ladder_fails_within_tight_deadline(code):
    """The ladder's retry backoff is clamped too: a tight deadline with a
    huge configured backoff still resolves (as DeadlineExceeded) within
    the budget plus scheduling slack."""
    store = make_store(code, num_stripes=1)
    store.faults = FaultInjector(0.999999, rng=0, max_consecutive=100)
    block = store.pattern(0)[0]
    config = fast_config(max_retries=3, backoff_base_s=30.0, backoff_cap_s=30.0)

    async def main():
        async with BlobService(store, config=config) as service:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            with pytest.raises(DeadlineExceeded):
                await service.degraded_get(0, block, deadline_s=0.2)
            assert loop.time() - t0 < 2.0
            assert service.metrics.timeouts >= 1

    asyncio.run(main())
