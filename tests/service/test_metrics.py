"""LatencyHistogram percentiles and ServiceMetrics accounting."""

from __future__ import annotations

import json

import pytest

from repro.service import ServiceMetrics
from repro.service.metrics import LatencyHistogram


def test_histogram_empty():
    h = LatencyHistogram()
    d = h.as_dict()
    assert d["count"] == 0
    assert d["p50_s"] == 0.0
    assert d["p99_s"] == 0.0
    assert d["min_s"] == 0.0


def test_histogram_basic_stats():
    h = LatencyHistogram()
    for v in (0.001, 0.002, 0.004, 0.008):
        h.observe(v)
    assert h.count == 4
    assert h.max_seconds == pytest.approx(0.008)
    assert h.min_seconds == pytest.approx(0.001)
    assert h.mean_seconds == pytest.approx(0.00375)


def test_histogram_percentiles_overestimate_at_most_2x():
    h = LatencyHistogram()
    samples = [0.0005 * (i + 1) for i in range(100)]
    for v in samples:
        h.observe(v)
    for p in (50, 90, 99):
        exact = samples[int(p / 100 * len(samples)) - 1]
        est = h.percentile(p)
        assert exact <= est <= 2 * exact + 1e-12
    assert h.percentile(100) == pytest.approx(max(samples))


def test_histogram_clamps_negative_and_validates_p():
    h = LatencyHistogram()
    h.observe(-1.0)  # clock skew: clamp, don't crash
    assert h.min_seconds == 0.0
    with pytest.raises(ValueError):
        h.percentile(101)


def test_coalesce_factor():
    m = ServiceMetrics()
    assert m.coalesce_factor == 0.0  # no flushes yet
    m.flushes = 4
    m.flushed_reads = 22
    assert m.coalesce_factor == pytest.approx(5.5)


def test_queue_depth_gauge_tracks_peak():
    m = ServiceMetrics()
    m.enqueue(3)
    m.enqueue(2)
    m.dequeue(4)
    m.enqueue(1)
    assert m.queue_depth == 2
    assert m.queue_depth_peak == 5
    m.dequeue(10)
    assert m.queue_depth == 0  # never negative


def test_as_dict_is_json_ready_and_nests_pipeline():
    m = ServiceMetrics()
    m.gets = 3
    m.degraded_gets = 2
    m.flushes = 1
    m.flushed_reads = 2
    m.request.observe(0.01)
    d = m.as_dict(pipeline={"stripes": 2, "mult_xors": 123})
    json.dumps(d)  # must round-trip
    assert d["requests"]["gets"] == 3
    assert d["coalescing"]["coalesce_factor"] == pytest.approx(2.0)
    assert d["latency"]["request"]["count"] == 1
    assert d["pipeline"]["mult_xors"] == 123
    assert "pipeline" not in m.as_dict()


def test_format_table_mentions_key_counters():
    m = ServiceMetrics()
    m.gets = 1
    m.request.observe(0.005)
    text = m.format_table()
    assert "coalesce factor" in text
    assert "p99" in text
