"""Load generator: reproducible schedules, closed-loop driving, damage."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    BlobService,
    ServiceConfig,
    build_request_schedule,
    damage_store,
    run_loadgen,
)

from .conftest import make_store


def test_schedule_is_seeded_and_reproducible(code):
    store = make_store(code, num_stripes=4)
    a = build_request_schedule(store, 50, seed=9)
    b = build_request_schedule(store, 50, seed=9)
    c = build_request_schedule(store, 50, seed=10)
    assert a == b
    assert a != c
    assert len(a) == 50
    for op, sid, block in a:
        assert op == "get"
        assert sid in store.stripe_ids


def test_schedule_steers_toward_erased_blocks(code):
    store = make_store(code, num_stripes=4)
    erased = {
        (sid, b) for sid in store.stripe_ids for b in store.stripe(sid).erased_ids
    }
    all_degraded = build_request_schedule(store, 40, seed=1, degraded_fraction=1.0)
    assert all(
        (sid, block) in erased for _, sid, block in all_degraded
    )
    none_degraded = build_request_schedule(store, 40, seed=1, degraded_fraction=0.0)
    assert not any(
        (sid, block) in erased for _, sid, block in none_degraded
    )


def test_schedule_requires_stripes(code):
    from repro.service import BlobStore

    with pytest.raises(ValueError):
        build_request_schedule(BlobStore(code, 16), 10)


def test_run_loadgen_completes_and_verifies(code):
    store = make_store(code, num_stripes=4, fault_rate=0.2, seed=5)
    schedule = build_request_schedule(store, 40, seed=5, degraded_fraction=0.6)
    config = ServiceConfig(
        batch_trigger=4, flush_interval_s=0.002, backoff_base_s=0.0001
    )

    async def main():
        async with BlobService(store, config=config) as service:
            return await run_loadgen(service, schedule, concurrency=8)

    summary = asyncio.run(main())
    assert summary["requests"] == 40
    assert summary["completed"] == 40
    assert summary["failed"] == 0
    assert summary["corrupt"] == 0
    assert summary["requests_per_sec"] > 0
    assert summary["latency"]["p99_s"] >= summary["latency"]["p50_s"]


def test_run_loadgen_counts_failures_by_type(code):
    store = make_store(code, num_stripes=2)
    block = store.pattern(0)[0]
    # flush deadline far beyond the request deadline: every degraded
    # read times out
    config = ServiceConfig(batch_trigger=100, flush_interval_s=30.0)
    schedule = [("degraded_get", 0, block)] * 3

    async def main():
        async with BlobService(store, config=config) as service:
            return await run_loadgen(
                service, schedule, concurrency=3, deadline_s=0.02
            )

    summary = asyncio.run(main())
    assert summary["failed"] == 3
    assert summary["errors"] == {"DeadlineExceeded": 3}


def test_run_loadgen_validates_concurrency(code):
    store = make_store(code, num_stripes=1)

    async def main():
        async with BlobService(store) as service:
            await run_loadgen(service, [], concurrency=0)

    with pytest.raises(ValueError):
        asyncio.run(main())


def test_damage_store_shares_one_pattern(code):
    store = make_store(code, num_stripes=8, damaged=0.0)
    count = damage_store(store, fraction=0.5, seed=3)
    assert count == 4
    patterns = {
        store.pattern(sid) for sid in store.stripe_ids if store.pattern(sid)
    }
    assert len(patterns) == 1  # the disk-loss shape coalescing relies on
    with pytest.raises(ValueError):
        damage_store(store, fraction=1.5)


def test_run_loadgen_reports_real_corruption(code):
    """Silently corrupted blocks must surface as a nonzero ``corrupt``
    count — the summary may never hardcode it to zero."""
    store = make_store(code, num_stripes=4, damaged=0.0)
    from repro.service import corrupt_store

    assert corrupt_store(store, fraction=1.0, seed=11) == 4
    # read one known-corrupt block per stripe
    schedule = []
    for sid in store.stripe_ids:
        stripe, truth = store.stripe(sid), store.truth(sid)
        for block in stripe.present_ids:
            if not (stripe.get(block) == truth.get(block)).all():
                schedule.append(("get", sid, block))
                break
    assert len(schedule) == 4
    config = ServiceConfig(batch_trigger=2, flush_interval_s=0.002)

    async def main():
        async with BlobService(store, config=config) as service:
            return await run_loadgen(service, schedule, concurrency=4)

    summary = asyncio.run(main())
    assert summary["completed"] == 4
    assert summary["corrupt"] == 4
    assert summary["failed"] == 0


def test_corrupt_store_prefers_intact_stripes(code):
    store = make_store(code, num_stripes=8, damaged=0.5)
    from repro.service import corrupt_store

    count = corrupt_store(store, fraction=0.25, seed=3)
    assert count == 2
    corrupted = [
        sid
        for sid in store.stripe_ids
        if any(
            not (store.stripe(sid).get(b) == store.truth(sid).get(b)).all()
            for b in store.stripe(sid).present_ids
        )
    ]
    assert len(corrupted) == 2
    # all corruption landed on fully-intact stripes
    assert all(not store.stripe(sid).erased_ids for sid in corrupted)
    with pytest.raises(ValueError):
        corrupt_store(store, fraction=2.0)
    with pytest.raises(ValueError):
        corrupt_store(store, blocks_per_stripe=0)
