"""Shared fixtures for the service test suite.

Everything here is sized for a 1-core CI box: a tiny SD(6, 4, 2, 2)
code, short regions, few stripes.  Async tests wrap their coroutine in
``asyncio.run`` (no pytest-asyncio in the toolchain).
"""

from __future__ import annotations

import pytest

from repro.codes import SDCode
from repro.service import BlobStore, FaultInjector, damage_store

SYMBOLS = 16


@pytest.fixture(scope="module")
def code():
    return SDCode(6, 4, 2, 2)


def make_store(
    code,
    num_stripes: int = 4,
    fault_rate: float = 0.0,
    damaged: float = 1.0,
    seed: int = 7,
) -> BlobStore:
    """A small store with every stripe sharing one worst-case pattern."""
    store = BlobStore.build(
        code,
        num_stripes,
        SYMBOLS,
        rng=seed,
        faults=FaultInjector(fault_rate, rng=seed),
    )
    if damaged:
        damage_store(store, fraction=damaged, seed=seed)
    return store
