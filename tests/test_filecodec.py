"""Unit tests for the file-level encoder/decoder."""

import json
import os

import pytest

from repro.codes import LRCCode, RSCode, SDCode
from repro.core import BitMatrixDecoder, PPMDecoder, TraditionalDecoder
from repro.filecodec import FileCodecMeta, decode_file, encode_file, repair_files


@pytest.fixture
def payload(tmp_path):
    path = tmp_path / "data.bin"
    # non-multiple-of-stripe size exercises the tail padding
    content = bytes((i * 37 + 11) % 256 for i in range(50_000)) + b"tail"
    path.write_bytes(content)
    return path, content


def encode(payload, tmp_path, code, sector_bytes=512):
    path, _ = payload
    out = tmp_path / "enc"
    meta = encode_file(str(path), code, str(out), sector_bytes=sector_bytes)
    return out, meta


def test_encode_layout(payload, tmp_path):
    code = SDCode(6, 4, 2, 2)
    out, meta = encode(payload, tmp_path, code)
    files = sorted(os.listdir(out))
    assert files == [f"data_disk{j:03d}.dat" for j in range(6)] + ["data_meta.json"]
    expected_strip = meta.num_stripes * code.r * meta.sector_bytes
    for j in range(6):
        assert os.path.getsize(out / f"data_disk{j:03d}.dat") == expected_strip


def test_meta_roundtrip(payload, tmp_path):
    code = SDCode(6, 4, 2, 2)
    out, meta = encode(payload, tmp_path, code)
    parsed = FileCodecMeta.from_json((out / "data_meta.json").read_text())
    assert parsed == meta
    rebuilt = parsed.build_code()
    assert rebuilt.describe() == code.describe()


def test_meta_rejects_foreign_json():
    with pytest.raises(ValueError):
        FileCodecMeta.from_json(json.dumps({"format": "something-else"}))


def test_decode_intact(payload, tmp_path):
    _, content = payload
    out, _ = encode(payload, tmp_path, SDCode(6, 4, 2, 2))
    restored = tmp_path / "restored.bin"
    decode_file(str(out / "data_meta.json"), str(restored))
    assert restored.read_bytes() == content


def test_decode_after_disk_losses(payload, tmp_path):
    _, content = payload
    code = SDCode(6, 4, 2, 2)
    out, _ = encode(payload, tmp_path, code)
    os.remove(out / "data_disk002.dat")
    os.remove(out / "data_disk005.dat")
    restored = tmp_path / "restored.bin"
    decode_file(str(out / "data_meta.json"), str(restored))
    assert restored.read_bytes() == content


def test_decode_with_all_decoders(payload, tmp_path):
    _, content = payload
    out, _ = encode(payload, tmp_path, SDCode(6, 4, 2, 2))
    os.remove(out / "data_disk001.dat")
    for decoder in (TraditionalDecoder(), PPMDecoder(threads=2), BitMatrixDecoder()):
        restored = tmp_path / f"r_{type(decoder).__name__}.bin"
        decode_file(str(out / "data_meta.json"), str(restored), decoder=decoder)
        assert restored.read_bytes() == content


def test_repair_files(payload, tmp_path):
    out, _ = encode(payload, tmp_path, SDCode(6, 4, 2, 2))
    original = (out / "data_disk003.dat").read_bytes()
    os.remove(out / "data_disk003.dat")
    repaired = repair_files(str(out / "data_meta.json"))
    assert repaired == [3]
    assert (out / "data_disk003.dat").read_bytes() == original
    assert repair_files(str(out / "data_meta.json")) == []


def test_too_many_losses_fail(payload, tmp_path):
    from repro.matrix import SingularMatrixError

    out, _ = encode(payload, tmp_path, SDCode(6, 4, 2, 2))
    for j in (0, 1, 2):
        os.remove(out / f"data_disk{j:03d}.dat")
    with pytest.raises(SingularMatrixError):
        decode_file(str(out / "data_meta.json"), str(tmp_path / "x.bin"))


def test_truncated_strip_detected(payload, tmp_path):
    out, _ = encode(payload, tmp_path, SDCode(6, 4, 2, 2))
    strip = out / "data_disk000.dat"
    strip.write_bytes(strip.read_bytes()[:-7])
    with pytest.raises(ValueError, match="expected"):
        decode_file(str(out / "data_meta.json"), str(tmp_path / "x.bin"))


@pytest.mark.parametrize(
    "code",
    [LRCCode(8, 2, 2), RSCode(6, 4, r=2), SDCode(5, 2, 1, 1, w=16)],
    ids=lambda c: c.kind + str(c.field.w),
)
def test_other_codes_roundtrip(payload, tmp_path, code):
    _, content = payload
    out, _ = encode(payload, tmp_path, code, sector_bytes=512)
    os.remove(out / "data_disk000.dat")
    restored = tmp_path / "restored.bin"
    decode_file(str(out / "data_meta.json"), str(restored))
    assert restored.read_bytes() == content


def test_sector_bytes_word_multiple():
    code = SDCode(5, 2, 1, 1, w=16)
    with pytest.raises(ValueError):
        encode_file(__file__, code, "/tmp/unused-dir", sector_bytes=1001)


def test_cli_roundtrip(payload, tmp_path, capsys):
    from repro.cli import main

    path, content = payload
    out = tmp_path / "cli_enc"
    rc = main(
        [
            "encode-file", str(path), "sd", "n=6", "r=4", "m=2", "s=2",
            "--out", str(out), "--sector-bytes", "512",
        ]
    )
    assert rc == 0
    os.remove(out / "data_disk004.dat")
    restored = tmp_path / "cli_restored.bin"
    assert main(["decode-file", str(out / "data_meta.json"), "--out", str(restored)]) == 0
    assert restored.read_bytes() == content
    assert main(["repair-files", str(out / "data_meta.json")]) == 0
    assert (out / "data_disk004.dat").exists()
    capsys.readouterr()
