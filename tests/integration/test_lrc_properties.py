"""Hypothesis property tests: LRC end-to-end decode invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import LRCCode, is_decodable
from repro.core import PPMDecoder, TraditionalDecoder, plan_decode
from repro.stripes import Stripe, StripeLayout


@st.composite
def lrc_and_faults(draw):
    k = draw(st.integers(4, 12))
    l = draw(st.integers(2, min(4, k)))
    g = draw(st.integers(1, 2))
    code = LRCCode(k, l, g)
    count = draw(st.integers(1, l + g))
    faults = draw(
        st.lists(
            st.integers(0, code.n - 1), min_size=count, max_size=count, unique=True
        )
    )
    return code, tuple(sorted(faults))


@given(lrc_and_faults(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_lrc_roundtrip_all_decoders(params, seed):
    code, faults = params
    if not is_decodable(code, faults):
        return
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, 8, rng=seed)
    TraditionalDecoder().encode_into(code, stripe)
    truth = stripe.copy()
    stripe.erase(faults)
    for decoder in (TraditionalDecoder(), PPMDecoder(threads=2)):
        recovered = decoder.decode(code, stripe, faults)
        for b in faults:
            assert np.array_equal(recovered[b], truth.get(b))


@given(lrc_and_faults())
@settings(max_examples=60, deadline=None)
def test_lrc_locality_invariant(params):
    """Every data-block fault with an intact group decodes locally.

    If a faulty data block's group has no other fault (data or local
    parity), PPM must recover it in the parallel phase from its group
    alone — the locality guarantee LRC exists for.
    """
    code, faults = params
    if not is_decodable(code, faults):
        return
    plan = plan_decode(code, faults)
    fault_set = set(faults)
    independent = set(plan.partition.independent_faulty_ids)
    for b in faults:
        if b >= code.k:
            continue
        group = code.group_of(b)
        members = set(code.groups[group]) | {code.local_parity_id(group)}
        if len(members & fault_set) == 1:
            assert b in independent, (b, faults)


@given(lrc_and_faults())
@settings(max_examples=60, deadline=None)
def test_lrc_cost_never_exceeds_c1(params):
    code, faults = params
    if not is_decodable(code, faults):
        return
    plan = plan_decode(code, faults)
    assert plan.predicted_cost <= plan.costs.c1
