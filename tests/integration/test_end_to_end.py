"""End-to-end integration tests crossing every layer of the stack."""

import copy

import numpy as np
import pytest

from repro.codes import (
    EvenOddCode,
    LRCCode,
    PMDSCode,
    RDPCode,
    RSCode,
    SDCode,
    StarCode,
    available_codes,
    get_code,
)
from repro.core import (
    BitMatrixDecoder,
    PPMDecoder,
    RowParallelDecoder,
    TraditionalDecoder,
)
from repro.gf import OpCounter, RegionOps
from repro.parallel import HybridRebuilder
from repro.stripes import DiskArray, Stripe, StripeLayout, worst_case_sd


def encoded_stripe(code, symbols=24, rng=0):
    stripe = Stripe.random(StripeLayout.of_code(code), code.field, symbols, rng=rng)
    TraditionalDecoder().encode_into(code, stripe)
    return stripe


ALL_CODES = [
    SDCode(6, 8, 2, 2),
    PMDSCode(6, 4, 2, 1),
    LRCCode(8, 2, 2),
    RSCode(8, 6, r=4),
    EvenOddCode(5),
    RDPCode(5),
    StarCode(5),
]


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.kind)
def test_every_code_satisfies_its_parity_check(code):
    """H @ B == 0 for an encoded stripe of every registered code kind."""
    stripe = encoded_stripe(code)
    ops = RegionOps(code.field)
    regions = [stripe.get(b) for b in range(code.num_blocks)]
    syndromes = ops.matrix_apply(code.H.array, regions)
    assert all(not s.any() for s in syndromes), code.kind


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.kind)
def test_every_code_survives_single_failure_everywhere(code):
    """Any single lost block of any code is recoverable by every decoder."""
    stripe = encoded_stripe(code, rng=1)
    truth = stripe.copy()
    # sample a handful of positions incl. data and parity
    blocks = [0, code.parity_block_ids[0], code.num_blocks - 1]
    for b in set(blocks):
        working = truth.copy()
        working.erase([b])
        for decoder in (TraditionalDecoder(), PPMDecoder(threads=2), BitMatrixDecoder()):
            recovered = decoder.decode(code, working, [b])
            assert np.array_equal(recovered[b], truth.get(b)), (code.kind, b)


def test_registry_covers_all_tested_kinds():
    assert {c.kind for c in ALL_CODES} == set(available_codes())


def test_four_decoders_agree_on_worst_case():
    code = SDCode(8, 8, 2, 2)
    scen = worst_case_sd(code, z=2, rng=5)
    stripe = encoded_stripe(code, rng=6)
    truth = stripe.copy()
    stripe.erase(scen.faulty_blocks)
    outputs = []
    for decoder in (
        TraditionalDecoder(policy="normal"),
        PPMDecoder(threads=3),
        RowParallelDecoder(threads=3),
        BitMatrixDecoder(),
    ):
        outputs.append(decoder.decode(code, stripe, scen.faulty_blocks))
    for b in scen.faulty_blocks:
        for out in outputs:
            assert np.array_equal(out[b], truth.get(b))


def test_full_array_lifecycle():
    """Create, encode, degrade, read-degraded, rebuild, verify — end to end."""
    code = SDCode(6, 8, 2, 2)
    array = DiskArray(code, num_stripes=4, sector_symbols=48, rng=7)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    # degrade
    array.fail_disk(0)
    array.inject_lse(4, rng=8)
    # serve a degraded read before repair
    target_stripe, target_block = 0, array.layout.block_id(3, 0)
    value = array.degraded_read(PPMDecoder(threads=2), target_stripe, target_block)
    assert np.array_equal(value, array._truth[0].get(target_block))
    # rebuild with the hybrid scheduler
    expected = sum(len(s.erased_ids) for s in array.stripes)
    result = HybridRebuilder(threads=2).rebuild(array)
    assert result.blocks_repaired == expected
    assert array.fully_intact()


def test_shared_counter_across_decoders_and_backends():
    """One OpCounter can audit a whole heterogeneous pipeline."""
    counter = OpCounter()
    code = SDCode(6, 4, 2, 2)
    stripe = encoded_stripe(code, rng=9)
    stripe2 = stripe.copy()
    scen = worst_case_sd(code, z=1, rng=10)
    stripe.erase(scen.faulty_blocks)
    stripe2.erase(scen.faulty_blocks)
    gf_dec = PPMDecoder(parallel=False, counter=counter)
    bit_dec = BitMatrixDecoder(counter=counter)
    gf_dec.decode(code, stripe, scen.faulty_blocks)
    after_gf = counter.mult_xors
    bit_dec.decode(code, stripe2, scen.faulty_blocks)
    assert counter.mult_xors > after_gf > 0


def test_deep_copied_arrays_rebuild_identically():
    code = SDCode(6, 4, 2, 1)
    array = DiskArray(code, num_stripes=2, sector_symbols=16, rng=11)
    encoder = TraditionalDecoder()
    for stripe, truth in zip(array.stripes, array._truth):
        encoder.encode_into(code, stripe)
        for b in range(code.num_blocks):
            truth.put(b, stripe.get(b))
    array.fail_disk(2)
    clone = copy.deepcopy(array)
    array.rebuild(TraditionalDecoder())
    clone.rebuild(PPMDecoder(threads=2))
    for a, b in zip(array.stripes, clone.stripes):
        assert a.equals_on(b, range(code.num_blocks))
