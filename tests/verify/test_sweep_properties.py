"""Property sweep: every registered code yields verifiable plans.

For each kind in :mod:`repro.codes.registry` (via the sweep's default
instances) we draw seeded-random erasure patterns from one fault up to
the code's decodable tolerance and assert that *every* plan the planner
produces — under both the paper policy and AUTO — passes static
verification.  This is the ``ppm verify``-style sweep as a regression
test: any future planner change that breaks an invariant fails here
with the verifier's diagnostic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes import available_codes, get_code, is_decodable
from repro.core import SequencePolicy, plan_decode
from repro.verify import DEFAULT_INSTANCES, iter_scenarios, sweep_all, sweep_code, verify_plan

SAMPLES = 24
SEED = 2015


def test_every_registry_kind_has_a_sweep_instance():
    assert set(available_codes()) <= set(DEFAULT_INSTANCES)


@pytest.mark.parametrize("kind", sorted(DEFAULT_INSTANCES))
def test_random_erasures_up_to_tolerance_verify(kind):
    code = get_code(kind, **DEFAULT_INSTANCES[kind])
    verified = 0
    for faulty in iter_scenarios(code, samples=SAMPLES, seed=SEED):
        if not is_decodable(code, faulty):
            continue
        for policy in (SequencePolicy.PAPER, SequencePolicy.AUTO):
            plan = plan_decode(code, faulty, policy=policy)
            report = verify_plan(plan, code)
            assert report.ok and not report.findings, (
                f"{kind} faulty={list(faulty)} policy={policy.value}\n"
                + report.format()
            )
        verified += 1
    assert verified > 0, f"{kind}: every draw was undecodable — sweep is vacuous"


def test_scenarios_cover_the_full_fault_range():
    code = get_code("sd", **DEFAULT_INSTANCES["sd"])
    sizes = {len(f) for f in iter_scenarios(code, samples=40, seed=0)}
    assert min(sizes) == 1
    assert max(sizes) == code.H.rows  # up to the parity-constraint ceiling


def test_scenarios_are_deterministic_per_seed():
    code = get_code("rs", **DEFAULT_INSTANCES["rs"])
    a = list(iter_scenarios(code, samples=10, seed=7))
    b = list(iter_scenarios(code, samples=10, seed=7))
    assert a == b
    c = list(iter_scenarios(code, samples=10, seed=8))
    assert a != c


def test_sweep_code_counts_and_passes():
    code = get_code("sd", **DEFAULT_INSTANCES["sd"])
    result = sweep_code(code, samples=12, seed=SEED)
    assert result.ok, result.report.format()
    assert result.scenarios + result.skipped_undecodable == 12
    assert result.schedules == 4  # 2 scenarios x (naive + pair_reuse)
    assert "OK" in result.summary()


def test_sweep_all_is_clean_on_shipped_codebase():
    results = sweep_all(samples=6, seed=SEED, check_schedules=False)
    assert len(results) == len(available_codes())
    for result in results:
        assert result.ok, result.summary() + "\n" + result.report.format()


def test_worst_case_disk_failures_verify():
    """Whole-disk failures (the rebuild workload) at full tolerance."""
    for kind in sorted(DEFAULT_INSTANCES):
        code = get_code(kind, **DEFAULT_INSTANCES[kind])
        rng = np.random.default_rng(1)
        tolerable = max(1, len(code.parity_block_ids) // code.r // 2)
        disks = rng.choice(code.n, size=min(tolerable, code.n), replace=False)
        faulty = sorted(
            code.block_id(row, int(d)) for d in disks for row in range(code.r)
        )
        if not is_decodable(code, faulty):
            continue
        plan = plan_decode(code, faulty, policy=SequencePolicy.PAPER)
        report = verify_plan(plan, code)
        assert report.ok and not report.findings, f"{kind}: " + report.format()


def test_sweep_certifies_encode_programs():
    code = get_code("rs", n=6, k=4)
    result = sweep_code(code, samples=4, check_schedules=False)
    assert result.ok, result.summary()
    assert result.encode_programs == 2  # one per swept policy


def test_strict_sweep_certifies_backends_numerically():
    code = get_code("rs", n=6, k=4)
    result = sweep_code(
        code, samples=4, check_schedules=False, check_backends=True
    )
    assert result.ok, result.summary()
    # bitsliced supports every w=8 program: decode scenarios + encode
    assert result.backend_checks >= result.programs + result.encode_programs


def test_strict_sweep_flags_a_divergent_backend():
    from repro.kernels import register_backend, unregister_backend
    from repro.kernels.backends import ExecutorBackend

    class Corrupting(ExecutorBackend):
        """Executes as the baseline, then flips a bit in slot 0."""

        name = "corrupting"

        def supports(self, field, program):
            return field.w == 8

        def bind(self, field, program):
            from repro.kernels import get_backend

            return (get_backend("numpy").bind(field, program), program.outputs)

        def execute_chunk(self, bound, pool, n, scratch):
            from repro.kernels import get_backend

            inner, outputs = bound
            get_backend("numpy").execute_chunk(inner, pool, n, scratch)
            pool[outputs[0]][0] ^= 1

    register_backend(Corrupting())
    try:
        code = get_code("rs", n=6, k=4)
        result = sweep_code(
            code, samples=2, check_schedules=False, check_backends=True
        )
    finally:
        unregister_backend("corrupting")
    assert not result.ok
    assert any(
        f.check == "sweep/backend-divergence" and "corrupting" in f.message
        for f in result.report.findings
    )
