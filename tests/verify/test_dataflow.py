"""Mutation + property tests for the static IR dataflow verifier.

The mutation half constructs deliberately broken
:class:`~repro.kernels.RegionProgram` objects — one seeded bug each —
and asserts the analyzer reports exactly the right check id.  The
property half proves the *absence* of false positives: every program
the real lowering pipeline emits (optimised or not, across every
registered code and policy) must pass strict analysis with zero
findings, warnings included.
"""

from __future__ import annotations

import pytest

from repro.codes import get_code, is_decodable
from repro.core.planner import plan_decode
from repro.core.sequences import SequencePolicy
from repro.kernels import lower_matrix, lower_plan
from repro.kernels.ir import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    RegionProgram,
)
from repro.verify import DEFAULT_INSTANCES, analyze_program, assert_dataflow_valid
from repro.verify.dataflow import check_program
from repro.verify.findings import DataflowVerificationError
from repro.verify.sweep import iter_scenarios


def make_program(instructions, *, num_inputs=2, pool=4, outputs=(3,), w=8):
    """A raw program, bypassing the builder (and its admission gate)."""
    return RegionProgram(
        w=w,
        num_inputs=num_inputs,
        pool_size=pool,
        instructions=tuple(instructions),
        outputs=tuple(outputs),
        mult_xors=0,
        xor_only=0,
        label="test",
    )


GOOD = [
    (OP_COPY, 2, 0, 1),  # t = in0
    (OP_XOR, 2, 1, 1),  # t ^= in1
    (OP_MUL, 3, 2, 3),  # out = 3 * t
]


def checks_of(report):
    return {f.check for f in report.findings}


class TestMutationsCaught:
    """Each seeded IR bug must produce its dedicated check id."""

    def test_good_program_is_clean(self):
        report = analyze_program(make_program(GOOD), strict=True)
        assert report.findings == []

    def test_uninitialized_read(self):
        bad = [(OP_COPY, 3, 2, 1)]  # slot 2 never written
        report = analyze_program(make_program(bad))
        assert "dataflow/uninit-read" in checks_of(report)

    def test_dst_aliases_src(self):
        bad = [(OP_COPY, 2, 0, 1), (OP_MUL, 2, 2, 3)]
        report = analyze_program(make_program(bad, outputs=(2,)))
        assert "dataflow/aliasing" in checks_of(report)

    def test_missing_table_binding(self):
        # const 1 has no gather table; the builder emits COPY instead
        bad = [(OP_MUL, 3, 0, 1)]
        report = analyze_program(make_program(bad))
        assert "dataflow/missing-binding" in checks_of(report)

    def test_const_exceeds_field(self):
        bad = [(OP_MUL, 3, 0, 256)]  # >= 2^8
        report = analyze_program(make_program(bad))
        assert "dataflow/missing-binding" in checks_of(report)

    def test_accumulate_into_undefined_slot(self):
        bad = [(OP_MULXOR, 3, 0, 3)]  # ^= into a slot never initialised
        report = analyze_program(make_program(bad))
        assert "dataflow/accumulate-undefined" in checks_of(report)

    def test_write_to_input_slot(self):
        bad = [(OP_ZERO, 0, -1, 0), (OP_COPY, 3, 0, 1)]
        report = analyze_program(make_program(bad))
        assert "dataflow/slot-range" in checks_of(report)

    def test_unknown_opcode(self):
        report = analyze_program(make_program([(9, 3, 0, 0)]))
        assert "dataflow/unknown-opcode" in checks_of(report)

    def test_undefined_output(self):
        report = analyze_program(make_program([(OP_COPY, 2, 0, 1)], outputs=(3,)))
        assert "dataflow/undefined-output" in checks_of(report)

    def test_duplicate_output(self):
        program = make_program(GOOD, outputs=(3, 3))
        report = analyze_program(program)
        assert "dataflow/duplicate-output" in checks_of(report)

    def test_check_program_raises_and_passes_through(self):
        good = make_program(GOOD)
        assert check_program(good) is good
        with pytest.raises(DataflowVerificationError):
            check_program(make_program([(OP_COPY, 3, 2, 1)]))

    def test_assert_dataflow_valid_strict(self):
        assert_dataflow_valid(make_program(GOOD))
        with pytest.raises(DataflowVerificationError):
            assert_dataflow_valid(make_program([(9, 3, 0, 0)]))


class TestStrictLiveness:
    """Warnings only strict mode can see."""

    def test_dead_store_reported(self):
        dead = [
            (OP_COPY, 2, 0, 1),  # t written ...
            (OP_COPY, 3, 1, 1),  # ... but the output never reads it
        ]
        report = analyze_program(make_program(dead), strict=True)
        assert "dataflow/dead-store" in checks_of(report)
        assert report.ok  # a warning, not an error

    def test_unused_input_reported(self):
        one_input = [(OP_COPY, 2, 0, 1), (OP_MUL, 3, 2, 3)]
        report = analyze_program(make_program(one_input), strict=True)
        assert "dataflow/unused-input" in checks_of(report)

    def test_pool_slack_reported(self):
        slack = make_program(
            [(OP_COPY, 2, 0, 1), (OP_XOR, 2, 1, 1)],
            pool=6,
            outputs=(2,),
        )
        report = analyze_program(slack, strict=True)
        assert "dataflow/pool-slack" in checks_of(report)

    def test_cheap_mode_stays_silent_on_liveness(self):
        dead = [(OP_COPY, 2, 0, 1), (OP_COPY, 3, 1, 1)]
        report = analyze_program(make_program(dead), strict=False)
        assert report.findings == []


class TestNoFalsePositives:
    """Every real compiled program is strict-clean (warnings included)."""

    @pytest.mark.parametrize("kind", sorted(DEFAULT_INSTANCES))
    @pytest.mark.parametrize("optimize", [False, True])
    def test_lowered_plans_pass_strict(self, kind, optimize):
        code = get_code(kind, **DEFAULT_INSTANCES[kind])
        seen = 0
        for faulty in iter_scenarios(code, samples=6, seed=7):
            if not is_decodable(code, faulty):
                continue
            for policy in (SequencePolicy.PAPER, SequencePolicy.AUTO):
                plan = plan_decode(code, faulty, policy=policy)
                compiled = lower_plan(code.field, plan, optimize=optimize)
                report = analyze_program(compiled.program, strict=True)
                if optimize:
                    # optimised programs must be warning-free too:
                    # compact_slots recycled every temp, CSE left no
                    # dead stores
                    findings = report.findings
                else:
                    # unoptimised programs legitimately hold slack
                    # slots (compact_slots has not run); errors and the
                    # other liveness warnings must still be absent
                    findings = [
                        f
                        for f in report.findings
                        if f.check != "dataflow/pool-slack"
                    ]
                assert findings == [], (
                    f"{kind} faulty={faulty} policy={policy}: "
                    + "; ".join(f.format() for f in findings)
                )
                seen += 1
        assert seen > 0

    @pytest.mark.parametrize("kind", ["rs", "evenodd"])
    def test_lowered_matrices_pass_strict(self, kind):
        code = get_code(kind, **DEFAULT_INSTANCES[kind])
        program = lower_matrix(code.field, code.H.array)
        report = analyze_program(program, strict=True)
        assert report.findings == []
