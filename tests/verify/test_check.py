"""Tests for the ``ppm check`` static-analysis front-end."""

from __future__ import annotations

import json

import pytest

from repro.verify.check import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    list_rules,
    main,
    run_check,
)

CLEAN = """\
from __future__ import annotations


def add(a: int, b: int) -> int:
    return a + b
"""

DIRTY = """\
def add(a, b):
    return a + b
"""  # missing future-annotations import -> PPM001

RACY = """\
from __future__ import annotations

import asyncio


class Svc:
    def __init__(self):
        self.count = 0

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        self.count += 1
"""


@pytest.fixture
def tree(tmp_path):
    def build(**files):
        for name, source in files.items():
            (tmp_path / f"{name}.py").write_text(source)
        return str(tmp_path)

    return build


class TestRunCheck:
    def test_clean_tree(self, tree):
        report = run_check([tree(a=CLEAN)])
        assert report.ok
        assert report.exit_code == EXIT_CLEAN
        assert report.files == 1

    def test_lint_finding(self, tree):
        report = run_check([tree(a=DIRTY)])
        assert not report.ok
        assert report.exit_code == EXIT_FINDINGS
        assert [f.code for f in report.lint] == ["PPM001"]

    def test_race_finding(self, tree):
        report = run_check([tree(a=RACY)])
        assert [f.code for f in report.races] == ["PPM010"]
        assert report.exit_code == EXIT_FINDINGS

    def test_suppression_counted(self, tree):
        suppressed = RACY.replace(
            "self.count += 1", "self.count += 1  # ppm: noqa[PPM010]"
        )
        report = run_check([tree(a=suppressed)])
        assert report.ok
        assert report.suppressed == 1

    def test_strict_runs_sweeps(self, tree):
        report = run_check([tree(a=CLEAN)], strict=True, samples=2)
        assert report.ok
        assert report.scenarios > 0
        assert report.programs > 0
        assert report.sweep_errors == []

    def test_json_roundtrip(self, tree):
        report = run_check([tree(a=DIRTY, b=RACY)])
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is False
        assert data["exit_code"] == EXIT_FINDINGS
        assert len(data["lint"]) == 1
        assert len(data["races"]) == 1
        assert data["files"] == 2

    def test_human_format_mentions_everything(self, tree):
        report = run_check([tree(a=DIRTY)])
        text = report.format_human()
        assert "PPM001" in text
        assert "1 finding(s)" in text


class TestCli:
    def test_exit_codes(self, tree, capsys):
        clean = tree(a=CLEAN)
        assert main([clean]) == EXIT_CLEAN
        assert main(["/nonexistent/path"]) == EXIT_ERROR

    def test_findings_exit_code(self, tree, capsys):
        assert main([tree(a=DIRTY)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "PPM001" in out

    def test_json_flag(self, tree, capsys):
        assert main(["--json", tree(a=CLEAN)]) == EXIT_CLEAN
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_list_rules_covers_both_analyzers(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("PPM001", "PPM009", "PPM010", "PPM013"):
            assert code in out
        assert "whole-program" in out

    def test_list_rules_helper(self):
        text = list_rules()
        assert "PPM012" in text


class TestRepoGate:
    """The invariant CI enforces: ``ppm check --strict src`` is clean."""

    def test_repo_is_clean_nonstrict(self, repo_src):
        report = run_check([repo_src])
        assert report.ok, report.format_human()


@pytest.fixture
def repo_src():
    from pathlib import Path

    return str(Path(__file__).resolve().parents[2] / "src")


class TestBackendsScope:
    """The backends package stays inside the check/race-lint perimeter."""

    REPO = __import__("pathlib").Path(__file__).resolve().parents[2]

    def test_backends_package_is_clean(self):
        report = run_check([str(self.REPO / "src/repro/kernels/backends")])
        assert report.ok, report.format_human()
        # every backend module was actually parsed, not skipped
        assert report.files >= 6

    def test_kernels_tree_is_clean(self):
        report = run_check([str(self.REPO / "src/repro/kernels")])
        assert report.ok, report.format_human()
