"""Tests for the whole-program concurrency analysis (PPM010-PPM013).

Each case feeds the analyzer a small synthetic module (or pair of
modules) and asserts the context propagation and judgement: thread
roots discovered through ``asyncio.to_thread`` / pool submission,
guards recognised lexically, ``threading.local`` exemption, noqa
suppression, and — the regression that motivated the analyzer — that
the real source tree is clean.
"""

from __future__ import annotations

from pathlib import Path

from repro.verify.lint import filter_noqa, parse_module
from repro.verify.races import analyze_races, run_races


def analyze(*sources: str):
    modules = [
        parse_module(Path(f"mod{i}.py"), src) for i, src in enumerate(sources)
    ]
    return analyze_races(modules)


def codes_of(findings):
    return [f.code for f in findings]


class TestPPM010InstanceAttrs:
    def test_unguarded_mutation_from_thread_context(self):
        findings = analyze(
            """
import asyncio

class Svc:
    def __init__(self):
        self.count = 0

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        self.count += 1
"""
        )
        assert codes_of(findings) == ["PPM010"]
        assert "Svc.count" in findings[0].message

    def test_lock_guard_silences(self):
        findings = analyze(
            """
import asyncio
import threading

class Svc:
    def __init__(self):
        self.count = 0
        self._lock = threading.Lock()

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        with self._lock:
            self.count += 1
"""
        )
        assert findings == []

    def test_loop_only_mutation_is_fine(self):
        findings = analyze(
            """
class Svc:
    def __init__(self):
        self.count = 0

    async def run(self):
        self.count += 1
"""
        )
        assert findings == []

    def test_loop_mutation_flagged_when_thread_reads(self):
        findings = analyze(
            """
import asyncio

class Svc:
    def __init__(self):
        self.stats = {}

    async def run(self):
        self.stats["x"] = 1
        await asyncio.to_thread(self.work)

    def work(self):
        return len(self.stats)
"""
        )
        assert codes_of(findings) == ["PPM010"]

    def test_threading_local_attr_exempt(self):
        findings = analyze(
            """
import asyncio
import threading

class Svc:
    def __init__(self):
        self._local = threading.local()

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        self._local.cell = 1
"""
        )
        assert findings == []

    def test_mutator_method_call_detected(self):
        findings = analyze(
            """
import asyncio

class Svc:
    def __init__(self):
        self.items = []

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        self.items.append(1)
"""
        )
        assert codes_of(findings) == ["PPM010"]

    def test_pool_submit_is_a_thread_root(self):
        findings = analyze(
            """
class Engine:
    def __init__(self, pool):
        self.pool = pool
        self.done = 0

    def decode(self):
        self.pool.submit(self.work)

    def work(self):
        self.done += 1
"""
        )
        assert codes_of(findings) == ["PPM010"]

    def test_context_propagates_across_modules(self):
        findings = analyze(
            """
import asyncio

class Manager:
    def __init__(self, scrubber: Scrubber):
        self.scrubber = scrubber

    async def tick(self):
        await asyncio.to_thread(self.scrubber.scan_chunk_xx)
""",
            """
class Scrubber:
    def __init__(self):
        self.scanned = 0

    def scan_chunk_xx(self):
        self.scanned += 1
""",
        )
        assert codes_of(findings) == ["PPM010"]
        assert "Scrubber.scanned" in findings[0].message


class TestPPM011Globals:
    def test_unguarded_global_from_thread(self):
        findings = analyze(
            """
import asyncio

_REGISTRY = set()

class Pool:
    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        _REGISTRY.add(self)
"""
        )
        assert codes_of(findings) == ["PPM011"]
        assert "_REGISTRY" in findings[0].message

    def test_module_level_lock_guards_global(self):
        findings = analyze(
            """
import asyncio
import threading

_REGISTRY = set()
_REGISTRY_LOCK = threading.Lock()

class Pool:
    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        with _REGISTRY_LOCK:
            _REGISTRY.add(self)
"""
        )
        assert findings == []

    def test_instance_lock_does_not_guard_global(self):
        findings = analyze(
            """
import asyncio
import threading

_REGISTRY = set()

class Pool:
    def __init__(self):
        self._lock = threading.Lock()

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        with self._lock:
            _REGISTRY.add(self)
"""
        )
        assert codes_of(findings) == ["PPM011"]

    def test_import_time_registry_is_fine(self):
        # no concurrent context ever reaches the decorator
        findings = analyze(
            """
RULES = {}

def register(cls):
    RULES[cls.code] = cls
    return cls
"""
        )
        assert findings == []


class TestPPM012AwaitUnderLock:
    def test_await_inside_sync_lock(self):
        findings = analyze(
            """
import asyncio
import threading

class Svc:
    def __init__(self):
        self._lock = threading.Lock()

    async def run(self):
        with self._lock:
            await asyncio.sleep(0)
"""
        )
        assert codes_of(findings) == ["PPM012"]

    def test_async_with_is_fine(self):
        findings = analyze(
            """
import asyncio

class Svc:
    def __init__(self):
        self._lock = asyncio.Lock()

    async def run(self):
        async with self._lock:
            await asyncio.sleep(0)
"""
        )
        assert codes_of(findings) == []


class TestPPM013AsyncioPrimitives:
    def test_event_set_from_thread(self):
        findings = analyze(
            """
import asyncio

class Svc:
    def __init__(self):
        self._wake = asyncio.Event()

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        self._wake.set()
"""
        )
        assert "PPM013" in codes_of(findings)

    def test_event_set_from_loop_is_fine(self):
        findings = analyze(
            """
import asyncio

class Svc:
    def __init__(self):
        self._wake = asyncio.Event()

    async def run(self):
        self._wake.set()
"""
        )
        assert findings == []


class TestSuppression:
    SOURCE = """
import asyncio

class Svc:
    def __init__(self):
        self.count = 0

    async def run(self):
        await asyncio.to_thread(self.work)

    def work(self):
        self.count += 1  # ppm: noqa[PPM010]
"""

    def test_noqa_suppresses_via_filter(self):
        module = parse_module(Path("mod.py"), self.SOURCE)
        raw = analyze_races([module])
        assert codes_of(raw) == ["PPM010"]  # analyzer reports raw
        kept, suppressed = filter_noqa(raw, {"mod.py": module.noqa})
        assert kept == [] and suppressed == 1

    def test_bare_noqa_suppresses_everything(self):
        source = self.SOURCE.replace("noqa[PPM010]", "noqa")
        module = parse_module(Path("mod.py"), source)
        kept, suppressed = filter_noqa(
            analyze_races([module]), {"mod.py": module.noqa}
        )
        assert kept == [] and suppressed == 1


class TestRepoIsClean:
    def test_src_tree_has_no_unsuppressed_findings(self):
        root = Path(__file__).resolve().parents[2]
        findings = run_races([str(root / "src")])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestAliasResolution:
    """Callables reaching a pool through locals: `fn = a if h else b`
    and factory-built closures must stay inside thread context."""

    def test_conditional_alias_roots_both_branches(self):
        findings = analyze(
            """
class Engine:
    def __init__(self, pool):
        self.pool = pool
        self.fast_hits = 0
        self.slow_hits = 0

    def decode(self, hedged):
        fn = self.slow_path_xx if hedged else self.fast_path_xx
        self.pool.submit(fn)

    def fast_path_xx(self):
        self.fast_hits += 1

    def slow_path_xx(self):
        self.slow_hits += 1
"""
        )
        assert codes_of(findings) == ["PPM010", "PPM010"]
        messages = " ".join(f.message for f in findings)
        assert "Engine.fast_hits" in messages
        assert "Engine.slow_hits" in messages

    def test_factory_closure_is_a_thread_root(self):
        findings = analyze(
            """
class Engine:
    def __init__(self, pool):
        self.pool = pool
        self.tally = 0

    def decode(self):
        def make_worker_xx(scale):
            def worker(item):
                self.tally += scale * item
            return worker

        primary = make_worker_xx(2)
        self.pool.submit(primary, 1)
"""
        )
        assert codes_of(findings) == ["PPM010"]
        assert "Engine.tally" in findings[0].message

    def test_guarded_factory_closure_is_clean(self):
        findings = analyze(
            """
import threading

class Engine:
    def __init__(self, pool):
        self.pool = pool
        self._lock = threading.Lock()
        self.tally = 0

    def decode(self):
        def make_worker_xx():
            def worker(item):
                with self._lock:
                    self.tally += item
            return worker

        primary = make_worker_xx()
        self.pool.submit(primary, 1)
"""
        )
        assert findings == []

    def test_alias_cycle_terminates(self):
        findings = analyze(
            """
class Engine:
    def __init__(self, pool):
        self.pool = pool

    def decode(self):
        fn = gn
        gn = fn
        self.pool.submit(fn)
"""
        )
        assert findings == []
