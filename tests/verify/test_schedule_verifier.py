"""Schedule verifier: symbolic GF(2) execution certifies XOR programs.

Valid schedules (naive and pair-reuse, over real expanded decode
matrices) verify clean; surgically corrupted schedules — an op removed,
reordered, duplicated, or redirected — are each rejected with a
specific diagnostic.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import SequencePolicy, plan_decode
from repro.gf import GF, expand_matrix, naive_schedule, pair_reuse_schedule
from repro.verify import (
    ScheduleVerificationError,
    assert_schedule_valid,
    verify_schedule,
)

BM = np.array(
    [
        [1, 1, 0, 0],
        [0, 1, 1, 0],
        [1, 1, 1, 0],
        [1, 1, 0, 1],
    ],
    dtype=np.uint8,
)


@pytest.mark.parametrize("build", [naive_schedule, pair_reuse_schedule])
def test_valid_schedules_verify_clean(build):
    schedule = build(BM)
    report = verify_schedule(schedule, BM)
    assert report.ok and not report.findings, report.format()


@pytest.mark.parametrize("build", [naive_schedule, pair_reuse_schedule])
def test_real_decode_matrices_verify_clean(build):
    code = SDCode(6, 4, 2, 2)
    plan = plan_decode(code, [0, 6, 12, 18, 3, 9], SequencePolicy.PAPER)
    bm = expand_matrix(GF(8), plan.traditional.weights.array)
    report = verify_schedule(build(bm), bm)
    assert report.ok and not report.findings, report.format()


def test_zero_row_schedule_verifies():
    bm = np.array([[0, 0], [1, 1]], dtype=np.uint8)
    report = verify_schedule(naive_schedule(bm), bm)
    assert report.ok and not report.findings, report.format()


# -- mutations -----------------------------------------------------------


def test_mutation_removed_xor_op_is_caught():
    schedule = naive_schedule(BM)
    removed = next(i for i, op in enumerate(schedule.ops) if op[0] == "xor")
    bad = replace(schedule, ops=schedule.ops[:removed] + schedule.ops[removed + 1 :])
    report = verify_schedule(bad, BM)
    assert report.has("schedule/output-mismatch")
    finding = next(f for f in report.findings if f.check == "schedule/output-mismatch")
    assert "missing inputs" in finding.message


def test_mutation_removed_copy_op_is_caught():
    schedule = naive_schedule(BM)
    removed = next(i for i, op in enumerate(schedule.ops) if op[0] == "copy")
    bad = replace(schedule, ops=schedule.ops[:removed] + schedule.ops[removed + 1 :])
    report = verify_schedule(bad, BM)
    assert report.has("schedule/use-before-def")
    finding = next(f for f in report.findings if f.check == "schedule/use-before-def")
    assert "before" in finding.message


def test_mutation_reordered_ops_are_caught():
    """Pair-reuse schedules define shared packets before use; swapping a
    definition past its first use must be flagged."""
    schedule = pair_reuse_schedule(BM)
    # the first op defines the most-shared pair packet; move it to the end
    bad = replace(schedule, ops=schedule.ops[1:] + schedule.ops[:1])
    report = verify_schedule(bad, BM)
    assert report.has("schedule/use-before-def") or report.has(
        "schedule/output-mismatch"
    )
    assert not report.ok


def test_mutation_duplicated_xor_cancels_and_is_caught():
    schedule = naive_schedule(BM)
    dup = next(i for i, op in enumerate(schedule.ops) if op[0] == "xor")
    bad = replace(
        schedule, ops=schedule.ops[: dup + 1] + (schedule.ops[dup],) + schedule.ops[dup + 1 :]
    )
    report = verify_schedule(bad, BM)
    # XOR-ing the same source twice cancels over GF(2): wrong output bits
    assert report.has("schedule/output-mismatch")
    finding = next(f for f in report.findings if f.check == "schedule/output-mismatch")
    assert "missing inputs" in finding.message


def test_mutation_write_to_input_slot_is_caught():
    schedule = naive_schedule(BM)
    kind, _dst, src = next(op for op in schedule.ops if op[0] == "xor")
    bad_ops = tuple(
        ("xor", 0, src) if op == (kind, _dst, src) else op for op in schedule.ops
    )
    report = verify_schedule(replace(schedule, ops=bad_ops), BM)
    assert report.has("schedule/input-overwrite")
    finding = next(f for f in report.findings if f.check == "schedule/input-overwrite")
    assert "input packet" in finding.message


def test_mutation_rewired_output_is_caught():
    schedule = naive_schedule(BM)
    outputs = list(schedule.outputs)
    outputs[0], outputs[1] = outputs[1], outputs[0]
    report = verify_schedule(replace(schedule, outputs=tuple(outputs)), BM)
    assert report.has("schedule/output-mismatch")


def test_dead_op_is_flagged_as_warning():
    schedule = naive_schedule(BM)
    dead_slot = schedule.pool_size
    bad = replace(
        schedule,
        pool_size=schedule.pool_size + 1,
        ops=schedule.ops + (("copy", dead_slot, 0),),
    )
    report = verify_schedule(bad, BM)
    assert report.has("schedule/dead-op")
    assert report.ok  # dead code is waste, not wrongness


def test_self_xor_is_caught():
    schedule = naive_schedule(BM)
    slot = schedule.outputs[0]
    bad = replace(schedule, ops=schedule.ops + (("xor", slot, slot),))
    report = verify_schedule(bad, BM)
    assert report.has("schedule/self-xor")


def test_unknown_op_is_caught():
    schedule = naive_schedule(BM)
    bad = replace(schedule, ops=schedule.ops + (("frobnicate", schedule.outputs[0], 0),))
    report = verify_schedule(bad, BM)
    assert report.has("schedule/unknown-op")


def test_arity_mismatches_are_caught():
    schedule = naive_schedule(BM)
    assert verify_schedule(schedule, BM[:, :3]).has("schedule/input-arity")
    assert verify_schedule(schedule, BM[:3, :]).has("schedule/output-arity")


def test_assert_schedule_valid_raises():
    schedule = naive_schedule(BM)
    assert_schedule_valid(schedule, BM)  # clean: no raise
    bad = replace(schedule, ops=schedule.ops[:-1])
    with pytest.raises(ScheduleVerificationError) as excinfo:
        assert_schedule_valid(bad, BM)
    assert "schedule/" in str(excinfo.value)
