"""Lint engine: each rule catches its target pattern; the repo is clean.

``lint_source`` is exercised with minimal violating snippets per rule,
then the whole shipped ``src`` tree is linted as a self-check — the same
invocation CI runs via ``tools/lint_repro.py src``.
"""

from __future__ import annotations

from pathlib import Path

from repro.verify import RULES, run_lint
from repro.verify.lint import LintRule, lint_source, register_rule

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def codes_of(source: str, relpath: str) -> set[str]:
    return {f.code for f in lint_source(source, Path(relpath))}


def test_rule_registry_is_populated():
    assert {
        "PPM001",
        "PPM002",
        "PPM003",
        "PPM004",
        "PPM005",
        "PPM006",
        "PPM007",
        "PPM008",
        "PPM009",
    } <= set(RULES)
    for rule in RULES.values():
        assert rule.explanation, f"{rule.code} has no explanation"


def test_ppm001_missing_future_annotations():
    assert "PPM001" in codes_of("import os\n", "repro/x.py")
    assert "PPM001" not in codes_of(
        "from __future__ import annotations\nimport os\n", "repro/x.py"
    )
    # empty modules are exempt
    assert "PPM001" not in codes_of("", "repro/empty.py")


def test_ppm002_unfrozen_plan_dataclass():
    bad = (
        "from __future__ import annotations\n"
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class RepairPlan:\n    x: int\n"
    )
    assert "PPM002" in codes_of(bad, "repro/x.py")
    good = bad.replace("@dataclass\n", "@dataclass(frozen=True)\n")
    assert "PPM002" not in codes_of(good, "repro/x.py")
    # non-plan-shaped mutable dataclasses are fine
    stats = bad.replace("RepairPlan", "RepairStats")
    assert "PPM002" not in codes_of(stats, "repro/x.py")


def test_ppm003_python_xor_loop_in_hot_path():
    bad = (
        "from __future__ import annotations\n"
        "def f(a, b):\n"
        "    for i in range(len(a)):\n"
        "        a[i] = a[i] ^ b[i]\n"
    )
    assert "PPM003" in codes_of(bad, "repro/gf/x.py")
    assert "PPM003" in codes_of(bad, "repro/core/x.py")
    # same code outside the hot packages is not this rule's business
    assert "PPM003" not in codes_of(bad, "repro/bench/x.py")
    aug = (
        "from __future__ import annotations\n"
        "def f(a, b):\n"
        "    for i in range(len(a)):\n"
        "        a[i] ^= b[i]\n"
    )
    assert "PPM003" in codes_of(aug, "repro/gf/x.py")
    # vectorised xor on whole arrays is the sanctioned idiom
    ok = (
        "from __future__ import annotations\n"
        "import numpy as np\n"
        "def f(a, b):\n"
        "    np.bitwise_xor(a, b, out=a)\n"
    )
    assert "PPM003" not in codes_of(ok, "repro/gf/x.py")


def test_ppm004_implicit_dtype_in_gf_code():
    bad = (
        "from __future__ import annotations\n"
        "import numpy as np\n"
        "x = np.zeros((4, 4))\n"
    )
    assert "PPM004" in codes_of(bad, "repro/gf/x.py")
    assert "PPM004" in codes_of(bad, "repro/matrix/x.py")
    assert "PPM004" not in codes_of(bad, "repro/bench/x.py")
    good = bad.replace("np.zeros((4, 4))", "np.zeros((4, 4), dtype=np.uint8)")
    assert "PPM004" not in codes_of(good, "repro/gf/x.py")


def test_ppm005_region_xor_outside_gf():
    bad = (
        "from __future__ import annotations\n"
        "import numpy as np\n"
        "def f(a, b):\n"
        "    np.bitwise_xor(a, b, out=a)\n"
    )
    assert "PPM005" in codes_of(bad, "repro/stripes/x.py")
    assert "PPM005" not in codes_of(bad, "repro/gf/x.py")
    assert "PPM005" not in codes_of(bad, "repro/matrix/x.py")


def test_ppm006_bare_except():
    bad = (
        "from __future__ import annotations\n"
        "try:\n    x = 1\nexcept:\n    pass\n"
    )
    assert "PPM006" in codes_of(bad, "repro/x.py")
    good = bad.replace("except:", "except ValueError:")
    assert "PPM006" not in codes_of(good, "repro/x.py")


def test_ppm007_raw_executor_outside_pipeline():
    bad = (
        "from __future__ import annotations\n"
        "from concurrent.futures import ThreadPoolExecutor\n"
        "pool = ThreadPoolExecutor(max_workers=4)\n"
    )
    assert "PPM007" in codes_of(bad, "repro/core/x.py")
    qualified = (
        "from __future__ import annotations\n"
        "import concurrent.futures as cf\n"
        "pool = cf.ProcessPoolExecutor(2)\n"
    )
    assert "PPM007" in codes_of(qualified, "repro/parallel/x.py")
    # the pipeline package is the one place allowed to build executors
    assert "PPM007" not in codes_of(bad, "repro/pipeline/pool.py")
    wrapped = (
        "from __future__ import annotations\n"
        "from repro.pipeline.pool import ThreadWorkerPool\n"
        "pool = ThreadWorkerPool(4)\n"
    )
    assert "PPM007" not in codes_of(wrapped, "repro/core/x.py")


def test_ppm008_mult_xors_loop_in_decoder_modules():
    bad = (
        "from __future__ import annotations\n"
        "def apply(ops, matrix, regions):\n"
        "    for row in matrix:\n"
        "        ops.mult_xors(row, regions)\n"
    )
    assert "PPM008" in codes_of(bad, "repro/core/x.py")
    assert "PPM008" in codes_of(bad, "repro/pipeline/x.py")
    # the GF package is where the primitive legitimately lives
    assert "PPM008" not in codes_of(bad, "repro/gf/region.py")
    assert "PPM008" not in codes_of(bad, "repro/bench/x.py")
    while_bad = (
        "from __future__ import annotations\n"
        "def apply(ops, rows, regions):\n"
        "    while rows:\n"
        "        ops.mult_xors(rows.pop(), regions)\n"
    )
    assert "PPM008" in codes_of(while_bad, "repro/core/x.py")
    good = (
        "from __future__ import annotations\n"
        "def apply(ops, matrix, regions):\n"
        "    return ops.matrix_apply(matrix, regions)\n"
    )
    assert "PPM008" not in codes_of(good, "repro/core/x.py")
    # one straight-line call (no loop) is fine too
    single = (
        "from __future__ import annotations\n"
        "def combine(ops, row, regions):\n"
        "    return ops.mult_xors(row, regions)\n"
    )
    assert "PPM008" not in codes_of(single, "repro/core/x.py")


def test_ppm009_blocking_calls_in_service():
    sleep = (
        "from __future__ import annotations\n"
        "import time\n"
        "def f():\n"
        "    time.sleep(0.1)\n"
    )
    assert "PPM009" in codes_of(sleep, "repro/service/x.py")
    # the same call outside the async package is not this rule's business
    assert "PPM009" not in codes_of(sleep, "repro/pipeline/x.py")
    # await asyncio.sleep is the sanctioned idiom
    ok = (
        "from __future__ import annotations\n"
        "import asyncio\n"
        "async def f():\n"
        "    await asyncio.sleep(0.1)\n"
    )
    assert "PPM009" not in codes_of(ok, "repro/service/x.py")


def test_ppm009_sync_io_in_service():
    opened = (
        "from __future__ import annotations\n"
        "def f(path):\n"
        "    with open(path) as fh:\n"
        "        return fh.read()\n"
    )
    assert "PPM009" in codes_of(opened, "repro/service/x.py")
    assert "PPM009" not in codes_of(opened, "repro/cli.py")
    sock = (
        "from __future__ import annotations\n"
        "import socket\n"
        "def f():\n"
        "    return socket.create_connection((\"h\", 80))\n"
    )
    assert "PPM009" in codes_of(sock, "repro/service/x.py")
    sub = (
        "from __future__ import annotations\n"
        "import subprocess\n"
        "def f():\n"
        "    subprocess.run([\"ls\"])\n"
    )
    assert "PPM009" in codes_of(sub, "repro/service/x.py")
    # asyncio streams / to_thread offload are fine
    offload = (
        "from __future__ import annotations\n"
        "import asyncio\n"
        "async def f(fn):\n"
        "    return await asyncio.to_thread(fn)\n"
    )
    assert "PPM009" not in codes_of(offload, "repro/service/x.py")


def test_syntax_errors_reported_not_raised():
    findings = lint_source("def f(:\n", Path("repro/broken.py"))
    assert [f.code for f in findings] == ["PPM999"]


def test_select_and_ignore_filtering(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("import os\ntry:\n    x = 1\nexcept:\n    pass\n")
    all_codes = {f.code for f in run_lint([str(tmp_path)])}
    assert {"PPM001", "PPM006"} <= all_codes
    only = {f.code for f in run_lint([str(tmp_path)], select=["PPM006"])}
    assert only == {"PPM006"}
    without = {f.code for f in run_lint([str(tmp_path)], ignore=["PPM006"])}
    assert "PPM006" not in without


def test_register_rule_rejects_duplicate_codes():
    import pytest

    with pytest.raises(ValueError, match="duplicate"):

        @register_rule
        class Clone(LintRule):  # pragma: no cover - registration fails
            code = "PPM001"
            name = "clone"


def test_finding_format_is_clickable():
    (finding,) = lint_source("import os\n", Path("repro/x.py"))
    assert finding.format().startswith("repro/x.py:1:1: PPM001 [future-annotations]")


def test_nonexistent_path_errors_instead_of_passing_vacuously(capsys):
    """A typo'd path in CI must not report "lint clean"."""
    import pytest

    from repro.verify.lint import main

    with pytest.raises(FileNotFoundError, match="does not exist"):
        run_lint(["/no/such/dir"])
    assert main(["/no/such/dir"]) == 2
    assert "error:" in capsys.readouterr().err


def test_shipped_src_tree_is_lint_clean():
    """The invariant CI enforces: `python tools/lint_repro.py src` is clean."""
    findings = run_lint([str(REPO_SRC)])
    assert findings == [], "\n".join(f.format() for f in findings)
