"""Plan verifier: clean plans certify; corrupted plans are rejected.

The mutation tests take a *valid* plan, apply one surgical corruption
via ``dataclasses.replace`` (plans are frozen), and assert the verifier
reports the specific check id and an actionable message — not a generic
failure.  Each corruption models a realistic planner bug.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.codes import SDCode
from repro.core import ExecutionMode, SequencePolicy, plan_decode
from repro.matrix import GFMatrix
from repro.verify import PlanVerificationError, assert_plan_valid, verify_plan

CODE = SDCode(4, 4, 1, 1, 8)
FAULTY = [2, 6, 10, 13, 14]  # the paper's Section III-B worked example

DISK_CODE = SDCode(6, 4, 2, 2)
# two whole-disk failures + one sector: rows 0..3 each lose c = m = 2
DISK_FAULTY = sorted([r * 6 + d for r in range(4) for d in (0, 1)])


@pytest.fixture()
def plan():
    return plan_decode(CODE, FAULTY, SequencePolicy.PAPER)


@pytest.fixture()
def disk_plan():
    return plan_decode(DISK_CODE, DISK_FAULTY, SequencePolicy.PAPER)


def test_valid_plan_verifies_clean(plan):
    report = verify_plan(plan, CODE)
    assert report.ok and not report.findings, report.format()


def test_valid_disk_plan_verifies_clean(disk_plan):
    report = verify_plan(disk_plan, DISK_CODE)
    assert report.ok and not report.findings, report.format()


def test_assert_plan_valid_passes_and_raises(plan):
    assert_plan_valid(plan, CODE)  # no raise on a clean plan
    bad = replace(plan, mode=ExecutionMode.TRADITIONAL_NORMAL)
    with pytest.raises(PlanVerificationError) as excinfo:
        assert_plan_valid(bad, CODE)
    assert "plan/mode-mismatch" in str(excinfo.value)


# -- mutation 1: a dropped weight row (planner truncated W_i) ------------


def test_mutation_dropped_weight_row_is_caught(plan):
    group = plan.groups[0]
    truncated = group.weights.take_rows(range(group.weights.rows - 1))
    bad = replace(plan, groups=(replace(group, weights=truncated),) + plan.groups[1:])
    report = verify_plan(bad, CODE)
    assert report.has("plan/weights-shape")
    (finding,) = [f for f in report.findings if f.check == "plan/weights-shape"]
    assert "dropped" in finding.message and "group[0]" in finding.context


# -- mutation 2: one corrupted decode coefficient ------------------------


def test_mutation_swapped_coefficient_is_caught(plan):
    group = plan.groups[0]
    arr = group.weights.array.copy()
    i, j = np.argwhere(arr != 0)[0]
    arr[i, j] ^= 0x5A  # flip bits of one nonzero coefficient
    bad_w = GFMatrix(group.weights.field, arr)
    bad = replace(plan, groups=(replace(group, weights=bad_w),) + plan.groups[1:])
    report = verify_plan(bad, CODE)
    assert report.has("plan/group-weights")
    (finding,) = [f for f in report.findings if f.check == "plan/group-weights"]
    assert "F @ W != S" in finding.message
    assert "coefficient is corrupt" in finding.message


# -- mutation 3: a faulty block recovered twice --------------------------


def test_mutation_duplicated_faulty_id_is_caught(plan):
    dup = plan.groups[0].faulty_ids[0]
    assert plan.rest is not None
    bad_rest = replace(plan.rest, faulty_ids=plan.rest.faulty_ids + (dup,))
    report = verify_plan(replace(plan, rest=bad_rest), CODE)
    assert report.has("plan/duplicate-recovery")
    (finding,) = [f for f in report.findings if f.check == "plan/duplicate-recovery"]
    assert f"block {dup}" in finding.message
    assert "group[0]" in finding.message and "rest" in finding.message


# -- mutation 4: a faulty block nobody recovers --------------------------


def test_mutation_missing_coverage_is_caught(plan):
    assert plan.rest is not None and len(plan.rest.faulty_ids) >= 1
    dropped = plan.rest.faulty_ids[-1]
    bad_rest = replace(plan.rest, faulty_ids=plan.rest.faulty_ids[:-1])
    report = verify_plan(replace(plan, rest=bad_rest), CODE)
    assert report.has("plan/coverage-missing")
    (finding,) = [f for f in report.findings if f.check == "plan/coverage-missing"]
    assert str(dropped) in finding.message and "leave them lost" in finding.message


# -- mutation 5: tampered cost report ------------------------------------


def test_mutation_tampered_costs_are_caught(plan):
    bad_costs = replace(plan.costs, c4=plan.costs.c4 + 7)
    report = verify_plan(replace(plan, costs=bad_costs), CODE)
    assert report.has("plan/cost-mismatch")
    finding = next(f for f in report.findings if f.check == "plan/cost-mismatch")
    assert "C4" in finding.message and str(plan.costs.c4) in finding.message


# -- mutation 6: execution mode contradicting the policy -----------------


def test_mutation_wrong_mode_is_caught(plan):
    correct = plan.costs.choose(plan.policy)
    wrong = next(m for m in ExecutionMode if m is not correct)
    report = verify_plan(replace(plan, mode=wrong), CODE)
    assert report.has("plan/mode-mismatch")
    finding = next(f for f in report.findings if f.check == "plan/mode-mismatch")
    assert wrong.value in finding.message and correct.value in finding.message


# -- mutation 7: a group reading a faulty block (phase-order break) -------


def test_mutation_group_reads_faulty_block_is_caught(plan):
    group = plan.groups[0]
    other_faulty = next(b for b in plan.faulty_ids if b not in group.faulty_ids)
    survivors = (other_faulty,) + group.survivor_ids[1:]
    bad = replace(plan, groups=(replace(group, survivor_ids=survivors),) + plan.groups[1:])
    report = verify_plan(bad, CODE)
    assert report.has("plan/phase-order")
    finding = next(f for f in report.findings if f.check == "plan/phase-order")
    assert str(other_faulty) in finding.message
    assert "true" in finding.message and "survivors" in finding.message


# -- mutation 8: a rank-deficient "independent" group --------------------


def test_mutation_rank_deficient_group_is_caught(disk_plan):
    group = next(g for g in disk_plan.groups if len(g.faulty_ids) == 2)
    gi = disk_plan.groups.index(group)
    dup_rows = (group.row_ids[0], group.row_ids[0])  # same parity row twice
    groups = list(disk_plan.groups)
    groups[gi] = replace(group, row_ids=dup_rows)
    report = verify_plan(replace(disk_plan, groups=tuple(groups)), DISK_CODE)
    assert report.has("plan/group-rank")
    finding = next(f for f in report.findings if f.check == "plan/group-rank")
    assert "GF-rank" in finding.message and "not an" in finding.message


# -- structural checks beyond the core mutations --------------------------


def test_faulty_out_of_range_rejected(plan):
    report = verify_plan(replace(plan, faulty_ids=plan.faulty_ids + (999,)), CODE)
    assert report.has("plan/faulty-out-of-range")


def test_rest_reading_unrecovered_block_rejected(plan):
    assert plan.rest is not None
    # make the rest phase depend on a block that nothing recovers
    ghost = plan.rest.faulty_ids[0]
    bad_rest = replace(
        plan.rest,
        faulty_ids=plan.rest.faulty_ids[1:],
        survivor_ids=plan.rest.survivor_ids + (ghost,),
    )
    report = verify_plan(replace(plan, rest=bad_rest), CODE)
    assert report.has("plan/rest-reads-unrecovered")


def test_shared_row_between_phases_rejected(disk_plan):
    g0, g1 = disk_plan.groups[0], disk_plan.groups[1]
    stolen = (g0.row_ids[0],) + g1.row_ids[1:]
    groups = (disk_plan.groups[0], replace(g1, row_ids=stolen)) + disk_plan.groups[2:]
    report = verify_plan(replace(disk_plan, groups=groups), DISK_CODE)
    assert report.has("plan/row-shared")


def test_distinct_diagnostics_across_mutations(plan, disk_plan):
    """The six headline corruptions produce six *different* check ids."""
    checks = set()
    # 1 dropped row
    g = plan.groups[0]
    bad = replace(plan, groups=(replace(g, weights=g.weights.take_rows([])),) + plan.groups[1:])
    checks.update(f.check for f in verify_plan(bad, CODE).findings if f.check.startswith("plan/weights"))
    # 2 swapped coefficient
    arr = g.weights.array.copy()
    i, j = np.argwhere(arr != 0)[0]
    arr[i, j] ^= 1
    bad = replace(plan, groups=(replace(g, weights=GFMatrix(g.weights.field, arr)),) + plan.groups[1:])
    checks.update(f.check for f in verify_plan(bad, CODE).findings)
    # 3 duplicate recovery
    bad = replace(plan, rest=replace(plan.rest, faulty_ids=plan.rest.faulty_ids + (g.faulty_ids[0],)))
    checks.update(f.check for f in verify_plan(bad, CODE).findings)
    # 4 missing coverage
    bad = replace(plan, rest=replace(plan.rest, faulty_ids=plan.rest.faulty_ids[:-1]))
    checks.update(f.check for f in verify_plan(bad, CODE).findings)
    # 5 tampered costs
    bad = replace(plan, costs=replace(plan.costs, c1=0))
    checks.update(f.check for f in verify_plan(bad, CODE).findings)
    # 6 wrong mode
    bad = replace(plan, mode=ExecutionMode.TRADITIONAL_NORMAL)
    checks.update(f.check for f in verify_plan(bad, CODE).findings)
    assert {
        "plan/weights-shape",
        "plan/group-weights",
        "plan/duplicate-recovery",
        "plan/coverage-missing",
        "plan/cost-mismatch",
        "plan/mode-mismatch",
    } <= checks
