"""Verification wired into the decoder and the CLI.

``decode(..., verify=True)`` certifies plans before executing them (and
raises on a corrupted plan injected into the cache); ``ppm verify``
sweeps the registry and exits 0 on the shipped codebase.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import cli
from repro.codes import SDCode
from repro.core import ExecutionMode, PPMDecoder, TraditionalDecoder
from repro.stripes import Stripe, StripeLayout
from repro.verify import PlanVerificationError

CODE = SDCode(4, 4, 1, 1, 8)
FAULTY = [2, 6, 10, 13, 14]


def _encoded_stripe():
    stripe = Stripe.random(StripeLayout.of_code(CODE), CODE.field, 64, rng=0)
    TraditionalDecoder().encode_into(CODE, stripe)
    return stripe


@pytest.mark.parametrize(
    "decoder",
    [
        TraditionalDecoder(verify=True),
        PPMDecoder(parallel=False, verify=True),
    ],
)
def test_decode_with_verification_round_trips(decoder):
    stripe = _encoded_stripe()
    truth = stripe.copy()
    stripe.erase(FAULTY)
    recovered = decoder.decode(CODE, stripe, FAULTY)
    for b in FAULTY:
        assert np.array_equal(recovered[b], truth.get(b))


def test_decode_verify_kwarg_overrides_default():
    stripe = _encoded_stripe()
    truth = stripe.copy()
    stripe.erase(FAULTY)
    decoder = PPMDecoder(parallel=False)  # verification off by default
    recovered = decoder.decode(CODE, stripe, FAULTY, verify=True)
    for b in FAULTY:
        assert np.array_equal(recovered[b], truth.get(b))


def test_corrupted_cached_plan_is_rejected_before_execution():
    decoder = PPMDecoder(parallel=False, verify=True)
    good = decoder.plan(CODE, FAULTY)
    # poison the cache with a plan whose mode contradicts its costs
    wrong = next(m for m in ExecutionMode if m is not good.mode)
    (key,) = decoder._plan_cache
    decoder._plan_cache[key] = replace(good, mode=wrong)
    stripe = _encoded_stripe()
    stripe.erase(FAULTY)
    with pytest.raises(PlanVerificationError, match="plan/mode-mismatch"):
        decoder.decode(CODE, stripe, FAULTY)


def test_verification_is_cached_per_plan():
    decoder = PPMDecoder(parallel=False, verify=True)
    plan = decoder.plan(CODE, FAULTY)
    assert id(plan) in decoder._verified_plans
    # second planning call reuses both the plan and its certificate
    again = decoder.plan(CODE, FAULTY)
    assert again is plan
    assert len(decoder._verified_plans) == 1


def test_cli_verify_all_exits_zero(capsys):
    assert cli.main(["verify", "--all", "--samples", "4"]) == 0
    out = capsys.readouterr().out
    assert "all plans verified" in out


def test_cli_verify_single_code(capsys):
    rc = cli.main(["verify", "sd", "n=4", "r=4", "m=1", "s=1", "--samples", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scenario(s) verified" in out


def test_cli_verify_no_schedules_flag(capsys):
    assert cli.main(["verify", "--all", "--samples", "2", "--no-schedules"]) == 0
    out = capsys.readouterr().out
    assert "0 schedule(s)" in out
