"""Mutation tests for the compiled-program verifier.

Clean lowerings certify; every class of corruption — wrong transfer
coefficients, dropped/reordered instructions, mis-declared I/O, cooked
op counts — produces its specific finding.
"""

from dataclasses import replace

import pytest

from repro.codes import LRCCode, RSCode, SDCode
from repro.core import SequencePolicy
from repro.core.planner import plan_decode
from repro.gf import GF
from repro.kernels import OP_MUL, OP_MULXOR, lower_plan
from repro.verify import (
    ProgramVerificationError,
    assert_program_valid,
    sweep_code,
    verify_plan_program,
)


def compiled_case(faulty=(5, 7, 12, 15), policy=SequencePolicy.PAPER):
    code = SDCode(10, 8, 2, 2)
    plan = plan_decode(code, list(faulty), policy=policy)
    return code, plan, lower_plan(code.field, plan)


def mutate_program(compiled, **changes):
    return replace(compiled, program=replace(compiled.program, **changes))


@pytest.mark.parametrize(
    "code,faulty",
    [
        (SDCode(10, 8, 2, 2), [5, 7, 12, 15]),
        (RSCode(8, 4), [0, 3]),
        (LRCCode(8, 2, 2), [0, 9]),
    ],
)
@pytest.mark.parametrize(
    "policy",
    [SequencePolicy.PAPER, SequencePolicy.NORMAL, SequencePolicy.MATRIX_FIRST],
)
def test_clean_lowerings_certify(code, faulty, policy):
    plan = plan_decode(code, faulty, policy=policy)
    compiled = lower_plan(code.field, plan)
    report = verify_plan_program(compiled, code.field, plan)
    assert report.ok, report.format()
    assert_program_valid(compiled, code.field, plan)  # must not raise


def test_corrupted_constant_is_caught_as_transfer_mismatch():
    code, plan, compiled = compiled_case()
    instructions = list(compiled.program.instructions)
    for i, (op, dst, src, const) in enumerate(instructions):
        if op in (OP_MUL, OP_MULXOR):
            flipped = const ^ 1 if const ^ 1 >= 2 else const + 1
            instructions[i] = (op, dst, src, flipped)
            break
    bad = mutate_program(compiled, instructions=tuple(instructions))
    report = verify_plan_program(bad, code.field, plan)
    assert report.has("program/transfer"), report.format()


def test_dropped_instruction_is_caught():
    code, plan, compiled = compiled_case()
    bad = mutate_program(
        compiled, instructions=compiled.program.instructions[:-1]
    )
    report = verify_plan_program(bad, code.field, plan)
    assert not report.ok
    assert report.has("program/structure") or report.has("program/transfer")


def test_swapped_outputs_are_caught():
    code, plan, compiled = compiled_case()
    outputs = compiled.program.outputs
    bad = mutate_program(
        compiled, outputs=(outputs[1], outputs[0]) + outputs[2:]
    )
    report = verify_plan_program(bad, code.field, plan)
    assert report.has("program/transfer"), report.format()


def test_misdeclared_output_ids_are_caught():
    code, plan, compiled = compiled_case()
    bad = replace(compiled, output_ids=tuple(reversed(compiled.output_ids)))
    report = verify_plan_program(bad, code.field, plan)
    assert report.has("program/io-outputs"), report.format()


def test_faulty_block_listed_as_input_is_caught():
    code, plan, compiled = compiled_case()
    ids = (plan.faulty_ids[0],) + compiled.input_ids[1:]
    bad = replace(compiled, input_ids=ids)
    report = verify_plan_program(bad, code.field, plan)
    assert report.has("program/io-inputs"), report.format()


def test_cooked_mult_xors_count_is_caught():
    code, plan, compiled = compiled_case()
    bad = mutate_program(compiled, mult_xors=compiled.program.mult_xors - 1)
    report = verify_plan_program(bad, code.field, plan)
    assert report.has("program/op-count"), report.format()


def test_cooked_xor_only_count_is_caught():
    code, plan, compiled = compiled_case()
    bad = mutate_program(compiled, xor_only=compiled.program.xor_only + 1)
    report = verify_plan_program(bad, code.field, plan)
    assert report.has("program/xor-only"), report.format()


def test_field_width_mismatch_is_caught():
    code, plan, compiled = compiled_case()
    report = verify_plan_program(compiled, GF(16), plan)
    assert report.has("program/width"), report.format()


def test_assert_program_valid_raises_with_report():
    code, plan, compiled = compiled_case()
    bad = mutate_program(compiled, mult_xors=0)
    with pytest.raises(ProgramVerificationError) as excinfo:
        assert_program_valid(bad, code.field, plan)
    assert excinfo.value.report.has("program/op-count")


def test_sweep_counts_and_certifies_programs():
    code = SDCode(6, 4, 2, 2)
    result = sweep_code(code, samples=6, check_schedules=False)
    assert result.ok, result.report.format()
    assert result.programs > 0
    skipped = sweep_code(
        code, samples=6, check_schedules=False, check_programs=False
    )
    assert skipped.programs == 0
