"""Shared fixtures for the cluster test suite.

Sized for a 1-core CI box like the service suite: SD(6, 4, 2, 2),
16-symbol sectors, a handful of stripes per node.  Async tests wrap
their coroutine in ``asyncio.run`` (no pytest-asyncio in the
toolchain).
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.codes import SDCode
from repro.service import ServiceConfig

SYMBOLS = 16


@pytest.fixture(scope="module")
def code():
    return SDCode(6, 4, 2, 2)


def fast_service(**kwargs) -> ServiceConfig:
    """A service config tuned for test latency, not throughput."""
    defaults = dict(
        batch_trigger=4, flush_interval_s=0.002, backoff_base_s=0.0001
    )
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


def make_cluster(
    code,
    nodes: int = 3,
    num_stripes: int = 12,
    *,
    fault_rate: float = 0.0,
    seed: int = 7,
    **config_kwargs,
) -> Cluster:
    config_kwargs.setdefault("service", fast_service())
    config = ClusterConfig(nodes=nodes, seed=seed, **config_kwargs)
    return Cluster.build(
        code, num_stripes, SYMBOLS, config, fault_rate=fault_rate, rng=seed
    )
