"""Router behaviour: routing, membership, storms, health, metrics."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.repair import RepairConfig
from repro.service import (
    BlockUnavailableError,
    ServiceClosedError,
    damage_store,
)

from .conftest import fast_service, make_cluster


def test_build_places_every_stripe(code):
    cluster = make_cluster(code, nodes=3, num_stripes=12)
    assert cluster.stripe_ids == tuple(range(12))
    held = [sid for node in cluster.nodes.values() for sid in node.store.stripe_ids]
    assert sorted(held) == list(range(12))
    for sid in cluster.stripe_ids:
        assert cluster.owner_of(sid) == cluster.ring.place(sid)


def test_same_config_places_identically(code):
    a = make_cluster(code, nodes=3, num_stripes=12, seed=11)
    b = make_cluster(code, nodes=3, num_stripes=12, seed=11)
    assert {s: a.owner_of(s) for s in a.stripe_ids} == {
        s: b.owner_of(s) for s in b.stripe_ids
    }


def test_get_put_degraded_route_to_owners(code):
    async def run():
        cluster = make_cluster(code, nodes=3, num_stripes=6)
        for node in cluster.nodes.values():
            damage_store(node.store, fraction=1.0, seed=3)
        async with cluster:
            for sid in cluster.stripe_ids:
                store = cluster.nodes[cluster.owner_of(sid)].store
                stripe = store.stripe(sid)
                present = stripe.present_ids[0]
                region = await cluster.get(sid, present)
                assert cluster.verify_block(sid, present, region)
                erased = stripe.erased_ids[0]
                region = await cluster.degraded_get(sid, erased, deadline_s=5.0)
                assert cluster.verify_block(sid, erased, region)
            sid = cluster.stripe_ids[0]
            store = cluster.nodes[cluster.owner_of(sid)].store
            block = store.stripe(sid).present_ids[0]
            fresh = np.ones_like(store.truth(sid).get(block))
            await cluster.put(sid, block, fresh)
            got = await cluster.get(sid, block)
            assert np.array_equal(got, fresh)
        routed = cluster.metrics.as_dict()["routed"]
        assert sum(routed.values()) > 0

    asyncio.run(run())


def test_unknown_stripe_and_closed_cluster(code):
    async def run():
        cluster = make_cluster(code, nodes=2, num_stripes=4)
        async with cluster:
            with pytest.raises(BlockUnavailableError):
                await cluster.get(99, 0)
        with pytest.raises(ServiceClosedError):
            await cluster.get(0, 0)

    asyncio.run(run())


def test_route_retries_after_migration(code):
    """A request racing a rebalance retries once against the new home."""

    async def run():
        cluster = make_cluster(code, nodes=2, num_stripes=6)
        async with cluster:
            sid = cluster.stripe_ids[0]
            src = cluster.owner_of(sid)
            dst = next(n for n in cluster.nodes if n != src)
            stripe, truth = cluster.nodes[src].store.remove_stripe(sid)
            cluster.nodes[dst].store.adopt_stripe(sid, stripe, truth)
            # placement still says src: the first attempt raises
            # BlockUnavailableError, the re-resolve must find dst
            cluster._placement[sid] = dst
            block = stripe.present_ids[0]
            region = await cluster.get(sid, block)
            assert cluster.verify_block(sid, block, region)

    asyncio.run(run())


def test_add_node_rebalances_and_serves(code):
    async def run():
        cluster = make_cluster(code, nodes=3, num_stripes=18)
        async with cluster:
            before = {s: cluster.owner_of(s) for s in cluster.stripe_ids}
            joined = await cluster.add_node()
            assert joined == "node-3"
            took = [s for s in cluster.stripe_ids if cluster.owner_of(s) == joined]
            assert took, "a joining node must take some stripes"
            moved = [s for s in before if cluster.owner_of(s) != before[s]]
            assert sorted(moved) == sorted(took)
            for sid in took:
                block = cluster.nodes[joined].store.stripe(sid).present_ids[0]
                region = await cluster.get(sid, block)
                assert cluster.verify_block(sid, block, region)
        assert cluster.metrics.stripes_moved == len(took)

    asyncio.run(run())


def test_drain_node_empties_and_keeps_data(code):
    async def run():
        cluster = make_cluster(code, nodes=3, num_stripes=12)
        async with cluster:
            victim = max(
                cluster.nodes, key=lambda n: len(cluster.nodes[n].store.stripe_ids)
            )
            held = len(cluster.nodes[victim].store.stripe_ids)
            moved = await cluster.drain_node(victim)
            assert moved == held
            assert cluster.nodes[victim].state == "drained"
            assert not cluster.nodes[victim].store.stripe_ids
            assert cluster.stripe_ids == tuple(range(12))
            assert all(cluster.owner_of(s) != victim for s in cluster.stripe_ids)
            verify = cluster.verify_all()
            assert verify["erased"] == 0
            assert verify["mismatched"] == 0

    asyncio.run(run())


def test_kill_node_storms_and_heals(code):
    async def run():
        cluster = make_cluster(
            code,
            nodes=3,
            num_stripes=12,
            service=fast_service(
                repair=RepairConfig(scrub_interval_s=0.002, scrub_stripes=8)
            ),
        )
        async with cluster:
            victim = max(
                cluster.nodes, key=lambda n: len(cluster.nodes[n].store.stripe_ids)
            )
            doomed = len(cluster.nodes[victim].store.stripe_ids)
            stormed = await cluster.kill_node(victim)
            assert stormed == doomed > 0
            assert cluster.nodes[victim].state == "dead"
            with pytest.raises(ServiceClosedError):
                # the dead node's service is gone; re-homed stripes serve
                await cluster.nodes[victim].service.get(0, 0)
            # every stripe is still reachable (reads may need a decode)
            healed = await cluster.wait_healthy(timeout_s=30.0)
            assert healed, "survivors' repair loops must drain the storm"
            verify = cluster.verify_all()
            assert verify["stripes"] == 12
            assert verify["erased"] == 0
            assert verify["mismatched"] == 0
            assert await cluster.kill_node(victim) == 0  # idempotent
        storm = cluster.metrics.as_dict()["storm"]
        assert storm["storms"] == 1
        assert storm["stripes"] == doomed

    asyncio.run(run())


def test_kill_last_node_refuses(code):
    async def run():
        cluster = make_cluster(code, nodes=1, num_stripes=2)
        async with cluster:
            with pytest.raises(RuntimeError):
                await cluster.kill_node("node-0")

    asyncio.run(run())


def test_already_degraded_stripes_rehome_unchanged(code):
    async def run():
        cluster = make_cluster(code, nodes=2, num_stripes=8)
        for node in cluster.nodes.values():
            damage_store(node.store, fraction=1.0, seed=3)
        patterns = {
            sid: tuple(
                cluster.nodes[cluster.owner_of(sid)].store.stripe(sid).erased_ids
            )
            for sid in cluster.stripe_ids
        }
        async with cluster:
            victim = cluster.owner_of(cluster.stripe_ids[0])
            await cluster.kill_node(victim)
            for sid, pattern in patterns.items():
                stripe = cluster.nodes[cluster.owner_of(sid)].store.stripe(sid)
                assert tuple(stripe.erased_ids) == pattern, (
                    "storm must not stack erasures on already-degraded stripes"
                )

    asyncio.run(run())


def test_metrics_document_shape(code):
    async def run():
        cluster = make_cluster(code, nodes=2, num_stripes=4)
        async with cluster:
            await cluster.get(0, 0)
            doc = cluster.metrics_dict()
        assert set(doc) == {"cluster", "nodes", "totals"}
        assert set(doc["cluster"]["membership"]) == {"node-0", "node-1"}
        for section in ("routed", "rebalance", "storm"):
            assert section in doc["cluster"]
        assert doc["totals"]["requests"]["gets"] >= 1

    asyncio.run(run())


def test_tcp_transport_round_trip(code):
    """The same cluster behind per-node TCP servers + pooled clients."""

    async def run():
        config = ClusterConfig(
            nodes=2,
            seed=7,
            transport="tcp",
            connections_per_node=2,
            service=fast_service(),
        )
        cluster = Cluster.build(code, 6, 16, config, rng=7)
        for node in cluster.nodes.values():
            damage_store(node.store, fraction=1.0, seed=3)
        async with cluster:
            sid = cluster.stripe_ids[0]
            store = cluster.nodes[cluster.owner_of(sid)].store
            present = store.stripe(sid).present_ids[0]
            region = await cluster.get(sid, present)
            assert cluster.verify_block(sid, present, region)
            erased = store.stripe(sid).erased_ids[0]
            region = await cluster.degraded_get(sid, erased, deadline_s=5.0)
            assert cluster.verify_block(sid, erased, region)
        assert cluster.metrics.forwarded_wire >= 2

    asyncio.run(run())
