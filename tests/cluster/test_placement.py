"""Property tests for the consistent-hash ring.

The three placement properties the router leans on (module docstring of
:mod:`repro.cluster.placement`): determinism from the seed, balance
across members, and stability under membership change (~1/N of stripes
move on join, exactly the departed share on leave).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, default_node_ids, spread

NODE_COUNTS = st.integers(min_value=2, max_value=8)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
STRIPE_COUNTS = st.integers(min_value=32, max_value=256)


@given(nodes=NODE_COUNTS, seed=SEEDS, stripes=STRIPE_COUNTS)
@settings(max_examples=25, deadline=None)
def test_placement_is_deterministic_from_seed(nodes, seed, stripes):
    ids = default_node_ids(nodes)
    a = HashRing(ids, seed=seed).table(range(stripes))
    b = HashRing(reversed(ids), seed=seed).table(range(stripes))
    assert a == b, "placement must depend on the member *set*, not join order"


@given(seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_different_seeds_place_independently(seed):
    ids = default_node_ids(4)
    a = HashRing(ids, seed=seed).table(range(128))
    b = HashRing(ids, seed=seed + 1).table(range(128))
    assert a != b


@given(nodes=NODE_COUNTS, seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_placement_is_balanced(nodes, seed):
    ids = default_node_ids(nodes)
    stripes = 64 * nodes  # enough stripes that shares can average out
    table = HashRing(ids, seed=seed).table(range(stripes))
    shares = HashRing.shares(table)
    assert set(shares) <= set(ids)
    # every node holds something, and no node hoards: the default 64
    # vnodes keep max/min within a small constant factor
    assert spread(table, ids) <= 4.0


@given(nodes=NODE_COUNTS, seed=SEEDS, stripes=STRIPE_COUNTS)
@settings(max_examples=25, deadline=None)
def test_join_moves_about_one_nth(nodes, seed, stripes):
    ids = default_node_ids(nodes)
    ring = HashRing(ids, seed=seed)
    before = ring.table(range(stripes))
    ring.add(f"node-{nodes}")
    after = ring.table(range(stripes))
    moved = HashRing.moved(before, after)
    # only stripes whose successor became the new node may move, and
    # every move lands on it
    assert all(
        after[sid] == f"node-{nodes}"
        for sid in before
        if before[sid] != after[sid]
    )
    # the new node's expected share is stripes/(N+1); allow generous
    # slack for hash variance but reject wholesale reshuffles
    assert moved <= 3 * stripes / (nodes + 1)


@given(nodes=st.integers(min_value=3, max_value=8), seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_leave_moves_exactly_departed_share(nodes, seed):
    ids = default_node_ids(nodes)
    ring = HashRing(ids, seed=seed)
    stripes = 48 * nodes
    before = ring.table(range(stripes))
    victim = ids[0]
    ring.remove(victim)
    after = ring.table(range(stripes))
    departed = [sid for sid, owner in before.items() if owner == victim]
    assert HashRing.moved(before, after) == len(departed)
    assert all(after[sid] == before[sid] for sid in before if sid not in departed)


def test_membership_errors():
    ring = HashRing(["a", "b"])
    with pytest.raises(ValueError):
        ring.add("a")
    with pytest.raises(ValueError):
        ring.remove("c")
    ring.remove("a")
    ring.remove("b")
    with pytest.raises(ValueError):
        ring.place(0)
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        default_node_ids(0)
