"""Shared test configuration: deterministic hypothesis runs."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
