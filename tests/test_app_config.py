"""The layered config model: defaults → dict → dotted overrides.

Pins the three-layer precedence, the strictness guarantees (unknown
keys raise, values coerce to field types), the builders, and the
legacy flat-kwargs shim — including the parity regression test the
shim's docstring promises.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    AppConfig,
    StoreConfig,
    WorkloadConfig,
    apply_overrides,
    build_cluster,
    build_code,
    build_service,
    flatten,
    from_dict,
    to_dict,
)
from repro.repair import RepairConfig
from repro.service import ServiceConfig


def test_defaults_round_trip_through_dict():
    config = AppConfig()
    assert from_dict(to_dict(config)) == config


def test_overridden_config_round_trips():
    config = apply_overrides(
        AppConfig(),
        {
            "store.stripes": 64,
            "service.repair": True,
            "service.repair.scrub_stripes": 4,
            "cluster.nodes": 6,
            "workload.concurrency": 32,
        },
    )
    assert from_dict(to_dict(config)) == config


def test_from_dict_is_partial_and_strict():
    config = from_dict({"store": {"stripes": 8}, "cluster": {"nodes": 5}})
    assert config.store.stripes == 8
    assert config.store.n == StoreConfig().n  # untouched defaults
    assert config.cluster.nodes == 5
    with pytest.raises(ValueError, match="unknown config section"):
        from_dict({"storage": {}})
    with pytest.raises(ValueError, match="unknown config key store.shards"):
        from_dict({"store": {"shards": 3}})


def test_from_dict_repair_forms():
    assert from_dict({"service": {"repair": None}}).service.repair is None
    assert from_dict({"service": {"repair": True}}).service.repair == RepairConfig()
    config = from_dict({"service": {"repair": {"scrub_stripes": 4}}})
    assert config.service.repair.scrub_stripes == 4


def test_flatten_inverts_nesting_but_keeps_repair_whole():
    flat = flatten({"store": {"stripes": 8}, "service": {"repair": {"scrub_stripes": 4}}})
    assert flat == {"store.stripes": 8, "service.repair": {"scrub_stripes": 4}}
    config = apply_overrides(AppConfig(), flat)
    assert config.store.stripes == 8
    assert config.service.repair.scrub_stripes == 4


def test_apply_overrides_coerces_strings():
    config = apply_overrides(
        AppConfig(),
        {
            "store.stripes": "8",
            "store.fault_rate": "0.25",
            "service.coalesce": "false",
            "service.repair": "true",
        },
    )
    assert config.store.stripes == 8
    assert config.store.fault_rate == 0.25
    assert config.service.coalesce is False
    assert config.service.repair == RepairConfig()
    with pytest.raises(ValueError, match="not a bool"):
        apply_overrides(AppConfig(), {"service.coalesce": "maybe"})


def test_apply_overrides_rejects_unknown_paths():
    for path in ("store.shards", "nope.x", "store", "service.repair.nope"):
        with pytest.raises(ValueError):
            apply_overrides(AppConfig(), {path: 1})


def test_repair_subkey_materialises_default_config():
    config = apply_overrides(AppConfig(), {"service.repair.scrub_stripes": 4})
    assert config.service.repair is not None
    assert config.service.repair.scrub_stripes == 4
    off = apply_overrides(config, {"service.repair": "false"})
    assert off.service.repair is None


def test_overrides_never_mutate_the_input():
    base = AppConfig()
    apply_overrides(base, {"store.stripes": 99})
    assert base.store.stripes == StoreConfig().stripes
    assert dataclasses.is_dataclass(base.store)


def test_section_validation_still_applies():
    with pytest.raises(ValueError):
        apply_overrides(AppConfig(), {"store.fault_rate": 1.5})
    with pytest.raises(ValueError):
        apply_overrides(AppConfig(), {"cluster.transport": "carrier-pigeon"})
    with pytest.raises(ValueError):
        WorkloadConfig(requests=0)


SMALL = {
    "store.n": 6,
    "store.r": 4,
    "store.m": 2,
    "store.s": 2,
    "store.stripes": 4,
    "store.symbols": 16,
    "store.fault_rate": 0.0,
}


def test_builders_produce_live_objects():
    config = apply_overrides(AppConfig(), {**SMALL, "cluster.nodes": 2})
    code = build_code(config.store)
    assert (code.n, code.r) == (6, 4)
    service = build_service(config)
    assert len(service.store.stripe_ids) == 4
    assert service.config is config.service
    cluster = build_cluster(config)
    assert len(cluster.nodes) == 2
    assert cluster.stripe_ids == (0, 1, 2, 3)


def test_build_cluster_stitches_the_service_section():
    config = apply_overrides(
        AppConfig(),
        {**SMALL, "cluster.nodes": 2, "service.batch_trigger": 3},
    )
    cluster = build_cluster(config)
    for node in cluster.nodes.values():
        assert node.service.config.batch_trigger == 3


# -- legacy flat-kwargs shim --------------------------------------------------


def test_legacy_kwargs_warn_and_match_layered_config():
    """Parity regression: the flat keyword soup must build the exact
    config the layered API builds, so old callers keep working."""
    with pytest.warns(DeprecationWarning, match="flat service kwargs"):
        legacy = AppConfig.from_legacy_kwargs(
            n=6,
            r=4,
            m=2,
            s=2,
            stripes=4,
            symbols=16,
            fault_rate=0.0,
            seed=99,
            batch_trigger=3,
            flush_ms=5.0,
            naive=True,
            repair=True,
            scrub_stripes=4,
            nodes=2,
            requests=50,
            concurrency=8,
            degraded_fraction=0.25,
        )
    layered = apply_overrides(
        AppConfig(),
        {
            **SMALL,
            "store.seed": 99,
            "service.batch_trigger": 3,
            "service.flush_interval_s": 0.005,
            "service.coalesce": False,
            "service.repair": True,
            "service.repair.scrub_stripes": 4,
            "cluster.nodes": 2,
            "cluster.seed": 99,
            "workload.requests": 50,
            "workload.concurrency": 8,
            "workload.degraded_fraction": 0.25,
        },
    )
    assert legacy == layered


def test_legacy_seed_feeds_the_placement_ring():
    with pytest.warns(DeprecationWarning):
        config = AppConfig.from_legacy_kwargs(seed=123)
    assert config.store.seed == 123
    assert config.cluster.seed == 123


def test_legacy_unknown_kwarg_raises():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="unknown legacy kwarg"):
            AppConfig.from_legacy_kwargs(shards=3)


def test_service_config_is_default_constructed_sections():
    config = AppConfig()
    assert config.service == ServiceConfig()
    assert config.workload == WorkloadConfig()


def test_kernels_section_defaults_and_round_trip():
    from repro.config import KernelsConfig

    config = AppConfig()
    assert config.kernels == KernelsConfig()
    assert config.kernels.backend == "auto"
    overridden = apply_overrides(config, {"kernels.backend": "bitsliced"})
    assert overridden.kernels.backend == "bitsliced"
    assert from_dict(to_dict(overridden)) == overridden


def test_kernels_backend_is_validated():
    from repro.config import KernelsConfig

    with pytest.raises(ValueError, match="backend"):
        KernelsConfig(backend="nonesuch")
    with pytest.raises(ValueError, match="backend"):
        from_dict({"kernels": {"backend": "nonesuch"}})


def test_kernels_apply_sets_process_default():
    from repro.config import KernelsConfig
    from repro.kernels import default_backend, set_default_backend

    previous = default_backend()
    try:
        KernelsConfig(backend="bitsliced").apply()
        assert default_backend() == "bitsliced"
    finally:
        set_default_backend(previous)


def test_pipeline_section_round_trip_and_overrides():
    from repro.config import PipelineConfig

    config = from_dict(
        {"pipeline": {"pool": "thread", "hedge": True, "deadline_s": 1.5}}
    )
    assert config.pipeline == PipelineConfig(pool="thread", hedge=True, deadline_s=1.5)
    assert from_dict(to_dict(config)) == config
    layered = apply_overrides(
        config,
        {"pipeline.verify_workers": "true", "pipeline.hedge_factor": "1.5"},
    )
    assert layered.pipeline.verify_workers is True
    assert layered.pipeline.hedge_factor == 1.5
    assert config.pipeline.verify_workers is False  # input untouched


def test_pipeline_section_validates():
    from repro.config import PipelineConfig

    with pytest.raises(ValueError, match="pool"):
        PipelineConfig(pool="gpu")
    with pytest.raises(ValueError, match="deadline_s"):
        PipelineConfig(deadline_s=-1.0)
    with pytest.raises(ValueError, match="hedge_factor"):
        PipelineConfig(hedge_factor=0.9)


def test_pipeline_section_builds_a_live_pipeline():
    from repro.config import PipelineConfig

    section = PipelineConfig(
        pool="serial", hedge=True, verify_workers=True, deadline_s=2.0
    )
    pipe = section.build()
    try:
        assert pipe.hedge is True
        assert pipe.verify_workers is True
        assert pipe.deadline_s == 2.0
        assert pipe.pool.kind == "serial"
    finally:
        pipe.close()
    # deadline_s=0 means unbounded, not "deadline of zero"
    pipe = PipelineConfig().build()
    try:
        assert pipe.deadline_s is None
    finally:
        pipe.close()


def test_build_service_wires_pipeline_section_and_faults():
    config = from_dict(
        {
            "store": {"n": 6, "r": 4, "stripes": 1, "symbols": 16, "damaged": 0.0},
            "pipeline": {"verify_workers": True},
        }
    )
    service = build_service(config)
    try:
        assert service.pipeline.verify_workers is True
        # worker fault injection shares the store's injector, so one
        # --set store.* knob drives both read faults and worker faults
        assert service.pipeline.faults is service.store.faults
    finally:
        asyncio_run_close(service)


def asyncio_run_close(service):
    import asyncio

    asyncio.run(service.close())
