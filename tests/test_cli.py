"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_paper_example(capsys):
    assert main(["paper-example"]) == 0
    out = capsys.readouterr().out
    assert "C1=35" in out.replace("'C1': 35", "C1=35")
    assert "17.14%" in out
    assert "p = 3" in out


def test_list_codes(capsys):
    assert main(["list-codes"]) == 0
    out = capsys.readouterr().out.split()
    assert "sd" in out and "lrc" in out and "rs" in out


def test_demo(capsys):
    assert main(["demo", "--n", "6", "--r", "4", "--symbols", "64"]) == 0
    out = capsys.readouterr().out
    assert "verified=True" in out
    assert "traditional" in out and "PPM" in out


def test_figure_stdout(capsys):
    assert main(["figure", "5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_figure_csv_to_file(tmp_path, capsys):
    out_file = tmp_path / "fig5.csv"
    assert main(["figure", "5", "--csv", "--out", str(out_file)]) == 0
    content = out_file.read_text()
    assert content.startswith("m,n,z,")


def test_figure_rejects_unknown_number():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "3"])


def test_calibrate(capsys):
    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "E5-2603" in out
