"""repro — reproduction of "PPM: A Partitioned and Parallel Matrix Algorithm
to Accelerate Encoding/Decoding Process of Asymmetric Parity Erasure Codes"
(Li et al., ICPP 2015).

Layering (bottom-up):

- :mod:`repro.gf` — GF(2^w) arithmetic and the ``mult_XORs`` region primitive.
- :mod:`repro.matrix` — dense matrix algebra over GF(2^w).
- :mod:`repro.codes` — SD, PMDS, LRC (asymmetric) and RS, EVENODD, RDP
  (symmetric) code constructions.
- :mod:`repro.stripes` — stripe/disk-array storage substrate and failure
  scenario generation.
- :mod:`repro.core` — the PPM algorithm: log table, partition, calculation
  sequences C1..C4, planner and the traditional/PPM decoders.
- :mod:`repro.parallel` — thread pool and the calibrated parallel-time model.
- :mod:`repro.pipeline` — batched decode engine: plan cache, persistent
  worker pools, pattern-fused batch decode.
- :mod:`repro.service` — asyncio degraded-read service: coalescing
  scheduler, admission control, deadlines/retries, fault-injected store.
- :mod:`repro.analysis` — the paper's closed-form cost model (Section III-B).
- :mod:`repro.bench` — drivers that regenerate every evaluation figure.

Quick start::

    from repro import SDCode, PPMDecoder
    from repro.stripes import worst_case_sd

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from __future__ import annotations

from .gf import GF, OpCounter, RegionOps

__version__ = "1.0.0"

__all__ = ["GF", "OpCounter", "RegionOps", "__version__"]

_LAZY_EXPORTS = {
    "repro.matrix": ["GFMatrix", "invert", "rank", "SingularMatrixError"],
    "repro.codes": [
        "ErasureCode",
        "SDCode",
        "PMDSCode",
        "LRCCode",
        "RSCode",
        "EvenOddCode",
        "RDPCode",
        "get_code",
    ],
    "repro.stripes": ["StripeLayout", "Stripe", "DiskArray", "FailureScenario", "worst_case_sd"],
    "repro.core": [
        "PPMDecoder",
        "TraditionalDecoder",
        "DecodePlan",
        "plan_decode",
        "build_log_table",
        "partition",
        "evaluate_costs",
        "SequencePolicy",
        "get_decoder",
        "available_decoders",
    ],
    "repro.parallel": ["CPUProfile", "simulate_decode_time", "host_profile"],
    "repro.pipeline": ["DecodePipeline", "PlanCache", "PipelineMetrics"],
    "repro.service": ["BlobService", "BlobStore", "ServiceConfig", "ServiceMetrics"],
    "repro.analysis": ["sd_costs", "predicted_improvement"],
}

_LAZY_LOOKUP = {name: module for module, names in _LAZY_EXPORTS.items() for name in names}
__all__ += sorted(_LAZY_LOOKUP)


def __getattr__(name: str):
    """PEP 562 lazy re-export of the public API from subpackages."""
    module_name = _LAZY_LOOKUP.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
