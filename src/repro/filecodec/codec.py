"""File-level encoder/decoder — the shape of Plank's SD encoder/decoder.

The paper's experiments modify "the open source SD encoder and decoder"
(Plank, UT-CS-13-704): command-line tools that split a file into
``n`` per-disk strip files plus metadata, and reconstruct the original
from any decodable subset.  This package reproduces that tool on top of
the library:

- :func:`encode_file` — split + encode ``file`` into ``<stem>_disk<j>.dat``
  strip files and a ``<stem>_meta.json`` descriptor;
- :func:`decode_file` — rebuild the original file from the surviving
  strip files (missing/deleted disks are erasure-decoded per stripe);
- :func:`repair_files` — regenerate the missing strip files themselves.

Layout: file bytes fill the data blocks of consecutive stripes in
ascending block-id order, zero-padded at the tail; every sector of disk
``j`` across all stripes concatenates into strip file ``j`` (so deleting
one file == failing one disk).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..codes import get_code
from ..codes.base import ErasureCode
from ..core.decoder import _PlanningDecoder
from ..stripes.layout import StripeLayout


@dataclass(frozen=True)
class FileCodecMeta:
    """Descriptor of an encoded file (serialised to JSON)."""

    original_name: str
    original_size: int
    code_kind: str
    code_params: dict
    sector_bytes: int
    num_stripes: int

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro-ppm-filecodec-v1",
                "original_name": self.original_name,
                "original_size": self.original_size,
                "code_kind": self.code_kind,
                "code_params": self.code_params,
                "sector_bytes": self.sector_bytes,
                "num_stripes": self.num_stripes,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FileCodecMeta":
        data = json.loads(text)
        if data.get("format") != "repro-ppm-filecodec-v1":
            raise ValueError(f"not a filecodec descriptor: {data.get('format')!r}")
        return cls(
            original_name=data["original_name"],
            original_size=data["original_size"],
            code_kind=data["code_kind"],
            code_params=data["code_params"],
            sector_bytes=data["sector_bytes"],
            num_stripes=data["num_stripes"],
        )

    def build_code(self) -> ErasureCode:
        return get_code(self.code_kind, **self.code_params)


def _strip_path(out_dir: str, stem: str, disk: int) -> str:
    return os.path.join(out_dir, f"{stem}_disk{disk:03d}.dat")


def _meta_path(out_dir: str, stem: str) -> str:
    return os.path.join(out_dir, f"{stem}_meta.json")


def _sector_symbols(code: ErasureCode, sector_bytes: int) -> int:
    word = code.field.dtype.itemsize
    if sector_bytes % word:
        raise ValueError(
            f"sector_bytes={sector_bytes} not a multiple of the {word}-byte symbol"
        )
    return sector_bytes // word


def encode_file(
    path: str,
    code: ErasureCode,
    out_dir: str,
    sector_bytes: int = 4096,
    encoder: _PlanningDecoder | None = None,
    code_params: dict | None = None,
) -> FileCodecMeta:
    """Encode ``path`` into per-disk strip files under ``out_dir``.

    ``code_params`` are recorded in the descriptor so ``decode_file``
    can rebuild the identical code (defaults to the obvious attributes
    for registered kinds).
    """
    from ..core import TraditionalDecoder

    encoder = encoder if encoder is not None else TraditionalDecoder()
    symbols = _sector_symbols(code, sector_bytes)
    with open(path, "rb") as fh:
        payload = fh.read()
    data_per_stripe = len(code.data_block_ids) * sector_bytes
    num_stripes = max(1, -(-len(payload) // data_per_stripe))
    padded = payload.ljust(num_stripes * data_per_stripe, b"\0")
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.splitext(os.path.basename(path))[0]
    layout = StripeLayout.of_code(code)

    strips: list[list[bytes]] = [[] for _ in range(code.n)]
    dtype = code.field.dtype
    for si in range(num_stripes):
        base = si * data_per_stripe
        blocks: dict[int, np.ndarray] = {}
        for idx, bid in enumerate(code.data_block_ids):
            chunk = padded[base + idx * sector_bytes : base + (idx + 1) * sector_bytes]
            blocks[bid] = np.frombuffer(chunk, dtype=dtype).copy()
        parity = encoder.decode(code, blocks, code.parity_block_ids)
        blocks.update(parity)
        for disk in range(code.n):
            for bid in layout.blocks_of_disk(disk):
                strips[disk].append(blocks[bid].tobytes())
    for disk in range(code.n):
        with open(_strip_path(out_dir, stem, disk), "wb") as fh:
            fh.write(b"".join(strips[disk]))

    meta = FileCodecMeta(
        original_name=os.path.basename(path),
        original_size=len(payload),
        code_kind=code.kind,
        code_params=code_params if code_params is not None else _infer_params(code),
        sector_bytes=sector_bytes,
        num_stripes=num_stripes,
    )
    with open(_meta_path(out_dir, stem), "w") as fh:
        fh.write(meta.to_json() + "\n")
    return meta


def _infer_params(code: ErasureCode) -> dict:
    """Constructor kwargs for the registered code kinds."""
    if code.kind in ("sd", "pmds"):
        return {
            "n": code.n,
            "r": code.r,
            "m": code.m,
            "s": code.s,
            "w": code.field.w,
            "coefficients": list(code.coefficients),
        }
    if code.kind == "lrc":
        return {
            "k": code.k,
            "l": code.l,
            "g": code.g,
            "w": code.field.w,
            "group_sizes": list(code.group_sizes),
        }
    if code.kind == "rs":
        return {"n": code.n, "k": code.k, "r": code.r, "w": code.field.w, "style": code.style}
    if code.kind in ("evenodd", "rdp", "star"):
        return {"p": code.p, "w": code.field.w}
    raise ValueError(f"cannot infer constructor params for code kind {code.kind!r}")


def _load_strips(
    meta: FileCodecMeta, code: ErasureCode, directory: str, stem: str
) -> tuple[dict[int, bytes], list[int]]:
    """Read surviving strip files; returns (per-disk bytes, missing disks)."""
    expected = meta.num_stripes * code.r * meta.sector_bytes
    available: dict[int, bytes] = {}
    missing: list[int] = []
    for disk in range(code.n):
        strip = _strip_path(directory, stem, disk)
        if not os.path.exists(strip):
            missing.append(disk)
            continue
        with open(strip, "rb") as fh:
            blob = fh.read()
        if len(blob) != expected:
            raise ValueError(
                f"strip {strip} has {len(blob)} bytes, expected {expected}"
            )
        available[disk] = blob
    return available, missing


def _recover_stripes(
    meta: FileCodecMeta,
    code: ErasureCode,
    available: dict[int, bytes],
    missing: list[int],
    decoder: _PlanningDecoder,
):
    """Yield (stripe_index, blocks dict incl. recovered) for every stripe."""
    layout = StripeLayout.of_code(code)
    dtype = code.field.dtype
    sector_bytes = meta.sector_bytes
    faulty = sorted(
        bid for disk in missing for bid in layout.blocks_of_disk(disk)
    )
    for si in range(meta.num_stripes):
        blocks: dict[int, np.ndarray] = {}
        for disk, blob in available.items():
            base = si * code.r * sector_bytes
            for row, bid in enumerate(layout.blocks_of_disk(disk)):
                chunk = blob[base + row * sector_bytes : base + (row + 1) * sector_bytes]
                blocks[bid] = np.frombuffer(chunk, dtype=dtype)
        if faulty:
            blocks.update(decoder.decode(code, blocks, faulty))
        yield si, blocks


def decode_file(
    meta_path: str,
    out_path: str,
    decoder: _PlanningDecoder | None = None,
) -> FileCodecMeta:
    """Reconstruct the original file from the strip files next to ``meta_path``."""
    from ..core import PPMDecoder

    decoder = decoder if decoder is not None else PPMDecoder(parallel=False)
    directory = os.path.dirname(os.path.abspath(meta_path))
    with open(meta_path) as fh:
        meta = FileCodecMeta.from_json(fh.read())
    code = meta.build_code()
    stem = os.path.splitext(meta.original_name)[0]
    available, missing = _load_strips(meta, code, directory, stem)
    if len(missing) and not available:
        raise ValueError("no strip files found")
    with open(out_path, "wb") as out:
        remaining = meta.original_size
        for _si, blocks in _recover_stripes(meta, code, available, missing, decoder):
            for bid in code.data_block_ids:
                if remaining <= 0:
                    break
                chunk = blocks[bid].tobytes()[: max(0, remaining)]
                out.write(chunk)
                remaining -= len(chunk)
    return meta


def repair_files(
    meta_path: str,
    decoder: _PlanningDecoder | None = None,
) -> list[int]:
    """Regenerate missing strip files in place; returns the repaired disks."""
    from ..core import PPMDecoder

    decoder = decoder if decoder is not None else PPMDecoder(parallel=False)
    directory = os.path.dirname(os.path.abspath(meta_path))
    with open(meta_path) as fh:
        meta = FileCodecMeta.from_json(fh.read())
    code = meta.build_code()
    stem = os.path.splitext(meta.original_name)[0]
    available, missing = _load_strips(meta, code, directory, stem)
    if not missing:
        return []
    layout = StripeLayout.of_code(code)
    rebuilt: dict[int, list[bytes]] = {disk: [] for disk in missing}
    for _si, blocks in _recover_stripes(meta, code, available, missing, decoder):
        for disk in missing:
            for bid in layout.blocks_of_disk(disk):
                rebuilt[disk].append(blocks[bid].tobytes())
    for disk in missing:
        with open(_strip_path(directory, stem, disk), "wb") as fh:
            fh.write(b"".join(rebuilt[disk]))
    return missing
