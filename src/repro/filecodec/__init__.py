"""File-level encode/decode tools (the shape of Plank's SD encoder/decoder)."""

from .codec import FileCodecMeta, decode_file, encode_file, repair_files

__all__ = ["FileCodecMeta", "decode_file", "encode_file", "repair_files"]
