"""File-level encode/decode tools (the shape of Plank's SD encoder/decoder)."""

from __future__ import annotations

from .codec import FileCodecMeta, decode_file, encode_file, repair_files

__all__ = ["FileCodecMeta", "decode_file", "encode_file", "repair_files"]
