"""Priority-aware batch admission for the decode pipeline.

The pipeline serves two traffic classes with opposite goals:

- **foreground** — live degraded reads with latency SLOs; a queued
  request is a user waiting;
- **background** — scrub/repair batches from
  :class:`repro.repair.RepairManager` and offline rebuilds; throughput
  matters, latency does not.

:class:`PriorityAdmission` is the gate ``decode_batch`` passes every
submission through: foreground batches are admitted immediately, while
a background batch *defers* — waits — as long as any foreground batch
is in flight, up to ``max_defer_s`` (the anti-starvation bound: repair
must eventually make progress even under sustained foreground load).
The gate is plain ``threading`` (decode batches already run on worker
threads, off the event loop), shared safely by every thread that
submits through one pipeline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

#: The two admission classes, in descending priority.
PRIORITIES = ("foreground", "background")


class PriorityAdmission:
    """Two-class admission gate: foreground runs now, background yields.

    Parameters
    ----------
    max_defer_s:
        Longest a background batch may be held waiting for foreground
        batches to clear.  ``0`` disables deferral entirely (every
        class admitted immediately).
    """

    def __init__(self, max_defer_s: float = 0.05):
        if max_defer_s < 0:
            raise ValueError(f"max_defer_s must be >= 0, got {max_defer_s}")
        self.max_defer_s = max_defer_s
        self._cond = threading.Condition()
        self._foreground_active = 0
        self._background_active = 0
        # lifetime tallies (read under the same lock)
        self.deferred_batches = 0
        self.deferred_seconds = 0.0

    # -- introspection -------------------------------------------------------

    @property
    def foreground_active(self) -> int:
        return self._foreground_active

    @property
    def background_active(self) -> int:
        return self._background_active

    # -- the gate ------------------------------------------------------------

    @contextmanager
    def admit(self, priority: str = "foreground") -> Iterator[None]:
        """Admit one batch of the given class for its whole decode."""
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        if priority == "foreground":
            with self._cond:
                self._foreground_active += 1
            try:
                yield
            finally:
                with self._cond:
                    self._foreground_active -= 1
                    self._cond.notify_all()
            return
        self._defer_background()
        with self._cond:
            self._background_active += 1
        try:
            yield
        finally:
            with self._cond:
                self._background_active -= 1

    def _defer_background(self) -> None:
        """Wait (bounded) for in-flight foreground batches to clear."""
        if self.max_defer_s <= 0:
            return
        deadline = time.monotonic() + self.max_defer_s
        with self._cond:
            if not self._foreground_active:
                return
            t0 = time.monotonic()
            self.deferred_batches += 1
            while self._foreground_active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # anti-starvation: run anyway
                self._cond.wait(timeout=remaining)
            self.deferred_seconds += time.monotonic() - t0
