"""The batched decode engine: many stripes per submission, one plan each.

The paper's speedup has two amortisable fixed costs — *planning* (log
table, partition, ``F^-1 S`` products) and *worker startup* — plus a
per-stripe variable cost of Python dispatch around the region kernels.
:class:`DecodePipeline` attacks all three at once:

- plans come from a shared :class:`~repro.pipeline.plancache.PlanCache`
  (LRU, hit/miss counted, optionally statically certified);
- workers live in a persistent :class:`~repro.pipeline.pool.WorkerPool`
  that is spawned once and reused across every batch;
- stripes sharing an erasure pattern are *fused*: their survivor sectors
  are concatenated per block id, so one ``F^-1 S`` region sweep recovers
  the whole batch (``u(W)`` region operations total instead of
  ``u(W) x stripes``, each over a region ``stripes`` times longer).

Work is scheduled at (pattern x independent-sub-matrix) granularity and
spread over workers with the LPT greedy from
:mod:`repro.parallel.assignment` (round-robin available for
paper-faithful comparisons).  The serial rest phase of each pattern runs
on the caller's thread after its groups complete, exactly like the
single-stripe decoders.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, FIRST_EXCEPTION, Future, wait
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..codes.base import ErasureCode
from ..core.decoder import _PlanningDecoder, _run_rest
from ..core.planner import DecodePlan, GroupPlan, TraditionalPlan
from ..core.procparallel import _child_ops
from ..core.sequences import ExecutionMode, SequencePolicy
from ..gf.field import GF
from ..gf.region import OpCounter, RegionOps
from ..kernels import CompiledRegionOps, ProgramCache
from ..parallel.assignment import assign_lpt, assign_round_robin
from ..stripes.scrub import verify_rows
from ..stripes.store import Stripe
from .admission import PriorityAdmission
from .metrics import LatencyTracker, PipelineMetrics
from .plancache import PlanCache
from .pool import StragglerTimeout, WorkerPool, make_pool

#: One schedulable unit: apply ``m1`` (then optionally ``m2``) to the
#: concatenated survivor regions.  ``(m1, None)`` covers independent
#: groups and the matrix-first whole-matrix sequence; ``(s, f_inv)``
#: covers the normal sequence.  Pure data, picklable for process pools.
_Task = tuple[int, np.ndarray, "np.ndarray | None", list[np.ndarray], tuple[int, ...]]


@dataclass(frozen=True)
class BatchStats:
    """What one ``decode_batch`` call did."""

    stripes: int
    patterns: int
    plan_hits: int
    plan_misses: int
    mult_xors: int
    symbols: int
    wall_seconds: float
    queue_depth: int


def _apply_task(
    ops: RegionOps,
    m1: np.ndarray,
    m2: np.ndarray | None,
    regions: list[np.ndarray],
) -> list[np.ndarray]:
    if m2 is not None:
        # one fused chain program under the compiled backend, equivalent
        # chained matrix_apply calls under the interpreted one
        return ops.matrix_chain_apply((m1, m2), regions)
    return ops.matrix_apply(m1, regions)


def _run_task_bucket(
    w: int, polynomial: int, tasks: list[_Task], compiled: bool = True
) -> tuple[dict[int, dict[int, np.ndarray]], float]:
    """Process-pool worker: execute a bucket of tasks in a child process.

    The field is reconstructed from ``(w, polynomial)`` and the ops
    instance (with its program cache, when compiled) persists in the
    worker process across submissions; op accounting happens in the
    parent (child counters cannot be shared), see
    :meth:`DecodePipeline._account_remote_tasks`.
    """
    t0 = time.perf_counter()
    ops = _child_ops(w, polynomial, compiled)
    out: dict[int, dict[int, np.ndarray]] = {}
    for task_id, m1, m2, regions, faulty_ids in tasks:
        outs = _apply_task(ops, m1, m2, regions)
        out[task_id] = dict(zip(faulty_ids, outs))
    return out, time.perf_counter() - t0


class _PatternBatch:
    """All stripes of one batch that share one erasure pattern."""

    def __init__(self, pattern: tuple[int, ...], plan: DecodePlan):
        self.pattern = pattern
        self.plan = plan
        self.indices: list[int] = []  # positions in the submitted batch
        self.offsets: list[int] = [0]  # concat boundaries, len(indices)+1
        self.concat: dict[int, np.ndarray] = {}  # survivor id -> fused region
        self.recovered: dict[int, np.ndarray] = {}  # faulty id -> fused region

    def fuse(self, blocks_list: list[Mapping[int, np.ndarray]]) -> None:
        """Concatenate the survivor regions this plan reads, per block id."""
        plan = self.plan
        needed: set[int] = set()
        if plan.uses_partition:
            for group in plan.groups:
                needed.update(group.survivor_ids)
            if plan.rest is not None:
                needed.update(plan.rest.survivor_ids)
            needed.difference_update(plan.faulty_ids)
        else:
            needed.update(plan.traditional.survivor_ids)
        maps = [blocks_list[i] for i in self.indices]
        for blocks in maps:
            sample = blocks[next(iter(needed))]
            # each _PatternBatch belongs to exactly one decode_batch call
            self.offsets.append(self.offsets[-1] + sample.shape[0])  # ppm: noqa[PPM010]
        self.concat = {  # ppm: noqa[PPM010] - batch owned by one call
            b: np.concatenate([blocks[b] for blocks in maps]) for b in needed
        }

    def split(self, results: list[dict[int, np.ndarray]]) -> None:
        """Slice each fused recovered region back into per-stripe views."""
        for rank, index in enumerate(self.indices):
            lo, hi = self.offsets[rank], self.offsets[rank + 1]
            results[index] = {
                bid: region[lo:hi] for bid, region in self.recovered.items()
            }


class DecodePipeline:
    """Throughput-oriented batched decoder with persistent workers.

    Satisfies the single-stripe ``decode`` protocol (so it drops into
    :meth:`repro.stripes.DiskArray.degraded_read` and any existing
    harness), but its native entry point is :meth:`decode_batch`.

    Parameters
    ----------
    workers:
        Pool width; ignored when ``pool`` is an existing
        :class:`~repro.pipeline.pool.WorkerPool` instance.
    pool:
        ``"thread"`` (default), ``"process"``, ``"serial"``, or a
        ready-made pool to share between pipelines.
    policy:
        Sequence policy for every plan (part of the plan-cache key).
    assignment:
        ``"lpt"`` (default) or ``"round_robin"`` group-to-worker
        placement.
    plan_cache_size:
        LRU capacity of the shared :class:`PlanCache`.
    verify:
        Statically certify every cache-miss plan (PR-1 verifier).
    counter:
        Optional shared :class:`~repro.gf.region.OpCounter`.
    compile:
        Route region work through compiled
        :class:`~repro.kernels.RegionProgram` kernels (default); pass
        ``False`` for the interpreted per-call baseline.
    max_defer_s:
        How long a ``priority="background"`` batch may be held waiting
        for in-flight foreground batches to drain (see
        :class:`~repro.pipeline.admission.PriorityAdmission`).
    hedge:
        Speculatively resubmit a phase-1 bucket whose worker has run
        longer than ``max(pX, ewma) * hedge_factor`` of similar work
        (per-shape :class:`~repro.pipeline.metrics.LatencyTracker`),
        and take whichever execution finishes first.  The loser's
        output is discarded, never merged.  Requires a concurrent pool
        (no-op on ``serial``).
    hedge_percentile / hedge_factor / hedge_min_samples:
        The hedge trigger: the pX of the recent latency window for the
        bucket's shape, times ``hedge_factor``; no hedging until a
        shape has ``hedge_min_samples`` observations.
    verify_workers:
        Syndrome-check every phase-1 worker result against the parity
        rows that produced it before merging; a failing result is
        quarantined and recomputed on the caller's thread (the trusted
        serial path), counted in ``verify_rejects``.  Roughly doubles
        the phase-1 region work — the price of not merging a silently
        corrupt worker output.
    deadline_s:
        Default per-batch bound on the phase-1 gather; on expiry
        outstanding buckets are abandoned and
        :class:`~repro.pipeline.pool.StragglerTimeout` is raised.
        Overridable per call via ``decode_batch(..., deadline_s=...)``.
    faults:
        Optional :class:`~repro.service.store.FaultInjector` whose
        slow-worker/corrupt-worker modes apply to primary worker
        executions on the thread/serial path (hedges and process-pool
        children are not injected) — the test/bench hook proving the
        hedging and verification machinery works.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        pool: str | WorkerPool = "thread",
        policy: SequencePolicy = SequencePolicy.PAPER,
        assignment: str = "lpt",
        plan_cache_size: int = 128,
        verify: bool = False,
        counter: OpCounter | None = None,
        compile: bool = True,
        max_defer_s: float = 0.05,
        hedge: bool = False,
        hedge_percentile: float = 0.95,
        hedge_factor: float = 2.0,
        hedge_min_samples: int = 8,
        verify_workers: bool = False,
        deadline_s: float | None = None,
        faults=None,
    ):
        if assignment not in ("lpt", "round_robin"):
            raise ValueError(
                f"assignment must be 'lpt' or 'round_robin', got {assignment!r}"
            )
        if not 0.0 < hedge_percentile <= 1.0:
            raise ValueError(
                f"hedge_percentile must be in (0, 1], got {hedge_percentile}"
            )
        if hedge_factor < 1.0:
            raise ValueError(f"hedge_factor must be >= 1.0, got {hedge_factor}")
        if hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {hedge_min_samples}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.pool = pool if isinstance(pool, WorkerPool) else make_pool(pool, workers)
        self.workers = self.pool.workers
        self.policy = policy
        self.assignment = assignment
        self.verify = verify
        self.counter = counter if counter is not None else OpCounter()
        self.plans = PlanCache(maxsize=plan_cache_size, verify=verify)
        self.compile = compile
        self.programs = ProgramCache() if compile else None
        self.admission = PriorityAdmission(max_defer_s=max_defer_s)
        self.hedge = hedge
        self.hedge_percentile = hedge_percentile
        self.hedge_factor = hedge_factor
        self.hedge_min_samples = hedge_min_samples
        self.verify_workers = verify_workers
        self.deadline_s = deadline_s
        self.faults = faults
        self.latency = LatencyTracker()
        self._ops_cache: dict[int, RegionOps] = {}
        self._hedge_ops_cache: dict[int, RegionOps] = {}
        # lifetime tallies behind metrics(); decode_batch runs on
        # whatever thread calls it (several asyncio.to_thread workers
        # at once under the async service), so the tallies and the ops
        # cache share one lock
        self._tally_lock = threading.Lock()
        self._stripes = 0
        self._batches = 0
        self._background_batches = 0
        self._patterns = 0
        self._wall = 0.0
        self._busy = [0.0] * self.workers
        self._queue_peak = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._verify_rejects = 0
        self._straggler_timeouts = 0

    # -- plumbing -----------------------------------------------------------

    def _ops_for(self, field: GF) -> RegionOps:
        key = id(field)
        with self._tally_lock:
            ops = self._ops_cache.get(key)
            if ops is None:
                if self.programs is not None:
                    ops = CompiledRegionOps(field, self.counter, programs=self.programs)
                else:
                    ops = RegionOps(field, self.counter)
                self._ops_cache[key] = ops
        return ops

    def _hedge_ops_for(self, field: GF) -> RegionOps:
        """Ops for hedge executions: shared program cache, private counter.

        A hedged bucket runs *twice*; booking both runs into the
        pipeline's :class:`OpCounter` would inflate the paper's
        operation accounting, so hedges compute with a throwaway
        counter.  The primary always runs to completion in the pool and
        is counted exactly once, win or lose.
        """
        key = id(field)
        with self._tally_lock:
            ops = self._hedge_ops_cache.get(key)
            if ops is None:
                if self.programs is not None:
                    ops = CompiledRegionOps(field, OpCounter(), programs=self.programs)
                else:
                    ops = RegionOps(field, OpCounter())
                self._hedge_ops_cache[key] = ops
        return ops

    @staticmethod
    def _normalize_faulty(
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        faulty: Sequence[int] | Sequence[Sequence[int]] | None,
    ) -> list[tuple[int, ...]]:
        """One sorted erasure pattern per stripe."""
        if faulty is None:
            patterns = []
            for stripe in stripes:
                if not isinstance(stripe, Stripe):
                    raise TypeError(
                        "faulty=None requires Stripe inputs (erased ids are "
                        "derived from the stripe); pass patterns explicitly "
                        "for plain block mappings"
                    )
                patterns.append(tuple(sorted(stripe.erased_ids)))
            return patterns
        seq = list(faulty)
        if seq and isinstance(seq[0], (int, np.integer)):
            one = tuple(sorted({int(b) for b in seq}))
            return [one] * len(stripes)
        if len(seq) != len(stripes):
            raise ValueError(
                f"{len(seq)} erasure patterns for {len(stripes)} stripes"
            )
        return [tuple(sorted({int(b) for b in pat})) for pat in seq]

    def _account_remote_tasks(self, tasks: Sequence[_Task]) -> None:
        """Book work done in child processes into the parent counter."""
        for _task_id, m1, m2, regions, _faulty in tasks:
            if not regions:
                continue
            length = regions[0].shape[0]
            for m in (m1, m2):
                if m is None:
                    continue
                count = int(np.count_nonzero(m))
                ones = int(np.count_nonzero(m == 1))
                self.counter.record(count, count * length, xor_only=ones)

    # -- the decode API ------------------------------------------------------

    def decode(
        self,
        code: ErasureCode,
        stripe: Stripe | Mapping[int, np.ndarray],
        faulty: Sequence[int],
        *,
        return_stats: bool = False,
    ):
        """Single-stripe decode: a batch of one (protocol compatibility)."""
        results, stats = self.decode_batch(
            code, [stripe], [tuple(faulty)], return_stats=True
        )
        if return_stats:
            return results[0], stats
        return results[0]

    def decode_batch(
        self,
        code: ErasureCode,
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        faulty: Sequence[int] | Sequence[Sequence[int]] | None = None,
        *,
        return_stats: bool = False,
        priority: str = "foreground",
        deadline_s: float | None = None,
    ):
        """Recover the faulty blocks of many stripes in one submission.

        ``faulty`` is one pattern shared by every stripe, one pattern per
        stripe, or ``None`` to read each stripe's own erased ids.
        Returns a list of ``{block_id: region}`` dicts aligned with
        ``stripes`` (regions are views into the fused batch buffers);
        with ``return_stats=True`` also a :class:`BatchStats`.

        ``priority`` classes the batch for admission: ``"foreground"``
        (live degraded reads — admitted immediately) or
        ``"background"`` (scrub/repair — deferred while foreground
        batches are in flight, bounded by the pipeline's
        ``max_defer_s``).

        ``deadline_s`` bounds this batch's phase-1 gather (default: the
        pipeline's ``deadline_s``); on expiry outstanding workers are
        abandoned and :class:`~repro.pipeline.pool.StragglerTimeout`
        propagates — no partial batch is ever returned.
        """
        with self.admission.admit(priority):
            return self._decode_batch_admitted(
                code,
                stripes,
                faulty,
                return_stats=return_stats,
                background=priority == "background",
                deadline_s=self.deadline_s if deadline_s is None else deadline_s,
            )

    def _decode_batch_admitted(
        self,
        code: ErasureCode,
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        faulty: Sequence[int] | Sequence[Sequence[int]] | None,
        *,
        return_stats: bool,
        background: bool,
        deadline_s: float | None = None,
    ):
        t0 = time.perf_counter()
        before = self.counter.snapshot()
        hits0, misses0 = self.plans.stats.hits, self.plans.stats.misses
        patterns = self._normalize_faulty(stripes, faulty)
        blocks_list = [_PlanningDecoder._blocks_of(s) for s in stripes]
        results: list[dict[int, np.ndarray]] = [{} for _ in stripes]

        # group stripes by pattern; every stripe resolves its plan through
        # the cache, so the hit rate reads as "stripes served by a cached
        # plan" (the first stripe of a new pattern is the one miss)
        batches: dict[tuple[int, ...], _PatternBatch] = {}
        for index, pattern in enumerate(patterns):
            if not pattern:
                continue  # intact stripe: nothing to recover
            plan = self.plans.get(code, pattern, self.policy)
            batch = batches.get(pattern)
            if batch is None:
                batch = batches[pattern] = _PatternBatch(pattern, plan)
            batch.indices.append(index)
        for batch in batches.values():
            batch.fuse(blocks_list)

        ops = self._ops_for(code.field)
        tasks, owners, specs = self._build_tasks(batches)
        queue_depth = len(tasks)
        with self._tally_lock:
            self._queue_peak = max(self._queue_peak, queue_depth)
        task_results = self._run_tasks(tasks, ops, deadline_s=deadline_s)
        if self.verify_workers:
            self._verify_task_results(code, tasks, owners, specs, task_results, ops)

        # merge phase-1 outputs, then run each pattern's serial rest phase
        for task_id, recovered in task_results.items():
            owners[task_id].recovered.update(recovered)
        for batch in batches.values():
            plan = batch.plan
            if plan.uses_partition and plan.rest is not None:
                batch.recovered.update(
                    _run_rest(plan, batch.concat, batch.recovered, ops)
                )
            batch.split(results)

        wall = time.perf_counter() - t0
        after = self.counter.snapshot()
        with self._tally_lock:
            self._stripes += len(stripes)
            self._batches += 1
            if background:
                self._background_batches += 1
            self._patterns += len(batches)
            self._wall += wall
        stats = BatchStats(
            stripes=len(stripes),
            patterns=len(batches),
            plan_hits=self.plans.stats.hits - hits0,
            plan_misses=self.plans.stats.misses - misses0,
            mult_xors=after[0] - before[0],
            symbols=after[2] - before[2],
            wall_seconds=wall,
            queue_depth=queue_depth,
        )
        if return_stats:
            return results, stats
        return results

    def encode_batch(
        self,
        code: ErasureCode,
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        *,
        return_stats: bool = False,
        priority: str = "foreground",
    ):
        """Compute every stripe's parity blocks in one submission.

        Encoding is decoding with every parity position faulty (paper,
        footnote 1), so this delegates to :meth:`decode_batch` with the
        parity ids as the shared erasure pattern: all stripes fuse into
        one pattern batch and the compiled program sweeps their
        concatenated data sectors at once.  Only the data blocks are
        read — stale parity in the input never leaks into the output.
        Returns one ``{parity_id: region}`` dict per stripe (plus a
        :class:`BatchStats` with ``return_stats=True``).
        """
        data_ids = code.data_block_ids
        data_only = [
            {b: blocks[b] for b in data_ids}
            for blocks in (_PlanningDecoder._blocks_of(s) for s in stripes)
        ]
        return self.decode_batch(
            code,
            data_only,
            list(code.parity_block_ids),
            return_stats=return_stats,
            priority=priority,
        )

    def rebuild(self, array) -> int:
        """Batched full-array rebuild; returns blocks repaired.

        Delegates to :meth:`repro.stripes.DiskArray.rebuild`, which
        routes through :meth:`decode_batch` for batch-aware decoders.
        """
        return array.rebuild(self)

    # -- phase-1 scheduling --------------------------------------------------

    def _build_tasks(
        self, batches: Mapping[tuple[int, ...], _PatternBatch]
    ) -> tuple[
        list[_Task],
        dict[int, _PatternBatch],
        dict[int, "GroupPlan | TraditionalPlan"],
    ]:
        """One task per (pattern, sub-matrix); whole-matrix plans get one.

        ``specs`` maps each task id back to the plan record (group or
        traditional) that produced it — the verification pass needs the
        record's ``row_ids`` to syndrome-check the worker's output.
        """
        tasks: list[_Task] = []
        owners: dict[int, _PatternBatch] = {}
        specs: dict[int, GroupPlan | TraditionalPlan] = {}
        for batch in batches.values():
            plan = batch.plan
            if plan.uses_partition:
                for group in plan.groups:
                    task_id = len(tasks)
                    regions = [batch.concat[b] for b in group.survivor_ids]
                    tasks.append(
                        (task_id, group.weights.array, None, regions, group.faulty_ids)
                    )
                    owners[task_id] = batch
                    specs[task_id] = group
            else:
                tp = plan.traditional
                task_id = len(tasks)
                regions = [batch.concat[b] for b in tp.survivor_ids]
                if plan.mode is ExecutionMode.TRADITIONAL_MATRIX_FIRST:
                    m1, m2 = tp.weights.array, None
                else:
                    m1, m2 = tp.s.array, tp.f_inv.array
                tasks.append((task_id, m1, m2, regions, tp.faulty_ids))
                owners[task_id] = batch
                specs[task_id] = tp
        return tasks, owners, specs

    def _verify_task_results(
        self,
        code: ErasureCode,
        tasks: list[_Task],
        owners: dict[int, _PatternBatch],
        specs: dict[int, "GroupPlan | TraditionalPlan"],
        task_results: dict[int, dict[int, np.ndarray]],
        ops: RegionOps,
    ) -> None:
        """Syndrome-check every worker result; recompute the ones that fail.

        The check is :func:`repro.stripes.scrub.verify_rows` over the
        task's plan rows: survivors (from the fused batch) plus the
        recovered regions must zero those parity rows, and since the
        plan's ``F`` sub-matrix is invertible, *any* corruption of the
        recovered regions is caught.  A failing result is quarantined —
        replaced by a recompute on this (caller) thread via the same
        counted ops, the trusted path no injection or hedging touches —
        so a wrong worker output is never merged.  Verification itself
        uses fresh uncounted ops, leaving the paper's operation
        accounting untouched.
        """
        check_ops = RegionOps(code.field)
        for task_id in sorted(task_results):
            recovered = task_results[task_id]
            spec = specs[task_id]
            blocks = dict(owners[task_id].concat)
            blocks.update(recovered)
            if verify_rows(code, spec.row_ids, blocks, ops=check_ops):
                continue
            _tid, m1, m2, regions, faulty_ids = tasks[task_id]
            outs = _apply_task(ops, m1, m2, regions)
            task_results[task_id] = dict(zip(faulty_ids, outs))
            with self._tally_lock:
                self._verify_rejects += 1

    def _run_tasks(
        self,
        tasks: list[_Task],
        ops: RegionOps,
        deadline_s: float | None = None,
    ) -> dict[int, dict[int, np.ndarray]]:
        """Spread tasks over the pool (LPT by fused cost) and gather.

        The gather is hedging- and deadline-aware: see
        :meth:`_gather_hedged`.  Fault injection (``self.faults``)
        applies to primary executions on the thread/serial path.
        """
        if not tasks:
            return {}
        costs = [
            int(np.count_nonzero(m1)) + (int(np.count_nonzero(m2)) if m2 is not None else 0)
            for _tid, m1, m2, _regions, _faulty in tasks
        ]
        assign = assign_lpt if self.assignment == "lpt" else assign_round_robin
        buckets = [b for b in assign(costs, self.workers) if b]
        # latency-tracker shape key: total mult-entries x fused symbols,
        # banded to powers of two so similar buckets share a history
        length = tasks[0][3][0].shape[0] if tasks[0][3] else 0
        keys = [
            (sum(costs[i] for i in bucket) * max(1, length)).bit_length()
            for bucket in buckets
        ]
        faults = self.faults

        def run_local_with(local_ops: RegionOps, inject: bool):
            def run_local(bucket: list[int]):
                t0 = time.perf_counter()
                if inject and faults is not None:
                    delay = faults.worker_delay()
                    if delay > 0.0:
                        time.sleep(delay)
                out: dict[int, dict[int, np.ndarray]] = {}
                for i in bucket:
                    task_id, m1, m2, regions, faulty_ids = tasks[i]
                    outs = _apply_task(local_ops, m1, m2, regions)
                    recovered = dict(zip(faulty_ids, outs))
                    if inject and faults is not None:
                        faults.corrupt_worker_output(recovered)
                    out[task_id] = recovered
                return out, time.perf_counter() - t0

            return run_local

        if self.pool.kind == "process" and len(buckets) > 1:
            field = ops.field
            payloads = [[tasks[i] for i in bucket] for bucket in buckets]

            def submit(index: int, hedged: bool) -> Future:
                return self.pool.submit(
                    _run_task_bucket,
                    field.w,
                    field.polynomial,
                    payloads[index],
                    self.compile,
                )

            gathered = self._gather_hedged(submit, keys, deadline_s)
            self._account_remote_tasks(tasks)
        elif self.pool.kind in ("process", "serial"):
            # serial pool, or a single bucket on a process pool: run on
            # the caller's thread (skips pickling; nothing to hedge —
            # there is no concurrent worker to race)
            run_local = run_local_with(ops, inject=True)
            gathered = [run_local(bucket) for bucket in buckets]
        else:
            primary = run_local_with(ops, inject=True)
            hedged_run = run_local_with(self._hedge_ops_for(ops.field), inject=False)

            def submit(index: int, hedged: bool) -> Future:
                fn = hedged_run if hedged else primary
                return self.pool.submit(fn, buckets[index])

            gathered = self._gather_hedged(submit, keys, deadline_s)
        merged: dict[int, dict[int, np.ndarray]] = {}
        with self._tally_lock:
            for worker_index, (out, elapsed) in enumerate(gathered):
                self._busy[worker_index % self.workers] += elapsed
                merged.update(out)
        return merged

    def _gather_hedged(
        self,
        submit: Callable[[int, bool], Future],
        keys: Sequence[object],
        deadline_s: float | None,
    ) -> list[tuple[dict[int, dict[int, np.ndarray]], float]]:
        """Gather one result per bucket with hedging and a deadline.

        ``submit(index, hedged)`` starts one execution of bucket
        ``index`` and returns its future.  Every bucket gets a primary
        immediately; when hedging is on and a primary has been in
        flight longer than the latency tracker's trigger for its shape,
        a hedge is submitted and whichever execution finishes first
        becomes the bucket's result — the loser keeps running in the
        pool but its output is discarded (each execution builds its own
        output dict, so a discard can never half-merge).  A worker
        exception cancels all outstanding work and re-raises; deadline
        expiry raises :class:`StragglerTimeout` naming the finished
        buckets.  Completed latencies feed the tracker, so the trigger
        adapts as the workload shifts.
        """
        n = len(keys)
        t0 = time.perf_counter()
        primaries = [submit(i, False) for i in range(n)]
        starts = [time.perf_counter() for _ in range(n)]
        owner: dict[Future, tuple[int, bool]] = {
            f: (i, False) for i, f in enumerate(primaries)
        }
        hedges: dict[int, Future] = {}
        results: list[tuple[dict, float] | None] = [None] * n
        resolved = [False] * n
        outstanding = set(primaries)
        hedging = self.hedge and self.pool.kind != "serial"

        if not hedging and deadline_s is None:
            # plain gather: first failure cancels the siblings
            done, _ = wait(primaries, return_when=FIRST_EXCEPTION)
            for future in done:
                if future.exception() is not None:
                    for other in primaries:
                        other.cancel()
                    future.result()
            return [f.result() for f in primaries]

        def trigger_for(index: int) -> float | None:
            return self.latency.hedge_after(
                keys[index],
                percentile=self.hedge_percentile,
                factor=self.hedge_factor,
                min_samples=self.hedge_min_samples,
            )

        while not all(resolved):
            now = time.perf_counter()
            if deadline_s is not None and now - t0 >= deadline_s:
                for future in outstanding:
                    future.cancel()
                with self._tally_lock:
                    self._straggler_timeouts += 1
                completed = tuple(i for i in range(n) if resolved[i])
                pending = tuple(i for i in range(n) if not resolved[i])
                raise StragglerTimeout(
                    deadline_s,
                    completed,
                    pending,
                    {i: results[i] for i in completed},
                )
            # sleep until the deadline or the earliest hedge trigger
            timeout: float | None = None
            if deadline_s is not None:
                timeout = max(0.0, deadline_s - (now - t0))
            if hedging:
                soonest: float | None = None
                for i in range(n):
                    if resolved[i] or i in hedges:
                        continue
                    trigger = trigger_for(i)
                    if trigger is None:
                        continue
                    wait_left = max(0.0, (starts[i] + trigger) - now)
                    if soonest is None or wait_left < soonest:
                        soonest = wait_left
                if soonest is not None:
                    timeout = soonest if timeout is None else min(timeout, soonest)
            done, _ = wait(outstanding, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                outstanding.discard(future)
                index, was_hedge = owner[future]
                if resolved[index] or future.cancelled():
                    continue  # hedge-race loser (or abandoned): discard
                if future.exception() is not None:
                    for other in outstanding:
                        other.cancel()
                    future.result()  # re-raises
                results[index] = future.result()
                resolved[index] = True
                self.latency.observe(keys[index], results[index][1])
                if was_hedge:
                    with self._tally_lock:
                        self._hedge_wins += 1
                twin = primaries[index] if was_hedge else hedges.get(index)
                if twin is not None and twin in outstanding:
                    twin.cancel()  # best effort; a running twin is abandoned
            if hedging:
                now = time.perf_counter()
                for i in range(n):
                    if resolved[i] or i in hedges:
                        continue
                    trigger = trigger_for(i)
                    if trigger is not None and now - starts[i] >= trigger:
                        hedge_future = submit(i, True)
                        hedges[i] = hedge_future
                        owner[hedge_future] = (i, True)
                        outstanding.add(hedge_future)
                        with self._tally_lock:
                            self._hedges += 1
        return results  # type: ignore[return-value]

    # -- observability / lifecycle -------------------------------------------

    def metrics(self) -> PipelineMetrics:
        """Immutable snapshot of lifetime throughput and utilisation."""
        mult_xors, _xor_only, symbols = self.counter.snapshot()
        wall = self._wall
        busy = tuple(
            (b / wall) if wall > 0 else 0.0 for b in self._busy
        )
        return PipelineMetrics(
            stripes=self._stripes,
            batches=self._batches,
            background_batches=self._background_batches,
            batches_deferred=self.admission.deferred_batches,
            deferred_seconds=self.admission.deferred_seconds,
            patterns=self._patterns,
            wall_seconds=wall,
            mult_xors=mult_xors,
            symbols=symbols,
            plan_cache_hits=self.plans.stats.hits,
            plan_cache_misses=self.plans.stats.misses,
            plan_cache_evictions=self.plans.stats.evictions,
            pool_kind=self.pool.kind,
            workers=self.workers,
            pool_spawns=self.pool.spawn_count,
            worker_busy_fraction=busy,
            queue_depth_peak=self._queue_peak,
            compiled=self.programs is not None,
            program_cache_hits=(
                self.programs.stats.hits if self.programs is not None else 0
            ),
            program_cache_misses=(
                self.programs.stats.misses if self.programs is not None else 0
            ),
            program_cache_evictions=(
                self.programs.stats.evictions if self.programs is not None else 0
            ),
            hedges=self._hedges,
            hedge_wins=self._hedge_wins,
            verify_rejects=self._verify_rejects,
            straggler_timeouts=self._straggler_timeouts,
        )

    def executor_stats(self) -> dict[str, object]:
        """Merged compiled-kernel execution tallies (empty when
        interpreted; process-pool child executions are not visible).

        The ``backends`` entry nests per-backend splits; everything
        else is a flat numeric tally (see
        :meth:`repro.kernels.ProgramExecutor.stats`)."""
        stats: dict[str, object] = {}
        if self.programs is None:
            return stats
        backends: dict[str, dict[str, float]] = {}
        for ops in self._ops_cache.values():
            executor = getattr(ops, "executor", None)
            if executor is None:
                continue
            for key, value in executor.stats().items():
                if key == "backends":
                    for name, split in value.items():
                        agg = backends.setdefault(name, {})
                        for k, v in split.items():
                            agg[k] = agg.get(k, 0) + v
                else:
                    stats[key] = stats.get(key, 0) + value
        if backends:
            stats["backends"] = backends
        return stats

    def close(self) -> None:
        """Shut the worker pool down (plans stay cached)."""
        self.pool.close()

    def __enter__(self) -> "DecodePipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
