"""The batched decode engine: many stripes per submission, one plan each.

The paper's speedup has two amortisable fixed costs — *planning* (log
table, partition, ``F^-1 S`` products) and *worker startup* — plus a
per-stripe variable cost of Python dispatch around the region kernels.
:class:`DecodePipeline` attacks all three at once:

- plans come from a shared :class:`~repro.pipeline.plancache.PlanCache`
  (LRU, hit/miss counted, optionally statically certified);
- workers live in a persistent :class:`~repro.pipeline.pool.WorkerPool`
  that is spawned once and reused across every batch;
- stripes sharing an erasure pattern are *fused*: their survivor sectors
  are concatenated per block id, so one ``F^-1 S`` region sweep recovers
  the whole batch (``u(W)`` region operations total instead of
  ``u(W) x stripes``, each over a region ``stripes`` times longer).

Work is scheduled at (pattern x independent-sub-matrix) granularity and
spread over workers with the LPT greedy from
:mod:`repro.parallel.assignment` (round-robin available for
paper-faithful comparisons).  The serial rest phase of each pattern runs
on the caller's thread after its groups complete, exactly like the
single-stripe decoders.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..codes.base import ErasureCode
from ..core.decoder import _PlanningDecoder, _run_rest
from ..core.planner import DecodePlan
from ..core.procparallel import _child_ops
from ..core.sequences import ExecutionMode, SequencePolicy
from ..gf.field import GF
from ..gf.region import OpCounter, RegionOps
from ..kernels import CompiledRegionOps, ProgramCache
from ..parallel.assignment import assign_lpt, assign_round_robin
from ..stripes.store import Stripe
from .admission import PriorityAdmission
from .metrics import PipelineMetrics
from .plancache import PlanCache
from .pool import WorkerPool, make_pool

#: One schedulable unit: apply ``m1`` (then optionally ``m2``) to the
#: concatenated survivor regions.  ``(m1, None)`` covers independent
#: groups and the matrix-first whole-matrix sequence; ``(s, f_inv)``
#: covers the normal sequence.  Pure data, picklable for process pools.
_Task = tuple[int, np.ndarray, "np.ndarray | None", list[np.ndarray], tuple[int, ...]]


@dataclass(frozen=True)
class BatchStats:
    """What one ``decode_batch`` call did."""

    stripes: int
    patterns: int
    plan_hits: int
    plan_misses: int
    mult_xors: int
    symbols: int
    wall_seconds: float
    queue_depth: int


def _apply_task(
    ops: RegionOps,
    m1: np.ndarray,
    m2: np.ndarray | None,
    regions: list[np.ndarray],
) -> list[np.ndarray]:
    if m2 is not None:
        # one fused chain program under the compiled backend, equivalent
        # chained matrix_apply calls under the interpreted one
        return ops.matrix_chain_apply((m1, m2), regions)
    return ops.matrix_apply(m1, regions)


def _run_task_bucket(
    w: int, polynomial: int, tasks: list[_Task], compiled: bool = True
) -> tuple[dict[int, dict[int, np.ndarray]], float]:
    """Process-pool worker: execute a bucket of tasks in a child process.

    The field is reconstructed from ``(w, polynomial)`` and the ops
    instance (with its program cache, when compiled) persists in the
    worker process across submissions; op accounting happens in the
    parent (child counters cannot be shared), see
    :meth:`DecodePipeline._account_remote_tasks`.
    """
    t0 = time.perf_counter()
    ops = _child_ops(w, polynomial, compiled)
    out: dict[int, dict[int, np.ndarray]] = {}
    for task_id, m1, m2, regions, faulty_ids in tasks:
        outs = _apply_task(ops, m1, m2, regions)
        out[task_id] = dict(zip(faulty_ids, outs))
    return out, time.perf_counter() - t0


class _PatternBatch:
    """All stripes of one batch that share one erasure pattern."""

    def __init__(self, pattern: tuple[int, ...], plan: DecodePlan):
        self.pattern = pattern
        self.plan = plan
        self.indices: list[int] = []  # positions in the submitted batch
        self.offsets: list[int] = [0]  # concat boundaries, len(indices)+1
        self.concat: dict[int, np.ndarray] = {}  # survivor id -> fused region
        self.recovered: dict[int, np.ndarray] = {}  # faulty id -> fused region

    def fuse(self, blocks_list: list[Mapping[int, np.ndarray]]) -> None:
        """Concatenate the survivor regions this plan reads, per block id."""
        plan = self.plan
        needed: set[int] = set()
        if plan.uses_partition:
            for group in plan.groups:
                needed.update(group.survivor_ids)
            if plan.rest is not None:
                needed.update(plan.rest.survivor_ids)
            needed.difference_update(plan.faulty_ids)
        else:
            needed.update(plan.traditional.survivor_ids)
        maps = [blocks_list[i] for i in self.indices]
        for blocks in maps:
            sample = blocks[next(iter(needed))]
            # each _PatternBatch belongs to exactly one decode_batch call
            self.offsets.append(self.offsets[-1] + sample.shape[0])  # ppm: noqa[PPM010]
        self.concat = {  # ppm: noqa[PPM010] - batch owned by one call
            b: np.concatenate([blocks[b] for blocks in maps]) for b in needed
        }

    def split(self, results: list[dict[int, np.ndarray]]) -> None:
        """Slice each fused recovered region back into per-stripe views."""
        for rank, index in enumerate(self.indices):
            lo, hi = self.offsets[rank], self.offsets[rank + 1]
            results[index] = {
                bid: region[lo:hi] for bid, region in self.recovered.items()
            }


class DecodePipeline:
    """Throughput-oriented batched decoder with persistent workers.

    Satisfies the single-stripe ``decode`` protocol (so it drops into
    :meth:`repro.stripes.DiskArray.degraded_read` and any existing
    harness), but its native entry point is :meth:`decode_batch`.

    Parameters
    ----------
    workers:
        Pool width; ignored when ``pool`` is an existing
        :class:`~repro.pipeline.pool.WorkerPool` instance.
    pool:
        ``"thread"`` (default), ``"process"``, ``"serial"``, or a
        ready-made pool to share between pipelines.
    policy:
        Sequence policy for every plan (part of the plan-cache key).
    assignment:
        ``"lpt"`` (default) or ``"round_robin"`` group-to-worker
        placement.
    plan_cache_size:
        LRU capacity of the shared :class:`PlanCache`.
    verify:
        Statically certify every cache-miss plan (PR-1 verifier).
    counter:
        Optional shared :class:`~repro.gf.region.OpCounter`.
    compile:
        Route region work through compiled
        :class:`~repro.kernels.RegionProgram` kernels (default); pass
        ``False`` for the interpreted per-call baseline.
    max_defer_s:
        How long a ``priority="background"`` batch may be held waiting
        for in-flight foreground batches to drain (see
        :class:`~repro.pipeline.admission.PriorityAdmission`).
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        pool: str | WorkerPool = "thread",
        policy: SequencePolicy = SequencePolicy.PAPER,
        assignment: str = "lpt",
        plan_cache_size: int = 128,
        verify: bool = False,
        counter: OpCounter | None = None,
        compile: bool = True,
        max_defer_s: float = 0.05,
    ):
        if assignment not in ("lpt", "round_robin"):
            raise ValueError(
                f"assignment must be 'lpt' or 'round_robin', got {assignment!r}"
            )
        self.pool = pool if isinstance(pool, WorkerPool) else make_pool(pool, workers)
        self.workers = self.pool.workers
        self.policy = policy
        self.assignment = assignment
        self.verify = verify
        self.counter = counter if counter is not None else OpCounter()
        self.plans = PlanCache(maxsize=plan_cache_size, verify=verify)
        self.compile = compile
        self.programs = ProgramCache() if compile else None
        self.admission = PriorityAdmission(max_defer_s=max_defer_s)
        self._ops_cache: dict[int, RegionOps] = {}
        # lifetime tallies behind metrics(); decode_batch runs on
        # whatever thread calls it (several asyncio.to_thread workers
        # at once under the async service), so the tallies and the ops
        # cache share one lock
        self._tally_lock = threading.Lock()
        self._stripes = 0
        self._batches = 0
        self._background_batches = 0
        self._patterns = 0
        self._wall = 0.0
        self._busy = [0.0] * self.workers
        self._queue_peak = 0

    # -- plumbing -----------------------------------------------------------

    def _ops_for(self, field: GF) -> RegionOps:
        key = id(field)
        with self._tally_lock:
            ops = self._ops_cache.get(key)
            if ops is None:
                if self.programs is not None:
                    ops = CompiledRegionOps(field, self.counter, programs=self.programs)
                else:
                    ops = RegionOps(field, self.counter)
                self._ops_cache[key] = ops
        return ops

    @staticmethod
    def _normalize_faulty(
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        faulty: Sequence[int] | Sequence[Sequence[int]] | None,
    ) -> list[tuple[int, ...]]:
        """One sorted erasure pattern per stripe."""
        if faulty is None:
            patterns = []
            for stripe in stripes:
                if not isinstance(stripe, Stripe):
                    raise TypeError(
                        "faulty=None requires Stripe inputs (erased ids are "
                        "derived from the stripe); pass patterns explicitly "
                        "for plain block mappings"
                    )
                patterns.append(tuple(sorted(stripe.erased_ids)))
            return patterns
        seq = list(faulty)
        if seq and isinstance(seq[0], (int, np.integer)):
            one = tuple(sorted({int(b) for b in seq}))
            return [one] * len(stripes)
        if len(seq) != len(stripes):
            raise ValueError(
                f"{len(seq)} erasure patterns for {len(stripes)} stripes"
            )
        return [tuple(sorted({int(b) for b in pat})) for pat in seq]

    def _account_remote_tasks(self, tasks: Sequence[_Task]) -> None:
        """Book work done in child processes into the parent counter."""
        for _task_id, m1, m2, regions, _faulty in tasks:
            if not regions:
                continue
            length = regions[0].shape[0]
            for m in (m1, m2):
                if m is None:
                    continue
                count = int(np.count_nonzero(m))
                ones = int(np.count_nonzero(m == 1))
                self.counter.record(count, count * length, xor_only=ones)

    # -- the decode API ------------------------------------------------------

    def decode(
        self,
        code: ErasureCode,
        stripe: Stripe | Mapping[int, np.ndarray],
        faulty: Sequence[int],
        *,
        return_stats: bool = False,
    ):
        """Single-stripe decode: a batch of one (protocol compatibility)."""
        results, stats = self.decode_batch(
            code, [stripe], [tuple(faulty)], return_stats=True
        )
        if return_stats:
            return results[0], stats
        return results[0]

    def decode_batch(
        self,
        code: ErasureCode,
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        faulty: Sequence[int] | Sequence[Sequence[int]] | None = None,
        *,
        return_stats: bool = False,
        priority: str = "foreground",
    ):
        """Recover the faulty blocks of many stripes in one submission.

        ``faulty`` is one pattern shared by every stripe, one pattern per
        stripe, or ``None`` to read each stripe's own erased ids.
        Returns a list of ``{block_id: region}`` dicts aligned with
        ``stripes`` (regions are views into the fused batch buffers);
        with ``return_stats=True`` also a :class:`BatchStats`.

        ``priority`` classes the batch for admission: ``"foreground"``
        (live degraded reads — admitted immediately) or
        ``"background"`` (scrub/repair — deferred while foreground
        batches are in flight, bounded by the pipeline's
        ``max_defer_s``).
        """
        with self.admission.admit(priority):
            return self._decode_batch_admitted(
                code,
                stripes,
                faulty,
                return_stats=return_stats,
                background=priority == "background",
            )

    def _decode_batch_admitted(
        self,
        code: ErasureCode,
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        faulty: Sequence[int] | Sequence[Sequence[int]] | None,
        *,
        return_stats: bool,
        background: bool,
    ):
        t0 = time.perf_counter()
        before = self.counter.snapshot()
        hits0, misses0 = self.plans.stats.hits, self.plans.stats.misses
        patterns = self._normalize_faulty(stripes, faulty)
        blocks_list = [_PlanningDecoder._blocks_of(s) for s in stripes]
        results: list[dict[int, np.ndarray]] = [{} for _ in stripes]

        # group stripes by pattern; every stripe resolves its plan through
        # the cache, so the hit rate reads as "stripes served by a cached
        # plan" (the first stripe of a new pattern is the one miss)
        batches: dict[tuple[int, ...], _PatternBatch] = {}
        for index, pattern in enumerate(patterns):
            if not pattern:
                continue  # intact stripe: nothing to recover
            plan = self.plans.get(code, pattern, self.policy)
            batch = batches.get(pattern)
            if batch is None:
                batch = batches[pattern] = _PatternBatch(pattern, plan)
            batch.indices.append(index)
        for batch in batches.values():
            batch.fuse(blocks_list)

        ops = self._ops_for(code.field)
        tasks, owners = self._build_tasks(batches)
        queue_depth = len(tasks)
        with self._tally_lock:
            self._queue_peak = max(self._queue_peak, queue_depth)
        task_results = self._run_tasks(tasks, ops)

        # merge phase-1 outputs, then run each pattern's serial rest phase
        for task_id, recovered in task_results.items():
            owners[task_id].recovered.update(recovered)
        for batch in batches.values():
            plan = batch.plan
            if plan.uses_partition and plan.rest is not None:
                batch.recovered.update(
                    _run_rest(plan, batch.concat, batch.recovered, ops)
                )
            batch.split(results)

        wall = time.perf_counter() - t0
        after = self.counter.snapshot()
        with self._tally_lock:
            self._stripes += len(stripes)
            self._batches += 1
            if background:
                self._background_batches += 1
            self._patterns += len(batches)
            self._wall += wall
        stats = BatchStats(
            stripes=len(stripes),
            patterns=len(batches),
            plan_hits=self.plans.stats.hits - hits0,
            plan_misses=self.plans.stats.misses - misses0,
            mult_xors=after[0] - before[0],
            symbols=after[2] - before[2],
            wall_seconds=wall,
            queue_depth=queue_depth,
        )
        if return_stats:
            return results, stats
        return results

    def encode_batch(
        self,
        code: ErasureCode,
        stripes: Sequence[Stripe | Mapping[int, np.ndarray]],
        *,
        return_stats: bool = False,
        priority: str = "foreground",
    ):
        """Compute every stripe's parity blocks in one submission.

        Encoding is decoding with every parity position faulty (paper,
        footnote 1), so this delegates to :meth:`decode_batch` with the
        parity ids as the shared erasure pattern: all stripes fuse into
        one pattern batch and the compiled program sweeps their
        concatenated data sectors at once.  Only the data blocks are
        read — stale parity in the input never leaks into the output.
        Returns one ``{parity_id: region}`` dict per stripe (plus a
        :class:`BatchStats` with ``return_stats=True``).
        """
        data_ids = code.data_block_ids
        data_only = [
            {b: blocks[b] for b in data_ids}
            for blocks in (_PlanningDecoder._blocks_of(s) for s in stripes)
        ]
        return self.decode_batch(
            code,
            data_only,
            list(code.parity_block_ids),
            return_stats=return_stats,
            priority=priority,
        )

    def rebuild(self, array) -> int:
        """Batched full-array rebuild; returns blocks repaired.

        Delegates to :meth:`repro.stripes.DiskArray.rebuild`, which
        routes through :meth:`decode_batch` for batch-aware decoders.
        """
        return array.rebuild(self)

    # -- phase-1 scheduling --------------------------------------------------

    def _build_tasks(
        self, batches: Mapping[tuple[int, ...], _PatternBatch]
    ) -> tuple[list[_Task], dict[int, _PatternBatch]]:
        """One task per (pattern, sub-matrix); whole-matrix plans get one."""
        tasks: list[_Task] = []
        owners: dict[int, _PatternBatch] = {}
        for batch in batches.values():
            plan = batch.plan
            if plan.uses_partition:
                for group in plan.groups:
                    task_id = len(tasks)
                    regions = [batch.concat[b] for b in group.survivor_ids]
                    tasks.append(
                        (task_id, group.weights.array, None, regions, group.faulty_ids)
                    )
                    owners[task_id] = batch
            else:
                tp = plan.traditional
                task_id = len(tasks)
                regions = [batch.concat[b] for b in tp.survivor_ids]
                if plan.mode is ExecutionMode.TRADITIONAL_MATRIX_FIRST:
                    m1, m2 = tp.weights.array, None
                else:
                    m1, m2 = tp.s.array, tp.f_inv.array
                tasks.append((task_id, m1, m2, regions, tp.faulty_ids))
                owners[task_id] = batch
        return tasks, owners

    def _run_tasks(
        self, tasks: list[_Task], ops: RegionOps
    ) -> dict[int, dict[int, np.ndarray]]:
        """Spread tasks over the pool (LPT by fused cost) and gather."""
        if not tasks:
            return {}
        costs = [
            int(np.count_nonzero(m1)) + (int(np.count_nonzero(m2)) if m2 is not None else 0)
            for _tid, m1, m2, _regions, _faulty in tasks
        ]
        assign = assign_lpt if self.assignment == "lpt" else assign_round_robin
        buckets = [b for b in assign(costs, self.workers) if b]
        if self.pool.kind == "process" and len(buckets) > 1:
            field = ops.field
            payloads = [[tasks[i] for i in bucket] for bucket in buckets]
            futures = [
                self.pool.submit(
                    _run_task_bucket, field.w, field.polynomial, payload, self.compile
                )
                for payload in payloads
            ]
            gathered = [f.result() for f in futures]
            self._account_remote_tasks(tasks)
        else:
            # threads/serial share the parent's counted RegionOps; a
            # single bucket also stays local to skip pickling
            def run_local(bucket: list[int]):
                t0 = time.perf_counter()
                out: dict[int, dict[int, np.ndarray]] = {}
                for i in bucket:
                    task_id, m1, m2, regions, faulty_ids = tasks[i]
                    outs = _apply_task(ops, m1, m2, regions)
                    out[task_id] = dict(zip(faulty_ids, outs))
                return out, time.perf_counter() - t0

            if self.pool.kind == "process":
                gathered = [run_local(bucket) for bucket in buckets]
            else:
                gathered = self.pool.run_buckets(run_local, buckets)
        merged: dict[int, dict[int, np.ndarray]] = {}
        with self._tally_lock:
            for worker_index, (out, elapsed) in enumerate(gathered):
                self._busy[worker_index % self.workers] += elapsed
                merged.update(out)
        return merged

    # -- observability / lifecycle -------------------------------------------

    def metrics(self) -> PipelineMetrics:
        """Immutable snapshot of lifetime throughput and utilisation."""
        mult_xors, _xor_only, symbols = self.counter.snapshot()
        wall = self._wall
        busy = tuple(
            (b / wall) if wall > 0 else 0.0 for b in self._busy
        )
        return PipelineMetrics(
            stripes=self._stripes,
            batches=self._batches,
            background_batches=self._background_batches,
            batches_deferred=self.admission.deferred_batches,
            deferred_seconds=self.admission.deferred_seconds,
            patterns=self._patterns,
            wall_seconds=wall,
            mult_xors=mult_xors,
            symbols=symbols,
            plan_cache_hits=self.plans.stats.hits,
            plan_cache_misses=self.plans.stats.misses,
            plan_cache_evictions=self.plans.stats.evictions,
            pool_kind=self.pool.kind,
            workers=self.workers,
            pool_spawns=self.pool.spawn_count,
            worker_busy_fraction=busy,
            queue_depth_peak=self._queue_peak,
            compiled=self.programs is not None,
            program_cache_hits=(
                self.programs.stats.hits if self.programs is not None else 0
            ),
            program_cache_misses=(
                self.programs.stats.misses if self.programs is not None else 0
            ),
            program_cache_evictions=(
                self.programs.stats.evictions if self.programs is not None else 0
            ),
        )

    def executor_stats(self) -> dict[str, object]:
        """Merged compiled-kernel execution tallies (empty when
        interpreted; process-pool child executions are not visible).

        The ``backends`` entry nests per-backend splits; everything
        else is a flat numeric tally (see
        :meth:`repro.kernels.ProgramExecutor.stats`)."""
        stats: dict[str, object] = {}
        if self.programs is None:
            return stats
        backends: dict[str, dict[str, float]] = {}
        for ops in self._ops_cache.values():
            executor = getattr(ops, "executor", None)
            if executor is None:
                continue
            for key, value in executor.stats().items():
                if key == "backends":
                    for name, split in value.items():
                        agg = backends.setdefault(name, {})
                        for k, v in split.items():
                            agg[k] = agg.get(k, 0) + v
                else:
                    stats[key] = stats.get(key, 0) + value
        if backends:
            stats["backends"] = backends
        return stats

    def close(self) -> None:
        """Shut the worker pool down (plans stay cached)."""
        self.pool.close()

    def __enter__(self) -> "DecodePipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
