"""Persistent worker pools — the only module allowed to build executors.

Every other package obtains its parallelism here (lint rule PPM007
forbids direct ``ThreadPoolExecutor``/``ProcessPoolExecutor``
construction elsewhere), which is what makes pool lifetime a managed,
measurable quantity: a :class:`WorkerPool` is created lazily on first
use, *stays alive across submissions* (the per-call spawn overhead the
paper measures in §III-C is paid once, not per stripe), and counts how
many times its underlying executor was actually spawned so tests can
assert "one pool per batch".  Live pools are tracked in a weak registry
and closed by an :mod:`atexit` hook, so a persistent pool abandoned
mid-batch cannot leak worker processes past interpreter exit.

Three implementations share the interface:

- :class:`SerialPool` — runs tasks inline on the caller's thread (the
  T=1 / parallel-off path, no executor at all);
- :class:`ThreadWorkerPool` — shared-memory threads (cheap submission,
  GIL-bound table gathers);
- :class:`ProcessWorkerPool` — OS processes (GIL-free, inputs pickled).

``make_pool(kind, workers)`` maps the CLI/config names to classes.
"""

from __future__ import annotations

import atexit
import logging
import threading
import time
import weakref
from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Callable, Iterable, Sequence

logger = logging.getLogger(__name__)


class StragglerTimeout(TimeoutError):
    """A pooled gather expired before every bucket finished.

    Raised by :meth:`WorkerPool.run_buckets` when ``deadline_s`` elapses
    with work still outstanding.  ``completed`` / ``pending`` hold the
    *bucket indices* (positions in the submitted sequence) that did and
    did not finish, so callers can tell partial progress from a total
    stall; ``results`` maps each completed index to its result, letting
    a caller salvage finished work (e.g. retry only the stragglers).
    Outstanding futures have already been cancelled — ones already
    running are abandoned, never joined.
    """

    def __init__(
        self,
        deadline_s: float,
        completed: tuple[int, ...],
        pending: tuple[int, ...],
        results: dict[int, Any] | None = None,
    ):
        super().__init__(
            f"{len(pending)} of {len(completed) + len(pending)} bucket(s) "
            f"still outstanding after {deadline_s:.3f}s deadline"
        )
        self.deadline_s = deadline_s
        self.completed = completed
        self.pending = pending
        self.results = dict(results or {})

#: Every pool with a live (spawned) executor, tracked weakly so garbage
#: collection is never blocked.  :func:`close_live_pools` runs at
#: interpreter exit, so persistent pools abandoned mid-batch (a long-
#: running service killed between submissions, a script that never
#: called ``close()``) shut their executors down cleanly instead of
#: leaking worker processes.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()

#: Guards :data:`_LIVE_POOLS`.  Registration happens inside
#: ``_ensure`` on whatever thread first submits, deregistration in
#: ``close`` on another — a WeakSet is not thread-safe, and a pool's
#: *instance* lock cannot guard state shared across all pools.
_REGISTRY_LOCK = threading.Lock()

#: Attribute on the :mod:`atexit` module recording the installed hook.
#: Module-level state would reset on a re-import (``importlib.reload``),
#: stacking one duplicate hook per reload; the :mod:`atexit` module
#: itself survives reloads of *this* module, so the marker lives there.
_HOOK_ATTR = "_repro_close_live_pools_hook"


def live_pools() -> tuple["WorkerPool", ...]:
    """Pools whose executor is currently spawned (observability/tests)."""
    with _REGISTRY_LOCK:
        pools = tuple(_LIVE_POOLS)
    return tuple(pool for pool in pools if pool.alive)


def close_live_pools() -> None:
    """Close every live pool; installed as the atexit shutdown hook."""
    with _REGISTRY_LOCK:
        pools = list(_LIVE_POOLS)
    for pool in pools:
        try:
            pool.close()
        except Exception as exc:  # noqa: BLE001 - best effort during shutdown
            logger.debug("ignoring error closing pool %r at shutdown: %r", pool, exc)


def _install_shutdown_hook() -> None:
    """Register :func:`close_live_pools` with :mod:`atexit` exactly once.

    Idempotent across repeated calls *and* module re-imports: any hook a
    previous import registered is unregistered first, so the exit stack
    never holds more than one copy.
    """
    previous = getattr(atexit, _HOOK_ATTR, None)
    if previous is not None:
        atexit.unregister(previous)
    atexit.register(close_live_pools)
    setattr(atexit, _HOOK_ATTR, close_live_pools)


_install_shutdown_hook()


class WorkerPool:
    """A lazily-spawned, persistent pool of ``workers`` workers.

    The executor is created on first :meth:`submit` and reused until
    :meth:`close`; submitting again after a close re-spawns it (and
    increments :attr:`spawn_count`, which is therefore "number of times
    worker startup cost was paid").  Usable as a context manager.
    """

    kind = "serial"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.spawn_count = 0
        self.spawn_seconds = 0.0
        self._executor: Executor | None = None
        self._lock = threading.Lock()

    # -- executor lifecycle -------------------------------------------------

    def _spawn(self) -> Executor | None:
        """Build the underlying executor (None for the serial pool)."""
        return None

    def _ensure(self) -> Executor | None:
        with self._lock:
            if self._executor is None:
                t0 = time.perf_counter()
                self._executor = self._spawn()
                self.spawn_seconds += time.perf_counter() - t0
                self.spawn_count += 1
                if self._executor is not None:
                    with _REGISTRY_LOCK:
                        _LIVE_POOLS.add(self)
            return self._executor

    @property
    def alive(self) -> bool:
        """Whether an executor is currently spawned."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the executor down; the next submit re-spawns it."""
        with self._lock:
            executor, self._executor = self._executor, None
        with _REGISTRY_LOCK:
            _LIVE_POOLS.discard(self)
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- task submission ----------------------------------------------------

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        executor = self._ensure()
        if executor is None:  # serial: run inline, wrap in a done Future
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # propagate via .result(), like a pool
                future.set_exception(exc)
            return future
        return executor.submit(fn, *args, **kwargs)

    def run_buckets(
        self,
        fn: Callable[[Any], Any],
        buckets: Sequence[Any],
        *,
        deadline_s: float | None = None,
    ) -> list[Any]:
        """Run ``fn`` once per bucket, concurrently; results in bucket order.

        The gather stops at the *first* bucket failure: outstanding
        siblings are cancelled (queued ones never start; running ones
        are abandoned, not joined) and the failure re-raises, instead of
        blocking on every earlier future in order while later ones leak.
        ``deadline_s`` bounds the whole gather — on expiry outstanding
        futures are cancelled and :class:`StragglerTimeout` reports
        which bucket indices finished (with their results) and which
        did not.
        """
        futures = [self.submit(fn, bucket) for bucket in buckets]
        done, not_done = wait(futures, timeout=deadline_s, return_when=FIRST_EXCEPTION)
        for future in not_done:
            future.cancel()
        for future in done:
            if future.exception() is not None:
                future.result()  # re-raises the first observed failure
        if not_done:
            completed: list[int] = []
            pending: list[int] = []
            results: dict[int, Any] = {}
            for index, future in enumerate(futures):
                # a cancel() can lose the race with a worker that just
                # started; classify by what actually happened
                if future in not_done and not future.done():
                    pending.append(index)
                elif future.cancelled():
                    pending.append(index)
                else:
                    completed.append(index)
                    results[index] = future.result()
            assert deadline_s is not None  # not_done is empty without a timeout
            raise StragglerTimeout(
                deadline_s, tuple(completed), tuple(pending), results
            )
        return [f.result() for f in futures]

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        deadline_s: float | None = None,
    ) -> list[Any]:
        """Concurrent ``map`` preserving input order (see :meth:`run_buckets`)."""
        return self.run_buckets(fn, list(items), deadline_s=deadline_s)


class SerialPool(WorkerPool):
    """Inline execution — the no-parallelism reference implementation.

    ``spawn_count`` stays 0 forever: there is nothing to spawn.
    """

    kind = "serial"

    def _ensure(self) -> Executor | None:  # no spawn accounting
        return None


class ThreadWorkerPool(WorkerPool):
    """Persistent :class:`ThreadPoolExecutor` behind the pool interface."""

    kind = "thread"

    def _spawn(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="ppm-pool"
        )


class ProcessWorkerPool(WorkerPool):
    """Persistent :class:`ProcessPoolExecutor` behind the pool interface.

    Submitted callables and arguments must be picklable (module-level
    functions, plain data).  Spawning is far more expensive than for
    threads, which is exactly why keeping the pool alive across stripes
    matters for throughput.
    """

    kind = "process"

    def _spawn(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


_POOL_KINDS: dict[str, type[WorkerPool]] = {
    "serial": SerialPool,
    "thread": ThreadWorkerPool,
    "process": ProcessWorkerPool,
}


def available_pools() -> tuple[str, ...]:
    """Registered pool kinds, sorted."""
    return tuple(sorted(_POOL_KINDS))


def make_pool(kind: str, workers: int = 1) -> WorkerPool:
    """Construct a pool by name: ``serial``, ``thread`` or ``process``."""
    try:
        cls = _POOL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown pool kind {kind!r}; available: {', '.join(available_pools())}"
        ) from None
    return cls(workers)
