"""Throughput-oriented decode pipeline: plan caching + persistent pools.

Single-stripe decoders (:mod:`repro.core`) optimise one decode; this
package optimises *many* — the multi-stripe shape every array rebuild
and degraded-read storm produces:

- :mod:`repro.pipeline.pool` — persistent worker pools (the only place
  executors may be constructed; lint rule PPM007);
- :mod:`repro.pipeline.plancache` — LRU :class:`PlanCache` with
  hit/miss counters and optional static certification;
- :mod:`repro.pipeline.engine` — :class:`DecodePipeline`, which fuses
  stripes sharing an erasure pattern into one region-op sweep;
- :mod:`repro.pipeline.metrics` — :class:`PipelineMetrics` snapshots;
- :mod:`repro.pipeline.admission` — :class:`PriorityAdmission`, the
  foreground/background gate that keeps scrub-repair batches from
  delaying live degraded reads.

Only :mod:`pool` and :mod:`metrics` (dependency-free) are imported
eagerly; the engine and plan cache load lazily (PEP 562) so that
low-level modules — :mod:`repro.core.executor` and friends — can depend
on :mod:`repro.pipeline.pool` without cycling through
:mod:`repro.core`.
"""

from __future__ import annotations

from .admission import PriorityAdmission
from .metrics import PipelineMetrics
from .metrics import LatencyTracker
from .pool import (
    ProcessWorkerPool,
    SerialPool,
    StragglerTimeout,
    ThreadWorkerPool,
    WorkerPool,
    available_pools,
    close_live_pools,
    live_pools,
    make_pool,
)

__all__ = [
    "PipelineMetrics",
    "LatencyTracker",
    "PriorityAdmission",
    "StragglerTimeout",
    "CacheStats",
    "PlanCache",
    "WorkerPool",
    "SerialPool",
    "ThreadWorkerPool",
    "ProcessWorkerPool",
    "available_pools",
    "close_live_pools",
    "live_pools",
    "make_pool",
    "BatchStats",
    "DecodePipeline",
]

_LAZY_EXPORTS = {
    "DecodePipeline": "engine",
    "BatchStats": "engine",
    "PlanCache": "plancache",
    "CacheStats": "plancache",
}


def __getattr__(name: str):
    """Lazy re-export of modules that import repro.core submodules."""
    submodule = _LAZY_EXPORTS.get(name)
    if submodule is not None:
        import importlib

        module = importlib.import_module(f".{submodule}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.pipeline' has no attribute {name!r}")
