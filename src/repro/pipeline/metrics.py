"""Observable state of a running decode pipeline.

:class:`PipelineMetrics` is an immutable snapshot — the engine hands one
out on demand (:meth:`repro.pipeline.DecodePipeline.metrics`) so
monitoring never races the decode path.  Fields follow the paper's cost
vocabulary where one exists (``mult_xors``) and standard
throughput-engine vocabulary where it does not (stripes/sec, busy
fraction, queue depth).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


class LatencyTracker:
    """Per-key latency EWMA + sliding percentile, thread-safe.

    The hedging engine keys observations by *bucket shape* (task count
    and cost band), so the trigger compares a worker against the history
    of similar work, not against unrelated tiny buckets.  Each key keeps
    an exponentially-weighted moving average (``alpha`` weighting the
    newest sample) and a bounded ring of recent samples for percentile
    queries; both update under one lock because observations arrive from
    whatever threads run the gather loop.
    """

    def __init__(self, alpha: float = 0.2, window: int = 64):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.alpha = alpha
        self.window = window
        self._lock = threading.Lock()
        self._ewma: dict[object, float] = {}
        self._samples: dict[object, list[float]] = {}
        self._count = 0

    def observe(self, key: object, seconds: float) -> None:
        """Record one completed-work latency under ``key``."""
        with self._lock:
            previous = self._ewma.get(key)
            if previous is None:
                self._ewma[key] = seconds
            else:
                self._ewma[key] = self.alpha * seconds + (1.0 - self.alpha) * previous
            ring = self._samples.setdefault(key, [])
            ring.append(seconds)
            if len(ring) > self.window:
                del ring[0]
            self._count += 1

    def ewma(self, key: object) -> float | None:
        """Current moving average for ``key`` (None before any sample)."""
        with self._lock:
            return self._ewma.get(key)

    def percentile(self, key: object, q: float) -> float | None:
        """The ``q``-quantile (0..1) of the recent window for ``key``."""
        with self._lock:
            ring = self._samples.get(key)
            if not ring:
                return None
            ordered = sorted(ring)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def samples(self, key: object) -> int:
        """How many observations ``key`` has received (lifetime)."""
        with self._lock:
            ring = self._samples.get(key)
            return len(ring) if ring else 0

    def hedge_after(
        self,
        key: object,
        *,
        percentile: float = 0.95,
        factor: float = 2.0,
        min_samples: int = 8,
    ) -> float | None:
        """Seconds after which an in-flight ``key`` task should be hedged.

        ``None`` until ``min_samples`` observations exist — hedging
        needs a latency baseline before "slow" means anything.  The
        trigger is ``max(pX, ewma) * factor`` so one fast outlier in
        the window cannot arm a hair-trigger hedge.
        """
        with self._lock:
            ring = self._samples.get(key)
            if ring is None or len(ring) < min_samples:
                return None
            ordered = sorted(ring)
            average = self._ewma.get(key, ordered[-1])
        rank = min(len(ordered) - 1, max(0, round(percentile * (len(ordered) - 1))))
        return max(ordered[rank], average) * factor


@dataclass(frozen=True)
class PipelineMetrics:
    """One snapshot of pipeline throughput, cost and utilisation.

    ``worker_busy_fraction[i]`` is worker *i*'s share of the pipeline's
    decode wall time spent executing tasks; ``queue_depth_peak`` is the
    largest number of phase-1 tasks ever outstanding at once (how far
    submission ran ahead of execution).  ``background_batches`` counts
    ``priority="background"`` submissions (scrub/repair traffic);
    ``batches_deferred`` / ``deferred_seconds`` tally how often and how
    long admission held background work for in-flight foreground reads.

    Straggler tolerance: ``hedges`` counts speculative resubmissions of
    slow buckets, ``hedge_wins`` how many of those finished before
    their straggling primary; ``verify_rejects`` counts worker results
    whose syndrome check failed and were recomputed on the trusted
    serial path; ``straggler_timeouts`` counts gathers abandoned at the
    batch deadline.
    """

    stripes: int = 0
    batches: int = 0
    background_batches: int = 0
    batches_deferred: int = 0
    deferred_seconds: float = 0.0
    patterns: int = 0
    wall_seconds: float = 0.0
    mult_xors: int = 0
    symbols: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    pool_kind: str = "serial"
    workers: int = 1
    pool_spawns: int = 0
    worker_busy_fraction: tuple[float, ...] = field(default_factory=tuple)
    queue_depth_peak: int = 0
    compiled: bool = False
    program_cache_hits: int = 0
    program_cache_misses: int = 0
    program_cache_evictions: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    verify_rejects: int = 0
    straggler_timeouts: int = 0

    @property
    def stripes_per_sec(self) -> float:
        """Decode throughput over the pipeline's lifetime (0 when idle)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.stripes / self.wall_seconds

    @property
    def coalesce_factor(self) -> float:
        """Mean stripes fused per (pattern x batch) region sweep.

        ``patterns`` counts one per distinct erasure pattern per
        ``decode_batch`` call, so this is exactly how many stripes each
        plan application amortised over; 1.0 means no fusion happened.
        """
        if not self.patterns:
            return 0.0
        return self.stripes / self.patterns

    @property
    def evictions(self) -> int:
        """Total cache evictions (plan + program) over the lifetime."""
        return self.plan_cache_evictions + self.program_cache_evictions

    @property
    def plan_cache_hit_rate(self) -> float:
        lookups = self.plan_cache_hits + self.plan_cache_misses
        if not lookups:
            return 0.0
        return self.plan_cache_hits / lookups

    @property
    def program_cache_hit_rate(self) -> float:
        lookups = self.program_cache_hits + self.program_cache_misses
        if not lookups:
            return 0.0
        return self.program_cache_hits / lookups

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (CLI/bench output)."""
        return {
            "stripes": self.stripes,
            "batches": self.batches,
            "background_batches": self.background_batches,
            "batches_deferred": self.batches_deferred,
            "deferred_seconds": self.deferred_seconds,
            "patterns": self.patterns,
            "coalesce_factor": self.coalesce_factor,
            "evictions": self.evictions,
            "wall_seconds": self.wall_seconds,
            "stripes_per_sec": self.stripes_per_sec,
            "mult_xors": self.mult_xors,
            "symbols": self.symbols,
            "plan_cache": {
                "hits": self.plan_cache_hits,
                "misses": self.plan_cache_misses,
                "evictions": self.plan_cache_evictions,
                "hit_rate": self.plan_cache_hit_rate,
            },
            "pool": {
                "kind": self.pool_kind,
                "workers": self.workers,
                "spawns": self.pool_spawns,
            },
            "worker_busy_fraction": list(self.worker_busy_fraction),
            "queue_depth_peak": self.queue_depth_peak,
            "compiled": self.compiled,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "verify_rejects": self.verify_rejects,
            "straggler_timeouts": self.straggler_timeouts,
            "program_cache": {
                "hits": self.program_cache_hits,
                "misses": self.program_cache_misses,
                "evictions": self.program_cache_evictions,
                "hit_rate": self.program_cache_hit_rate,
            },
        }

    def format_table(self) -> str:
        """Human-readable one-metric-per-line rendering."""
        busy = ", ".join(f"{b:.2f}" for b in self.worker_busy_fraction) or "-"
        lines = [
            f"stripes decoded      {self.stripes}",
            f"batches              {self.batches} "
            f"({self.background_batches} background, "
            f"{self.batches_deferred} deferred {self.deferred_seconds:.3f}s)",
            f"coalesce factor      {self.coalesce_factor:.2f} "
            f"({self.stripes} stripes / {self.patterns} pattern sweeps)",
            f"wall seconds         {self.wall_seconds:.4f}",
            f"stripes/sec          {self.stripes_per_sec:.1f}",
            f"mult_XORs            {self.mult_xors}",
            f"symbols              {self.symbols}",
            f"plan-cache hit rate  {self.plan_cache_hit_rate:.1%} "
            f"({self.plan_cache_hits} hits / {self.plan_cache_misses} misses)",
            f"pool                 {self.pool_kind} x{self.workers} "
            f"({self.pool_spawns} spawn(s))",
            f"worker busy fraction {busy}",
            f"queue depth (peak)   {self.queue_depth_peak}",
            f"hedges               {self.hedges} ({self.hedge_wins} won)",
            f"verify rejects       {self.verify_rejects}",
            f"straggler timeouts   {self.straggler_timeouts}",
            f"kernels              "
            + (
                f"compiled ({self.program_cache_hit_rate:.1%} program-cache hits)"
                if self.compiled
                else "interpreted"
            ),
        ]
        return "\n".join(lines)
