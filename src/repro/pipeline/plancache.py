"""LRU cache of :class:`~repro.core.planner.DecodePlan` objects.

Planning (log table, partition, ``F^-1`` inversion, ``F^-1 @ S``
products) is the per-scenario fixed cost PPM amortises: a rebuild
touching thousands of stripes with one failure geometry should plan
once.  :class:`PlanCache` makes that amortisation explicit and
observable — an LRU keyed by ``(parity-check matrix, erasure pattern,
sequence policy)`` with hit/miss/eviction counters that feed
:class:`~repro.pipeline.metrics.PipelineMetrics`.

When ``verify=True`` every *miss* is statically certified against the
parity-check matrix via :func:`repro.verify.assert_plan_valid` before it
enters the cache, so hits hand out already-proven plans for free (the
PR-1 verification layer, amortised the same way planning is).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from ..codes.base import ErasureCode
from ..core.planner import DecodePlan, plan_decode
from ..core.sequences import SequencePolicy
from ..matrix.gfmatrix import GFMatrix

#: Cache key: (id of H, sorted erasure pattern, policy).  The matrix
#: object itself is kept alive inside the entry so the id cannot be
#: recycled while the entry exists.
PlanKey = tuple[int, tuple[int, ...], SequencePolicy]


@dataclass
class CacheStats:
    """Hit/miss/eviction tallies of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Bounded LRU of decode plans, keyed by (code, pattern, policy).

    Parameters
    ----------
    maxsize:
        Entry cap; least-recently-used plans are evicted beyond it.
        Distinct failure geometries per rebuild are few (one per failed
        disk combination), so the default is generous.
    verify:
        Statically certify each freshly planned entry (see
        :mod:`repro.verify`).  Raises
        :class:`repro.verify.PlanVerificationError` on a bad plan, so
        nothing unverified is ever cached.
    """

    def __init__(self, maxsize: int = 128, verify: bool = False):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.verify = verify
        self.stats = CacheStats()
        self._entries: OrderedDict[PlanKey, tuple[GFMatrix, DecodePlan]] = OrderedDict()
        # decode_batch calls arrive concurrently from asyncio.to_thread
        # workers; the OrderedDict reorder + stats tallies need a lock.
        # Planning itself happens outside it (double-checked insert).
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_of(
        source: ErasureCode | GFMatrix,
        faulty: Sequence[int],
        policy: SequencePolicy,
    ) -> PlanKey:
        h = source.H if isinstance(source, ErasureCode) else source
        return (id(h), tuple(sorted(set(faulty))), policy)

    def get(
        self,
        source: ErasureCode | GFMatrix,
        faulty: Sequence[int],
        policy: SequencePolicy = SequencePolicy.PAPER,
    ) -> DecodePlan:
        """Fetch (hit) or build-certify-insert (miss) the plan."""
        h = source.H if isinstance(source, ErasureCode) else source
        key = (id(h), tuple(sorted(set(faulty))), policy)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry[1]
        plan = plan_decode(h, faulty, policy=policy)  # plan outside the lock
        if self.verify:
            from ..verify import assert_plan_valid  # deferred: verify imports core

            assert_plan_valid(plan, h)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:  # a concurrent miss planned it first
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry[1]
            self.stats.misses += 1
            self._entries[key] = (h, plan)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return plan

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``reset_stats`` too)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()
