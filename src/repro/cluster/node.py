"""One simulated storage node: a full single-node stack behind a name.

:class:`StorageNode` is exactly the stack ``ppm serve`` runs — a
:class:`~repro.service.BlobStore` (with its own seeded
:class:`~repro.service.FaultInjector`), a
:class:`~repro.service.BlobService` (own :class:`DecodePipeline`, own
:class:`~repro.repair.RepairManager` when repair is configured) — plus
cluster membership state.  The router owns many of these; each node
stays oblivious to the others, which is what makes whole-node death a
clean event: everything the node held is in its store, everything it
was doing dies with its service.

Lifecycle: ``up`` (serving, on the placement ring) → ``draining``
(serving reads, off the ring, stripes migrating away) → ``drained``
(empty, ignorable) or ``dead`` (killed; its stripes re-home with
erasures and survivors rebuild them — see
:meth:`repro.cluster.Cluster.kill_node`).
"""

from __future__ import annotations

from ..service.config import ServiceConfig
from ..service.server import BlobService
from ..service.store import BlobStore

#: the membership states a node moves through (forward-only)
NODE_STATES = ("up", "draining", "drained", "dead")


class StorageNode:
    """A named single-node service stack inside a cluster."""

    def __init__(self, node_id: str, store: BlobStore, *, config: ServiceConfig):
        self.node_id = node_id
        self.store = store
        self.service = BlobService(store, config=config)
        self.state = "up"
        #: TCP-transport plumbing, owned by the router (None for local)
        self.server = None
        self.address: tuple[str, int] | None = None

    # -- state ---------------------------------------------------------------

    @property
    def up(self) -> bool:
        return self.state == "up"

    @property
    def serving(self) -> bool:
        """Can this node still answer reads? (up or draining)"""
        return self.state in ("up", "draining")

    def set_state(self, state: str) -> None:
        if state not in NODE_STATES:
            raise ValueError(f"unknown node state {state!r}")
        order = {name: i for i, name in enumerate(NODE_STATES)}
        if state != "dead" and order[state] < order[self.state]:
            raise ValueError(
                f"node {self.node_id}: cannot move {self.state!r} -> {state!r}"
            )
        self.state = state

    # -- convenience ---------------------------------------------------------

    @property
    def stripe_ids(self) -> tuple[int, ...]:
        return self.store.stripe_ids

    def start_repair(self) -> None:
        self.service.start_repair()

    async def close(self) -> None:
        """Stop the node's service (and repair loop) and its wire server."""
        await self.service.close()
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    def metrics_dict(self) -> dict[str, object]:
        out = self.service.metrics_dict()
        out["node"] = {
            "id": self.node_id,
            "state": self.state,
            "stripes": len(self.store.stripe_ids),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageNode({self.node_id!r}, state={self.state!r}, "
            f"stripes={len(self.store.stripe_ids)})"
        )
