"""Consistent-hash stripe placement: deterministic, balanced, stable.

:class:`HashRing` maps stripe ids to node ids by hashing ``vnodes``
virtual points per node onto a ring and walking clockwise from the
stripe's own hash.  The three properties the cluster leans on (each
covered by a property test in ``tests/cluster/test_placement.py``):

- **determinism** — placement is a pure function of
  ``(node_ids, vnodes, seed)``.  Hashes come from ``hashlib.blake2b``
  keyed by the seed, never Python's salted ``hash()``, so two routers
  built from the same :class:`~repro.cluster.config.ClusterConfig`
  agree on every stripe without talking to each other.
- **balance** — with the default 64 vnodes/node, the max/min stripe
  share across nodes stays within a small constant factor.
- **stability** — adding or removing one node remaps only the stripes
  whose clockwise successor changed: ~1/N of them on join, exactly the
  departed node's share on leave.  Everything else stays put, which is
  what bounds rebalance traffic.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping, Sequence


def _point(seed: int, label: str) -> int:
    """One 64-bit ring coordinate for ``label`` under ``seed``."""
    digest = hashlib.blake2b(
        label.encode(), digest_size=8, key=str(seed).encode()
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Seeded consistent-hash ring over string node ids.

    Parameters
    ----------
    node_ids:
        Initial members (order does not matter — placement depends only
        on the *set* of members plus ``vnodes`` and ``seed``).
    vnodes:
        Virtual points per node; more vnodes → tighter balance at the
        cost of a larger ring.
    seed:
        Hash key; rings with equal members but different seeds place
        independently.
    """

    def __init__(
        self, node_ids: Iterable[str] = (), *, vnodes: int = 64, seed: int = 2015
    ):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points: list[int] = []     # sorted ring coordinates
        self._owners: list[str] = []     # node id at the same index
        self._nodes: set[str] = set()
        for node_id in node_ids:
            self.add(node_id)

    # -- membership ----------------------------------------------------------

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        self._nodes.add(node_id)
        for v in range(self.vnodes):
            point = _point(self.seed, f"node:{node_id}:{v}")
            index = bisect.bisect_left(self._points, point)
            # loop-confined: membership changes and place() both run on
            # the router's event loop, never from worker threads
            self._points.insert(index, point)  # ppm: noqa[PPM010]
            self._owners.insert(index, node_id)  # ppm: noqa[PPM010]

    def remove(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} not on the ring")
        self._nodes.discard(node_id)
        keep = [i for i, owner in enumerate(self._owners) if owner != node_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- placement -----------------------------------------------------------

    def place(self, stripe_id: int) -> str:
        """Home node of ``stripe_id`` (clockwise successor on the ring)."""
        if not self._points:
            raise ValueError("ring has no nodes")
        point = _point(self.seed, f"stripe:{stripe_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def table(self, stripe_ids: Iterable[int]) -> dict[int, str]:
        """Placement of many stripes at once."""
        return {sid: self.place(sid) for sid in stripe_ids}

    @staticmethod
    def shares(table: Mapping[int, str]) -> dict[str, int]:
        """Stripes per node under a placement table."""
        shares: dict[str, int] = {}
        for owner in table.values():
            shares[owner] = shares.get(owner, 0) + 1
        return shares

    @staticmethod
    def moved(before: Mapping[int, str], after: Mapping[int, str]) -> int:
        """How many stripes changed owner between two tables."""
        return sum(1 for sid, owner in after.items() if before.get(sid) != owner)


def default_node_ids(count: int) -> tuple[str, ...]:
    """The canonical node naming (``node-0`` .. ``node-N-1``)."""
    if count < 1:
        raise ValueError(f"need at least one node, got {count}")
    return tuple(f"node-{i}" for i in range(count))


def spread(table: Mapping[int, str], node_ids: Sequence[str]) -> float:
    """Max/min stripe share across ``node_ids`` (∞-free: min share 0 → inf).

    The balance figure the property tests bound and the cluster metrics
    report; 1.0 is a perfectly even split.
    """
    shares = [sum(1 for owner in table.values() if owner == n) for n in node_ids]
    if not shares:
        return 0.0
    low, high = min(shares), max(shares)
    if low == 0:
        return float("inf") if high else 0.0
    return high / low
