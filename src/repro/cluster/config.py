"""Declarative shape of a cluster, in one frozen record.

:class:`ClusterConfig` is the cluster half of the layered config model
(:mod:`repro.config`): everything a :class:`~repro.cluster.Cluster`
needs beyond the store contents — membership, placement, transport,
rebalance metering and storm shape — plus the per-node
:class:`~repro.service.ServiceConfig` (which itself carries the
repair/admission knobs).  One record builds one cluster; two clusters
built from equal configs place every stripe identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..service.config import ServiceConfig
from .placement import default_node_ids

#: transports the router can fan requests out over
TRANSPORTS = ("local", "tcp")


@dataclass(frozen=True)
class ClusterConfig:
    """Immutable configuration of a :class:`~repro.cluster.Cluster`.

    Parameters
    ----------
    nodes:
        Node count; members are named ``node-0`` .. ``node-N-1``.
    vnodes:
        Virtual points per node on the placement ring (balance knob).
    seed:
        Placement hash key *and* the base for per-node fault-injector
        seeds — the whole cluster is deterministic from it.
    transport:
        ``"local"`` awaits each node's :class:`BlobService` in-process;
        ``"tcp"`` runs every node behind its own JSON-lines wire server
        and fans requests out through pooled
        :class:`~repro.service.net.Client` connections (the same
        protocol ``ppm serve`` speaks).
    connections_per_node:
        TCP-transport connection-pool width per node (ignored for
        ``"local"``).
    rebalance_blocks_per_s:
        Token-bucket refill for background stripe migration, in blocks
        per second.  ``0`` disables metering (move as fast as possible).
    rebalance_burst_blocks:
        Token-bucket capacity for migration bursts.
    storm_z:
        Shape of the erasure a whole-node death inflicts on each stripe
        it hosted: the ``z`` handed to
        :func:`repro.stripes.failures.worst_case_sd` when the stripe is
        re-homed onto a survivor (see ``docs/CLUSTER.md`` for the
        simulation contract).
    service:
        Per-node :class:`~repro.service.ServiceConfig` — coalescing,
        deadlines, retries and (via its ``repair`` field) the
        scrub-and-repair loop every node runs.
    """

    nodes: int = 3
    vnodes: int = 64
    seed: int = 2015
    transport: str = "local"
    connections_per_node: int = 4
    rebalance_blocks_per_s: float = 0.0
    rebalance_burst_blocks: int = 256
    storm_z: int = 1
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if self.connections_per_node < 1:
            raise ValueError(
                f"connections_per_node must be >= 1, got {self.connections_per_node}"
            )
        if self.rebalance_blocks_per_s < 0:
            raise ValueError("rebalance_blocks_per_s must be >= 0")
        if self.rebalance_burst_blocks < 1:
            raise ValueError(
                f"rebalance_burst_blocks must be >= 1, got {self.rebalance_burst_blocks}"
            )
        if self.storm_z < 1:
            raise ValueError(f"storm_z must be >= 1, got {self.storm_z}")

    @property
    def node_ids(self) -> tuple[str, ...]:
        return default_node_ids(self.nodes)

    def with_service(self, service: ServiceConfig) -> "ClusterConfig":
        """Copy with a different per-node service config."""
        return replace(self, service=service)
