"""The router: N storage nodes behind one get/put/degraded_get facade.

:class:`Cluster` owns a set of :class:`~repro.cluster.node.StorageNode`\\ s
and a :class:`~repro.cluster.placement.HashRing`, routes every request
to the stripe's home node, and implements the same backend protocol as
:class:`~repro.service.BlobService` — so ``repro.service.net.serve``
exposes a cluster on the JSON-lines wire, ``connect()`` reaches it, and
the load generator cannot tell one node from twenty.

Membership is explicit and asynchronous:

- :meth:`add_node` — join: the ring gains the node and ~1/N of the
  stripes migrate to it (whole stripe + its ground truth), metered by
  the rebalance :class:`~repro.repair.ratelimit.TokenBucket`;
- :meth:`drain_node` — graceful leave: the node leaves the ring, keeps
  serving reads while its stripes migrate away, then sits empty;
- :meth:`kill_node` — whole-node death: the node's stripes re-home to
  survivors *with a disk-loss-shaped erasure applied* (the blocks only
  the dead node held; the surviving blocks' transfer is the metered
  rebalance traffic), and each survivor's background
  :class:`~repro.repair.RepairManager` discovers and rebuilds them at
  ``priority="background"`` — the rebuild storm the pipeline's
  admission gate was built for.  See ``docs/CLUSTER.md`` for the
  simulation contract.

Requests racing a migration are retried once against the stripe's new
home (placement is re-read after a
:class:`~repro.service.errors.BlockUnavailableError` or a dead-node
:class:`~repro.service.errors.NodeFault`), so a rebalance in flight
costs latency, never correctness.
"""

from __future__ import annotations

import asyncio
from typing import Mapping

import numpy as np

from ..codes.base import ErasureCode
from ..repair.ratelimit import TokenBucket
from ..service.config import ServiceConfig
from ..service.errors import BlockUnavailableError, NodeFault, ServiceClosedError
from ..service.net import ClientPool, serve
from ..service.store import BlobStore, FaultInjector
from ..stripes.failures import worst_case_sd
from ..stripes.store import Stripe
from .config import ClusterConfig
from .metrics import ClusterMetrics
from .node import StorageNode
from .placement import HashRing


class Cluster:
    """Sharded multi-node frontend over per-node ``BlobService`` stacks.

    Parameters
    ----------
    code:
        The erasure code every stripe is encoded with.
    config:
        Declarative cluster shape (:class:`ClusterConfig`).
    stores:
        Pre-populated per-node stores keyed by node id (tests,
        migrations); when omitted the cluster starts empty — use
        :meth:`build` for the common seeded case.
    """

    def __init__(
        self,
        code: ErasureCode,
        config: ClusterConfig | None = None,
        *,
        stores: Mapping[str, BlobStore] | None = None,
    ):
        self.code = code
        self.config = config if config is not None else ClusterConfig()
        self.ring = HashRing(
            self.config.node_ids, vnodes=self.config.vnodes, seed=self.config.seed
        )
        self.metrics = ClusterMetrics()
        self.bucket = TokenBucket(
            self.config.rebalance_blocks_per_s, self.config.rebalance_burst_blocks
        )
        self.nodes: dict[str, StorageNode] = {}
        self._pools: dict[str, ClientPool] = {}
        #: authoritative stripe → node id map (the ring proposes,
        #: migrations commit); routing reads this, never the ring
        self._placement: dict[int, str] = {}
        self._sector_symbols: int | None = None
        self._fault_rate = 0.0
        self._fault_seed = self.config.seed
        self._next_index = self.config.nodes
        self._started = False
        self._closed = False
        for node_id in self.config.node_ids:
            store = (stores or {}).get(node_id)
            if store is None:
                store = BlobStore(code, sector_symbols=0)
            self._attach(node_id, store)

    def _attach(self, node_id: str, store: BlobStore) -> StorageNode:
        node = StorageNode(node_id, store, config=self.config.service)
        self.nodes[node_id] = node
        for sid in store.stripe_ids:
            self._placement[sid] = node_id
        if store.sector_symbols:
            self._sector_symbols = store.sector_symbols
        return node

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        code: ErasureCode,
        num_stripes: int,
        sector_symbols: int,
        config: ClusterConfig | None = None,
        *,
        fault_rate: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> "Cluster":
        """Seeded cluster of ``num_stripes`` encoded stripes, placed by
        the ring across per-node stores (each with its own seeded
        fault injector)."""
        from ..core import TraditionalDecoder
        from ..stripes.layout import StripeLayout

        config = config if config is not None else ClusterConfig()
        seed = config.seed if rng is None else rng
        base = seed if isinstance(seed, int) else config.seed
        stores = {
            node_id: BlobStore(
                code,
                sector_symbols,
                faults=FaultInjector(fault_rate, rng=base + i),
            )
            for i, node_id in enumerate(config.node_ids)
        }
        cluster = cls(code, config, stores=stores)
        cluster._sector_symbols = sector_symbols
        cluster._fault_rate = fault_rate
        layout = StripeLayout.of_code(code)
        encoder = TraditionalDecoder()
        stripe_rng = np.random.default_rng(seed)
        stripes = [
            Stripe.random(layout, code.field, sector_symbols, stripe_rng)
            for _ in range(num_stripes)
        ]
        # one fused batched encode instead of num_stripes naive calls
        encoder.encode_into_batch(code, stripes)
        for stripe_id, stripe in enumerate(stripes):
            home = cluster.ring.place(stripe_id)
            stores[home].add_stripe(stripe_id, stripe)
            cluster._placement[stripe_id] = home
        return cluster

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring every node up: wire servers/pools (tcp) + repair loops."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            await self._open_node(node)

    async def _open_node(self, node: StorageNode) -> None:
        if self.config.transport == "tcp":
            node.server = await serve(node.service, host="127.0.0.1", port=0)
            node.address = node.server.sockets[0].getsockname()[:2]
            self._pools[node.node_id] = await ClientPool.open(
                node.address, self.config.connections_per_node
            )
        node.start_repair()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for pool in self._pools.values():
            await pool.close()
        self._pools.clear()
        for node in self.nodes.values():
            if node.state != "dead":
                await node.close()

    async def __aenter__(self) -> "Cluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- routing -------------------------------------------------------------

    @property
    def stripe_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._placement))

    def owner_of(self, stripe_id: int) -> str:
        """Node id currently holding ``stripe_id``."""
        try:
            return self._placement[stripe_id]
        except KeyError:
            raise BlockUnavailableError(f"no stripe {stripe_id}") from None

    def _owner(self, stripe_id: int) -> StorageNode:
        if self._closed:
            raise ServiceClosedError("cluster is closed")
        node = self.nodes[self.owner_of(stripe_id)]
        if node.state == "dead":
            raise NodeFault(
                f"node {node.node_id} is dead; stripe {stripe_id} awaiting rebuild"
            )
        return node

    async def _route(self, op: str, stripe_id: int, block: int, deadline_s, data=None):
        """Dispatch one request to the owner, retrying once if the
        stripe migrated (or its node died) mid-flight."""
        for attempt in (0, 1):
            node = self._owner(stripe_id)
            self.metrics.route(node.node_id)
            try:
                if self.config.transport == "tcp" and node.node_id in self._pools:
                    return await self._call_wire(
                        node, op, stripe_id, block, deadline_s, data
                    )
                service = node.service
                if op == "put":
                    return await service.put(stripe_id, block, data)
                method = service.get if op == "get" else service.degraded_get
                return await method(stripe_id, block, deadline_s=deadline_s)
            except (BlockUnavailableError, NodeFault, ServiceClosedError):
                # the stripe may have moved (rebalance/storm) between
                # placement lookup and the node-side read; re-resolve
                if attempt or self._placement.get(stripe_id) == node.node_id:
                    raise
        raise AssertionError("unreachable: retry loop returns or raises")

    async def _call_wire(self, node, op, stripe_id, block, deadline_s, data):
        pool = self._pools[node.node_id]
        self.metrics.forwarded_wire += 1
        if op == "put":
            return await pool.put(stripe_id, block, data)
        method = pool.get if op == "get" else pool.degraded_get
        symbols = await method(stripe_id, block, deadline_s)
        return np.asarray(symbols, dtype=self.dtype)

    async def get(
        self, stripe_id: int, block: int, *, deadline_s: float | None = None
    ) -> np.ndarray:
        return await self._route("get", stripe_id, block, deadline_s)

    async def degraded_get(
        self, stripe_id: int, block: int, *, deadline_s: float | None = None
    ) -> np.ndarray:
        return await self._route("degraded_get", stripe_id, block, deadline_s)

    async def put(self, stripe_id: int, block: int, region: np.ndarray) -> None:
        await self._route("put", stripe_id, block, None, data=region)

    # -- backend protocol ----------------------------------------------------

    @property
    def dtype(self):
        return self.code.field.dtype

    def verify_block(self, stripe_id: int, block: int, region) -> bool:
        """Ground-truth check against the owning node's store."""
        node = self.nodes[self.owner_of(stripe_id)]
        return node.store.verify_block(stripe_id, block, region)

    # -- membership ----------------------------------------------------------

    def _serving_nodes(self) -> list[StorageNode]:
        return [n for n in self.nodes.values() if n.serving]

    async def add_node(self, node_id: str | None = None) -> str:
        """Join a fresh empty node and rebalance ~1/N stripes onto it."""
        if node_id is None:
            node_id = f"node-{self._next_index}"
            self._next_index += 1
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        store = BlobStore(
            self.code,
            self._sector_symbols or 0,
            faults=FaultInjector(
                self._fault_rate, rng=self._fault_seed + self._next_index
            ),
        )
        node = self._attach(node_id, store)
        self.ring.add(node_id)
        if self._started:
            await self._open_node(node)
        moved = [
            sid
            for sid in self.stripe_ids
            if self.ring.place(sid) == node_id and self._placement[sid] != node_id
        ]
        await self._migrate(moved, to=node_id)
        return node_id

    async def drain_node(self, node_id: str) -> int:
        """Gracefully empty a node: off the ring, reads keep working
        while its stripes migrate to ring-chosen survivors."""
        node = self.nodes[node_id]
        node.set_state("draining")
        if node_id in self.ring:
            self.ring.remove(node_id)
        moved = list(node.store.stripe_ids)
        await self._migrate(moved, to=None)
        node.set_state("drained")
        return len(moved)

    async def _migrate(self, stripe_ids, *, to: str | None) -> None:
        """Move whole stripes (data + truth), metered by the bucket."""
        if not stripe_ids:
            return
        self.metrics.rebalances += 1
        for sid in stripe_ids:
            src = self.nodes[self._placement[sid]]
            dst_id = to if to is not None else self.ring.place(sid)
            dst = self.nodes[dst_id]
            if dst is src:
                continue
            blocks = len(src.store.stripe(sid).present_ids)
            self.metrics.rebalance_wait_seconds += await self.bucket.acquire(blocks)
            stripe, truth = src.store.remove_stripe(sid)
            dst.store.adopt_stripe(sid, stripe, truth)
            self._placement[sid] = dst_id
            self.metrics.stripes_moved += 1
            self.metrics.blocks_moved += blocks
            self.metrics.bytes_moved += stripe.nbytes

    async def kill_node(self, node_id: str) -> int:
        """Whole-node death: re-home its stripes onto survivors with a
        disk-loss erasure applied, and let the survivors' background
        repair queues rebuild them.

        The erasure pattern (``worst_case_sd(code, z=config.storm_z)``,
        one shared shape — so the rebuild decodes coalesce) stands in
        for the blocks only the dead node held; the surviving blocks'
        re-fetch is charged to the rebalance token bucket.  Stripes that
        were *already* degraded re-home unchanged (stacking the storm
        pattern on top could exceed the code's correction capability).
        Returns the number of stripes thrown into the storm.
        """
        node = self.nodes[node_id]
        if node.state == "dead":
            return 0
        node.set_state("dead")
        if node_id in self.ring:
            self.ring.remove(node_id)
        if not self.ring.node_ids:
            raise RuntimeError("cannot kill the last node: no survivors to rebuild on")
        pool = self._pools.pop(node_id, None)
        if pool is not None:
            await pool.close()
        await node.close()
        scenario = worst_case_sd(self.code, z=self.config.storm_z, rng=self.config.seed)
        doomed = list(node.store.stripe_ids)
        self.metrics.storms += 1
        self.metrics.rebalances += 1
        for sid in doomed:
            stripe, truth = node.store.remove_stripe(sid)
            if not stripe.erased_ids:
                stripe.erase(scenario.faulty_blocks)
                self.metrics.storm_blocks_lost += len(scenario.faulty_blocks)
            survivors = len(stripe.present_ids)
            self.metrics.rebalance_wait_seconds += await self.bucket.acquire(survivors)
            dst_id = self.ring.place(sid)
            self.nodes[dst_id].store.adopt_stripe(sid, stripe, truth)
            self._placement[sid] = dst_id
            self.metrics.storm_stripes += 1
            self.metrics.stripes_moved += 1
            self.metrics.blocks_moved += survivors
            self.metrics.bytes_moved += stripe.nbytes
        for survivor in self._serving_nodes():
            if survivor.service.repair is not None:
                survivor.service.repair.kick()
        return len(doomed)

    # -- health --------------------------------------------------------------

    async def wait_healthy(self, timeout_s: float = 60.0) -> bool:
        """Barrier: every serving node's repair loop reports a clean
        full scrub pass within the budget (nodes without a repair
        manager must already be erasure-free)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        for node in self._serving_nodes():
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            repair = node.service.repair
            if repair is not None:
                if not await repair.wait_healthy(timeout_s=remaining):
                    return False
            else:
                for sid in node.store.stripe_ids:
                    if node.store.stripe(sid).erased_ids:
                        return False
        return True

    def verify_all(self) -> dict[str, int]:
        """Truth-verify every block of every stripe on every live node.

        Returns ``{"stripes", "blocks", "erased", "mismatched"}``; the
        cluster is provably healthy iff ``erased == mismatched == 0``.
        """
        stripes = blocks = erased = mismatched = 0
        for node in self._serving_nodes():
            for sid in node.store.stripe_ids:
                stripes += 1
                stripe = node.store.stripe(sid)
                truth = node.store.truth(sid)
                erased += len(stripe.erased_ids)
                for bid in stripe.present_ids:
                    blocks += 1
                    if not np.array_equal(stripe.get(bid), truth.get(bid)):
                        mismatched += 1
        return {
            "stripes": stripes,
            "blocks": blocks,
            "erased": erased,
            "mismatched": mismatched,
        }

    # -- observability -------------------------------------------------------

    def metrics_dict(self) -> dict[str, object]:
        """One JSON document for the whole cluster.

        ``cluster`` is the router's own view (routing spread, rebalance
        and storm accounting, membership); ``nodes`` embeds each node's
        full service document (requests, coalescing, pipeline/kernel
        stats, repair); ``totals`` sums the per-node request and
        resilience counters so dashboards get cluster-wide figures
        without re-deriving them.
        """
        doc: dict[str, object] = {"cluster": self.metrics.as_dict()}
        doc["cluster"]["membership"] = {  # type: ignore[index]
            node_id: {
                "state": node.state,
                "stripes": len(node.store.stripe_ids),
                "address": (
                    f"{node.address[0]}:{node.address[1]}" if node.address else None
                ),
            }
            for node_id, node in sorted(self.nodes.items())
        }
        nodes: dict[str, object] = {}
        totals_requests: dict[str, int] = {}
        totals_resilience: dict[str, int] = {}
        for node_id, node in sorted(self.nodes.items()):
            if node.state == "dead":
                nodes[node_id] = {"node": {"id": node_id, "state": "dead"}}
                continue
            node_doc = node.metrics_dict()
            nodes[node_id] = node_doc
            for section, totals in (
                ("requests", totals_requests),
                ("resilience", totals_resilience),
            ):
                for key, value in node_doc[section].items():  # type: ignore[attr-defined]
                    if isinstance(value, (int, float)):
                        totals[key] = totals.get(key, 0) + value
        doc["nodes"] = nodes
        doc["totals"] = {
            "requests": totals_requests,
            "resilience": totals_resilience,
        }
        return doc
