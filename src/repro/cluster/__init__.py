"""Sharded multi-node cluster layer over the single-node service stack.

The scale jump past one :class:`~repro.service.BlobService`: N simulated
storage nodes — each a full single-node stack (own
:class:`~repro.service.BlobStore`, own pipeline, own background
:class:`~repro.repair.RepairManager`, own seeded fault injector) —
behind a :class:`Cluster` router that places stripes with a seeded
consistent-hash :class:`HashRing` and fans ``get``/``put``/
``degraded_get`` out per stripe::

    client ──> Cluster (router) ──placement──> StorageNode "node-3"
                  │  consistent-hash ring        ├─ BlobService
                  │  join/leave/drain/kill       │   (scheduler+pipeline)
                  │  rebalance TokenBucket       ├─ RepairManager
                  │  storm accounting            └─ BlobStore (+faults)
                  └──> one merged metrics JSON doc

- :mod:`repro.cluster.placement` — :class:`HashRing` (deterministic,
  balanced, join/leave-stable placement);
- :mod:`repro.cluster.node` — :class:`StorageNode` lifecycle
  (up → draining → drained, or dead);
- :mod:`repro.cluster.router` — :class:`Cluster`: routing, membership,
  rebalancing, whole-node-death rebuild storms, health barriers;
- :mod:`repro.cluster.config` — declarative :class:`ClusterConfig`;
- :mod:`repro.cluster.metrics` — :class:`ClusterMetrics` +
  cluster-wide JSON aggregation.

A cluster implements the same backend protocol as a single service, so
``repro.service.net.serve`` / ``connect()`` / the load generator work
on either without a flag (``ppm cluster`` vs ``ppm serve``).  Lint
rules PPM009–PPM013 (no blocking calls on the loop; race analysis)
cover this package like they do ``repro/service/``.
"""

from __future__ import annotations

from .config import ClusterConfig
from .metrics import ClusterMetrics
from .node import StorageNode
from .placement import HashRing, default_node_ids, spread
from .router import Cluster

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterMetrics",
    "HashRing",
    "StorageNode",
    "default_node_ids",
    "spread",
]
