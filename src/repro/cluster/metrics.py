"""Cluster-wide tallies: routing, rebalance traffic, storms.

:class:`ClusterMetrics` is the router's own accounting — the per-node
request/pipeline/repair metrics stay inside each node's
:class:`~repro.service.ServiceMetrics` and are merged into one JSON
document by :meth:`repro.cluster.Cluster.metrics_dict`, the cluster
analogue of ``BlobService.metrics_dict``.  Mutated from the event-loop
thread only, like every other metrics object in the repo.
"""

from __future__ import annotations


class ClusterMetrics:
    """Mutable tallies of one :class:`~repro.cluster.Cluster`.

    Counter semantics:

    - ``routed`` — requests fanned out, by node id (the router's view
      of load spread; compare with the placement shares);
    - ``forwarded_wire`` — requests that crossed the TCP transport
      (0 under ``transport="local"``);
    - ``rebalances`` — membership events that moved stripes
      (join/drain/kill each count once);
    - ``stripes_moved`` / ``blocks_moved`` / ``bytes_moved`` — migration
      volume across all rebalances;
    - ``rebalance_wait_seconds`` — time the migration token bucket held
      transfers back;
    - ``storms`` — whole-node deaths handled;
    - ``storm_stripes`` / ``storm_blocks_lost`` — stripes re-homed with
      erasures and the block count those erasures represent (the
      rebuild debt survivors' repair queues must clear).
    """

    def __init__(self) -> None:
        self.routed: dict[str, int] = {}
        self.forwarded_wire = 0
        self.rebalances = 0
        self.stripes_moved = 0
        self.blocks_moved = 0
        self.bytes_moved = 0
        self.rebalance_wait_seconds = 0.0
        self.storms = 0
        self.storm_stripes = 0
        self.storm_blocks_lost = 0

    def route(self, node_id: str) -> None:
        self.routed[node_id] = self.routed.get(node_id, 0) + 1

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot (the ``cluster`` section of the doc)."""
        return {
            "routed": dict(sorted(self.routed.items())),
            "forwarded_wire": self.forwarded_wire,
            "rebalance": {
                "rebalances": self.rebalances,
                "stripes_moved": self.stripes_moved,
                "blocks_moved": self.blocks_moved,
                "bytes_moved": self.bytes_moved,
                "wait_seconds": self.rebalance_wait_seconds,
            },
            "storm": {
                "storms": self.storms,
                "stripes": self.storm_stripes,
                "blocks_lost": self.storm_blocks_lost,
            },
        }
