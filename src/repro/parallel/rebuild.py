"""Multi-stripe rebuild schedulers.

The paper's related work distinguishes *block-level* and *disk-level*
parallel reconstruction (its refs [36]-[40]) from PPM's matrix-oriented
intra-stripe parallelism.  An array rebuild touches many stripes, so the
two compose: this module provides the schedulers that spread a rebuild
over a worker pool at either granularity, letting benches compare

- ``StripeParallelRebuilder`` — classic block-level parallelism: one
  stripe per worker, each decoded serially (traditional or PPM-serial);
- ``IntraStripeRebuilder``   — PPM's parallelism *within* each stripe,
  stripes processed in sequence;
- ``HybridRebuilder``        — stripes across workers, PPM sequence
  optimisation (serial) inside each: the practical sweet spot when
  stripes outnumber cores.

All three recover identical data; they differ in wall-clock shape, which
``simulate_rebuild_time`` models with the same calibrated profiles used
for single-stripe decoding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.decoder import PPMDecoder, TraditionalDecoder
from ..core.planner import DecodePlan
from ..pipeline.pool import ThreadWorkerPool
from ..stripes.array import DiskArray
from .simulate import CPUProfile, SimulatedTime, simulate_ppm_time


@dataclass
class RebuildResult:
    """Outcome of one array rebuild."""

    blocks_repaired: int
    wall_seconds: float
    strategy: str


class _BaseRebuilder:
    strategy = "base"

    def __init__(self, threads: int = 4):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads

    def _decoder(self):
        raise NotImplementedError

    def rebuild(self, array: DiskArray) -> RebuildResult:
        t0 = time.perf_counter()
        repaired = self._run(array)
        return RebuildResult(
            blocks_repaired=repaired,
            wall_seconds=time.perf_counter() - t0,
            strategy=self.strategy,
        )

    def _run(self, array: DiskArray) -> int:
        raise NotImplementedError


class IntraStripeRebuilder(_BaseRebuilder):
    """Stripes in sequence; PPM threads inside each stripe."""

    strategy = "intra-stripe (PPM threads)"

    def _run(self, array: DiskArray) -> int:
        decoder = PPMDecoder(threads=self.threads)
        return array.rebuild(decoder)


class StripeParallelRebuilder(_BaseRebuilder):
    """One stripe per worker; serial decode inside (block-level parallelism).

    ``use_ppm`` selects PPM's sequence optimisation (serial execution)
    inside each stripe; False gives the pure traditional baseline.
    """

    strategy = "stripe-parallel (traditional)"

    def __init__(self, threads: int = 4, use_ppm: bool = False):
        super().__init__(threads)
        self.use_ppm = use_ppm
        if use_ppm:
            self.strategy = "stripe-parallel (PPM serial)"

    def _make_decoder(self):
        # one decoder per worker: plan caches are shared per decoder and
        # plans are immutable, but the region-op counter is per-decoder
        if self.use_ppm:
            return PPMDecoder(parallel=False)
        return TraditionalDecoder(policy="normal")

    def _run(self, array: DiskArray) -> int:
        work = [
            (stripe, stripe.erased_ids)
            for stripe in array.stripes
            if stripe.erased_ids
        ]
        if not work:
            return 0
        decoders = [self._make_decoder() for _ in range(self.threads)]

        def repair(item):
            index, (stripe, faulty) = item
            decoder = decoders[index % self.threads]
            recovered = decoder.decode(array.code, stripe, faulty)
            return stripe, recovered

        with ThreadWorkerPool(self.threads) as pool:
            results = pool.map(repair, enumerate(work))
        repaired = 0
        for stripe, recovered in results:
            for bid, region in recovered.items():
                stripe.put(bid, region)
            repaired += len(recovered)
        array.failed_disks.clear()
        return repaired


class HybridRebuilder(StripeParallelRebuilder):
    """Stripe-level workers + PPM sequence optimisation inside each."""

    def __init__(self, threads: int = 4):
        super().__init__(threads, use_ppm=True)
        self.strategy = "hybrid (stripes x PPM serial)"


class _BackgroundPipeline:
    """Decode adapter submitting every batch at background priority.

    :meth:`repro.stripes.DiskArray.rebuild` only knows the plain decode
    protocol; this shim forwards to a shared
    :class:`~repro.pipeline.DecodePipeline` with
    ``priority="background"`` so a bulk rebuild defers to any live
    degraded reads flowing through the same pipeline.
    """

    def __init__(self, pipeline):
        self._pipeline = pipeline

    def decode(self, code, stripe, faulty, **kwargs):
        return self._pipeline.decode(code, stripe, faulty, **kwargs)

    def decode_batch(self, code, stripes, faulty=None, **kwargs):
        kwargs.setdefault("priority", "background")
        return self._pipeline.decode_batch(code, stripes, faulty, **kwargs)


class PipelineRebuilder(_BaseRebuilder):
    """Batched rebuild through :class:`repro.pipeline.DecodePipeline`.

    All stripes sharing a failure geometry are fused into one region-op
    sweep, plans come from the pipeline's LRU cache, and the worker pool
    is spawned once for the whole rebuild — the throughput-oriented
    sibling of the per-stripe strategies above.

    Pass ``pipeline=`` to route the rebuild through an *existing*
    pipeline (sharing its plan cache, pool and metrics with the serving
    path) instead of spinning up a private one; shared-pipeline rebuilds
    are submitted at background priority so they defer to foreground
    degraded reads.
    """

    strategy = "pipeline (batched)"

    def __init__(
        self,
        threads: int = 4,
        pool: str = "thread",
        pipeline=None,
    ):
        super().__init__(threads)
        self.pool_kind = pool
        self.pipeline = pipeline
        if pipeline is not None:
            self.strategy = "pipeline (batched, shared)"

    def _run(self, array: DiskArray) -> int:
        if self.pipeline is not None:
            return array.rebuild(_BackgroundPipeline(self.pipeline))
        from ..pipeline import DecodePipeline  # deferred: engine sits above core

        with DecodePipeline(workers=self.threads, pool=self.pool_kind) as pipe:
            return array.rebuild(pipe)


def simulate_rebuild_time(
    plans: Sequence[DecodePlan],
    profile: CPUProfile,
    threads: int,
    sector_symbols: int,
    strategy: str = "stripe-parallel",
) -> SimulatedTime:
    """Model the rebuild wall time of many stripes under a strategy.

    ``stripe-parallel`` / ``hybrid``: each stripe is one task of its
    serial decode cost (C1 for the former, the plan's chosen cost for
    the latter), tasks binned round-robin over workers.
    ``intra-stripe``: stripes run in sequence, each with PPM's internal
    parallelism.
    """
    per_op = sector_symbols / profile.throughput
    if strategy == "intra-stripe":
        phase1 = rest = spawn = 0.0
        for plan in plans:
            sim = simulate_ppm_time(plan, profile, threads, sector_symbols)
            phase1 += sim.phase1_seconds
            rest += sim.rest_seconds
            spawn += sim.spawn_seconds
        return SimulatedTime(phase1, rest, spawn)
    if strategy == "stripe-parallel":
        costs = [plan.costs.c1 for plan in plans]
    elif strategy == "hybrid":
        costs = [plan.predicted_cost for plan in plans]
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    t_eff = max(1, min(threads, len(costs), profile.cores))
    bins = [0] * t_eff
    for i, c in enumerate(costs):
        bins[i % t_eff] += c
    return SimulatedTime(
        phase1_seconds=max(bins) * per_op,
        rest_seconds=0.0,
        spawn_seconds=profile.spawn_overhead_s * (t_eff if t_eff > 1 else 0),
    )
