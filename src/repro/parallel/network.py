"""Network model for distributed repair — LRC's other motivation.

The paper motivates LRC with degraded reads that "reduce disk I/O,
network overhead, and degraded read latency" (§I): in a cluster, every
survivor a repair touches must cross the network from its node.  This
module prices a decode plan under a simple cluster model:

- blocks live on nodes (default: one node per disk);
- a repair runs on one *repair node*; every survivor block on another
  node is transferred once (recovered intermediates stay local);
- transfer time = latency (per remote node contacted) + bytes/bandwidth,
  with transfers from distinct nodes overlapping up to ``parallel_fetch``
  streams; compute uses the usual calibrated throughput.

``repair_bill`` returns bytes/latency/compute; combined with
:func:`repro.stripes.reads.plan_io` it reproduces the LRC-vs-RS
degraded-read economics quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..codes.base import ErasureCode
from ..core.planner import DecodePlan
from ..stripes.reads import plan_io
from .simulate import CPUProfile


@dataclass(frozen=True)
class NetworkModel:
    """Cluster network parameters (defaults: 10 GbE, intra-rack)."""

    bandwidth_bytes_per_s: float = 1.25e9
    latency_s: float = 200e-6
    parallel_fetch: int = 4


@dataclass(frozen=True)
class RepairBill:
    """Cost of one distributed repair."""

    network_bytes: int
    remote_nodes: int
    transfer_seconds: float
    compute_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.compute_seconds


def default_placement(code: ErasureCode) -> dict[int, int]:
    """One node per disk: block -> node id (== disk id)."""
    return {b: code.position(b)[1] for b in range(code.num_blocks)}


def repair_bill(
    code: ErasureCode,
    plan: DecodePlan,
    sector_bytes: int,
    profile: CPUProfile,
    network: NetworkModel | None = None,
    placement: Mapping[int, int] | None = None,
    repair_node: int | None = None,
) -> RepairBill:
    """Price a repair plan on a cluster.

    ``repair_node`` defaults to the node of the first faulty block (the
    node that wants the data / hosts the replacement).
    """
    network = network if network is not None else NetworkModel()
    placement = placement if placement is not None else default_placement(code)
    if repair_node is None:
        repair_node = placement[plan.faulty_ids[0]]
    io = plan_io(code, plan)
    remote_blocks = [b for b in io.blocks_read if placement[b] != repair_node]
    remote_nodes = {placement[b] for b in remote_blocks}
    total_bytes = len(remote_blocks) * sector_bytes
    # fetches from distinct nodes overlap up to parallel_fetch streams
    waves = -(-len(remote_nodes) // network.parallel_fetch) if remote_nodes else 0
    transfer = (
        waves * network.latency_s + total_bytes / network.bandwidth_bytes_per_s
    )
    symbols = sector_bytes // code.field.dtype.itemsize
    compute = plan.predicted_cost * symbols / profile.throughput
    return RepairBill(
        network_bytes=total_bytes,
        remote_nodes=len(remote_nodes),
        transfer_seconds=transfer,
        compute_seconds=compute,
    )


def compare_repair_bills(
    codes_and_plans: Sequence[tuple[str, ErasureCode, DecodePlan]],
    sector_bytes: int,
    profile: CPUProfile,
    network: NetworkModel | None = None,
) -> dict[str, RepairBill]:
    """Repair bills of several (code, plan) pairs under one cluster model."""
    return {
        name: repair_bill(code, plan, sector_bytes, profile, network)
        for name, code, plan in codes_and_plans
    }
