"""Parallel substrate: thread execution lives in :mod:`repro.core.executor`;
this package provides the calibrated decode-time model used to evaluate
multi-core behaviour (this host has one core — DESIGN.md, substitutions).
"""

from __future__ import annotations

from .assignment import assign_lpt, assign_round_robin, lpt_advantage, makespan
from .network import (
    NetworkModel,
    RepairBill,
    compare_repair_bills,
    default_placement,
    repair_bill,
)
from .calibrate import (
    host_profile,
    measure_spawn_overhead,
    measure_throughput,
    scaled_paper_profile,
)
from .rebuild import (
    HybridRebuilder,
    IntraStripeRebuilder,
    PipelineRebuilder,
    RebuildResult,
    StripeParallelRebuilder,
    simulate_rebuild_time,
)
from .simulate import (
    E5_2603,
    E5_2650,
    I7_3930K,
    PAPER_CPUS,
    CPUProfile,
    SimulatedTime,
    improvement_ratio,
    simulate_decode_time,
    simulate_ppm_time,
    simulate_traditional_time,
)

__all__ = [
    "assign_lpt",
    "assign_round_robin",
    "lpt_advantage",
    "makespan",
    "NetworkModel",
    "RepairBill",
    "compare_repair_bills",
    "default_placement",
    "repair_bill",
    "HybridRebuilder",
    "IntraStripeRebuilder",
    "PipelineRebuilder",
    "RebuildResult",
    "StripeParallelRebuilder",
    "simulate_rebuild_time",
    "host_profile",
    "measure_spawn_overhead",
    "measure_throughput",
    "scaled_paper_profile",
    "E5_2603",
    "E5_2650",
    "I7_3930K",
    "PAPER_CPUS",
    "CPUProfile",
    "SimulatedTime",
    "improvement_ratio",
    "simulate_decode_time",
    "simulate_ppm_time",
    "simulate_traditional_time",
]
