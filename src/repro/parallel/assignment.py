"""Group-to-thread assignment strategies for the parallel phase.

Algorithm 1 assigns independent sub-matrix ``p`` to thread ``p mod T``
(round-robin).  That is optimal when all groups cost the same — the SD
worst case, where every group is an m x (n-m) decode — but LRC groups
are as uneven as their group sizes, and general scenarios mix singleton
and m-wide groups.  This module adds the classic LPT
(longest-processing-time-first) greedy, which is a 4/3-approximation of
the optimal makespan, as a drop-in alternative:

- :func:`assign_round_robin` — the paper's rule;
- :func:`assign_lpt` — sort by cost descending, place each group on the
  currently least-loaded worker;
- :func:`makespan` — evaluate an assignment's bottleneck load.

``PPMDecoder`` keeps the paper's rule (this is a reproduction); the
ablation bench and :func:`repro.parallel.simulate.simulate_ppm_time`
users can quantify what LPT would buy.
"""

from __future__ import annotations

import heapq
from typing import Sequence


def assign_round_robin(costs: Sequence[int], threads: int) -> list[list[int]]:
    """Group i -> worker i mod T (Algorithm 1).  Returns index buckets."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    t_eff = max(1, min(threads, len(costs)))
    buckets: list[list[int]] = [[] for _ in range(t_eff)]
    for i in range(len(costs)):
        buckets[i % t_eff].append(i)
    return buckets


def assign_lpt(costs: Sequence[int], threads: int) -> list[list[int]]:
    """Longest-processing-time-first greedy assignment."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    t_eff = max(1, min(threads, len(costs)))
    buckets: list[list[int]] = [[] for _ in range(t_eff)]
    heap = [(0, w) for w in range(t_eff)]
    heapq.heapify(heap)
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    for i in order:
        load, worker = heapq.heappop(heap)
        buckets[worker].append(i)
        heapq.heappush(heap, (load + costs[i], worker))
    return buckets


def makespan(costs: Sequence[int], buckets: Sequence[Sequence[int]]) -> int:
    """Bottleneck (maximum) worker load of an assignment."""
    if not buckets:
        return 0
    return max(sum(costs[i] for i in bucket) for bucket in buckets)


def lpt_advantage(costs: Sequence[int], threads: int) -> float:
    """Relative makespan reduction LPT achieves over round-robin.

    0.0 means round-robin was already balanced (e.g. equal-cost SD
    groups); positive values appear with skewed group costs.
    """
    rr = makespan(costs, assign_round_robin(costs, threads))
    lpt = makespan(costs, assign_lpt(costs, threads))
    if rr == 0:
        return 0.0
    return 1.0 - lpt / rr
