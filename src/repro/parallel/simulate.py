"""Calibrated parallel decode-time model.

The paper measures PPM on 4/6/8-core Xeons; this reproduction runs on a
single-core host (see DESIGN.md substitutions), so the *parallel* share
of the speedup is evaluated with an explicit makespan model driven by the
real per-sub-matrix costs of a plan:

- every sub-matrix decode costs ``c_i`` mult_XORs over ``sym`` symbols;
- a CPU profile supplies cores, per-core mult_XORs-symbol throughput and
  per-thread spawn overhead (throughput is *calibrated* on the host by
  :mod:`repro.parallel.calibrate` and scaled by clock ratio);
- phase 1 bins groups round-robin over T workers (Algorithm 1's
  ``p mod T``); its wall time is the largest bin, bounded below by
  total-work / cores, with an oversubscription penalty when T > cores;
- the rest phase and the traditional baseline are serial.

This is exactly the ``sum c_i - c_max`` saving of Section III-C plus the
threading overhead the paper says its measurements include.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.planner import DecodePlan
from ..core.sequences import ExecutionMode

#: Default per-core throughput: symbols * mult_XORs per second.  This is
#: overwritten by host calibration in the bench harness; the raw value
#: (order of a few hundred MB/s of mult_XOR work) matches a scalar
#: table-lookup GF(2^8) kernel at 1 GHz.
DEFAULT_THROUGHPUT = 2.0e8

#: Penalty factor applied to phase-1 wall time per excess thread beyond
#: the core count (context-switch + cache-churn proxy).
OVERSUBSCRIPTION_PENALTY = 0.08


@dataclass(frozen=True)
class CPUProfile:
    """A machine model for the simulator.

    ``ghz`` only matters relative to other profiles: throughput scales
    linearly with it from ``base_throughput`` (per GHz).
    """

    name: str
    cores: int
    ghz: float
    base_throughput: float = DEFAULT_THROUGHPUT  # per GHz, per core
    spawn_overhead_s: float = 60e-6  # per worker thread

    @property
    def throughput(self) -> float:
        """symbols * mult_XORs per second per core."""
        return self.base_throughput * self.ghz

    def with_throughput(self, per_ghz: float) -> "CPUProfile":
        """Profile with a recalibrated base throughput."""
        return replace(self, base_throughput=per_ghz)


#: The three machines of the paper's Section IV.
E5_2603 = CPUProfile(name="E5-2603", cores=4, ghz=1.8)
I7_3930K = CPUProfile(name="i7-3930K", cores=6, ghz=3.2)
E5_2650 = CPUProfile(name="E5-2650", cores=8, ghz=2.0)
PAPER_CPUS = (E5_2603, I7_3930K, E5_2650)


@dataclass(frozen=True)
class SimulatedTime:
    """Decomposed decode time (seconds) under the model."""

    phase1_seconds: float
    rest_seconds: float
    spawn_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.rest_seconds + self.spawn_seconds


def _round_robin_bins(costs: tuple[int, ...], t: int) -> list[int]:
    bins = [0] * t
    for p, c in enumerate(costs):
        bins[p % t] += c
    return bins


def simulate_ppm_time(
    plan: DecodePlan,
    profile: CPUProfile,
    threads: int,
    sector_symbols: int,
) -> SimulatedTime:
    """Model the PPM decode time of ``plan`` on ``profile`` with T threads."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    per_op = sector_symbols / profile.throughput
    if not plan.uses_partition:
        # whole-matrix execution: strictly serial
        return SimulatedTime(
            phase1_seconds=plan.predicted_cost * per_op,
            rest_seconds=0.0,
            spawn_seconds=0.0,
        )
    group_costs = plan.group_costs
    t_eff = max(1, min(threads, len(group_costs)))
    if t_eff == 1:
        phase1 = sum(group_costs) * per_op
        spawn = 0.0
    else:
        bins = _round_robin_bins(group_costs, t_eff)
        concurrent = min(t_eff, profile.cores)
        # cores bound the achievable parallelism; oversubscription adds churn
        makespan = max(max(bins), sum(group_costs) / concurrent)
        penalty = 1.0
        if t_eff > profile.cores:
            penalty += OVERSUBSCRIPTION_PENALTY * (t_eff - profile.cores)
        phase1 = makespan * per_op * penalty
        spawn = profile.spawn_overhead_s * t_eff
    rest_cost = 0
    if plan.rest is not None:
        rest_cost = (
            plan.rest.cost_matrix_first
            if plan.mode is ExecutionMode.PPM_REST_MATRIX_FIRST
            else plan.rest.cost_normal
        )
    return SimulatedTime(
        phase1_seconds=phase1,
        rest_seconds=rest_cost * per_op,
        spawn_seconds=spawn,
    )


def simulate_traditional_time(
    plan: DecodePlan,
    profile: CPUProfile,
    sector_symbols: int,
    matrix_first: bool = False,
) -> SimulatedTime:
    """Model the serial whole-matrix decode (the paper's baseline)."""
    cost = plan.costs.c2 if matrix_first else plan.costs.c1
    per_op = sector_symbols / profile.throughput
    return SimulatedTime(phase1_seconds=cost * per_op, rest_seconds=0.0, spawn_seconds=0.0)


def simulate_decode_time(
    plan: DecodePlan,
    profile: CPUProfile,
    threads: int,
    sector_symbols: int,
) -> tuple[SimulatedTime, SimulatedTime]:
    """(traditional, PPM) time pair for one scenario — the paper's contrast."""
    return (
        simulate_traditional_time(plan, profile, sector_symbols),
        simulate_ppm_time(plan, profile, threads, sector_symbols),
    )


def improvement_ratio(traditional: SimulatedTime, ppm: SimulatedTime) -> float:
    """The paper's "improvement ratio": speed gain t_old / t_new - 1.

    A value of 2.1081 is the paper's headline "210.81%" improvement.
    """
    if ppm.total_seconds <= 0:
        raise ZeroDivisionError("PPM time is zero; cannot form a ratio")
    return traditional.total_seconds / ppm.total_seconds - 1.0
