"""Host calibration for the parallel-time model.

Measures what this machine actually achieves on the two quantities the
simulator needs — ``mult_XORs`` throughput (symbols x ops / second) and
thread-spawn overhead — so simulated times for the paper's CPU profiles
are anchored to real kernel speed rather than guesses.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..gf import GF, RegionOps
from ..pipeline.pool import ThreadWorkerPool
from .simulate import CPUProfile

_HOST_CACHE: dict[int, CPUProfile] = {}


def measure_throughput(w: int = 8, region_symbols: int = 1 << 18, repeats: int = 12) -> float:
    """Measured mult_XORs throughput in symbols x ops per second."""
    field = GF(w)
    ops = RegionOps(field)
    rng = np.random.default_rng(0)
    src = rng.integers(0, field.order + 1, size=region_symbols).astype(field.dtype)
    dst = np.zeros_like(src)
    ops.mult_xors(src, dst, 3)  # warm tables and caches
    t0 = time.perf_counter()
    for i in range(repeats):
        ops.mult_xors(src, dst, 2 + (i % 7))
    elapsed = time.perf_counter() - t0
    return repeats * region_symbols / elapsed


def measure_spawn_overhead(threads: int = 4, repeats: int = 5) -> float:
    """Measured cost of standing up a T-worker pool, per thread (seconds)."""
    total = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        with ThreadWorkerPool(threads) as pool:
            futures = [pool.submit(lambda: None) for _ in range(threads)]
            for f in futures:
                f.result()
        total += time.perf_counter() - t0
    return total / (repeats * threads)


def host_profile(w: int = 8, refresh: bool = False) -> CPUProfile:
    """A CPU profile describing *this* machine, measured once and cached.

    The host's GHz is unknown portably, so the profile pins ``ghz=1.0``
    and folds the whole measured throughput into ``base_throughput``;
    the paper-CPU profiles are then scaled from it by clock ratio via
    :func:`scaled_paper_profile`.
    """
    if not refresh and w in _HOST_CACHE:
        return _HOST_CACHE[w]
    profile = CPUProfile(
        name=f"host(w={w})",
        cores=os.cpu_count() or 1,
        ghz=1.0,
        base_throughput=measure_throughput(w),
        spawn_overhead_s=measure_spawn_overhead(),
    )
    _HOST_CACHE[w] = profile
    return profile


def scaled_paper_profile(paper_cpu: CPUProfile, host: CPUProfile) -> CPUProfile:
    """A paper CPU re-based on the host's measured per-GHz throughput.

    Keeps the paper CPU's core count and clock but replaces the default
    throughput constant with what a GHz of *this* machine's kernel
    actually delivers, and uses the host's measured spawn overhead.
    """
    per_ghz = host.base_throughput / max(host.ghz, 1e-9)
    return CPUProfile(
        name=paper_cpu.name,
        cores=paper_cpu.cores,
        ghz=paper_cpu.ghz,
        base_throughput=per_ghz,
        spawn_overhead_s=host.spawn_overhead_s,
    )
