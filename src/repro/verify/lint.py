"""Repo-specific AST lint: invariants generic linters cannot express.

The rules encode conventions this codebase's correctness and
performance story depend on:

- **PPM001** every module opts into ``from __future__ import
  annotations`` (uniform typing semantics across Python versions);
- **PPM002** plan-shaped dataclasses are frozen — decode plans, XOR
  schedules and partitions are shared across threads and cached by
  identity, so mutation would corrupt concurrent decodes;
- **PPM003** no Python-level per-element XOR loops in the ``gf``/``core``
  hot paths — bulk data must flow through the vectorised
  :class:`~repro.gf.region.RegionOps` primitives;
- **PPM004** NumPy array constructors in GF code (``gf``/``matrix``)
  must pass an explicit ``dtype=`` — an implicit ``np.int64`` silently
  breaks the uint8/uint16 table gathers;
- **PPM005** ``np.bitwise_xor`` on regions is reserved to ``gf``/
  ``matrix`` — elsewhere it would bypass the ``mult_XORs`` op counter
  and falsify every cost measurement;
- **PPM006** no bare ``except:`` — it swallows ``SingularMatrixError``
  and ``KeyboardInterrupt`` alike;
- **PPM007** no direct ``ThreadPoolExecutor``/``ProcessPoolExecutor``
  construction outside :mod:`repro.pipeline` — every executor must come
  from the :mod:`repro.pipeline.pool` wrappers so spawn cost is
  accounted and pools can be kept alive across stripes;
- **PPM008** no per-coefficient ``mult_xors`` loops in decoder modules
  (``core``/``pipeline``) — interpreted loops over matrix entries belong
  to :mod:`repro.gf` and :mod:`repro.kernels`; decoders must call the
  ``matrix_apply``/``matrix_chain_apply``/``run_plan`` entry points so
  the compiled backend can take over;
- **PPM009** no blocking calls inside :mod:`repro.service` or
  :mod:`repro.repair` — ``time.sleep``, builtin ``open``, raw sockets
  or subprocesses on the event loop stall *every* in-flight request
  (and the scrub/repair loop runs on that same loop); sleep with
  ``await asyncio.sleep`` and push CPU/IO work off-loop
  (``asyncio.to_thread`` / the pipeline's worker pool).

Each rule is a :class:`LintRule` subclass registered in :data:`RULES`;
``docs/VERIFICATION.md`` documents how to add one.  The CLI entry point
is ``tools/lint_repro.py`` (also wired into CI).
"""

from __future__ import annotations

import ast
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Class-name suffixes that mark a dataclass as "plan-shaped" pure data.
PLAN_SUFFIXES = (
    "Plan",
    "Schedule",
    "Costs",
    "Partition",
    "Group",
    "Split",
    "Scenario",
    "Finding",
    "Entry",
)

#: Packages whose modules are bulk-data hot paths (PPM003 scope).
HOT_PACKAGES = ("gf", "core", "kernels")

#: Packages holding GF coefficient code (PPM004/PPM005 scope).
GF_PACKAGES = ("gf", "matrix", "kernels")

#: Decoder-layer packages that must not hand-roll mult_XORs loops (PPM008).
DECODER_PACKAGES = ("core", "pipeline")

#: Async-serving packages where blocking calls stall the event loop (PPM009).
ASYNC_PACKAGES = ("service", "repair", "cluster")

#: NumPy constructors that default to ``np.int64`` without ``dtype=``.
_NP_CONSTRUCTORS = frozenset(
    {"array", "zeros", "ones", "empty", "full", "arange"}
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.rule}] {self.message}"


#: ``# ppm: noqa`` (suppress everything on the line) or
#: ``# ppm: noqa[PPM010]`` / ``# ppm: noqa[PPM010,PPM012]``.
_NOQA_RE = re.compile(r"#\s*ppm:\s*noqa(?:\[([A-Z0-9, ]+)\])?", re.IGNORECASE)


def noqa_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Per-line suppression map: line -> codes suppressed there.

    ``None`` means a bare ``# ppm: noqa`` — every code is suppressed on
    that line.  Lines without a marker are absent.
    """
    out: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


def filter_noqa(
    findings: Iterable[LintFinding],
    noqa_by_path: dict[str, dict[int, frozenset[str] | None]],
) -> tuple[list[LintFinding], int]:
    """Drop findings whose source line carries a matching noqa marker.

    Returns ``(kept, suppressed_count)``.
    """
    kept: list[LintFinding] = []
    suppressed = 0
    for f in findings:
        codes = noqa_by_path.get(f.path, {}).get(f.line, "absent")
        if codes == "absent" or (codes is not None and f.code not in codes):
            kept.append(f)
        else:
            suppressed += 1
    return kept, suppressed


@dataclass
class ParsedModule:
    """One source file parsed exactly once and shared by every analyzer.

    ``tree`` is None when the file does not parse; ``syntax_finding``
    then carries the PPM999 diagnostic.
    """

    path: Path
    source: str
    tree: ast.Module | None
    noqa: dict[int, frozenset[str] | None] = field(default_factory=dict)
    syntax_finding: LintFinding | None = None


def parse_module(path: Path, source: str | None = None) -> ParsedModule:
    if source is None:
        source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
        bad = None
    except SyntaxError as exc:
        tree = None
        bad = LintFinding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code="PPM999",
            rule="syntax-error",
            message=f"cannot parse module: {exc.msg}",
        )
    return ParsedModule(
        path=path,
        source=source,
        tree=tree,
        noqa=noqa_lines(source),
        syntax_finding=bad,
    )


def parse_modules(paths: Sequence[str]) -> list[ParsedModule]:
    """Parse every ``*.py`` under ``paths`` once, in sorted path order."""
    return [parse_module(p) for p in iter_python_files(paths)]


class LintRule:
    """Base class: subclass, set ``code``/``name``/``explanation``,
    implement :meth:`check`, and register with :func:`register_rule`."""

    code: str = "PPM000"
    name: str = "abstract"
    explanation: str = ""

    def applies_to(self, relpath: Path) -> bool:
        """Whether the rule runs on this module (default: every module)."""
        return True

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(self, relpath: Path, node: ast.AST, message: str) -> LintFinding:
        return LintFinding(
            path=str(relpath),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            rule=self.name,
            message=message,
        )


RULES: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (keyed by code)."""
    rule = cls()
    if rule.code in RULES:
        raise ValueError(f"duplicate lint rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def _in_packages(relpath: Path, packages: tuple[str, ...]) -> bool:
    return any(part in packages for part in relpath.parts[:-1])


def _is_numpy_call(node: ast.Call, names: frozenset[str]) -> str | None:
    """Return the attribute name for ``np.<name>(...)`` calls, else None."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in names
    ):
        return func.attr
    return None


@register_rule
class FutureAnnotationsRule(LintRule):
    code = "PPM001"
    name = "future-annotations"
    explanation = "every module must `from __future__ import annotations`"

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        if not tree.body:
            return
        for stmt in tree.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module == "__future__":
                if any(alias.name == "annotations" for alias in stmt.names):
                    return
        yield self.finding(
            relpath,
            tree.body[0],
            "module is missing `from __future__ import annotations`",
        )


@register_rule
class FrozenPlanDataclassRule(LintRule):
    code = "PPM002"
    name = "frozen-plan-dataclass"
    explanation = (
        "dataclasses named *Plan/*Schedule/*Costs/... are shared pure "
        "data and must be @dataclass(frozen=True)"
    )

    @staticmethod
    def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
        for dec in cls.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return dec
            if isinstance(target, ast.Attribute) and target.attr == "dataclass":
                return dec
        return None

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(PLAN_SUFFIXES):
                continue
            dec = self._dataclass_decorator(node)
            if dec is None:
                continue  # plain classes manage their own invariants
            frozen = isinstance(dec, ast.Call) and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not frozen:
                yield self.finding(
                    relpath,
                    node,
                    f"dataclass {node.name} looks plan-shaped "
                    f"(suffix match on {PLAN_SUFFIXES}) and must be "
                    "declared @dataclass(frozen=True)",
                )


@register_rule
class NoPythonXorLoopRule(LintRule):
    code = "PPM003"
    name = "no-python-xor-loop"
    explanation = (
        "per-element `a[i] ^ b[i]` loops in gf/ or core/ hot paths must "
        "use RegionOps / vectorised numpy instead"
    )

    def applies_to(self, relpath: Path) -> bool:
        return _in_packages(relpath, HOT_PACKAGES)

    @staticmethod
    def _elementwise_xor(node: ast.AST) -> bool:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitXor):
            return isinstance(node.left, ast.Subscript) and isinstance(
                node.right, ast.Subscript
            )
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitXor):
            return isinstance(node.target, ast.Subscript) and isinstance(
                node.value, ast.Subscript
            )
        return False

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if self._elementwise_xor(node):
                    yield self.finding(
                        relpath,
                        node,
                        "Python-level per-element XOR inside a loop; hot "
                        "paths must use RegionOps.mult_xors / "
                        "np.bitwise_xor over whole regions",
                    )


@register_rule
class ExplicitDtypeRule(LintRule):
    code = "PPM004"
    name = "explicit-dtype"
    explanation = (
        "np.array/zeros/ones/empty/full/arange in gf/ or matrix/ must "
        "pass dtype= (implicit int64 breaks GF table gathers)"
    )

    def applies_to(self, relpath: Path) -> bool:
        return _in_packages(relpath, GF_PACKAGES)

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = _is_numpy_call(node, _NP_CONSTRUCTORS)
            if ctor is None:
                continue
            if not any(kw.arg == "dtype" for kw in node.keywords):
                yield self.finding(
                    relpath,
                    node,
                    f"np.{ctor}(...) without an explicit dtype= defaults "
                    "to np.int64; GF code must pin the symbol dtype",
                )


@register_rule
class RegionXorOutsideGfRule(LintRule):
    code = "PPM005"
    name = "region-xor-outside-gf"
    explanation = (
        "np.bitwise_xor outside gf//matrix/ bypasses the mult_XORs "
        "counter and falsifies cost measurements"
    )

    def applies_to(self, relpath: Path) -> bool:
        return not _in_packages(relpath, GF_PACKAGES)

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_numpy_call(
                node, frozenset({"bitwise_xor"})
            ):
                yield self.finding(
                    relpath,
                    node,
                    "np.bitwise_xor on bulk data outside gf//matrix/; "
                    "route region XORs through RegionOps so they are "
                    "counted",
                )


@register_rule
class NoBareExceptRule(LintRule):
    code = "PPM006"
    name = "no-bare-except"
    explanation = "bare `except:` swallows SingularMatrixError and KeyboardInterrupt"

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    relpath,
                    node,
                    "bare `except:`; catch a specific exception type",
                )


@register_rule
class NoRawExecutorRule(LintRule):
    code = "PPM007"
    name = "no-raw-executor"
    explanation = (
        "ThreadPoolExecutor/ProcessPoolExecutor outside repro/pipeline/ "
        "bypasses pool reuse and spawn accounting; use "
        "repro.pipeline.pool wrappers"
    )

    _EXECUTORS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})

    def applies_to(self, relpath: Path) -> bool:
        return "pipeline" not in relpath.parts[:-1]

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in self._EXECUTORS:
                yield self.finding(
                    relpath,
                    node,
                    f"direct {name}(...) construction; use "
                    "repro.pipeline.pool (ThreadWorkerPool / "
                    "ProcessWorkerPool / make_pool) so spawns are "
                    "accounted and pools persist",
                )


@register_rule
class NoMultXorsLoopRule(LintRule):
    code = "PPM008"
    name = "no-mult-xors-loop"
    explanation = (
        "per-coefficient mult_xors loops in core//pipeline/ reimplement "
        "matrix application interpretively; use matrix_apply / "
        "matrix_chain_apply / run_plan so the compiled kernels apply"
    )

    def applies_to(self, relpath: Path) -> bool:
        return _in_packages(relpath, DECODER_PACKAGES)

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "mult_xors"
                ):
                    yield self.finding(
                        relpath,
                        node,
                        "mult_xors call inside a loop in a decoder module; "
                        "express the computation as matrix_apply / "
                        "matrix_chain_apply / run_plan so repro.kernels "
                        "can compile it",
                    )


@register_rule
class NoBlockingInServiceRule(LintRule):
    code = "PPM009"
    name = "no-blocking-in-service"
    explanation = (
        "time.sleep / sync I/O inside repro/service/ or repro/repair/ "
        "blocks the event loop and stalls every in-flight request; use "
        "await asyncio.sleep and offload work via asyncio.to_thread or "
        "the pipeline's worker pool"
    )

    #: ``module.attr`` calls that block the calling thread.
    _BLOCKING_ATTRS = frozenset(
        {
            ("time", "sleep"),
            ("socket", "socket"),
            ("socket", "create_connection"),
            ("os", "system"),
            ("os", "popen"),
        }
    )

    #: any ``<module>.<anything>(...)`` call on these modules blocks.
    _BLOCKING_MODULES = frozenset({"subprocess", "urllib", "requests"})

    def applies_to(self, relpath: Path) -> bool:
        return _in_packages(relpath, ASYNC_PACKAGES)

    def check(self, tree: ast.Module, relpath: Path) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield self.finding(
                    relpath,
                    node,
                    "builtin open(...) is synchronous file I/O on the "
                    "event loop; do file I/O outside repro/service/ or "
                    "off-loop via asyncio.to_thread",
                )
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                pair = (func.value.id, func.attr)
                if pair in self._BLOCKING_ATTRS or func.value.id in self._BLOCKING_MODULES:
                    yield self.finding(
                        relpath,
                        node,
                        f"{pair[0]}.{pair[1]}(...) blocks the event loop; "
                        "use await asyncio.sleep / asyncio streams / "
                        "asyncio.to_thread instead",
                    )


def lint_module(
    module: ParsedModule,
    rules: Iterable[LintRule] | None = None,
    timings: dict[str, float] | None = None,
) -> list[LintFinding]:
    """Run the given (default: all) rules over one pre-parsed module.

    The AST is parsed once per file (in :func:`parse_module`) and shared
    across every rule; ``timings`` accumulates per-rule wall seconds
    keyed by rule code when supplied.
    """
    if module.tree is None:
        assert module.syntax_finding is not None
        return [module.syntax_finding]
    findings: list[LintFinding] = []
    for rule in RULES.values() if rules is None else rules:
        if not rule.applies_to(module.path):
            continue
        t0 = time.perf_counter()
        findings.extend(rule.check(module.tree, module.path))
        if timings is not None:
            timings[rule.code] = (
                timings.get(rule.code, 0.0) + time.perf_counter() - t0
            )
    return findings


def lint_source(
    source: str, relpath: Path, rules: Iterable[LintRule] | None = None
) -> list[LintFinding]:
    """Lint one module's source text with the given (default: all) rules."""
    return lint_module(parse_module(relpath, source), rules)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            # a typo'd path must not become a silent "lint clean" in CI
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def run_lint(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    *,
    modules: Sequence[ParsedModule] | None = None,
    respect_noqa: bool = True,
    timings: dict[str, float] | None = None,
) -> list[LintFinding]:
    """Lint every ``*.py`` under ``paths``; returns all findings sorted.

    ``modules`` lets a front-end that already parsed the files (``ppm
    check`` shares one parse between lint and the race analyzer) skip
    re-reading them; ``respect_noqa`` honours ``# ppm: noqa[...]``
    markers; ``timings`` accumulates per-rule wall seconds.
    """
    active = [
        rule
        for code, rule in sorted(RULES.items())
        if (select is None or code in select) and (ignore is None or code not in ignore)
    ]
    if modules is None:
        modules = parse_modules(paths)
    findings: list[LintFinding] = []
    for module in modules:
        findings.extend(lint_module(module, active, timings))
    if respect_noqa:
        noqa_by_path = {str(m.path): m.noqa for m in modules if m.noqa}
        findings, _suppressed = filter_noqa(findings, noqa_by_path)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI used by ``tools/lint_repro.py`` and CI."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="repo-specific AST lint for the PPM codebase",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--select", help="comma-separated rule codes to run")
    parser.add_argument("--ignore", help="comma-separated rule codes to skip")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="with --list-rules: run the rules over the paths and report "
        "per-rule wall time",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        timings: dict[str, float] = {}
        if args.verbose:
            try:
                run_lint(args.paths or ["src"], timings=timings)
            except FileNotFoundError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        for code, rule in sorted(RULES.items()):
            suffix = (
                f"  [{timings.get(code, 0.0) * 1000:.1f} ms]" if args.verbose else ""
            )
            print(f"{code} {rule.name}: {rule.explanation}{suffix}")
        return 0
    try:
        findings = run_lint(
            args.paths or ["src"],
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for f in findings:
        print(f.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print(f"lint clean ({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
