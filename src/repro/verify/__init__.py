"""Static verification of decode plans, XOR schedules and repo style.

Three analyzers, all purely symbolic (no block data touched):

- :func:`verify_plan` / :func:`assert_plan_valid` — certify a
  :class:`~repro.core.planner.DecodePlan` against the parity-check
  matrix: partition soundness, GF-rank independence, weight equations,
  phase ordering and C1..C4 cost recomputation.
- :func:`verify_schedule` / :func:`assert_schedule_valid` — symbolically
  execute an :class:`~repro.gf.schedule.XorSchedule` over GF(2) symbol
  sets and prove each output equals its bit-matrix row.
- :func:`verify_plan_program` / :func:`assert_program_valid` —
  symbolically execute a compiled :class:`~repro.kernels.RegionProgram`
  over GF(2^w) coefficient vectors and prove its transfer matrix (and
  model op counts) match the :class:`~repro.core.planner.DecodePlan` it
  was lowered from.
- :func:`analyze_program` / :func:`assert_dataflow_valid` — static
  dataflow over a compiled :class:`~repro.kernels.RegionProgram`
  (definite-assignment, aliasing, table bindings; strict mode adds
  liveness: dead stores, unreachable slots, pool slack) — the cheap
  pass gates ``lower_plan`` and every ``ProgramCache`` admission.
- :func:`run_lint` (and ``tools/lint_repro.py``) — per-file AST lint
  enforcing repo invariants PPM001-PPM009 (:mod:`repro.verify.lint`).
- :func:`analyze_races` — whole-program concurrency analysis
  PPM010-PPM013 (:mod:`repro.verify.races`): shared-mutable-state map
  plus execution-context propagation (event loop vs worker threads).

:func:`sweep_code` / :func:`sweep_all` drive the verifiers across the
code registry under random failure scenarios; :func:`run_check` (the
``ppm check`` CLI subcommand) aggregates every analyzer into one gate
with stable exit codes.  ``# ppm: noqa[PPMxxx]`` suppresses a lint or
race finding inline.  See ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

from .check import CheckReport, run_check
from .dataflow import analyze_program, assert_dataflow_valid
from .findings import (
    DataflowVerificationError,
    Finding,
    PlanVerificationError,
    ProgramVerificationError,
    ScheduleVerificationError,
    Severity,
    VerificationFailure,
    VerificationReport,
)
from .lint import RULES, LintFinding, LintRule, register_rule, run_lint
from .plan import assert_plan_valid, verify_plan
from .races import RACE_RULES, analyze_races
from .program import (
    assert_program_valid,
    expected_transfer,
    transfer_matrix,
    verify_plan_program,
)
from .schedule import assert_schedule_valid, verify_schedule
from .sweep import DEFAULT_INSTANCES, SweepResult, iter_scenarios, sweep_all, sweep_code

__all__ = [
    "Finding",
    "Severity",
    "VerificationReport",
    "VerificationFailure",
    "PlanVerificationError",
    "ProgramVerificationError",
    "ScheduleVerificationError",
    "DataflowVerificationError",
    "analyze_program",
    "assert_dataflow_valid",
    "verify_plan",
    "assert_plan_valid",
    "verify_schedule",
    "assert_schedule_valid",
    "verify_plan_program",
    "assert_program_valid",
    "transfer_matrix",
    "expected_transfer",
    "LintRule",
    "LintFinding",
    "RULES",
    "RACE_RULES",
    "register_rule",
    "run_lint",
    "analyze_races",
    "CheckReport",
    "run_check",
    "DEFAULT_INSTANCES",
    "SweepResult",
    "iter_scenarios",
    "sweep_code",
    "sweep_all",
]
