"""Static verification of decode plans, XOR schedules and repo style.

Three analyzers, all purely symbolic (no block data touched):

- :func:`verify_plan` / :func:`assert_plan_valid` — certify a
  :class:`~repro.core.planner.DecodePlan` against the parity-check
  matrix: partition soundness, GF-rank independence, weight equations,
  phase ordering and C1..C4 cost recomputation.
- :func:`verify_schedule` / :func:`assert_schedule_valid` — symbolically
  execute an :class:`~repro.gf.schedule.XorSchedule` over GF(2) symbol
  sets and prove each output equals its bit-matrix row.
- :func:`verify_plan_program` / :func:`assert_program_valid` —
  symbolically execute a compiled :class:`~repro.kernels.RegionProgram`
  over GF(2^w) coefficient vectors and prove its transfer matrix (and
  model op counts) match the :class:`~repro.core.planner.DecodePlan` it
  was lowered from.
- :func:`run_lint` (and ``tools/lint_repro.py``) — AST lint enforcing
  repo invariants (see :mod:`repro.verify.lint`).

:func:`sweep_code` / :func:`sweep_all` drive the verifiers across the
code registry under random failure scenarios; the ``ppm verify`` CLI
subcommand is a thin wrapper over them.  See ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

from .findings import (
    Finding,
    PlanVerificationError,
    ProgramVerificationError,
    ScheduleVerificationError,
    Severity,
    VerificationFailure,
    VerificationReport,
)
from .lint import RULES, LintFinding, LintRule, register_rule, run_lint
from .plan import assert_plan_valid, verify_plan
from .program import (
    assert_program_valid,
    expected_transfer,
    transfer_matrix,
    verify_plan_program,
)
from .schedule import assert_schedule_valid, verify_schedule
from .sweep import DEFAULT_INSTANCES, SweepResult, iter_scenarios, sweep_all, sweep_code

__all__ = [
    "Finding",
    "Severity",
    "VerificationReport",
    "VerificationFailure",
    "PlanVerificationError",
    "ProgramVerificationError",
    "ScheduleVerificationError",
    "verify_plan",
    "assert_plan_valid",
    "verify_schedule",
    "assert_schedule_valid",
    "verify_plan_program",
    "assert_program_valid",
    "transfer_matrix",
    "expected_transfer",
    "LintRule",
    "LintFinding",
    "RULES",
    "register_rule",
    "run_lint",
    "DEFAULT_INSTANCES",
    "SweepResult",
    "iter_scenarios",
    "sweep_code",
    "sweep_all",
]
