"""Whole-program concurrency lint: rules PPM010-PPM013.

The per-file rules in :mod:`repro.verify.lint` cannot see the property
that actually breaks concurrent decoders: *which execution context
touches which mutable state*.  This analyzer builds that map across the
whole source tree in three passes:

1. **Collect** (per module) — every class with its methods, an
   attribute-type table (``self.x = ClassName(...)`` constructor calls,
   parameter annotations), every mutation of instance attributes and
   module globals (assignments, augmented assignments, subscript stores
   and calls of known mutator methods like ``append``/``update``/
   ``move_to_end``), and whether each mutation site sits lexically
   inside a ``with <lock>`` block.
2. **Contexts** (whole program) — a call graph seeded with the two
   concurrent execution contexts of this codebase: the **event loop**
   (every ``async def``) and **worker threads** (callables handed to
   ``asyncio.to_thread`` / ``loop.run_in_executor`` /
   ``threading.Thread(target=...)`` / ``<pool>.submit`` /
   ``<pool>.run_buckets`` / ``<pool>.map``).  Contexts propagate along
   call edges — ``self.method()`` precisely, ``self.attr.method()``
   through the attribute-type table, and otherwise through a
   unique-method-name fallback (suppressed for ubiquitous names like
   ``get``/``close``).  Callables reach a pool through locals too —
   ``fn = a if hedged else b`` and ``worker = make_worker(...)`` — so
   resolution follows simple local aliases (both conditional branches)
   and treats a factory's nested closures as the callable it returned;
   that keeps speculative/hedged execution paths inside the analyzed
   thread context.
3. **Judge** — emit findings:

   - **PPM010** an instance attribute is mutated outside ``__init__``,
     without a lock, in a function reachable from worker-thread context
     (threads overlap each other and the loop by construction), or on
     the loop while threads touch the same attribute.
     ``threading.local()``-typed and lock-typed attributes are exempt.
   - **PPM011** a module global is mutated without a *module-level*
     lock from worker-thread context (an instance lock cannot guard
     state shared across instances).
   - **PPM012** ``await`` while holding a ``threading.Lock`` — the
     loop parks the coroutine with the lock held and every other
     thread (and any other coroutine needing the lock) deadlocks
     behind it.
   - **PPM013** an ``asyncio`` primitive (``Event``/``Queue``/...) is
     called from worker-thread context; asyncio primitives are not
     thread-safe and must be reached via
     ``loop.call_soon_threadsafe``.

Findings are :class:`~repro.verify.lint.LintFinding` records, so the
``ppm check`` front-end renders, sorts and ``# ppm: noqa[PPMxxx]``-
suppresses them exactly like the per-file rules.  The analysis is
deliberately heuristic — it resolves what it can prove and stays
silent elsewhere — so a finding is always worth reading, and an
intentional exception is a one-line suppression with a comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Sequence

from .lint import LintFinding, ParsedModule

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "push",
        "put",
        "put_nowait",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
    }
)

#: Constructor dotted names that make an attribute a lock/guard.
LOCK_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Constructors whose attributes are per-thread by definition (exempt).
THREAD_LOCAL_CTORS = frozenset({"threading.local"})

#: asyncio primitives that must only be touched from the event loop.
ASYNC_PRIMITIVE_CTORS = frozenset(
    {
        "asyncio.Event",
        "asyncio.Queue",
        "asyncio.PriorityQueue",
        "asyncio.LifoQueue",
        "asyncio.Condition",
        "asyncio.Lock",
        "asyncio.Semaphore",
        "asyncio.Future",
    }
)

#: A name "looks like a lock" for guard purposes.
_LOCKISH_RE = re.compile(r"lock|mutex|cond\b|_cond|_cv\b", re.IGNORECASE)

#: Method names too ubiquitous for the unique-name call-graph fallback.
_FALLBACK_DENYLIST = frozenset(
    {
        "get",
        "set",
        "put",
        "pop",
        "push",
        "add",
        "run",
        "map",
        "close",
        "clear",
        "start",
        "stop",
        "wait",
        "open",
        "read",
        "write",
        "copy",
        "update",
        "append",
        "discard",
        "remove",
        "submit",
        "result",
        "cancel",
        "join",
        "items",
        "keys",
        "values",
        "acquire",
        "release",
        "send",
        "record",
        "format",
        "check",
        "snapshot",
        "reset",
        "main",
        "observe",
        "kick",
        "health",
        "metrics",
        "describe",
        "validate",
        "finish",
    }
)

#: Max classes a fallback-resolved name may match before we drop it.
_FALLBACK_MAX_TARGETS = 3

LOOP = "event-loop"
THREAD = "worker-thread"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lockish(dotted: str | None) -> bool:
    return dotted is not None and _LOCKISH_RE.search(dotted) is not None


@dataclass
class _Mutation:
    attr: str  # first attribute segment after ``self``
    chain: str  # full dotted path, for diagnostics
    node: ast.AST
    guarded: bool  # lexically inside any with-lock
    via_call: bool  # mutator-method call vs assignment


@dataclass
class _GlobalMutation:
    name: str
    node: ast.AST
    module_guarded: bool  # inside a with on a *module-level* lock


@dataclass
class _Callee:
    kind: str  # "name" | "selfmeth" | "attrmeth" | "objmeth"
    name: str
    attr: str = ""  # receiver attr for attrmeth / receiver name for objmeth


@dataclass
class _Func:
    name: str
    qualname: str
    path: str
    node: ast.AST
    cls: "_Class | None"
    module: "_Module"
    is_async: bool
    contexts: set[str] = field(default_factory=set)
    calls: list[_Callee] = field(default_factory=list)
    thread_roots: list[_Callee] = field(default_factory=list)
    mutations: list[_Mutation] = field(default_factory=list)
    reads: set[str] = field(default_factory=set)
    global_mutations: list[_GlobalMutation] = field(default_factory=list)
    async_touches: list[tuple[str, ast.AST]] = field(default_factory=list)
    awaits_under_lock: list[tuple[str, ast.AST]] = field(default_factory=list)
    nested: dict[str, "_Func"] = field(default_factory=dict)
    parent: "_Func | None" = None
    #: local name -> possible bindings: ("alias", callee) for plain
    #: rebinds, ("factory", callee) for call results — the hedging
    #: engine's `primary = run_local_with(...)` / `fn = a if h else b`
    #: idiom, so callables handed to a pool through a variable still
    #: resolve to the closures that actually run on the workers
    aliases: dict[str, list[tuple[str, _Callee]]] = field(default_factory=dict)


@dataclass
class _Class:
    name: str
    path: str
    node: ast.ClassDef
    methods: dict[str, _Func] = field(default_factory=dict)
    attr_ctors: dict[str, str] = field(default_factory=dict)  # attr -> dotted ctor

    def lock_attr(self, attr: str) -> bool:
        return self.attr_ctors.get(attr) in LOCK_CTORS or _lockish(attr)

    def local_attr(self, attr: str) -> bool:
        return self.attr_ctors.get(attr) in THREAD_LOCAL_CTORS

    def async_attr(self, attr: str) -> bool:
        return self.attr_ctors.get(attr) in ASYNC_PRIMITIVE_CTORS


@dataclass
class _Module:
    path: str
    tree: ast.Module
    functions: dict[str, _Func] = field(default_factory=dict)
    classes: dict[str, _Class] = field(default_factory=dict)
    globals: set[str] = field(default_factory=set)


# -- pass 1: per-module collection -------------------------------------------


def _ctor_of(value: ast.expr) -> str | None:
    """Dotted constructor name of ``self.x = <value>``, looking through
    ``a if c else b`` / ``a or b`` wrappers for a recognisable Call."""
    if isinstance(value, ast.Call):
        return _dotted(value.func)
    if isinstance(value, ast.IfExp):
        return _ctor_of(value.body) or _ctor_of(value.orelse)
    if isinstance(value, ast.BoolOp):
        for sub in value.values:
            found = _ctor_of(sub)
            if found is not None:
                return found
    return None


def _self_chain(node: ast.AST) -> tuple[str, str] | None:
    """``(first_attr, full_chain)`` for expressions rooted at ``self``.

    ``self.a.b`` -> ("a", "a.b"); subscripts are looked through:
    ``self.a[k]`` -> ("a", "a[...]").
    """
    suffix = ""
    while isinstance(node, ast.Subscript):
        node = node.value
        suffix = "[...]" + suffix
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        chain = ".".join(reversed(parts)) + suffix
        return parts[-1], chain
    return None


def _base_name(node: ast.AST) -> str | None:
    """The bare module-level Name a mutation target is rooted at."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _callee_of(expr: ast.expr) -> _Callee | None:
    if isinstance(expr, ast.Name):
        return _Callee("name", expr.id)
    if isinstance(expr, ast.Attribute):
        value = expr.value
        if isinstance(value, ast.Name):
            if value.id == "self":
                return _Callee("selfmeth", expr.attr)
            return _Callee("objmeth", expr.attr, attr=value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return _Callee("attrmeth", expr.attr, attr=value.attr)
        return _Callee("objmeth", expr.attr)
    return None


def _thread_root_exprs(call: ast.Call) -> list[ast.expr]:
    """Callable arguments this call schedules onto another thread."""
    func = call.func
    dotted = _dotted(func) or ""
    name = func.attr if isinstance(func, ast.Attribute) else dotted
    if name == "to_thread" and call.args:
        return [call.args[0]]
    if name == "run_in_executor" and len(call.args) >= 2:
        return [call.args[1]]
    if name == "Thread" or dotted == "threading.Thread":
        return [kw.value for kw in call.keywords if kw.arg == "target"]
    if name in ("submit", "run_buckets", "map") and isinstance(func, ast.Attribute):
        receiver = _dotted(func.value) or ""
        if "pool" in receiver.lower() or "executor" in receiver.lower():
            return call.args[:1]
    return []


class _FuncVisitor(ast.NodeVisitor):
    """Collects one function's accesses, edges and guard facts."""

    def __init__(self, func: _Func):
        self.func = func
        self.guard_depth = 0  # nested with-lock blocks (any lock)
        self.module_guard_depth = 0  # with on a module-level lock
        self.sync_lock_stack: list[str] = []  # for PPM012, async funcs only

    # -- guards ------------------------------------------------------------

    def _item_lock(self, item: ast.withitem) -> tuple[bool, bool, str]:
        """(is_lock, is_module_level_lock, dotted_name) for one item."""
        expr = item.context_expr
        dotted = _dotted(expr)
        if dotted is None:
            return False, False, ""
        cls = self.func.cls
        attr_typed = False
        chain = _self_chain(expr)
        if cls is not None and chain is not None:
            attr_typed = cls.attr_ctors.get(chain[0]) in LOCK_CTORS
        if not (_lockish(dotted) or attr_typed):
            return False, False, dotted
        module_level = "." not in dotted  # a bare Name, not self.<attr>
        return True, module_level, dotted

    def _visit_with(self, node: ast.With | ast.AsyncWith, is_async: bool) -> None:
        locks = [self._item_lock(item) for item in node.items]
        held = [d for ok, _m, d in locks if ok]
        module_held = any(m for ok, m, _d in locks if ok)
        sync_held = held if (held and not is_async) else []
        self.guard_depth += bool(held)
        self.module_guard_depth += bool(module_held)
        if sync_held and self.func.is_async:
            self.sync_lock_stack.extend(sync_held)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        if sync_held and self.func.is_async:
            del self.sync_lock_stack[-len(sync_held):]
        self.guard_depth -= bool(held)
        self.module_guard_depth -= bool(module_held)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node, is_async=True)

    def visit_Await(self, node: ast.Await) -> None:
        if self.sync_lock_stack:
            self.func.awaits_under_lock.append((self.sync_lock_stack[-1], node))
        self.generic_visit(node)

    # -- nested scopes stay separate functions -----------------------------

    def _visit_nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        nested = _Func(
            name=node.name,
            qualname=f"{self.func.qualname}.<locals>.{node.name}",
            path=self.func.path,
            node=node,
            cls=self.func.cls,
            module=self.func.module,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            parent=self.func,
        )
        self.func.nested[node.name] = nested
        _FuncVisitor(nested).scan(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    # -- accesses ----------------------------------------------------------

    def _record_store(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, node)
            return
        chain = _self_chain(target)
        if chain is not None:
            self.func.mutations.append(
                _Mutation(
                    attr=chain[0],
                    chain=chain[1],
                    node=node,
                    guarded=self.guard_depth > 0,
                    via_call=False,
                )
            )
            return
        base = _base_name(target)
        if base is not None and base in self.func.module.globals:
            # plain rebinding of a local shadows; only flag stores that
            # reach the module object (subscript/attribute, or `global`)
            reaches_module = not isinstance(target, ast.Name) or base in getattr(
                self.func, "_declared_global", ()
            )
            if reaches_module:
                self.func.global_mutations.append(
                    _GlobalMutation(
                        name=base,
                        node=node,
                        module_guarded=self.module_guard_depth > 0,
                    )
                )

    def visit_Global(self, node: ast.Global) -> None:
        declared = set(getattr(self.func, "_declared_global", set()))
        declared.update(node.names)
        self.func._declared_global = declared  # type: ignore[attr-defined]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target, node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._record_alias(node.targets[0].id, node.value)
        self.generic_visit(node)

    def _record_alias(self, name: str, value: ast.expr) -> None:
        """Track what callable a local may be bound to (for thread roots)."""
        if isinstance(value, ast.IfExp):
            self._record_alias(name, value.body)
            self._record_alias(name, value.orelse)
            return
        if isinstance(value, (ast.Name, ast.Attribute)):
            callee = _callee_of(value)
            if callee is not None:
                self.func.aliases.setdefault(name, []).append(("alias", callee))
            return
        if isinstance(value, ast.Call):
            callee = _callee_of(value.func)
            if callee is not None:
                self.func.aliases.setdefault(name, []).append(("factory", callee))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            chain = _self_chain(node)
            if chain is not None:
                self.func.reads.add(chain[0])
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # mutator-method calls on self attrs and module globals
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            chain = _self_chain(func.value)
            if chain is not None:
                self.func.mutations.append(
                    _Mutation(
                        attr=chain[0],
                        chain=f"{chain[1]}.{func.attr}()",
                        node=node,
                        guarded=self.guard_depth > 0,
                        via_call=True,
                    )
                )
            else:
                base = _base_name(func.value)
                if base is not None and base in self.func.module.globals:
                    self.func.global_mutations.append(
                        _GlobalMutation(
                            name=base,
                            node=node,
                            module_guarded=self.module_guard_depth > 0,
                        )
                    )
        # any call on an asyncio-primitive attr (PPM013 evidence)
        if isinstance(func, ast.Attribute):
            chain = _self_chain(func.value)
            if (
                chain is not None
                and self.func.cls is not None
                and self.func.cls.async_attr(chain[0])
            ):
                self.func.async_touches.append((f"{chain[1]}.{func.attr}()", node))
        # call edges + thread roots
        callee = _callee_of(func)
        if callee is not None:
            self.func.calls.append(callee)
        for expr in _thread_root_exprs(node):
            root = _callee_of(expr)
            if root is not None:
                self.func.thread_roots.append(root)
        self.generic_visit(node)

    def scan(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)


_KNOWN_ANNOTATION_RE = re.compile(r"[A-Z]\w+")


def _collect_class(module: _Module, node: ast.ClassDef) -> _Class:
    cls = _Class(name=node.name, path=module.path, node=node)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = _Func(
                name=item.name,
                qualname=f"{node.name}.{item.name}",
                path=module.path,
                node=item,
                cls=cls,
                module=module,
                is_async=isinstance(item, ast.AsyncFunctionDef),
            )
            cls.methods[item.name] = func
    # attribute types: `self.x = Ctor(...)` anywhere in the class, plus
    # `self.x = <param>` where the parameter annotation names a class
    for method in cls.methods.values():
        args = method.node.args
        annotations: dict[str, str] = {}
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                text = ast.unparse(arg.annotation)
                match = _KNOWN_ANNOTATION_RE.search(text)
                if match:
                    annotations[arg.arg] = match.group(0)
        for stmt in ast.walk(method.node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                chain = _self_chain(target)
                if chain is None or "." in chain[1] or "[" in chain[1]:
                    continue
                ctor = _ctor_of(stmt.value)
                if ctor is None and isinstance(stmt.value, ast.Name):
                    ctor = annotations.get(stmt.value.id)
                if ctor is not None:
                    cls.attr_ctors.setdefault(chain[0], ctor)
    return cls


def _collect_module(parsed: ParsedModule) -> _Module:
    assert parsed.tree is not None
    module = _Module(path=str(parsed.path), tree=parsed.tree)
    for stmt in parsed.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module.globals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            module.globals.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = _Func(
                name=stmt.name,
                qualname=stmt.name,
                path=module.path,
                node=stmt,
                cls=None,
                module=module,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
        elif isinstance(stmt, ast.ClassDef):
            module.classes[stmt.name] = _collect_class(module, stmt)
    for func in module.functions.values():
        _FuncVisitor(func).scan(func.node)
    for cls in module.classes.values():
        for method in cls.methods.values():
            _FuncVisitor(method).scan(method.node)
    return module


# -- pass 2: call graph + context propagation --------------------------------


class _Program:
    """The merged whole-program view."""

    def __init__(self, modules: list[_Module]):
        self.modules = modules
        self.classes: dict[str, list[_Class]] = {}
        self.methods_by_name: dict[str, list[_Func]] = {}
        for module in modules:
            for cls in module.classes.values():
                self.classes.setdefault(cls.name, []).append(cls)
            for func in module.functions.values():
                self.methods_by_name.setdefault(func.name, []).append(func)
                for nested in self._iter_nested(func):
                    self.methods_by_name.setdefault(nested.name, []).append(nested)
            for cls in module.classes.values():
                for method in cls.methods.values():
                    self.methods_by_name.setdefault(method.name, []).append(method)
                    for nested in self._iter_nested(method):
                        self.methods_by_name.setdefault(nested.name, []).append(nested)

    @staticmethod
    def _iter_nested(func: _Func):
        for nested in func.nested.values():
            yield nested
            yield from _Program._iter_nested(nested)

    def all_functions(self) -> list[_Func]:
        out: list[_Func] = []
        for module in self.modules:
            stack = list(module.functions.values())
            for cls in module.classes.values():
                stack.extend(cls.methods.values())
            while stack:
                func = stack.pop()
                out.append(func)
                stack.extend(func.nested.values())
        return out

    # -- resolution --------------------------------------------------------

    def _fallback(self, name: str) -> list[_Func]:
        if name in _FALLBACK_DENYLIST or name.startswith("__"):
            return []
        targets = self.methods_by_name.get(name, [])
        if 0 < len(targets) <= _FALLBACK_MAX_TARGETS:
            return targets
        return []

    def resolve(
        self,
        caller: _Func,
        callee: _Callee,
        _seen: frozenset[tuple[int, str]] = frozenset(),
    ) -> list[_Func]:
        if callee.kind == "name":
            # walk the full lexical chain: nested defs first, then local
            # aliases — `fn = a if h else b` resolves to both branches,
            # `primary = make_worker(...)` resolves to the closures the
            # factory defines (they run wherever the result is invoked)
            scope: _Func | None = caller
            while scope is not None:
                if callee.name in scope.nested:
                    return [scope.nested[callee.name]]
                bindings = scope.aliases.get(callee.name)
                key = (id(scope), callee.name)
                if bindings and key not in _seen:
                    seen = _seen | {key}
                    out: list[_Func] = []
                    for kind, inner in bindings:
                        targets = self.resolve(scope, inner, seen)
                        if kind == "alias":
                            out.extend(targets)
                        else:  # factory: its closures are the callable
                            for target in targets:
                                out.extend(target.nested.values())
                    if out:
                        return out
                scope = scope.parent
            mod_fn = caller.module.functions.get(callee.name)
            if mod_fn is not None:
                return [mod_fn]
            return self._fallback(callee.name)
        if callee.kind == "selfmeth":
            if caller.cls is not None and callee.name in caller.cls.methods:
                return [caller.cls.methods[callee.name]]
            return self._fallback(callee.name)
        if callee.kind == "attrmeth":
            if caller.cls is not None:
                ctor = caller.cls.attr_ctors.get(callee.attr)
                if ctor is not None:
                    cls_name = ctor.rsplit(".", 1)[-1]
                    for cls in self.classes.get(cls_name, []):
                        if callee.name in cls.methods:
                            return [cls.methods[callee.name]]
            return self._fallback(callee.name)
        if callee.kind == "objmeth":
            return self._fallback(callee.name)
        return []


def _propagate_contexts(program: _Program) -> None:
    functions = program.all_functions()
    edges: dict[int, list[_Func]] = {}
    for func in functions:
        targets: list[_Func] = []
        for callee in func.calls:
            targets.extend(program.resolve(func, callee))
        edges[id(func)] = targets
        if func.is_async:
            func.contexts.add(LOOP)
    work: list[_Func] = []
    for func in functions:
        for root in func.thread_roots:
            for target in program.resolve(func, root):
                if THREAD not in target.contexts:
                    target.contexts.add(THREAD)
                work.append(target)
        if func.contexts:
            work.append(func)
    while work:
        func = work.pop()
        for target in edges.get(id(func), ()):
            if target.is_async and THREAD in func.contexts and LOOP not in func.contexts:
                continue  # threads cannot call into a coroutine directly
            before = len(target.contexts)
            target.contexts |= func.contexts
            if len(target.contexts) != before:
                work.append(target)


# -- pass 3: findings ---------------------------------------------------------


def _finding(code: str, rule: str, func: _Func, node: ast.AST, message: str) -> LintFinding:
    return LintFinding(
        path=func.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        rule=rule,
        message=message,
    )


def _ctx_names(contexts: set[str]) -> str:
    return "+".join(sorted(contexts)) if contexts else "main"


def _judge_class(program: _Program, cls: _Class) -> list[LintFinding]:
    findings: list[LintFinding] = []
    # union of contexts touching each attr (reads and writes, any method)
    touch_ctx: dict[str, set[str]] = {}
    all_funcs: list[_Func] = []
    stack = list(cls.methods.values())
    while stack:
        func = stack.pop()
        all_funcs.append(func)
        stack.extend(func.nested.values())
    for func in all_funcs:
        for attr in func.reads:
            touch_ctx.setdefault(attr, set()).update(func.contexts)
        for mut in func.mutations:
            touch_ctx.setdefault(mut.attr, set()).update(func.contexts)
    # earliest site in file order gets the (one) finding per attribute,
    # so a `# ppm: noqa` placed on the reported line stays put
    candidates = sorted(
        (
            (getattr(mut.node, "lineno", 1), getattr(mut.node, "col_offset", 0), func, mut)
            for func in all_funcs
            if func.name != "__init__"
            for mut in func.mutations
        ),
        key=lambda item: item[:2],
    )
    reported: set[str] = set()
    for _line, _col, func, mut in candidates:
        if mut.guarded or mut.attr in reported:
            continue
        if cls.lock_attr(mut.attr) or cls.local_attr(mut.attr):
            continue
        attr_union = touch_ctx.get(mut.attr, set())
        concurrent = THREAD in func.contexts or (
            LOOP in func.contexts and THREAD in attr_union
        )
        if not concurrent:
            continue
        reported.add(mut.attr)
        findings.append(
            _finding(
                "PPM010",
                "unguarded-shared-mutation",
                func,
                mut.node,
                f"{cls.name}.{mut.chain} is mutated without a lock in "
                f"{func.qualname} (reachable from {_ctx_names(func.contexts)} "
                f"context; attribute touched from {_ctx_names(attr_union)}); "
                "guard it with a threading.Lock, confine it to one context, "
                "or suppress with `# ppm: noqa[PPM010]` and a comment",
            )
        )
    return findings


def _judge_globals(program: _Program) -> list[LintFinding]:
    findings: list[LintFinding] = []
    # which globals see a thread-context mutation at all
    thread_mutated: set[tuple[str, str]] = set()
    for func in program.all_functions():
        for gmut in func.global_mutations:
            if THREAD in func.contexts:
                thread_mutated.add((func.module.path, gmut.name))
    reported: set[tuple[str, str]] = set()
    for func in program.all_functions():
        for gmut in func.global_mutations:
            key = (func.module.path, gmut.name)
            if gmut.module_guarded or key in reported:
                continue
            if _lockish(gmut.name):
                continue
            concurrent = THREAD in func.contexts or (
                LOOP in func.contexts and key in thread_mutated
            )
            if not concurrent:
                continue
            reported.add(key)
            findings.append(
                _finding(
                    "PPM011",
                    "unguarded-global-mutation",
                    func,
                    gmut.node,
                    f"module global {gmut.name!r} is mutated in {func.qualname} "
                    f"(reachable from {_ctx_names(func.contexts)} context) "
                    "without a module-level lock — an instance lock cannot "
                    "guard state shared across instances",
                )
            )
    return findings


def _judge_await_locks(program: _Program) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for func in program.all_functions():
        for lock_name, node in func.awaits_under_lock:
            findings.append(
                _finding(
                    "PPM012",
                    "await-under-threading-lock",
                    func,
                    node,
                    f"await while holding the synchronous lock {lock_name!r} in "
                    f"{func.qualname}: the coroutine parks with the lock held "
                    "and blocks every thread (and coroutine) needing it; use "
                    "an asyncio.Lock or release before awaiting",
                )
            )
    return findings


def _judge_async_primitives(program: _Program) -> list[LintFinding]:
    findings: list[LintFinding] = []
    reported: set[tuple[str, str]] = set()
    for func in program.all_functions():
        if THREAD not in func.contexts:
            continue
        for touch, node in func.async_touches:
            key = (func.qualname, touch.split("(", 1)[0])
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                _finding(
                    "PPM013",
                    "asyncio-primitive-off-loop",
                    func,
                    node,
                    f"self.{touch} is an asyncio primitive touched from "
                    f"{_ctx_names(func.contexts)} context in {func.qualname}; "
                    "asyncio primitives are not thread-safe — marshal through "
                    "loop.call_soon_threadsafe",
                )
            )
    return findings


#: Rule catalogue for ``--list-rules`` style output (code -> name, text).
RACE_RULES: dict[str, tuple[str, str]] = {
    "PPM010": (
        "unguarded-shared-mutation",
        "instance attribute mutated without a lock while reachable from "
        "worker-thread context (or from the loop while threads touch it)",
    ),
    "PPM011": (
        "unguarded-global-mutation",
        "module global mutated from a concurrent context without a "
        "module-level lock",
    ),
    "PPM012": (
        "await-under-threading-lock",
        "await while holding a synchronous threading lock",
    ),
    "PPM013": (
        "asyncio-primitive-off-loop",
        "asyncio Event/Queue/... called from worker-thread context",
    ),
}


def analyze_races(modules: Sequence[ParsedModule]) -> list[LintFinding]:
    """Run the whole-program concurrency analysis over parsed modules.

    noqa filtering is the caller's job (the ``ppm check`` front-end and
    :func:`run_races` both apply it), so tests can see raw findings.
    """
    collected = [_collect_module(m) for m in modules if m.tree is not None]
    program = _Program(collected)
    _propagate_contexts(program)
    findings: list[LintFinding] = []
    for module in collected:
        for cls in module.classes.values():
            findings.extend(_judge_class(program, cls))
    findings.extend(_judge_globals(program))
    findings.extend(_judge_await_locks(program))
    findings.extend(_judge_async_primitives(program))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def run_races(paths: Sequence[str]) -> list[LintFinding]:
    """Parse ``paths`` and analyze, honouring ``# ppm: noqa`` markers."""
    from .lint import filter_noqa, parse_modules

    modules = parse_modules(paths)
    findings = analyze_races(modules)
    noqa_by_path = {str(m.path): m.noqa for m in modules if m.noqa}
    kept, _suppressed = filter_noqa(findings, noqa_by_path)
    return kept
