"""Static verification of :class:`~repro.core.planner.DecodePlan`.

A decode plan is pure data — matrices and block-id bookkeeping — so every
correctness property the decoder relies on can be checked *before* a
single region op runs, against the parity-check matrix alone:

1. **Partition soundness** — independent groups are pairwise disjoint,
   disjoint from the rest phase, and together recover every faulty block
   exactly once (the paper's Section III-A independence requirement).
2. **Group independence** — each group's ``F_i`` (its rows of ``H``
   restricted to its faulty columns) is square and full-rank over the
   field, i.e. the group really is an independent sub-matrix.
3. **Weight certification** — the stored decode weights satisfy the
   defining equations ``F_i @ W_i == S_i`` (and ``F^-1 @ F == I`` for the
   stored inverses), re-deriving nothing from the planner under test.
4. **Phase ordering** — groups read only true survivors; only the rest
   phase may consume group-recovered blocks (acyclic two-phase order).
5. **Cost certification** — the reported C1..C4 equal the ``u(·)``
   nonzero counts recomputed from the certified matrices, and the chosen
   execution mode is what the policy dictates for those costs.

Checks are structured so a corrupted plan produces a *specific*
diagnostic naming the offending group/coefficient, not a generic
failure; the mutation tests in ``tests/verify`` pin this down.
"""

from __future__ import annotations

from ..codes.base import ErasureCode
from ..matrix import GFMatrix, rank, u
from .findings import PlanVerificationError, Severity, VerificationReport

# imported for type context only at runtime via duck typing; the verifier
# deliberately accepts any object with the DecodePlan attribute surface so
# mutation tests can feed dataclasses.replace()-corrupted copies.


def _check_weight_equation(
    report: VerificationReport,
    h: GFMatrix,
    row_ids: tuple[int, ...],
    faulty_ids: tuple[int, ...],
    survivor_ids: tuple[int, ...],
    weights: GFMatrix,
    context: str,
    check: str,
) -> None:
    """Certify ``F @ weights == S`` for one sub-plan, shape-safely."""
    f_sub = h.take_rows(list(row_ids)).take_columns(list(faulty_ids))
    s_sub = h.take_rows(list(row_ids)).take_columns(list(survivor_ids))
    expected_shape = (len(faulty_ids), len(survivor_ids))
    if weights.shape != expected_shape:
        report.add(
            "plan/weights-shape",
            f"weights are {weights.rows}x{weights.cols} but "
            f"{len(faulty_ids)} faulty blocks x {len(survivor_ids)} survivors "
            f"require {expected_shape[0]}x{expected_shape[1]} "
            "(a row or column was dropped or duplicated)",
            context,
        )
        return
    product = f_sub @ weights
    if product != s_sub:
        diff = product.array != s_sub.array
        bad = [(int(i), int(j)) for i, j in zip(*diff.nonzero())]
        i, j = bad[0]
        report.add(
            check,
            f"F @ W != S at {len(bad)} position(s); first mismatch at "
            f"(row {i}, survivor {survivor_ids[j]}): "
            f"got {int(product.array[i, j])}, expected {int(s_sub.array[i, j])} "
            "(a decode coefficient is corrupt)",
            context,
        )


def _check_inverse(
    report: VerificationReport,
    h: GFMatrix,
    row_ids: tuple[int, ...],
    faulty_ids: tuple[int, ...],
    f_inv: GFMatrix,
    context: str,
    check: str,
) -> None:
    """Certify that a stored ``F^-1`` really inverts ``F``."""
    f_sub = h.take_rows(list(row_ids)).take_columns(list(faulty_ids))
    t = len(faulty_ids)
    if f_inv.shape != (t, t) or f_sub.shape != (t, t):
        report.add(
            "plan/inverse-shape",
            f"F is {f_sub.rows}x{f_sub.cols} and F^-1 is "
            f"{f_inv.rows}x{f_inv.cols}; both must be {t}x{t}",
            context,
        )
        return
    if f_inv @ f_sub != GFMatrix.identity(h.field, t):
        report.add(
            check,
            "stored F^-1 does not invert F (F^-1 @ F != I); "
            "the scenario would decode to wrong bytes",
            context,
        )


def verify_plan(plan, source: ErasureCode | GFMatrix) -> VerificationReport:
    """Statically verify a decode plan against its parity-check matrix.

    ``source`` is the code (its ``H`` is used) or the matrix the plan was
    built from.  Returns a :class:`VerificationReport`; an empty one
    certifies the plan.  No block data is touched.
    """
    h = source.H if isinstance(source, ErasureCode) else source
    report = VerificationReport(subject=f"DecodePlan(faulty={list(plan.faulty_ids)})")

    faulty = tuple(plan.faulty_ids)
    faulty_set = set(faulty)
    if not faulty:
        report.add("plan/empty", "plan recovers no blocks")
        return report
    out_of_range = [b for b in faulty if not (0 <= b < h.cols)]
    if out_of_range:
        report.add(
            "plan/faulty-out-of-range",
            f"faulty block ids {out_of_range} outside H's {h.cols} columns",
        )
        return report

    # -- partition soundness: disjointness and exact-once coverage -------
    recovered_by: dict[int, list[str]] = {}
    for gi, group in enumerate(plan.groups):
        for b in group.faulty_ids:
            recovered_by.setdefault(b, []).append(f"group[{gi}]")
    if plan.rest is not None:
        for b in plan.rest.faulty_ids:
            recovered_by.setdefault(b, []).append("rest")
    for b, owners in sorted(recovered_by.items()):
        if len(owners) > 1:
            report.add(
                "plan/duplicate-recovery",
                f"block {b} is recovered {len(owners)} times, by "
                f"{' and '.join(owners)}; each faulty block must be "
                "recovered exactly once",
            )
    missing = sorted(faulty_set - set(recovered_by))
    if missing:
        report.add(
            "plan/coverage-missing",
            f"faulty block(s) {missing} are recovered by no group and not "
            "by the rest phase; the decode would leave them lost",
        )
    spurious = sorted(set(recovered_by) - faulty_set)
    if spurious:
        report.add(
            "plan/coverage-spurious",
            f"block(s) {spurious} are scheduled for recovery but are not "
            "in the plan's faulty set",
        )

    # -- row provenance: valid, and disjoint across phases ----------------
    seen_rows: dict[int, str] = {}
    phases = [(f"group[{gi}]", g.row_ids) for gi, g in enumerate(plan.groups)]
    if plan.rest is not None:
        phases.append(("rest", plan.rest.row_ids))
    for label, rows in phases:
        bad_rows = [r for r in rows if not (0 <= r < h.rows)]
        if bad_rows:
            report.add(
                "plan/row-out-of-range",
                f"row ids {bad_rows} outside H's {h.rows} rows",
                label,
            )
            continue
        for r in rows:
            if r in seen_rows:
                report.add(
                    "plan/row-shared",
                    f"row {r} of H is used by both {seen_rows[r]} and {label}; "
                    "partition phases must use disjoint rows",
                    label,
                )
            else:
                seen_rows[r] = label

    # -- phase ordering (acyclicity) --------------------------------------
    group_recovered = {b for g in plan.groups for b in g.faulty_ids}
    for gi, group in enumerate(plan.groups):
        leaked = sorted(set(group.survivor_ids) & faulty_set)
        if leaked:
            report.add(
                "plan/phase-order",
                f"group reads block(s) {leaked} which are faulty; groups "
                "run concurrently in phase 1 and may only read true "
                "survivors (recovered blocks may feed H_rest only)",
                f"group[{gi}]",
            )
    if plan.rest is not None:
        allowed = (set(range(h.cols)) - faulty_set) | group_recovered
        illegal = sorted(set(plan.rest.survivor_ids) - allowed)
        if illegal:
            report.add(
                "plan/rest-reads-unrecovered",
                f"rest phase reads block(s) {illegal} which are neither "
                "survivors nor recovered by any group",
                "rest",
            )

    # -- group independence and weight certification ----------------------
    for gi, group in enumerate(plan.groups):
        context = f"group[{gi}]"
        if any(not (0 <= r < h.rows) for r in group.row_ids):
            continue  # already reported above
        t = len(group.faulty_ids)
        f_sub = h.take_rows(list(group.row_ids)).take_columns(list(group.faulty_ids))
        if f_sub.rows != t:
            report.add(
                "plan/group-not-square",
                f"group has {f_sub.rows} rows for {t} faulty blocks; an "
                "independent sub-matrix needs exactly t rows",
                context,
            )
            continue
        got_rank = rank(f_sub)
        if got_rank != t:
            report.add(
                "plan/group-rank",
                f"F_i restricted to faulty blocks {list(group.faulty_ids)} "
                f"has GF-rank {got_rank} < {t}; the group is not an "
                "independent sub-matrix",
                context,
            )
            continue
        _check_weight_equation(
            report,
            h,
            group.row_ids,
            group.faulty_ids,
            group.survivor_ids,
            group.weights,
            context,
            "plan/group-weights",
        )

    # -- rest and traditional sub-plans -----------------------------------
    for label, sub in (("rest", plan.rest), ("traditional", plan.traditional)):
        if sub is None:
            continue
        if any(not (0 <= r < h.rows) for r in sub.row_ids):
            continue
        _check_inverse(
            report, h, sub.row_ids, sub.faulty_ids, sub.f_inv, label,
            f"plan/{label}-inverse",
        )
        s_sub = h.take_rows(list(sub.row_ids)).take_columns(list(sub.survivor_ids))
        if sub.s != s_sub:
            report.add(
                f"plan/{label}-s-matrix",
                "stored S does not match H restricted to the declared "
                "rows and survivors",
                label,
            )
        _check_weight_equation(
            report,
            h,
            sub.row_ids,
            sub.faulty_ids,
            sub.survivor_ids,
            sub.weights,
            label,
            f"plan/{label}-weights",
        )
    if plan.traditional is not None:
        leaked = sorted(set(plan.traditional.survivor_ids) & faulty_set)
        if leaked:
            report.add(
                "plan/phase-order",
                f"traditional plan reads faulty block(s) {leaked}",
                "traditional",
            )

    # -- cost certification (recomputed u(.) counts) -----------------------
    trad = plan.traditional
    group_total = sum(u(g.weights) for g in plan.groups)
    expected = {
        "c1": u(trad.f_inv) + u(trad.s),
        "c2": u(trad.weights),
        "c3": group_total
        + (u(plan.rest.weights) if plan.rest is not None else 0),
        "c4": group_total
        + (
            u(plan.rest.f_inv) + u(plan.rest.s)
            if plan.rest is not None
            else 0
        ),
    }
    for name, want in expected.items():
        got = getattr(plan.costs, name)
        if got != want:
            report.add(
                "plan/cost-mismatch",
                f"reported {name.upper()} = {got} but the u(.) counts of "
                f"the plan's matrices give {want}; the sequence choice "
                "would be made on wrong costs",
                name,
            )
    chosen = plan.costs.choose(plan.policy)
    if plan.mode is not chosen:
        report.add(
            "plan/mode-mismatch",
            f"plan executes {plan.mode.value} but policy "
            f"{plan.policy.value} dictates {chosen.value} for costs "
            f"{plan.costs.as_dict()}",
        )

    # -- advisory: redundant groups ---------------------------------------
    for gi, group in enumerate(plan.groups):
        if not group.faulty_ids:
            report.add(
                "plan/empty-group",
                "group recovers no blocks and wastes a phase-1 worker",
                f"group[{gi}]",
                severity=Severity.WARNING,
            )
    return report


def assert_plan_valid(plan, source: ErasureCode | GFMatrix) -> None:
    """Raise :class:`PlanVerificationError` unless the plan verifies clean."""
    report = verify_plan(plan, source)
    if not report.ok:
        raise PlanVerificationError(report)
