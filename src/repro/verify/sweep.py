"""Scenario sweeps: verify plans and schedules across codes and failures.

``ppm verify`` calls into this module: for every registered code (or one
chosen instance) it draws random erasure patterns up to the code's
decodable tolerance, builds the decode plan for each, and runs the
static plan verifier on it; it then lowers each verified plan to a
compiled :class:`~repro.kernels.RegionProgram` and certifies the
program's GF(2^w) transfer matrix and model op counts against the plan
(:mod:`repro.verify.program`); optionally it also expands the
traditional decode matrix to a bit-matrix, builds both the naive and
pair-reuse XOR schedules, and runs the schedule verifier.  Everything is
symbolic — no stripe data is ever allocated — so a full sweep is fast
enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..codes import available_codes, get_code, is_decodable
from ..codes.base import ErasureCode
from ..core.planner import plan_decode
from ..core.sequences import SequencePolicy
from ..gf.bitmatrix import expand_matrix
from ..gf.schedule import naive_schedule, pair_reuse_schedule
from ..kernels import BASELINE_BACKEND, available_backends, get_backend, lower_encode, lower_plan
from ..kernels.executor import ProgramExecutor
from ..matrix import SingularMatrixError
from .dataflow import analyze_program
from .findings import VerificationReport
from .plan import verify_plan
from .program import verify_plan_program
from .schedule import verify_schedule

#: Small, representative default instance per registry kind, used when a
#: sweep is asked to cover "every registered code" without parameters.
DEFAULT_INSTANCES: dict[str, dict[str, int]] = {
    "sd": {"n": 6, "r": 4, "m": 2, "s": 2},
    "pmds": {"n": 6, "r": 4, "m": 2, "s": 2},
    "lrc": {"k": 8, "l": 2, "g": 2},
    "rs": {"n": 8, "k": 6},
    "evenodd": {"p": 5},
    "rdp": {"p": 5},
    "star": {"p": 5},
}


@dataclass
class SweepResult:
    """Aggregate outcome of one code's scenario sweep."""

    code: str
    scenarios: int = 0
    skipped_undecodable: int = 0
    schedules: int = 0
    programs: int = 0
    encode_programs: int = 0
    backend_checks: int = 0
    report: VerificationReport = field(
        default_factory=lambda: VerificationReport(subject="sweep")
    )

    @property
    def ok(self) -> bool:
        return self.report.ok

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.report.errors)} error(s)"
        extras = ""
        if self.encode_programs:
            extras += f", {self.encode_programs} encode program(s)"
        if self.backend_checks:
            extras += f", {self.backend_checks} backend check(s)"
        return (
            f"{self.code}: {self.scenarios} scenario(s) verified, "
            f"{self.schedules} schedule(s), {self.programs} compiled "
            f"program(s){extras}, "
            f"{self.skipped_undecodable} undecodable draw(s) skipped -> {status}"
        )


def iter_scenarios(
    code: ErasureCode,
    samples: int,
    seed: int,
    max_faults: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield decodable random erasure patterns, 1 fault up to tolerance.

    Fault-count tolerance defaults to the number of parity constraints
    (``H.rows``) — the information-theoretic ceiling; draws whose ``F``
    is rank-deficient are not decodable by *any* planner and are skipped
    by the caller via :func:`~repro.codes.is_decodable`.
    """
    rng = np.random.default_rng(seed)
    h = code.H
    ceiling = h.rows if max_faults is None else min(max_faults, h.rows)
    num_blocks = code.num_blocks
    # deterministic ramp: cycle fault counts 1..ceiling across the samples
    for draw in range(samples):
        t = 1 + draw % ceiling
        picks = rng.choice(num_blocks, size=t, replace=False)
        yield tuple(sorted(int(b) for b in picks))


#: Region length for the numeric backend-equivalence certification:
#: odd, so the paired-gather backends exercise their scalar tail paths.
_BACKEND_CHECK_SYMBOLS = 1021


def _certify_backends(
    field,
    program,
    report: VerificationReport,
    subject: str,
    seed: int,
) -> int:
    """Byte-compare every registered backend against the baseline.

    Runs the compiled program over deterministic pseudo-random regions
    once per registered, supporting backend and demands bit-identical
    outputs.  Returns the number of backend executions performed; any
    divergence (or backend crash) is recorded as an error finding.
    """
    rng = np.random.default_rng(seed)
    inputs = [
        rng.integers(0, 1 << field.w, size=_BACKEND_CHECK_SYMBOLS, dtype=field.dtype)
        for _ in range(program.num_inputs)
    ]
    expected = ProgramExecutor(field, backend=BASELINE_BACKEND).execute(
        program, inputs
    )
    checked = 0
    for name in available_backends():
        if name == BASELINE_BACKEND:
            continue
        if not get_backend(name).supports(field, program):
            continue
        try:
            got = ProgramExecutor(field, backend=name).execute(program, inputs)
        except Exception as exc:  # a crash is a certification failure too
            report.add(
                "sweep/backend-crash",
                f"backend {name!r} raised while executing a certified "
                f"program: {exc}",
                subject,
            )
            continue
        checked += 1
        if not all(np.array_equal(g, e) for g, e in zip(got, expected)):
            report.add(
                "sweep/backend-divergence",
                f"backend {name!r} output differs from the {BASELINE_BACKEND!r} "
                f"baseline on a certified program (w={field.w})",
                subject,
            )
    return checked


def sweep_code(
    code: ErasureCode,
    samples: int = 50,
    seed: int = 2015,
    policies: Sequence[SequencePolicy] = (SequencePolicy.PAPER, SequencePolicy.AUTO),
    check_schedules: bool = True,
    check_programs: bool = True,
    check_backends: bool = False,
    max_faults: int | None = None,
) -> SweepResult:
    """Plan + statically verify random failure scenarios on one code.

    With ``check_backends`` every lowered program (decode scenarios and
    the fused encode program alike) is additionally executed on every
    registered executor backend and byte-compared against the baseline —
    the numeric half of the certification the rest of the sweep does
    symbolically.
    """
    result = SweepResult(code=code.describe())
    result.report.subject = f"sweep of {code.kind}"
    scheduled = 0
    for faulty in iter_scenarios(code, samples, seed, max_faults):
        if not is_decodable(code, faulty):
            result.skipped_undecodable += 1
            continue
        for policy in policies:
            try:
                plan = plan_decode(code, faulty, policy=policy)
            except SingularMatrixError as exc:
                result.report.add(
                    "sweep/planner-rejected-decodable",
                    f"scenario {list(faulty)} is decodable (F full rank) "
                    f"but the planner raised: {exc}",
                    f"faulty={list(faulty)}",
                )
                continue
            sub = verify_plan(plan, code)
            if sub.findings:
                sub.subject = f"faulty={list(faulty)} policy={policy.value}"
                result.report.merge(sub)
            if check_programs and sub.ok:
                # lower the verified plan and certify the compiled program
                compiled = lower_plan(code.field, plan)
                sub = verify_plan_program(compiled, code.field, plan)
                if sub.findings:
                    sub.subject = (
                        f"program faulty={list(faulty)} policy={policy.value}"
                    )
                    result.report.merge(sub)
                # strict static dataflow: liveness audits (dead stores,
                # unreachable slots, pool slack) on top of the cheap
                # admission checks lower_plan already ran
                sub = analyze_program(compiled.program, strict=True)
                if sub.findings:
                    sub.subject = (
                        f"dataflow faulty={list(faulty)} policy={policy.value}"
                    )
                    result.report.merge(sub)
                if check_backends:
                    result.backend_checks += _certify_backends(
                        code.field,
                        compiled.program,
                        result.report,
                        f"faulty={list(faulty)} policy={policy.value}",
                        seed,
                    )
                result.programs += 1
        result.scenarios += 1
        if check_schedules and scheduled < 2:
            # expand the traditional decode matrix and certify both
            # schedule constructions against it (2 scenarios is plenty:
            # schedule bugs are construction bugs, not data-dependent)
            plan = plan_decode(code, faulty, policy=SequencePolicy.PAPER)
            bm = expand_matrix(code.field, plan.traditional.weights.array)
            for name, build in (
                ("naive", naive_schedule),
                ("pair_reuse", pair_reuse_schedule),
            ):
                sub = verify_schedule(build(bm), bm)
                if sub.findings:
                    sub.subject = f"{name} schedule, faulty={list(faulty)}"
                    result.report.merge(sub)
                result.schedules += 1
            scheduled += 1
    if check_programs:
        # the fused encode program gets the same certification a decode
        # program gets: transfer-matrix proof against its plan, strict
        # dataflow, and (opted in) numeric backend equivalence
        for policy in policies:
            plan = plan_decode(code, code.parity_block_ids, policy=policy)
            compiled = lower_encode(code.field, code, policy=policy)
            sub = verify_plan_program(compiled, code.field, plan)
            if sub.findings:
                sub.subject = f"encode program policy={policy.value}"
                result.report.merge(sub)
            sub = analyze_program(compiled.program, strict=True)
            if sub.findings:
                sub.subject = f"encode dataflow policy={policy.value}"
                result.report.merge(sub)
            if check_backends:
                result.backend_checks += _certify_backends(
                    code.field,
                    compiled.program,
                    result.report,
                    f"encode policy={policy.value}",
                    seed,
                )
            result.encode_programs += 1
    return result


def sweep_all(
    samples: int = 50,
    seed: int = 2015,
    check_schedules: bool = True,
    check_programs: bool = True,
    check_backends: bool = False,
    instances: Mapping[str, dict[str, int]] | None = None,
) -> list[SweepResult]:
    """Run :func:`sweep_code` over every registered code kind."""
    chosen = DEFAULT_INSTANCES if instances is None else instances
    results: list[SweepResult] = []
    for kind in available_codes():
        params = chosen.get(kind)
        if params is None:
            continue  # custom-registered kind without a default instance
        code = get_code(kind, **params)
        results.append(
            sweep_code(
                code,
                samples=samples,
                seed=seed,
                check_schedules=check_schedules,
                check_programs=check_programs,
                check_backends=check_backends,
            )
        )
    return results
