"""``ppm check``: the one static-analysis gate for this repository.

Aggregates every static analyzer the repo has grown into a single
front-end with one report and stable exit codes:

- **lint** — the per-file AST rules PPM001-PPM009
  (:mod:`repro.verify.lint`), sharing one parse per file;
- **races** — the whole-program concurrency analysis PPM010-PPM013
  (:mod:`repro.verify.races`), run over the *same* parsed modules;
- **sweeps** (``--strict``) — plan verification, compiled-program
  transfer-matrix certification and strict IR dataflow
  (:mod:`repro.verify.sweep` + :mod:`repro.verify.dataflow`) across
  every registered code under random failure scenarios.

Exit codes (stable, scripted against by CI):

- ``0`` — clean: no unsuppressed findings;
- ``1`` — findings reported (lint, races, or sweep errors);
- ``2`` — the checker itself failed (bad paths, internal error).

Both output formats render the same :class:`CheckReport`: ``--json``
emits one machine-readable object; the default human format groups
findings per analyzer.  ``# ppm: noqa[PPMxxx]`` inline suppression is
honoured for lint and race findings (suppression counts are reported so
a silently-suppressed repo is still visible in review).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Sequence

from .lint import (
    RULES,
    LintFinding,
    ParsedModule,
    filter_noqa,
    parse_modules,
    run_lint,
)
from .races import RACE_RULES, analyze_races

#: Exit statuses (see module docstring).  Kept as named constants so
#: tests and CI scripts never hard-code magic numbers.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


@dataclass
class CheckReport:
    """Everything one ``ppm check`` run found, in one place."""

    paths: list[str]
    strict: bool
    lint: list[LintFinding] = field(default_factory=list)
    races: list[LintFinding] = field(default_factory=list)
    sweep_errors: list[str] = field(default_factory=list)
    sweep_warnings: list[str] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    scenarios: int = 0
    programs: int = 0
    seconds: float = 0.0

    @property
    def findings(self) -> int:
        return len(self.lint) + len(self.races) + len(self.sweep_errors)

    @property
    def ok(self) -> bool:
        return self.findings == 0

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.ok else EXIT_FINDINGS

    def to_dict(self) -> dict:
        def fd(f: LintFinding) -> dict:
            return {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "rule": f.rule,
                "message": f.message,
            }

        return {
            "paths": self.paths,
            "strict": self.strict,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "files": self.files,
            "suppressed": self.suppressed,
            "lint": [fd(f) for f in self.lint],
            "races": [fd(f) for f in self.races],
            "sweeps": {
                "scenarios": self.scenarios,
                "programs": self.programs,
                "errors": self.sweep_errors,
                "warnings": self.sweep_warnings,
            },
            "seconds": round(self.seconds, 3),
        }

    def format_human(self) -> str:
        lines: list[str] = []
        for title, findings in (("lint", self.lint), ("races", self.races)):
            if findings:
                lines.append(f"{title}: {len(findings)} finding(s)")
                lines.extend(f"  {f.format()}" for f in findings)
        if self.sweep_errors:
            lines.append(f"sweeps: {len(self.sweep_errors)} error(s)")
            lines.extend(f"  {msg}" for msg in self.sweep_errors)
        if self.sweep_warnings:
            lines.append(f"sweep warnings: {len(self.sweep_warnings)}")
            lines.extend(f"  {msg}" for msg in self.sweep_warnings)
        verdict = "clean" if self.ok else f"{self.findings} finding(s)"
        swept = (
            f", {self.scenarios} scenario(s)/{self.programs} program(s) swept"
            if self.strict
            else ""
        )
        suppressed = f", {self.suppressed} suppressed" if self.suppressed else ""
        lines.append(
            f"ppm check: {verdict} across {self.files} file(s)"
            f"{swept}{suppressed} in {self.seconds:.1f}s"
        )
        return "\n".join(lines)


def run_check(
    paths: Sequence[str],
    *,
    strict: bool = False,
    samples: int = 10,
    seed: int = 2015,
    modules: Sequence[ParsedModule] | None = None,
) -> CheckReport:
    """Run every analyzer over ``paths`` and aggregate one report.

    ``strict`` adds the scenario sweeps (plan + program + strict
    dataflow verification); without it the gate is purely syntactic and
    fast enough for a pre-commit hook.  ``modules`` lets tests inject
    already-parsed sources.
    """
    t0 = time.perf_counter()
    report = CheckReport(paths=list(paths), strict=strict)
    if modules is None:
        modules = parse_modules(paths)
    report.files = len(modules)
    noqa_by_path = {str(m.path): m.noqa for m in modules if m.noqa}

    report.lint = run_lint(paths, modules=modules)
    race_findings = analyze_races(modules)
    report.races, suppressed_races = filter_noqa(race_findings, noqa_by_path)
    # run_lint already filtered; recompute its suppression count so the
    # report shows everything hidden by noqa markers
    raw_lint = run_lint(paths, modules=modules, respect_noqa=False)
    report.suppressed = (len(raw_lint) - len(report.lint)) + suppressed_races

    if strict:
        from .sweep import sweep_all  # deferred: pulls in codes + kernels

        for result in sweep_all(samples=samples, seed=seed):
            report.scenarios += result.scenarios
            report.programs += result.programs
            for finding in result.report.errors:
                report.sweep_errors.append(f"{result.code}: {finding.format()}")
            for finding in result.report.warnings:
                report.sweep_warnings.append(f"{result.code}: {finding.format()}")
    report.seconds = time.perf_counter() - t0
    return report


def list_rules() -> str:
    """The combined rule catalogue (per-file lint + whole-program races)."""
    lines = [
        f"{code} {rule.name}: {rule.explanation}"
        for code, rule in sorted(RULES.items())
    ]
    lines.extend(
        f"{code} {name}: {text} [whole-program]"
        for code, (name, text) in sorted(RACE_RULES.items())
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ppm check", description="repo static-analysis gate"
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also sweep plan/program/dataflow verification across all codes",
    )
    parser.add_argument("--samples", type=int, default=10, help="sweep scenarios per code")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument("--list-rules", action="store_true", help="print the catalogue")
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return EXIT_CLEAN
    try:
        report = run_check(
            args.paths or ["src"],
            strict=args.strict,
            samples=args.samples,
            seed=args.seed,
        )
    except FileNotFoundError as exc:
        print(f"ppm check: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_human())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
