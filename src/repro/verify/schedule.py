"""Static verification of :class:`~repro.gf.schedule.XorSchedule`.

An XOR schedule is a straight-line program over a packet pool; over
GF(2) a packet's value is fully described by the *set of input packets
whose XOR it holds*.  The verifier executes the schedule symbolically on
those sets — no packet bytes involved — and proves that every output
slot ends up holding exactly its intended bit-matrix row:

- ``output i  ==  { j : bitmatrix[i, j] == 1 }``

Along the way it flags structural defects:

- reads of never-written pool slots (use-before-def);
- writes that clobber input packets;
- ops whose result can never reach an output (dead code, via a backward
  liveness pass);
- XORs that cannot change their destination (empty source, self-XOR).

Because the symbol-set semantics *is* the GF(2) semantics, a clean
report is a proof that :func:`~repro.gf.schedule.execute_schedule`
computes the same bits as the naive row-by-row evaluation, for every
possible packet content.
"""

from __future__ import annotations

import numpy as np

from ..gf.schedule import XorSchedule
from .findings import ScheduleVerificationError, Severity, VerificationReport


def _symbolic_run(
    schedule: XorSchedule, report: VerificationReport
) -> list[frozenset[int] | None]:
    """Execute the ops over symbol sets, reporting structural defects."""
    pool: list[frozenset[int] | None] = [None] * schedule.pool_size
    for i in range(min(schedule.num_inputs, schedule.pool_size)):
        pool[i] = frozenset([i])
    for oi, (kind, dst, src) in enumerate(schedule.ops):
        context = f"op[{oi}]"
        if kind not in ("copy", "zero", "xor"):
            report.add(
                "schedule/unknown-op",
                f"unknown op kind {kind!r}; executors would raise mid-decode",
                context,
            )
            continue
        if not (0 <= dst < schedule.pool_size):
            report.add(
                "schedule/slot-out-of-range",
                f"destination slot {dst} outside pool of {schedule.pool_size}",
                context,
            )
            continue
        if dst < schedule.num_inputs:
            report.add(
                "schedule/input-overwrite",
                f"op {kind!r} writes slot {dst}, which is input packet "
                f"{dst}; schedules must never clobber their inputs",
                context,
            )
            continue
        if kind == "zero":
            pool[dst] = frozenset()
            continue
        if not (0 <= src < schedule.pool_size):
            report.add(
                "schedule/slot-out-of-range",
                f"source slot {src} outside pool of {schedule.pool_size}",
                context,
            )
            continue
        value = pool[src]
        if value is None:
            report.add(
                "schedule/use-before-def",
                f"op {kind!r} reads slot {src} before anything wrote it; "
                "the executor would XOR uninitialised memory",
                context,
            )
            continue
        if kind == "copy":
            pool[dst] = value
            continue
        # xor
        if src == dst:
            report.add(
                "schedule/self-xor",
                f"slot {dst} XORed into itself always yields zero",
                context,
            )
            pool[dst] = frozenset()
            continue
        current = pool[dst]
        if current is None:
            report.add(
                "schedule/use-before-def",
                f"xor accumulates into slot {dst} before it was "
                "initialised with copy or zero",
                context,
            )
            pool[dst] = value
            continue
        if not value:
            report.add(
                "schedule/redundant-xor",
                f"xor of slot {src} (symbolically zero) into {dst} can "
                "never change it",
                context,
                severity=Severity.WARNING,
            )
        pool[dst] = current ^ value
    return pool


def _dead_ops(schedule: XorSchedule) -> list[int]:
    """Indices of ops whose effect can never reach an output (backward pass)."""
    live = set(schedule.outputs)
    dead: list[int] = []
    for oi in range(len(schedule.ops) - 1, -1, -1):
        kind, dst, src = schedule.ops[oi]
        if kind not in ("copy", "zero", "xor") or not (0 <= dst < schedule.pool_size):
            continue  # structurally broken; reported elsewhere
        if dst not in live:
            dead.append(oi)
            continue
        if kind in ("copy", "zero"):
            live.discard(dst)  # fully redefines dst: earlier writes are dead
        if kind in ("copy", "xor") and 0 <= src < schedule.pool_size:
            live.add(src)
    dead.reverse()
    return dead


def verify_schedule(
    schedule: XorSchedule, bitmatrix: np.ndarray
) -> VerificationReport:
    """Prove a schedule computes ``bitmatrix`` over GF(2), or say why not.

    Returns a report; an empty one certifies that every output packet
    equals the XOR of the input packets selected by its bit-matrix row,
    for all possible input contents.
    """
    bm = np.asarray(bitmatrix)
    report = VerificationReport(
        subject=f"XorSchedule({len(schedule.ops)} ops, {bm.shape[0]} outputs)"
    )
    if bm.ndim != 2:
        report.add("schedule/bad-bitmatrix", f"bitmatrix must be 2-D, got {bm.ndim}-D")
        return report
    rows, cols = bm.shape
    if schedule.num_inputs != cols:
        report.add(
            "schedule/input-arity",
            f"schedule declares {schedule.num_inputs} inputs but the "
            f"bit-matrix has {cols} columns",
        )
        return report
    if len(schedule.outputs) != rows:
        report.add(
            "schedule/output-arity",
            f"schedule produces {len(schedule.outputs)} outputs but the "
            f"bit-matrix has {rows} rows",
        )
        return report
    if schedule.pool_size < schedule.num_inputs:
        report.add(
            "schedule/pool-too-small",
            f"pool of {schedule.pool_size} cannot hold {schedule.num_inputs} inputs",
        )
        return report

    pool = _symbolic_run(schedule, report)

    for i, slot in enumerate(schedule.outputs):
        if not (0 <= slot < schedule.pool_size):
            report.add(
                "schedule/slot-out-of-range",
                f"output {i} maps to slot {slot} outside the pool",
                f"output[{i}]",
            )
            continue
        value = pool[slot]
        if value is None:
            report.add(
                "schedule/output-undefined",
                f"output {i} reads slot {slot} which no op ever wrote",
                f"output[{i}]",
            )
            continue
        want = frozenset(int(c) for c in np.nonzero(bm[i])[0])
        if value != want:
            missing = sorted(want - value)
            extra = sorted(value - want)
            detail = []
            if missing:
                detail.append(f"missing inputs {missing}")
            if extra:
                detail.append(f"spurious inputs {extra}")
            report.add(
                "schedule/output-mismatch",
                f"output {i} computes XOR of inputs "
                f"{sorted(value)} but its bit-matrix row requires "
                f"{sorted(want)} ({'; '.join(detail)})",
                f"output[{i}]",
            )

    for oi in _dead_ops(schedule):
        kind, dst, _src = schedule.ops[oi]
        report.add(
            "schedule/dead-op",
            f"op {kind!r} writing slot {dst} never reaches any output "
            "and wastes work",
            f"op[{oi}]",
            severity=Severity.WARNING,
        )
    return report


def assert_schedule_valid(schedule: XorSchedule, bitmatrix: np.ndarray) -> None:
    """Raise :class:`ScheduleVerificationError` unless the schedule verifies."""
    report = verify_schedule(schedule, bitmatrix)
    if not report.ok:
        raise ScheduleVerificationError(report)
