"""Static dataflow verification of :class:`~repro.kernels.RegionProgram`.

The compiled IR is straight-line code over a flat slot pool, so its
dataflow facts are decidable by two linear passes — no execution, no
block data.  This module *proves* the structural half of what
:func:`repro.verify.verify_plan_program` proves semantically, and it is
cheap enough to run on **every** compiled program at admission time:

- **no slot is read before it is written** (``dataflow/uninit-read``) —
  an uninitialised read makes the executor consume stale scratch from a
  previous chunk/program, producing silently wrong bytes;
- **no instruction's dst aliases a src it still needs**
  (``dataflow/aliasing``) — the executor's ``np.take(..., out=dst)``
  overwrites ``dst`` before the XOR reads it, so ``dst == src`` inside
  one instruction corrupts the source operand mid-instruction;
- **every multiply constant has a table binding**
  (``dataflow/missing-binding``) — ``MUL``/``MULXOR`` constants must lie
  in ``[2, 2^w)``: 0/1 have no table row (they must strength-reduce to
  ``ZERO``/``COPY``/``XOR``) and ``const >= 2^w`` indexes past the
  multiplication table;
- **accumulates hit defined slots** (``dataflow/accumulate-undefined``)
  and **every output is defined** (``dataflow/undefined-output``);
- **slot ids stay inside the pool** (``dataflow/slot-range``) and
  **opcodes are known** (``dataflow/unknown-opcode``).

Strict mode adds a backward liveness pass for the audits that need
whole-program facts (run inside ``ppm verify`` / ``ppm check`` sweeps,
not on the compile hot path):

- **dead stores** (``dataflow/dead-store``, warning) — an instruction
  whose destination value is never read and never output; the optimiser
  (:func:`repro.kernels.optimize.eliminate_dead`) should have removed
  it;
- **unreachable slots** (``dataflow/unreachable-slot``, warning) — pool
  ids no instruction or output ever touches, i.e. wasted scratch the
  slot compactor should have reclaimed (unused *inputs* are reported
  separately as ``dataflow/unused-input`` since they change the
  program's I/O contract, not just its footprint);
- **pool/peak-live audit** (``dataflow/pool-slack``, warning) — the
  slot pool must be exactly inputs + outputs + the peak number of
  simultaneously-live temporaries; slack means
  :func:`repro.kernels.optimize.compact_slots` failed to recycle.

Cheap mode is one forward O(instructions) pass; measured against
``lower_plan`` it adds well under the 5% compile-time budget (see
``tests/verify/test_dataflow.py``).

Entry points mirror the other verifiers: :func:`analyze_program`
returns a :class:`~repro.verify.findings.VerificationReport`,
:func:`check_program` raises :class:`DataflowVerificationError` on the
first bad program (the admission-time wrapper).
"""

from __future__ import annotations

from ..kernels.ir import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_NAMES,
    OP_XOR,
    OP_ZERO,
    RegionProgram,
)
from .findings import DataflowVerificationError, Severity, VerificationReport

#: Opcodes that fully (re)define their destination slot.
_DEFINING_OPS = frozenset({OP_ZERO, OP_COPY, OP_MUL})

#: Opcodes that read their src operand.
_READING_OPS = frozenset({OP_COPY, OP_XOR, OP_MUL, OP_MULXOR})

_KNOWN_OPS = frozenset({OP_ZERO, OP_COPY, OP_XOR, OP_MUL, OP_MULXOR})


def _op_name(op: int) -> str:
    return OP_NAMES[op] if 0 <= op < len(OP_NAMES) else f"op{op}"


def analyze_program(
    program: RegionProgram, strict: bool = False
) -> VerificationReport:
    """Statically verify a program's dataflow; see the module docstring.

    ``strict=False`` is the cheap admission-time mode (single forward
    pass, ERROR findings only); ``strict=True`` adds the backward
    liveness audits, reported as WARNINGs so the semantic sweeps can
    keep distinguishing "wrong bytes" from "wasted work".
    """
    report = VerificationReport(
        subject=f"dataflow of {program.label or 'program'}"
    )
    order = 1 << program.w
    pool = program.pool_size
    if program.num_inputs < 1:
        report.add(
            "dataflow/no-inputs",
            "a region program needs at least one input slot",
        )
        return report
    if pool < program.num_inputs:
        report.add(
            "dataflow/slot-range",
            f"pool_size {pool} smaller than num_inputs {program.num_inputs}",
        )
        return report

    defined = bytearray(pool)
    for slot in range(program.num_inputs):
        defined[slot] = 1

    # -- forward pass: the cheap admission-time invariants -----------------
    for index, (op, dst, src, const) in enumerate(program.instructions):
        where = f"inst[{index}]({_op_name(op)})"
        if op not in _KNOWN_OPS:
            report.add(
                "dataflow/unknown-opcode", f"opcode {op} is not in the ISA", where
            )
            continue
        if not (program.num_inputs <= dst < pool):
            report.add(
                "dataflow/slot-range",
                f"dst {dst} outside the temp/output range "
                f"[{program.num_inputs}, {pool})",
                where,
            )
            continue
        if op in _READING_OPS:
            if not (0 <= src < pool):
                report.add(
                    "dataflow/slot-range", f"src {src} outside [0, {pool})", where
                )
                continue
            if src == dst:
                report.add(
                    "dataflow/aliasing",
                    f"dst {dst} aliases src {src}: the executor overwrites "
                    "dst before the instruction finishes reading src",
                    where,
                )
            elif not defined[src]:
                report.add(
                    "dataflow/uninit-read",
                    f"src {src} is read before any instruction defines it "
                    "(the executor would consume stale scratch)",
                    where,
                )
        if op in (OP_XOR, OP_MULXOR) and not defined[dst]:
            report.add(
                "dataflow/accumulate-undefined",
                f"{_op_name(op)} accumulates into undefined slot {dst}",
                where,
            )
        if op in (OP_MUL, OP_MULXOR) and not (2 <= const < order):
            report.add(
                "dataflow/missing-binding",
                f"constant {const} has no w={program.w} table binding "
                f"(must lie in [2, {order}); 0/1 lower to zero/copy/xor)",
                where,
            )
        defined[dst] = 1

    seen_outputs = set()
    for position, slot in enumerate(program.outputs):
        ctx = f"output[{position}]"
        if not (0 <= slot < pool):
            report.add(
                "dataflow/slot-range", f"output slot {slot} outside [0, {pool})", ctx
            )
            continue
        if not defined[slot]:
            report.add(
                "dataflow/undefined-output",
                f"output slot {slot} is never defined",
                ctx,
            )
        if slot in seen_outputs:
            report.add(
                "dataflow/duplicate-output",
                f"slot {slot} appears more than once in the output list",
                ctx,
            )
        seen_outputs.add(slot)

    if not strict or not report.ok:
        return report

    # -- backward pass: liveness audits (strict mode only) -----------------
    live = set(program.outputs)
    peak_temps = _count_live_temps(program, live)
    touched = bytearray(pool)
    for slot in program.outputs:
        touched[slot] = 1
    dead_stores: list[tuple[int, int, int]] = []
    for index in range(len(program.instructions) - 1, -1, -1):
        op, dst, src, _const = program.instructions[index]
        touched[dst] = 1
        if src >= 0:
            touched[src] = 1
        if dst not in live:
            dead_stores.append((index, op, dst))
            continue
        if op in _DEFINING_OPS:
            live.discard(dst)
        if src >= 0:
            live.add(src)
        # While this instruction executes, a slot allocator must hold dst
        # *and* every slot live before it (src is freed only after its
        # last read completes), so peak demand is live_before ∪ {dst}.
        peak_temps = max(peak_temps, _count_live_temps(program, live | {dst}))
    for index, op, dst in reversed(dead_stores):
        report.add(
            "dataflow/dead-store",
            f"value written to slot {dst} is never read and never output "
            "(eliminate_dead should have dropped it)",
            f"inst[{index}]({_op_name(op)})",
            severity=Severity.WARNING,
        )

    unused_inputs = [
        slot for slot in range(program.num_inputs) if not touched[slot]
    ]
    if unused_inputs:
        report.add(
            "dataflow/unused-input",
            f"input slot(s) {unused_inputs} are never read; the program's "
            "I/O contract claims survivors it does not use",
            severity=Severity.WARNING,
        )
    unreachable = [
        slot for slot in range(program.num_inputs, pool) if not touched[slot]
    ]
    if unreachable:
        report.add(
            "dataflow/unreachable-slot",
            f"pool slot(s) {unreachable} are never touched by any "
            "instruction or output (wasted scratch)",
            severity=Severity.WARNING,
        )

    # pool audit: inputs keep their ids, outputs get dedicated buffers,
    # and the compactor recycles temporaries — so a fully-compacted pool
    # is exactly inputs + outputs + peak simultaneously-live temps.
    expected_pool = program.num_inputs + len(set(program.outputs)) + peak_temps
    if pool > expected_pool:
        report.add(
            "dataflow/pool-slack",
            f"pool has {pool} slots but peak liveness needs only "
            f"{expected_pool} ({program.num_inputs} inputs + "
            f"{len(set(program.outputs))} outputs + {peak_temps} peak live "
            "temps); compact_slots left slack",
            severity=Severity.WARNING,
        )
    return report


def _count_live_temps(program: RegionProgram, live: set[int]) -> int:
    """Live slots that are neither inputs nor outputs (recyclable)."""
    outputs = set(program.outputs)
    return sum(
        1 for slot in live if slot >= program.num_inputs and slot not in outputs
    )


def check_program(program: RegionProgram) -> RegionProgram:
    """Cheap admission gate: raise on any dataflow ERROR, return the
    program unchanged otherwise (composes as a pass-through)."""
    report = analyze_program(program, strict=False)
    if not report.ok:
        raise DataflowVerificationError(report)
    return program


def assert_dataflow_valid(program: RegionProgram, strict: bool = True) -> None:
    """Raise :class:`DataflowVerificationError` unless the program's
    dataflow verifies (strict by default; warnings do not raise)."""
    report = analyze_program(program, strict=strict)
    if not report.ok:
        raise DataflowVerificationError(report)
