"""Symbolic verification of compiled :class:`~repro.kernels.RegionProgram`.

A compiled program is straight-line code over region slots, so its full
semantics collapse to one GF(2^w) *transfer matrix*: output ``i`` of the
program equals ``XOR_j T[i, j] * input_j``.  :func:`transfer_matrix`
recovers ``T`` by symbolically executing the instruction stream over
coefficient vectors (input ``j`` starts as the ``j``-th unit vector;
XOR is vector addition over the field, MUL scales by the instruction
constant).  No stripe data is touched and every optimisation the
compiler performed — pair sharing, dead-code elimination, slot reuse —
is checked *semantically* rather than trusted.

:func:`verify_plan_program` certifies a fused
:class:`~repro.kernels.PlanProgram` against the
:class:`~repro.core.planner.DecodePlan` it was lowered from:

1. **Structure** — the IR invariants (:meth:`RegionProgram.validate`)
   and the field width match.
2. **I/O contract** — the program reads exactly the plan's true
   survivors and writes exactly ``plan.faulty_ids`` in order.
3. **Transfer equality** — ``T`` equals the matrix the plan's own
   stages dictate (group weights feeding the rest stage, or the
   traditional ``W`` / ``F^-1 S`` per the execution mode), recomputed
   here from the plan's matrices without consulting the lowering.
4. **Op accounting** — the program's *model* counts
   (``mult_xors`` / ``xor_only``) equal the nonzero/one coefficient
   counts of the applied matrices, so a compiled decode books exactly
   what the interpreted path would (and ``mult_xors`` matches
   ``plan.predicted_cost``).
"""

from __future__ import annotations

import numpy as np

from ..gf.field import GF
from ..kernels import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    PlanProgram,
    RegionProgram,
)
from .findings import ProgramVerificationError, VerificationReport


def transfer_matrix(program: RegionProgram, field: GF) -> np.ndarray:
    """Symbolically execute a program; row ``i`` maps inputs to output ``i``.

    The returned array has shape ``(len(outputs), num_inputs)`` with
    entries in GF(2^w): applying the program to concrete regions is
    exactly a matrix-vector product with this matrix.
    """
    if field.w != program.w:
        raise ValueError(
            f"program compiled for w={program.w} but field has w={field.w}"
        )
    n = program.num_inputs
    vecs = np.zeros((program.pool_size, n), dtype=field.dtype)
    for j in range(n):
        vecs[j, j] = 1
    for op, dst, src, const in program.instructions:
        if op == OP_ZERO:
            vecs[dst] = 0
        elif op == OP_COPY:
            vecs[dst] = vecs[src]
        elif op == OP_XOR:
            vecs[dst] ^= vecs[src]
        elif op == OP_MUL:
            vecs[dst] = field.mul(field.dtype.type(const), vecs[src])
        elif op == OP_MULXOR:
            vecs[dst] ^= field.mul(field.dtype.type(const), vecs[src])
        else:  # pragma: no cover - validate() rejects unknown opcodes
            raise ValueError(f"unknown opcode {op}")
    out = np.zeros((len(program.outputs), n), dtype=field.dtype)
    for i, slot in enumerate(program.outputs):
        out[i] = vecs[slot]
    return out


def _plan_stages(plan) -> list[tuple[np.ndarray, tuple[int, ...], tuple[int, ...]]]:
    """The plan's matrix applications as ``(matrix, src_ids, dst_ids)``.

    Mirrors the execution-mode semantics (NOT the lowering): matrix-first
    modes apply one combined weight matrix, normal modes apply ``S`` then
    ``F^-1`` — whose product over the field is the same transfer, so the
    two are folded here with a GF matrix product.
    """
    from ..core.sequences import ExecutionMode  # deferred: avoid core cycle

    matrix_first = plan.mode in (
        ExecutionMode.TRADITIONAL_MATRIX_FIRST,
        ExecutionMode.PPM_REST_MATRIX_FIRST,
    )

    def combined(sub) -> np.ndarray:
        if matrix_first:
            return sub.weights.array
        return (sub.f_inv @ sub.s).array

    stages = []
    if plan.uses_partition:
        for group in plan.groups:
            stages.append(
                (group.weights.array, group.survivor_ids, group.faulty_ids)
            )
        if plan.rest is not None:
            stages.append(
                (combined(plan.rest), plan.rest.survivor_ids, plan.rest.faulty_ids)
            )
    else:
        tp = plan.traditional
        stages.append((combined(tp), tp.survivor_ids, tp.faulty_ids))
    return stages


def expected_transfer(field: GF, plan, input_ids: tuple[int, ...]) -> np.ndarray:
    """The transfer matrix the plan's stages dictate over ``input_ids``."""
    n = len(input_ids)
    vec_of: dict[int, np.ndarray] = {}
    for j, block_id in enumerate(input_ids):
        vec = np.zeros(n, dtype=field.dtype)
        vec[j] = 1
        vec_of[block_id] = vec
    for matrix, src_ids, dst_ids in _plan_stages(plan):
        outs = []
        for i in range(matrix.shape[0]):
            acc = np.zeros(n, dtype=field.dtype)
            for j, block_id in enumerate(src_ids):
                c = int(matrix[i, j])
                if c:
                    acc = acc ^ field.mul(field.dtype.type(c), vec_of[block_id])
            outs.append(acc)
        for block_id, vec in zip(dst_ids, outs):
            vec_of[block_id] = vec
    expected = np.zeros((len(plan.faulty_ids), n), dtype=field.dtype)
    for i, block_id in enumerate(plan.faulty_ids):
        expected[i] = vec_of[block_id]
    return expected


def _expected_model_counts(plan) -> tuple[int, int]:
    """(mult_xors, xor_only) the applied matrices dictate, per mode.

    The model counts every nonzero coefficient of every applied matrix —
    for normal modes that is ``S`` and ``F^-1`` *separately* (the
    interpreted path applies them as two sweeps), not their product.
    """
    from ..core.sequences import ExecutionMode  # deferred: avoid core cycle

    matrix_first = plan.mode in (
        ExecutionMode.TRADITIONAL_MATRIX_FIRST,
        ExecutionMode.PPM_REST_MATRIX_FIRST,
    )

    def applied(sub, use_weights: bool) -> list[np.ndarray]:
        if use_weights:
            return [sub.weights.array]
        return [sub.s.array, sub.f_inv.array]

    mats: list[np.ndarray] = []
    if plan.uses_partition:
        for group in plan.groups:
            mats.extend(applied(group, use_weights=True))
        if plan.rest is not None:
            mats.extend(applied(plan.rest, use_weights=matrix_first))
    else:
        mats.extend(applied(plan.traditional, use_weights=matrix_first))
    mult_xors = sum(int(np.count_nonzero(m)) for m in mats)
    xor_only = sum(int(np.count_nonzero(m == 1)) for m in mats)
    return mult_xors, xor_only


def verify_plan_program(
    plan_program: PlanProgram, field: GF, plan
) -> VerificationReport:
    """Certify a compiled plan program against the plan it came from."""
    program = plan_program.program
    report = VerificationReport(
        subject=f"PlanProgram(faulty={list(plan.faulty_ids)}, mode={plan.mode.value})"
    )

    if program.w != field.w:
        report.add(
            "program/width",
            f"program compiled for w={program.w} but the field has w={field.w}",
        )
        return report
    try:
        program.validate()
    except ValueError as exc:
        report.add(
            "program/structure",
            f"IR invariant violated: {exc}",
        )
        return report

    # -- I/O contract ------------------------------------------------------
    faulty_set = set(plan.faulty_ids)
    if plan_program.output_ids != tuple(plan.faulty_ids):
        report.add(
            "program/io-outputs",
            f"program outputs blocks {list(plan_program.output_ids)} but the "
            f"plan recovers {list(plan.faulty_ids)}",
        )
    overlap = sorted(set(plan_program.input_ids) & faulty_set)
    if overlap:
        report.add(
            "program/io-inputs",
            f"program reads faulty block(s) {overlap} as inputs; a fused "
            "program may only read true survivors",
        )
    if len(plan_program.input_ids) != program.num_inputs:
        report.add(
            "program/io-inputs",
            f"{len(plan_program.input_ids)} input ids for a program with "
            f"{program.num_inputs} input slots",
        )
    if report.findings:
        return report

    # -- transfer equality -------------------------------------------------
    got = transfer_matrix(program, field)
    expected = expected_transfer(field, plan, plan_program.input_ids)
    if got.shape != expected.shape:
        report.add(
            "program/transfer",
            f"transfer matrix is {got.shape[0]}x{got.shape[1]} but the plan "
            f"dictates {expected.shape[0]}x{expected.shape[1]}",
        )
    elif not np.array_equal(got, expected):
        diff = got != expected
        i, j = (int(x) for x in next(zip(*diff.nonzero())))
        report.add(
            "program/transfer",
            f"program computes a different linear map than the plan at "
            f"{int(np.count_nonzero(diff))} position(s); first mismatch: "
            f"output {plan_program.output_ids[i]} x input "
            f"{plan_program.input_ids[j]} is {int(got[i, j])}, plan dictates "
            f"{int(expected[i, j])} (the compiled decode would produce "
            "wrong bytes)",
        )

    # -- op accounting -----------------------------------------------------
    want_mult, want_xor = _expected_model_counts(plan)
    if program.mult_xors != want_mult:
        report.add(
            "program/op-count",
            f"program books {program.mult_xors} mult_XORs but the plan's "
            f"matrices contain {want_mult} nonzero coefficients; compiled "
            "and interpreted decodes would report different costs",
        )
    if program.mult_xors != plan.predicted_cost:
        report.add(
            "program/op-count",
            f"program books {program.mult_xors} mult_XORs but the plan "
            f"predicts {plan.predicted_cost}",
        )
    if program.xor_only != want_xor:
        report.add(
            "program/xor-only",
            f"program books {program.xor_only} XOR-only ops but the plan's "
            f"matrices contain {want_xor} unit coefficients",
        )
    return report


def assert_program_valid(plan_program: PlanProgram, field: GF, plan) -> None:
    """Raise :class:`ProgramVerificationError` unless the program verifies."""
    report = verify_plan_program(plan_program, field, plan)
    if not report.ok:
        raise ProgramVerificationError(report)
