"""Finding/report vocabulary shared by all static analyzers.

Every analyzer (plan verifier, schedule verifier, scenario sweep) emits
:class:`Finding` records into a :class:`VerificationReport` instead of
raising on the first problem, so a single pass surfaces *every* violated
invariant with a distinct, actionable diagnostic.  Callers that want
fail-fast semantics raise :class:`PlanVerificationError` /
:class:`ScheduleVerificationError` from a non-empty report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the artifact would compute wrong bytes (or
    report wrong costs); ``WARNING`` findings are inefficiencies that do
    not affect correctness (e.g. a dead schedule op).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One violated invariant.

    Attributes
    ----------
    check:
        Stable machine-readable id, e.g. ``"plan/group-rank"``; mutation
        tests key on these.
    severity:
        :class:`Severity` of the violation.
    message:
        Human-readable diagnostic naming the offending ids/values.
    context:
        Where the problem lives, e.g. ``"group[2]"`` or ``"op[17]"``.
    """

    check: str
    severity: Severity
    message: str
    context: str = ""

    def format(self) -> str:
        where = f" [{self.context}]" if self.context else ""
        return f"{self.severity}: {self.check}{where}: {self.message}"


@dataclass
class VerificationReport:
    """The outcome of one analyzer run over one artifact."""

    subject: str
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        check: str,
        message: str,
        context: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.findings.append(Finding(check, severity, message, context))

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True iff no ERROR-severity findings (warnings allowed)."""
        return not self.errors

    def has(self, check: str) -> bool:
        """True iff some finding carries the given check id."""
        return any(f.check == check for f in self.findings)

    def merge(self, other: VerificationReport) -> None:
        """Absorb another report's findings (context prefixed by subject)."""
        for f in other.findings:
            context = f"{other.subject}:{f.context}" if f.context else other.subject
            self.findings.append(Finding(f.check, f.severity, f.message, context))

    def format(self) -> str:
        lines = [f"verification of {self.subject}: ", ""]
        if not self.findings:
            lines[0] += "OK"
            return lines[0]
        lines[0] += f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        lines[1:] = [f"  {f.format()}" for f in self.findings]
        return "\n".join(lines)


class VerificationFailure(ValueError):
    """Base for fail-fast wrappers around a non-empty report."""

    def __init__(self, report: VerificationReport):
        self.report = report
        super().__init__(report.format())


class PlanVerificationError(VerificationFailure):
    """A :class:`~repro.core.planner.DecodePlan` violates a static invariant."""


class ScheduleVerificationError(VerificationFailure):
    """An :class:`~repro.gf.schedule.XorSchedule` violates a static invariant."""


class ProgramVerificationError(VerificationFailure):
    """A compiled :class:`~repro.kernels.RegionProgram` does not match its plan."""


class DataflowVerificationError(VerificationFailure):
    """A :class:`~repro.kernels.RegionProgram` violates a dataflow invariant."""
