"""Chunked, table-bound execution of RegionPrograms.

The executor resolves everything the interpreted path re-derives per
call, once per program:

- every ``MUL``/``MULXOR`` constant is bound to its lookup table (the
  ``mul8_table`` row for w=8, a 16-entry table for w=4, the SPLIT lane
  tables for w=16/32) at *bind* time, so execution is pure
  ``np.take``/``np.bitwise_xor`` with ``out=``;
- the slot pool is classified into inputs / outputs / temporaries, so
  temporaries live in thread-local chunk-sized scratch while outputs
  are real full-length arrays;
- regions are processed in L2-sized chunks
  (:data:`repro.gf.chunking.DEFAULT_CHUNK_SYMBOLS`), keeping every
  temporary hot across the whole instruction stream.

Execution is thread-safe: bindings are immutable once published,
scratch is per-thread, and the op counter's `record` is lock-free.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..gf.chunking import DEFAULT_CHUNK_SYMBOLS
from ..gf.field import GF
from ..gf.region import OpCounter
from ..gf.split import split_tables
from .ir import OP_COPY, OP_MUL, OP_MULXOR, OP_XOR, OP_ZERO, RegionProgram

#: Bindings kept for at most this many distinct programs before the
#: executor's table cache is reset (programs come from a bounded
#: ProgramCache, so this only triggers under cache churn).
_MAX_BOUND = 512


class _ExecCell:
    """Per-thread execution tallies (merged lock-free on read)."""

    __slots__ = ("executions", "symbols", "seconds")

    def __init__(self) -> None:
        self.executions = 0
        self.symbols = 0
        self.seconds = 0.0


class ProgramExecutor:
    """Executes :class:`RegionProgram` instances over 1-D regions.

    Each :meth:`execute` is tallied into per-thread cells (count,
    symbols, wall seconds) — the metrics hook the serving layer reads
    through :meth:`stats` to reconcile kernel work with request
    accounting.  Recording is lock-free on the hot path, like
    :class:`~repro.gf.region.OpCounter`.
    """

    def __init__(self, field: GF, chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS):
        if chunk_symbols < 1:
            raise ValueError(f"chunk_symbols must be positive, got {chunk_symbols}")
        self.field = field
        self.chunk_symbols = int(chunk_symbols)
        self._bind_lock = threading.Lock()
        # id(program) -> (program, bound); the program is pinned so its
        # id cannot be reused while the binding lives.
        self._bound: dict[int, tuple[RegionProgram, tuple]] = {}
        self._small_tables: dict[int, np.ndarray] = {}  # w=4 per-constant
        self._scratch = threading.local()
        self._stats_lock = threading.Lock()
        self._stats_cells: list[_ExecCell] = []
        self._stats_local = threading.local()

    def _stats_cell(self) -> _ExecCell:
        cell = getattr(self._stats_local, "cell", None)
        if cell is None:
            cell = _ExecCell()
            with self._stats_lock:
                self._stats_cells.append(cell)
            self._stats_local.cell = cell
        return cell

    def stats(self) -> dict[str, float]:
        """Merged execution tallies across threads (JSON-ready)."""
        executions = symbols = 0
        seconds = 0.0
        with self._stats_lock:
            cells = list(self._stats_cells)
        for cell in cells:
            executions += cell.executions
            symbols += cell.symbols
            seconds += cell.seconds
        return {
            "executions": executions,
            "symbols": symbols,
            "exec_seconds": seconds,
        }

    # -- binding -----------------------------------------------------------

    def _table_for(self, const: int):
        field = self.field
        if field.w == 8:
            return field.mul8_table[const]
        if field.w == 4:
            table = self._small_tables.get(const)
            if table is None:
                table = field.mul(
                    field.dtype.type(const), np.arange(16, dtype=field.dtype)
                )
                table.setflags(write=False)
                # concurrent binds share this cache; reuse _bind_lock
                # (held only around the dict insert, so no reentrancy)
                with self._bind_lock:
                    table = self._small_tables.setdefault(const, table)
            return table
        return split_tables(field, const)

    def _bind(self, program: RegionProgram) -> tuple:
        entry = self._bound.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1]
        if program.w != self.field.w:
            raise ValueError(
                f"program compiled for w={program.w}, executor field has w={self.field.w}"
            )
        program.validate()
        instructions = tuple(
            (
                op,
                dst,
                src,
                self._table_for(const) if op in (OP_MUL, OP_MULXOR) else None,
            )
            for op, dst, src, const in program.instructions
        )
        # classify pool slots: inputs / outputs / scratch temporaries
        roles: list[tuple[str, int]] = [("in", i) for i in range(program.num_inputs)]
        out_index = {slot: k for k, slot in enumerate(program.outputs)}
        temps = 0
        for slot in range(program.num_inputs, program.pool_size):
            if slot in out_index:
                roles.append(("out", out_index[slot]))
            else:
                roles.append(("tmp", temps))
                temps += 1
        bound = (instructions, tuple(roles), temps)
        with self._bind_lock:
            if len(self._bound) >= _MAX_BOUND:
                self._bound.clear()
            self._bound[id(program)] = (program, bound)
        return bound

    # -- scratch -----------------------------------------------------------

    def _scratch_buffers(self, count: int) -> list[np.ndarray]:
        """``count`` chunk-sized per-thread buffers (grown on demand)."""
        buffers = getattr(self._scratch, "buffers", None)
        if buffers is None:
            buffers = []
            self._scratch.buffers = buffers
        while len(buffers) < count:
            buffers.append(np.empty(self.chunk_symbols, dtype=self.field.dtype))
        return buffers

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        program: RegionProgram,
        inputs: list[np.ndarray],
        counter: OpCounter | None = None,
        outs: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Run ``program`` over input regions; returns the output regions.

        All regions must be 1-D, of equal length and of the field's
        dtype.  ``outs``, when given, supplies the output arrays (must
        be C-contiguous — the executor writes chunk views into them).
        The program's *model* op counts are booked into ``counter`` in
        one lock-free call, exactly matching what the interpreted path
        would have recorded for the same matrices.
        """
        t_start = time.perf_counter()
        if len(inputs) != program.num_inputs:
            raise ValueError(
                f"program expects {program.num_inputs} input regions, got {len(inputs)}"
            )
        dtype = self.field.dtype
        length = inputs[0].shape[0] if inputs[0].ndim == 1 else -1
        for region in inputs:
            if region.ndim != 1 or region.shape[0] != length:
                raise ValueError("all regions must be 1-D of equal length")
            if region.dtype != dtype:
                raise TypeError(
                    f"region dtype {region.dtype} does not match field dtype {dtype}"
                )
        inputs = [np.ascontiguousarray(region) for region in inputs]
        if outs is None:
            out_arrays = [np.empty(length, dtype=dtype) for _ in program.outputs]
        else:
            if len(outs) != len(program.outputs):
                raise ValueError(
                    f"program produces {len(program.outputs)} outputs, got {len(outs)} buffers"
                )
            for out in outs:
                if out.ndim != 1 or out.shape[0] != length:
                    raise ValueError("all regions must be 1-D of equal length")
                if out.dtype != dtype:
                    raise TypeError(
                        f"region dtype {out.dtype} does not match field dtype {dtype}"
                    )
                if not out.flags.c_contiguous:
                    raise ValueError("output regions must be C-contiguous")
            out_arrays = outs

        instructions, roles, temps = self._bind(program)
        scratch = self._scratch_buffers(temps + 1)
        mul_scratch = scratch[temps]
        nbytes = self.field.w // 8  # 0 for w=4 symbols (sub-byte values in uint8)
        pool: list[np.ndarray | None] = [None] * len(roles)

        for start in range(0, length, self.chunk_symbols):
            stop = min(start + self.chunk_symbols, length)
            n = stop - start
            for slot, (kind, index) in enumerate(roles):
                if kind == "in":
                    pool[slot] = inputs[index][start:stop]
                elif kind == "out":
                    pool[slot] = out_arrays[index][start:stop]
                else:
                    pool[slot] = scratch[index][:n]
            ms = mul_scratch[:n]
            for op, dst, src, table in instructions:
                d = pool[dst]
                if op == OP_XOR:
                    np.bitwise_xor(d, pool[src], out=d)
                elif op == OP_MULXOR:
                    if nbytes >= 2:
                        lanes = pool[src].view(np.uint8).reshape(n, nbytes)
                        for i in range(nbytes):
                            np.take(table[i], lanes[:, i], out=ms)
                            np.bitwise_xor(d, ms, out=d)
                    else:
                        np.take(table, pool[src], out=ms)
                        np.bitwise_xor(d, ms, out=d)
                elif op == OP_MUL:
                    if nbytes >= 2:
                        lanes = pool[src].view(np.uint8).reshape(n, nbytes)
                        np.take(table[0], lanes[:, 0], out=d)
                        for i in range(1, nbytes):
                            np.take(table[i], lanes[:, i], out=ms)
                            np.bitwise_xor(d, ms, out=d)
                    else:
                        np.take(table, pool[src], out=d)
                elif op == OP_COPY:
                    np.copyto(d, pool[src])
                else:  # OP_ZERO
                    d.fill(0)

        if counter is not None:
            counter.record(
                program.mult_xors,
                program.mult_xors * length,
                xor_only=program.xor_only,
            )
        cell = self._stats_cell()
        cell.executions += 1
        cell.symbols += program.mult_xors * length
        cell.seconds += time.perf_counter() - t_start
        return out_arrays
