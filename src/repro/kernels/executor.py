"""Chunked, backend-delegated execution of RegionPrograms.

The executor resolves everything the interpreted path re-derives per
call, once per (program, backend):

- every ``MUL``/``MULXOR`` constant is bound to the selected backend's
  precomputed tables (see :mod:`repro.kernels.backends`) at *bind*
  time, so execution is pure vectorised gathers/XORs with ``out=``;
- the slot pool is classified into inputs / outputs / temporaries, so
  temporaries live in thread-local chunk-sized scratch while outputs
  are real full-length arrays;
- regions are processed in L2-sized chunks
  (:data:`repro.gf.chunking.DEFAULT_CHUNK_SYMBOLS`), keeping every
  temporary hot across the whole instruction stream.

**Backend selection** is ``"auto"`` by default: on the first execution
of a *(program shape, w, region size)* class the executor
micro-benchmarks every registered, supporting backend on a small region
and records the winner in its :class:`BackendTuning` (shared through
the :class:`~repro.kernels.cache.ProgramCache` by
:class:`~repro.kernels.ops.CompiledRegionOps`, so winners persist
per-process).  A forced backend — per-executor ``backend=`` or the
process-wide :func:`repro.kernels.backends.set_default_backend` that
``AppConfig.kernels.backend`` applies — skips tuning.

**Fallback** keeps fast paths safe: a backend that raises mid-execution
is quarantined from all future selection, the call replays on the
baseline, and :meth:`stats` counts it under ``backend_fallbacks``; a
:class:`~repro.kernels.backends.base.RegionAlignmentError` (caller
buffers the backend cannot re-view) replays on the baseline *without*
quarantine and counts under ``backend_bypasses``.

Execution is thread-safe: bindings are immutable once published,
scratch is per-thread, and the op counter's `record` is lock-free.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..gf.chunking import DEFAULT_CHUNK_SYMBOLS
from ..gf.field import GF
from ..gf.region import OpCounter
from .backends import (
    BACKEND_CHOICES,
    BASELINE_BACKEND,
    BackendTuning,
    ExecutorBackend,
    available_backends,
    default_backend,
    get_backend,
    shape_key,
    size_class,
)
from .backends.base import RegionAlignmentError
from .ir import RegionProgram

#: Bindings kept for at most this many distinct (program, backend)
#: pairs before the executor's table cache is reset (programs come from
#: a bounded ProgramCache, so this only triggers under cache churn).
_MAX_BOUND = 512

#: Auto-tune sample region length (symbols); small enough that a tune
#: is a few milliseconds, large enough that table cache residency at
#: the sample matches the gated region class (the wide-table backends
#: only win once the region amortises their table footprint).
_TUNE_SYMBOLS = 16384

#: Timed repetitions per backend during a tune (best-of).
_TUNE_REPEATS = 3

#: A challenger must beat the incumbent by this fraction to win the
#: class — hysteresis toward the earlier candidate (the baseline is
#: tried first), so timer noise cannot promote a backend that merely
#: ties.  A mispick is pure regression for every later execution of
#: the class; a missed marginal win costs almost nothing.
_TUNE_MARGIN = 0.05


class _ExecCell:
    """Per-thread execution tallies (merged lock-free on read)."""

    __slots__ = ("executions", "symbols", "seconds", "fallbacks", "bypasses", "by_backend")

    def __init__(self) -> None:
        self.executions = 0
        self.symbols = 0
        self.seconds = 0.0
        self.fallbacks = 0
        self.bypasses = 0
        # backend name -> [executions, symbols, seconds]
        self.by_backend: dict[str, list[float]] = {}


class ProgramExecutor:
    """Executes :class:`RegionProgram` instances over 1-D regions.

    Parameters
    ----------
    field:
        The GF(2^w) field programs are compiled for.
    chunk_symbols:
        L2 blocking factor.
    backend:
        ``"auto"`` (default) tunes per class; a backend name forces it
        for every supporting program (unsupported programs silently use
        the baseline).  The process-wide default from
        ``AppConfig.kernels.backend`` applies when this is ``"auto"``.
    tuning:
        Shared :class:`BackendTuning` (winners + quarantine); private
        by default.

    Each :meth:`execute` is tallied into per-thread cells (count,
    symbols, wall seconds, per-backend split, fallback/bypass counts) —
    the metrics hook the serving layer reads through :meth:`stats` to
    reconcile kernel work with request accounting.  Recording is
    lock-free on the hot path, like
    :class:`~repro.gf.region.OpCounter`.
    """

    def __init__(
        self,
        field: GF,
        chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
        backend: str = "auto",
        tuning: BackendTuning | None = None,
    ):
        if chunk_symbols < 1:
            raise ValueError(f"chunk_symbols must be positive, got {chunk_symbols}")
        if backend != "auto":
            get_backend(backend)  # unknown names fail at construction
        self.field = field
        self.chunk_symbols = int(chunk_symbols)
        self.backend = backend
        self.tuning = tuning if tuning is not None else BackendTuning()
        self._bind_lock = threading.Lock()
        # (id(program), backend) -> (program, bound); the program is
        # pinned so its id cannot be reused while the binding lives.
        self._bound: dict[tuple[int, str], tuple[RegionProgram, tuple]] = {}
        # id(program) -> (program, roles, temps) slot classification
        self._roles: dict[int, tuple[RegionProgram, tuple, int]] = {}
        self._scratch = threading.local()
        self._stats_lock = threading.Lock()
        self._stats_cells: list[_ExecCell] = []
        self._stats_local = threading.local()

    def _stats_cell(self) -> _ExecCell:
        cell = getattr(self._stats_local, "cell", None)
        if cell is None:
            cell = _ExecCell()
            with self._stats_lock:
                self._stats_cells.append(cell)
            self._stats_local.cell = cell
        return cell

    def stats(self) -> dict:
        """Merged execution tallies across threads (JSON-ready).

        ``backends`` splits executions/symbols/seconds per backend that
        actually ran; ``backend_fallbacks`` counts executions replayed
        on the baseline after a backend raised (the backend is
        quarantined); ``backend_bypasses`` counts alignment bypasses
        (no quarantine).
        """
        executions = symbols = fallbacks = bypasses = 0
        seconds = 0.0
        backends: dict[str, dict[str, float]] = {}
        with self._stats_lock:
            cells = list(self._stats_cells)
        for cell in cells:
            executions += cell.executions
            symbols += cell.symbols
            seconds += cell.seconds
            fallbacks += cell.fallbacks
            bypasses += cell.bypasses
            for name, (execs, syms, secs) in cell.by_backend.items():
                agg = backends.setdefault(
                    name, {"executions": 0, "symbols": 0, "seconds": 0.0}
                )
                agg["executions"] += execs
                agg["symbols"] += syms
                agg["seconds"] += secs
        return {
            "executions": executions,
            "symbols": symbols,
            "exec_seconds": seconds,
            "backend_fallbacks": fallbacks,
            "backend_bypasses": bypasses,
            "backends": backends,
        }

    # -- binding -----------------------------------------------------------

    def _classify(self, program: RegionProgram) -> tuple[tuple, int]:
        """Slot roles (inputs / outputs / scratch temporaries), memoised."""
        entry = self._roles.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1], entry[2]
        roles: list[tuple[str, int]] = [("in", i) for i in range(program.num_inputs)]
        out_index = {slot: k for k, slot in enumerate(program.outputs)}
        temps = 0
        for slot in range(program.num_inputs, program.pool_size):
            if slot in out_index:
                roles.append(("out", out_index[slot]))
            else:
                roles.append(("tmp", temps))
                temps += 1
        with self._bind_lock:
            if len(self._roles) >= _MAX_BOUND:
                self._roles.clear()
            self._roles[id(program)] = (program, tuple(roles), temps)
        return tuple(roles), temps

    def _bind(self, program: RegionProgram, backend: ExecutorBackend) -> tuple:
        key = (id(program), backend.name)
        entry = self._bound.get(key)
        if entry is not None and entry[0] is program:
            return entry[1]
        if program.w != self.field.w:
            raise ValueError(
                f"program compiled for w={program.w}, executor field has w={self.field.w}"
            )
        program.validate()
        bound = backend.bind(self.field, program)
        with self._bind_lock:
            if len(self._bound) >= _MAX_BOUND:
                self._bound.clear()
            self._bound[key] = (program, bound)
        return bound

    # -- scratch -----------------------------------------------------------

    def _scratch_buffers(self, count: int) -> list[np.ndarray]:
        """``count`` chunk-sized per-thread buffers (grown on demand)."""
        buffers = getattr(self._scratch, "buffers", None)
        if buffers is None:
            buffers = []
            self._scratch.buffers = buffers
        while len(buffers) < count:
            buffers.append(np.empty(self.chunk_symbols, dtype=self.field.dtype))
        return buffers

    def _backend_scratch(self, backend: ExecutorBackend) -> object:
        """Per-thread, per-backend kernel scratch (grown on demand)."""
        table = getattr(self._scratch, "backend", None)
        if table is None:
            table = {}
            self._scratch.backend = table
        scratch = table.get(backend.name)
        if scratch is None:
            scratch = backend.make_scratch(self.field, self.chunk_symbols)
            table[backend.name] = scratch
        return scratch

    # -- backend selection -------------------------------------------------

    def _usable(self, name: str, program: RegionProgram) -> ExecutorBackend | None:
        try:
            backend = get_backend(name)
        except KeyError:
            return None
        if self.tuning.is_quarantined(name):
            return None
        if not backend.supports(self.field, program):
            return None
        return backend

    def _select_backend(self, program: RegionProgram, length: int) -> ExecutorBackend:
        forced = self.backend if self.backend != "auto" else default_backend()
        baseline = get_backend(BASELINE_BACKEND)
        if forced != "auto":
            return self._usable(forced, program) or baseline
        key = shape_key(program, size_class(length))
        name = self.tuning.choice(key)
        if name is None:
            name = self._autotune(program, length, key)
        if name == BASELINE_BACKEND:
            return baseline
        return self._usable(name, program) or baseline

    def _tune_inputs(self, length: int) -> np.ndarray:
        """Deterministic pseudo-random valid symbols for timing runs.

        A splitmix64-style finalizer, not a plain multiplicative hash:
        adjacent symbols must be jointly uniform, because backends that
        gather multi-symbol words (the paired uint16 tables) would see
        a structured sequence's few distinct word values as a tiny,
        cache-resident index set and tune unrealistically fast.
        """
        mask = (1 << self.field.w) - 1
        x = np.arange(1, length + 1, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return (x & np.uint64(mask)).astype(self.field.dtype)

    def _autotune(self, program: RegionProgram, length: int, key: tuple) -> str:
        """Micro-benchmark candidates on a small region; record winner.

        Failures during tuning quarantine the backend (it never wins a
        class it cannot run) but are otherwise silent — the baseline
        always completes.
        """
        sample = max(2, min(length, self.chunk_symbols, _TUNE_SYMBOLS))
        base = self._tune_inputs(sample)
        inputs = [base.copy() for _ in range(program.num_inputs)]
        outs = [np.empty(sample, dtype=self.field.dtype) for _ in program.outputs]
        candidates = [BASELINE_BACKEND] + [
            name for name in available_backends() if name != BASELINE_BACKEND
        ]
        best_name = BASELINE_BACKEND
        best_seconds = float("inf")
        for name in candidates:
            backend = (
                get_backend(BASELINE_BACKEND)
                if name == BASELINE_BACKEND
                else self._usable(name, program)
            )
            if backend is None:
                continue
            try:
                self._run(program, backend, inputs, outs, sample)  # warm bind + caches
                # time a block of consecutive runs: steady-state throughput
                # (table-eviction effects included), not the warm best case
                t0 = time.perf_counter()
                for _ in range(_TUNE_REPEATS):
                    self._run(program, backend, inputs, outs, sample)
                seconds = time.perf_counter() - t0
            except Exception:
                if name != BASELINE_BACKEND:
                    self.tuning.quarantine(name)
                continue
            threshold = (
                best_seconds
                if name == BASELINE_BACKEND
                else best_seconds * (1.0 - _TUNE_MARGIN)
            )
            if seconds < threshold:
                best_seconds = seconds
                best_name = name
        self.tuning.record(key, best_name)
        return best_name

    # -- execution ---------------------------------------------------------

    def _run(
        self,
        program: RegionProgram,
        backend: ExecutorBackend,
        inputs: list[np.ndarray],
        out_arrays: list[np.ndarray],
        length: int,
    ) -> None:
        bound = self._bind(program, backend)
        roles, temps = self._classify(program)
        scratch = self._scratch_buffers(temps)
        kernel_scratch = self._backend_scratch(backend)
        pool: list[np.ndarray | None] = [None] * len(roles)
        for start in range(0, length, self.chunk_symbols):
            stop = min(start + self.chunk_symbols, length)
            n = stop - start
            for slot, (kind, index) in enumerate(roles):
                if kind == "in":
                    pool[slot] = inputs[index][start:stop]
                elif kind == "out":
                    pool[slot] = out_arrays[index][start:stop]
                else:
                    pool[slot] = scratch[index][:n]
            backend.execute_chunk(bound, pool, n, kernel_scratch)

    def execute(
        self,
        program: RegionProgram,
        inputs: list[np.ndarray],
        counter: OpCounter | None = None,
        outs: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Run ``program`` over input regions; returns the output regions.

        All regions must be 1-D, of equal length and of the field's
        dtype.  ``outs``, when given, supplies the output arrays (must
        be C-contiguous — the executor writes chunk views into them).
        The program's *model* op counts are booked into ``counter`` in
        one lock-free call, exactly matching what the interpreted path
        would have recorded for the same matrices.
        """
        t_start = time.perf_counter()
        if len(inputs) != program.num_inputs:
            raise ValueError(
                f"program expects {program.num_inputs} input regions, got {len(inputs)}"
            )
        dtype = self.field.dtype
        length = inputs[0].shape[0] if inputs[0].ndim == 1 else -1
        for region in inputs:
            if region.ndim != 1 or region.shape[0] != length:
                raise ValueError("all regions must be 1-D of equal length")
            if region.dtype != dtype:
                raise TypeError(
                    f"region dtype {region.dtype} does not match field dtype {dtype}"
                )
        inputs = [np.ascontiguousarray(region) for region in inputs]
        if outs is None:
            out_arrays = [np.empty(length, dtype=dtype) for _ in program.outputs]
        else:
            if len(outs) != len(program.outputs):
                raise ValueError(
                    f"program produces {len(program.outputs)} outputs, got {len(outs)} buffers"
                )
            for out in outs:
                if out.ndim != 1 or out.shape[0] != length:
                    raise ValueError("all regions must be 1-D of equal length")
                if out.dtype != dtype:
                    raise TypeError(
                        f"region dtype {out.dtype} does not match field dtype {dtype}"
                    )
                if not out.flags.c_contiguous:
                    raise ValueError("output regions must be C-contiguous")
            out_arrays = outs

        backend = self._select_backend(program, length)
        cell = self._stats_cell()
        try:
            self._run(program, backend, inputs, out_arrays, length)
        except RegionAlignmentError:
            # caller memory the backend cannot re-view: replay on the
            # baseline, do NOT quarantine (the next call may be aligned)
            cell.bypasses += 1
            backend = get_backend(BASELINE_BACKEND)
            self._run(program, backend, inputs, out_arrays, length)
        except Exception:
            if backend.name == BASELINE_BACKEND:
                raise
            # a broken backend (e.g. a JIT failing mid-process) must
            # never break decoding: bench it for good and replay
            self.tuning.quarantine(backend.name)
            cell.fallbacks += 1
            backend = get_backend(BASELINE_BACKEND)
            self._run(program, backend, inputs, out_arrays, length)

        if counter is not None:
            counter.record(
                program.mult_xors,
                program.mult_xors * length,
                xor_only=program.xor_only,
            )
        elapsed = time.perf_counter() - t_start
        worked = program.mult_xors * length
        cell.executions += 1
        cell.symbols += worked
        cell.seconds += elapsed
        per = cell.by_backend.get(backend.name)
        if per is None:
            per = cell.by_backend[backend.name] = [0, 0, 0.0]
        per[0] += 1
        per[1] += worked
        per[2] += elapsed
        return out_arrays


__all__ = ["ProgramExecutor", "BACKEND_CHOICES"]
