"""Optimisation passes over :class:`~repro.kernels.ir.RegionProgram`.

Three passes, run in this order by :func:`optimize_program`:

1. **Pair sharing** (:func:`share_pairs`) — greedy common-subexpression
   elimination over one stage's rows, the GF(2^w) generalisation of
   :func:`repro.gf.schedule.pair_reuse_schedule`: the *(slot, const)*
   term pair shared by the most rows is materialised once into a
   temporary and every row rewrites to XOR that temporary instead.  This
   pass runs at lowering time (it needs the row structure), the other
   two on the flat program.
2. **Dead-temporary elimination** (:func:`eliminate_dead`) — reverse
   liveness walk dropping instructions whose destination is never read
   and never output (e.g. an ``S``-stage row whose column in ``F^-1`` is
   all zero).
3. **Slot compaction** (:func:`compact_slots`) — renumber slots with a
   free-list so temporaries reuse buffers once dead.  Input slots keep
   their identity; output slots always get dedicated buffers (the
   executor hands them full-length arrays, not chunk scratch).

None of the passes touch the program's *model* op counts
(``mult_xors``/``xor_only``): those describe the source matrices, not
the executed instructions.
"""

from __future__ import annotations

from itertools import combinations

from .ir import (
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    Instruction,
    RegionProgram,
)

#: One linear-combination term: ``(slot, const)`` with ``const != 0``.
Term = tuple[int, int]


def share_pairs(
    rows: list[list[Term]], next_slot: int
) -> tuple[list[tuple[int, tuple[Term, Term]]], list[list[Term]], int]:
    """Greedy pair-reuse CSE across the rows of one stage.

    While some term pair appears in >= 2 rows, materialise the most
    frequent pair (smallest pair wins ties, matching
    ``pair_reuse_schedule``) as a new temporary slot and rewrite every
    row containing it to the single term ``(temp, 1)``.

    Returns ``(pair_defs, rewritten_rows, next_slot)`` where each pair
    definition is ``(slot, (term_a, term_b))`` meaning
    ``pool[slot] = a_const * pool[a_slot] ^ b_const * pool[b_slot]``.
    """
    row_sets = [set(row) for row in rows]
    pair_defs: list[tuple[int, tuple[Term, Term]]] = []
    while True:
        counts: dict[tuple[Term, Term], int] = {}
        for row in row_sets:
            if len(row) < 2:
                continue
            for pair in combinations(sorted(row), 2):
                counts[pair] = counts.get(pair, 0) + 1
        if not counts:
            break
        pair, freq = min(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if freq < 2:
            break
        slot = next_slot
        next_slot += 1
        pair_defs.append((slot, pair))
        term_a, term_b = pair
        shared: Term = (slot, 1)
        for row in row_sets:
            if term_a in row and term_b in row:
                row.discard(term_a)
                row.discard(term_b)
                row.add(shared)
    return pair_defs, [sorted(row) for row in row_sets], next_slot


def eliminate_dead(program: RegionProgram) -> RegionProgram:
    """Drop instructions whose destination is never read or output.

    Reverse liveness: ``ZERO``/``COPY``/``MUL`` fully define their
    destination (a live destination becomes dead above them); ``XOR`` /
    ``MULXOR`` accumulate, so the destination stays live upward.
    """
    live = set(program.outputs)
    kept_reversed: list[Instruction] = []
    for inst in reversed(program.instructions):
        op, dst, src, _const = inst
        if dst not in live:
            continue
        kept_reversed.append(inst)
        if op not in (OP_XOR, OP_MULXOR):
            live.discard(dst)
        if src >= 0:
            live.add(src)
    return RegionProgram(
        w=program.w,
        num_inputs=program.num_inputs,
        pool_size=program.pool_size,
        instructions=tuple(reversed(kept_reversed)),
        outputs=program.outputs,
        mult_xors=program.mult_xors,
        xor_only=program.xor_only,
        label=program.label,
    )


def compact_slots(program: RegionProgram) -> RegionProgram:
    """Renumber slots, reusing dead temporaries' ids via a free list.

    Inputs keep ids ``0..num_inputs-1``.  Output slots are allocated
    fresh ids and never recycled (they are real result buffers, not
    chunk scratch).  A temporary's id returns to the free list after the
    instruction containing its last appearance, so the id can never
    alias a source of that same instruction.
    """
    last_seen: dict[int, int] = {}
    for index, (_op, dst, src, _const) in enumerate(program.instructions):
        if src >= 0:
            last_seen[src] = index
        last_seen[dst] = index
    out_set = set(program.outputs)
    remap = {slot: slot for slot in range(program.num_inputs)}
    free: list[int] = []
    next_id = program.num_inputs
    new_insts: list[Instruction] = []
    for index, (op, dst, src, const) in enumerate(program.instructions):
        new_src = remap[src] if src >= 0 else -1
        if dst not in remap:
            if dst in out_set or not free:
                remap[dst] = next_id
                next_id += 1
            else:
                remap[dst] = free.pop()
        new_insts.append((op, remap[dst], new_src, const))
        for slot in (src, dst):
            if (
                slot >= program.num_inputs
                and slot not in out_set
                and last_seen.get(slot) == index
            ):
                free.append(remap[slot])
    return RegionProgram(
        w=program.w,
        num_inputs=program.num_inputs,
        pool_size=next_id,
        instructions=tuple(new_insts),
        outputs=tuple(remap[slot] for slot in program.outputs),
        mult_xors=program.mult_xors,
        xor_only=program.xor_only,
        label=program.label,
    )


def optimize_program(program: RegionProgram) -> RegionProgram:
    """Dead-code elimination followed by slot compaction."""
    return compact_slots(eliminate_dead(program))
