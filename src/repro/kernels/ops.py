"""CompiledRegionOps: the drop-in compiled backend for RegionOps.

Same API, same results, same op counts — but ``matrix_apply``,
``matrix_chain_apply`` and ``linear_combination`` compile their
coefficient structure to a :class:`~repro.kernels.ir.RegionProgram`
(cached) and execute it with bound tables, and :meth:`run_plan` executes
a whole :class:`~repro.core.planner.DecodePlan` as one fused program.

The scalar primitives (``mult_xors``, ``mul_region``) stay interpreted:
they are single region passes with nothing to amortise, and
:func:`repro.gf.chunking.chunked_matrix_apply` builds on them directly.
Multi-dimensional regions also fall back to the interpreted path — the
executor is specialised for the 1-D sectors the decoders use.
"""

from __future__ import annotations

import numpy as np

from ..gf.chunking import DEFAULT_CHUNK_SYMBOLS
from ..gf.field import GF
from ..gf.region import OpCounter, RegionOps
from .cache import ProgramCache
from .executor import ProgramExecutor
from .lower import PlanProgram


class CompiledRegionOps(RegionOps):
    """Region ops that execute compiled, cached programs.

    Parameters
    ----------
    field, counter:
        As for :class:`~repro.gf.region.RegionOps`.
    programs:
        Optional shared :class:`ProgramCache`; decoders hand one cache
        to all their ops instances so plans compile once per geometry.
    optimize:
        Run the optimisation passes (pair CSE, DCE, slot compaction) on
        every compiled program.  Off is useful for debugging only.
    chunk_symbols:
        L2 blocking factor for the executor.
    backend:
        Executor backend selection: ``"auto"`` (default, per-class
        auto-tune) or a registered backend name to force it.
    """

    def __init__(
        self,
        field: GF,
        counter: OpCounter | None = None,
        *,
        programs: ProgramCache | None = None,
        optimize: bool = True,
        chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
        backend: str = "auto",
    ):
        super().__init__(field, counter)
        self.programs = programs if programs is not None else ProgramCache()
        self.optimize = optimize
        # tuning state lives on the program cache: backend winners are
        # shared by every ops/executor built over the same cache
        self.executor = ProgramExecutor(
            field,
            chunk_symbols=chunk_symbols,
            backend=backend,
            tuning=self.programs.tuning,
        )

    def _compilable(self, regions: list[np.ndarray]) -> bool:
        return all(r.ndim == 1 for r in regions)

    # -- compiled overrides ------------------------------------------------

    def linear_combination(
        self,
        coefficients: np.ndarray,
        regions: list[np.ndarray],
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if len(coefficients) != len(regions):
            raise ValueError("coefficient / region count mismatch")
        if not regions or not self._compilable(regions):
            return super().linear_combination(coefficients, regions, out=out)
        coefficients = np.asarray(coefficients)
        if not coefficients.any():
            # zero cost, zero count — identical to the interpreted path
            if out is None:
                return np.zeros_like(regions[0])
            out[...] = 0
            return out
        if out is not None:
            self._check(out)
            if out.shape != regions[0].shape:
                raise ValueError(
                    f"region shape mismatch: {regions[0].shape} vs {out.shape}"
                )
            if not out.flags.c_contiguous:
                return super().linear_combination(coefficients, regions, out=out)
        program = self.programs.row_program(
            self.field, coefficients, optimize=self.optimize
        )
        outs = None if out is None else [out]
        return self.executor.execute(
            program, list(regions), counter=self.counter, outs=outs
        )[0]

    def matrix_apply(
        self,
        matrix: np.ndarray,
        regions: list[np.ndarray],
    ) -> list[np.ndarray]:
        if matrix.ndim != 2 or matrix.shape[1] != len(regions):
            raise ValueError(
                f"matrix shape {matrix.shape} incompatible with {len(regions)} regions"
            )
        if matrix.shape[0] == 0:
            return []
        if not regions:
            raise ValueError("cannot infer output shape from empty inputs")
        if not self._compilable(regions):
            return super().matrix_apply(matrix, regions)
        program = self.programs.matrix_program(
            self.field, matrix, optimize=self.optimize
        )
        return self.executor.execute(program, list(regions), counter=self.counter)

    def matrix_chain_apply(
        self,
        matrices,
        regions: list[np.ndarray],
    ) -> list[np.ndarray]:
        mats = [np.asarray(m) for m in matrices]
        if not mats:
            return list(regions)
        if not regions:
            raise ValueError("cannot infer output shape from empty inputs")
        if any(m.shape[0] == 0 for m in mats) or not self._compilable(regions):
            return super().matrix_chain_apply(mats, regions)
        if mats[0].shape[1] != len(regions):
            raise ValueError(
                f"matrix shape {mats[0].shape} incompatible with {len(regions)} regions"
            )
        program = self.programs.chain_program(self.field, mats, optimize=self.optimize)
        return self.executor.execute(program, list(regions), counter=self.counter)

    # -- fused plan execution ----------------------------------------------

    def plan_program(self, plan) -> PlanProgram:
        """The compiled (cached) program for a whole decode plan."""
        return self.programs.plan_program(self.field, plan, optimize=self.optimize)

    def run_plan(self, plan, blocks) -> dict[int, np.ndarray]:
        """Execute a whole decode plan as one fused program.

        ``blocks`` maps block id -> region and must contain every true
        survivor the plan reads.  Returns ``{faulty_id: region}`` exactly
        like the stage-by-stage decoders, with identical op counts.
        """
        plan_prog = self.plan_program(plan)
        inputs = [blocks[b] for b in plan_prog.input_ids]
        if not self._compilable(inputs):
            raise ValueError("run_plan requires 1-D block regions")
        outs = self.executor.execute(plan_prog.program, inputs, counter=self.counter)
        return dict(zip(plan_prog.output_ids, outs))

    # -- fused encode execution --------------------------------------------

    def encode_program(self, code, policy=None) -> PlanProgram:
        """The compiled (cached) all-parities encode program for ``code``."""
        return self.programs.encode_program(
            self.field, code, policy=policy, optimize=self.optimize
        )

    def run_encode(self, code, blocks, policy=None) -> dict[int, np.ndarray]:
        """Compute every parity block of ``code`` as one fused program.

        ``blocks`` maps block id -> region and must contain the data
        blocks; parity entries, stale or otherwise, are never read.
        Returns ``{parity_id: region}``.  Pass the owning decoder's
        ``policy`` to book its exact op counts.
        """
        enc = self.encode_program(code, policy=policy)
        inputs = [blocks[b] for b in enc.input_ids]
        if not self._compilable(inputs):
            raise ValueError("run_encode requires 1-D block regions")
        outs = self.executor.execute(enc.program, inputs, counter=self.counter)
        return dict(zip(enc.output_ids, outs))
