"""Compiled GF region programs: plans lowered to fused, cached kernels.

The interpreted :class:`~repro.gf.region.RegionOps` pays a full Python
round-trip per ``mult_XORs`` call.  This package compiles the operation
sequence once — matrix, matrix chain, or a whole
:class:`~repro.core.planner.DecodePlan` — into the flat
:class:`RegionProgram` IR, optimises it, and executes it with per-program
table binding and L2-chunked ``np.take`` gathers.  See ``docs/KERNELS.md``.
"""

from __future__ import annotations

from .cache import DEFAULT_PROGRAM_CACHE_SIZE, ProgramCache, ProgramCacheStats
from .executor import ProgramExecutor
from .ir import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    Instruction,
    RegionProgram,
)
from .lower import (
    PlanProgram,
    ProgramBuilder,
    lower_linear_combination,
    lower_matrix,
    lower_matrix_chain,
    lower_plan,
)
from .ops import CompiledRegionOps
from .optimize import compact_slots, eliminate_dead, optimize_program, share_pairs

__all__ = [
    "OP_COPY",
    "OP_MUL",
    "OP_MULXOR",
    "OP_XOR",
    "OP_ZERO",
    "DEFAULT_PROGRAM_CACHE_SIZE",
    "CompiledRegionOps",
    "Instruction",
    "PlanProgram",
    "ProgramBuilder",
    "ProgramCache",
    "ProgramCacheStats",
    "ProgramExecutor",
    "RegionProgram",
    "compact_slots",
    "eliminate_dead",
    "lower_linear_combination",
    "lower_matrix",
    "lower_matrix_chain",
    "lower_plan",
    "optimize_program",
    "share_pairs",
]
