"""Compiled GF region programs: plans lowered to fused, cached kernels.

The interpreted :class:`~repro.gf.region.RegionOps` pays a full Python
round-trip per ``mult_XORs`` call.  This package compiles the operation
sequence once — matrix, matrix chain, or a whole
:class:`~repro.core.planner.DecodePlan` — into the flat
:class:`RegionProgram` IR, optimises it, and executes it with per-program
table binding and L2-chunked ``np.take`` gathers.  See ``docs/KERNELS.md``.
"""

from __future__ import annotations

from .backends import (
    BACKEND_CHOICES,
    BASELINE_BACKEND,
    BackendTuning,
    ExecutorBackend,
    available_backends,
    default_backend,
    get_backend,
    numba_available,
    register_backend,
    set_default_backend,
    unregister_backend,
)
from .cache import DEFAULT_PROGRAM_CACHE_SIZE, ProgramCache, ProgramCacheStats
from .executor import ProgramExecutor
from .ir import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    Instruction,
    RegionProgram,
)
from .lower import (
    PlanProgram,
    ProgramBuilder,
    lower_encode,
    lower_linear_combination,
    lower_matrix,
    lower_matrix_chain,
    lower_plan,
)
from .ops import CompiledRegionOps
from .optimize import compact_slots, eliminate_dead, optimize_program, share_pairs

__all__ = [
    "OP_COPY",
    "OP_MUL",
    "OP_MULXOR",
    "OP_XOR",
    "OP_ZERO",
    "BACKEND_CHOICES",
    "BASELINE_BACKEND",
    "DEFAULT_PROGRAM_CACHE_SIZE",
    "BackendTuning",
    "CompiledRegionOps",
    "ExecutorBackend",
    "Instruction",
    "PlanProgram",
    "ProgramBuilder",
    "ProgramCache",
    "ProgramCacheStats",
    "ProgramExecutor",
    "RegionProgram",
    "available_backends",
    "compact_slots",
    "default_backend",
    "eliminate_dead",
    "get_backend",
    "lower_encode",
    "lower_linear_combination",
    "lower_matrix",
    "lower_matrix_chain",
    "lower_plan",
    "numba_available",
    "optimize_program",
    "register_backend",
    "set_default_backend",
    "share_pairs",
    "unregister_backend",
]
