"""The baseline backend: per-constant lookup tables + ``np.take``.

This is the executor's original strategy, extracted verbatim: every
``MUL``/``MULXOR`` constant binds to its lookup table (the
``mul8_table`` row for w=8, a 16-entry table for w=4, the SPLIT
byte-lane tables for w=16/32) and execution is pure
``np.take``/``np.bitwise_xor`` with ``out=``.  It supports every field
width and every program, so it doubles as the fallback target when a
faster backend is bypassed (alignment) or quarantined (runtime error).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ...gf.split import split_tables
from ..ir import OP_COPY, OP_MUL, OP_MULXOR, OP_XOR
from .base import ExecutorBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...gf.field import GF
    from ..ir import RegionProgram


class NumpyTablesBackend(ExecutorBackend):
    """Table-gather baseline; supports every width (see module doc)."""

    name = "numpy"

    def supports(self, field: "GF", program: "RegionProgram") -> bool:
        return True

    def _table_for(self, field: "GF", const: int):
        if field.w == 8:
            return field.mul8_table[const]
        if field.w == 4:
            def build() -> np.ndarray:
                table = field.mul(
                    field.dtype.type(const), np.arange(16, dtype=field.dtype)
                )
                table.setflags(write=False)
                return table

            return self._cached_table((4, field.polynomial, const), build)
        return split_tables(field, const)

    def bind(self, field: "GF", program: "RegionProgram") -> tuple:
        return tuple(
            (
                op,
                dst,
                src,
                self._table_for(field, const) if op in (OP_MUL, OP_MULXOR) else None,
            )
            for op, dst, src, const in program.instructions
        )

    def execute_chunk(
        self,
        bound: tuple,
        pool: Sequence[np.ndarray],
        n: int,
        scratch: object,
    ) -> None:
        ms = scratch[:n]
        nbytes = ms.dtype.itemsize if ms.dtype.itemsize > 1 else 0
        for op, dst, src, table in bound:
            d = pool[dst]
            if op == OP_XOR:
                np.bitwise_xor(d, pool[src], out=d)
            elif op == OP_MULXOR:
                if nbytes >= 2:
                    lanes = pool[src].view(np.uint8).reshape(n, nbytes)
                    for i in range(nbytes):
                        np.take(table[i], lanes[:, i], out=ms)
                        np.bitwise_xor(d, ms, out=d)
                else:
                    np.take(table, pool[src], out=ms)
                    np.bitwise_xor(d, ms, out=d)
            elif op == OP_MUL:
                if nbytes >= 2:
                    lanes = pool[src].view(np.uint8).reshape(n, nbytes)
                    np.take(table[0], lanes[:, 0], out=d)
                    for i in range(1, nbytes):
                        np.take(table[i], lanes[:, i], out=ms)
                        np.bitwise_xor(d, ms, out=d)
                else:
                    np.take(table, pool[src], out=d)
            elif op == OP_COPY:
                np.copyto(d, pool[src])
            else:  # OP_ZERO
                d.fill(0)
