"""Pluggable executor backends for compiled RegionPrograms.

The :class:`~repro.kernels.executor.ProgramExecutor` delegates chunk
execution to a registered :class:`ExecutorBackend`:

- ``numpy`` — the table-gather baseline (every width; the fallback
  target for bypasses and quarantines);
- ``bitsliced`` — paired bit-plane gathers through fused two-symbol
  tables for w=4/8 (typically 1.2-2x the baseline, see CI gate);
- ``splittab`` — fused halfword split tables (log/antilog-built for
  w=16) for w=16/32;
- ``numba`` — optional JIT-compiled instruction stream, registered only
  when numba imports cleanly (never required).

Selection is ``"auto"`` by default: the executor micro-benchmarks the
candidates per *(program shape, w, region size)* class and caches the
winner (:mod:`.tuning`).  A process-wide override is available through
:func:`set_default_backend` (wired to ``AppConfig.kernels.backend``)
and per-executor through ``ProgramExecutor(backend=...)``; the
``ppm kernel-bench --backend`` flag exercises a specific one.

Registering your own backend: subclass :class:`ExecutorBackend`,
implement ``supports`` / ``bind`` / ``execute_chunk`` and call
:func:`register_backend` — docs/KERNELS.md walks through it.
"""

from __future__ import annotations

import threading

from .base import ExecutorBackend, RegionAlignmentError
from .bitsliced import BitslicedBackend, paired_table
from .numba_jit import NumbaBackend, numba_available
from .numpy_tables import NumpyTablesBackend
from .splittab import SplitTableBackend, halfword_tables
from .tuning import BackendTuning, shape_key, size_class

#: The baseline every executor can always fall back to.
BASELINE_BACKEND = "numpy"

#: Names accepted by config / CLI selection knobs ("auto" + registry).
BACKEND_CHOICES = ("auto", "numpy", "bitsliced", "splittab", "numba")

_registry_lock = threading.Lock()
_REGISTRY: dict[str, ExecutorBackend] = {}
_DEFAULT = "auto"


def register_backend(backend: ExecutorBackend, replace: bool = False) -> None:
    """Add a backend to the registry (``replace=True`` to override)."""
    with _registry_lock:
        if backend.name in _REGISTRY and not replace:
            raise ValueError(f"backend {backend.name!r} is already registered")
        _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (the baseline cannot be removed)."""
    if name == BASELINE_BACKEND:
        raise ValueError("the baseline numpy backend cannot be unregistered")
    with _registry_lock:
        _REGISTRY.pop(name, None)


def get_backend(name: str) -> ExecutorBackend:
    """The registered backend called ``name`` (KeyError if absent)."""
    with _registry_lock:
        try:
            return _REGISTRY[name]
        except KeyError:
            raise KeyError(
                f"no executor backend {name!r}; registered: "
                f"{sorted(_REGISTRY)}"
            ) from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, baseline first."""
    with _registry_lock:
        names = list(_REGISTRY)
    names.sort(key=lambda n: (n != BASELINE_BACKEND, n))
    return tuple(names)


def set_default_backend(name: str) -> None:
    """Process-wide default selection policy: ``"auto"`` or a name.

    This is what ``AppConfig.kernels.backend`` applies; executors built
    without an explicit ``backend=`` consult it on every execution.
    """
    global _DEFAULT
    if name != "auto":
        get_backend(name)  # validate eagerly
    with _registry_lock:
        _DEFAULT = name


def default_backend() -> str:
    """The current process-wide selection policy name."""
    with _registry_lock:
        return _DEFAULT


register_backend(NumpyTablesBackend())
register_backend(BitslicedBackend())
register_backend(SplitTableBackend())
if numba_available():  # pragma: no cover - depends on the environment
    register_backend(NumbaBackend())

__all__ = [
    "BACKEND_CHOICES",
    "BASELINE_BACKEND",
    "BackendTuning",
    "BitslicedBackend",
    "ExecutorBackend",
    "NumbaBackend",
    "NumpyTablesBackend",
    "RegionAlignmentError",
    "SplitTableBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "halfword_tables",
    "numba_available",
    "paired_table",
    "register_backend",
    "set_default_backend",
    "shape_key",
    "size_class",
    "unregister_backend",
]
