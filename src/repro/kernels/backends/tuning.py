"""Auto-tune state: per-class backend winners, quarantine, fallbacks.

The executor micro-benchmarks the registered backends the first time it
executes a given *(program shape, w, region-size)* class and records the
winner here; every later execution of that class skips straight to the
chosen backend.  The state lives on the :class:`ProgramCache` (one per
decoder / pipeline), so winners persist exactly as long as the compiled
programs they were measured for — per-process, shared across threads.

Quarantine is the safety valve: a backend that *raises* during a real
execution is excluded from every future selection (and every recorded
win it holds is voided), the execution replays on the baseline, and the
executor's ``backend_fallbacks`` stat is bumped.  A quarantine is
process-wide sticky per tuning instance — a backend whose JIT broke
mid-process stays benched until restart.
"""

from __future__ import annotations

import threading

from ..ir import RegionProgram


def shape_key(program: RegionProgram, size_class: int) -> tuple:
    """The auto-tune class of one execution.

    Programs with equal instruction mix and pool geometry perform
    identically, so tuning keys off the *shape*, not the identity —
    every same-shaped erasure pattern shares one measured winner.
    ``size_class`` buckets the region length by power of two.
    """
    return (
        program.w,
        program.num_inputs,
        program.pool_size,
        len(program.instructions),
        program.mult_xors,
        program.xor_only,
        size_class,
    )


def size_class(length: int) -> int:
    """Power-of-two bucket of a region length (0 for empty)."""
    return int(length).bit_length()


class BackendTuning:
    """Thread-safe winner/quarantine store (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._choices: dict[tuple, str] = {}
        self._quarantined: set[str] = set()

    def choice(self, key: tuple) -> str | None:
        with self._lock:
            name = self._choices.get(key)
            if name is not None and name in self._quarantined:
                return None
            return name

    def record(self, key: tuple, name: str) -> None:
        with self._lock:
            self._choices[key] = name

    def quarantine(self, name: str) -> None:
        with self._lock:
            self._quarantined.add(name)
            # void every win the backend holds so re-tunes pick fresh
            for key, chosen in list(self._choices.items()):
                if chosen == name:
                    del self._choices[key]

    def is_quarantined(self, name: str) -> bool:
        with self._lock:
            return name in self._quarantined

    def quarantined(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._quarantined)

    def choices(self) -> dict[tuple, str]:
        """Snapshot of recorded winners (for observability/tests)."""
        with self._lock:
            return dict(self._choices)
