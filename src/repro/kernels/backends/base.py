"""The executor-backend contract: how a RegionProgram chunk gets run.

A backend owns exactly two things:

- **binding**: turning a validated :class:`~repro.kernels.ir.RegionProgram`
  into an immutable, backend-specific instruction form (typically the
  instruction tuples with every ``MUL``/``MULXOR`` constant resolved to
  whatever precomputed tables the backend gathers through);
- **chunk execution**: running that bound form over one L2-sized chunk
  of the slot pool.

Everything else — slot-role classification, chunking, per-thread
scratch, op accounting, auto-tune, fallback — stays in
:class:`~repro.kernels.executor.ProgramExecutor`, so a backend is a
small, testable object and every backend books identical model op
counts by construction.

Bound forms must be immutable once published (the executor caches and
shares them across threads); per-constant table caches inside a backend
must therefore take their own lock.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...gf.field import GF
    from ..ir import RegionProgram

#: Per-backend constant-table caches are cleared past this many entries
#: (constants are bounded by 2^w per field, so this only triggers when
#: many fields/polynomials share one process).
MAX_TABLE_CACHE = 1024


class RegionAlignmentError(Exception):
    """A caller buffer does not meet the backend's memory layout.

    Raised by backends that reinterpret region memory at a wider dtype
    (e.g. the bitsliced backend's uint16 pairing) when an input/output
    array is not suitably aligned.  The executor treats this as a
    *bypass*, not a failure: the call re-runs on the baseline and the
    backend is NOT quarantined (the very next, aligned call may use it
    again).  Checking happens inside the backend's own view
    construction, so the aligned common case pays nothing.
    """


class ExecutorBackend:
    """One way of executing RegionProgram chunks (see module docstring).

    Subclasses set :attr:`name`, implement :meth:`supports`,
    :meth:`bind` and :meth:`execute_chunk`, and may raise
    :attr:`alignment` when their kernels reinterpret region memory at a
    wider dtype (the executor falls back to the baseline for
    misaligned caller buffers instead of crashing).
    """

    #: Registry name (also the ``AppConfig.kernels.backend`` /
    #: ``ppm kernel-bench --backend`` spelling).
    name: str = "?"

    #: Required data-pointer alignment, in bytes, of every input/output
    #: region (1 = none).  Scratch and temporaries are always aligned.
    alignment: int = 1

    def __init__(self) -> None:
        self._table_lock = threading.Lock()
        self._tables: dict[tuple, object] = {}

    # -- contract ----------------------------------------------------------

    def supports(self, field: "GF", program: "RegionProgram") -> bool:
        """Whether this backend can execute ``program`` on ``field``."""
        raise NotImplementedError

    def bind(self, field: "GF", program: "RegionProgram") -> tuple:
        """Immutable backend-specific instruction form of ``program``."""
        raise NotImplementedError

    def make_scratch(self, field: "GF", chunk_symbols: int) -> object:
        """Per-thread scratch for :meth:`execute_chunk` (default: one
        chunk-sized multiply buffer in the field dtype)."""
        return np.empty(chunk_symbols, dtype=field.dtype)

    def execute_chunk(
        self,
        bound: tuple,
        pool: Sequence[np.ndarray],
        n: int,
        scratch: object,
    ) -> None:
        """Run the bound instructions over one chunk of ``n`` symbols.

        ``pool[slot]`` is the length-``n`` region view for each slot
        (inputs, outputs and temporaries alike); results are written
        in place through the pool views.
        """
        raise NotImplementedError

    # -- shared plumbing ---------------------------------------------------

    def _cached_table(self, key: tuple, build) -> object:
        """Per-(field, const) table memo, thread-safe and bounded."""
        with self._table_lock:
            table = self._tables.get(key)
        if table is not None:
            return table
        table = build()  # build outside the lock; ties are harmless
        with self._table_lock:
            if len(self._tables) >= MAX_TABLE_CACHE:
                self._tables.clear()
            table = self._tables.setdefault(key, table)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
