"""Optional numba-JIT backend: one fused nopython loop per chunk.

numba is **never required** — this module imports cleanly without it,
:func:`numba_available` reports whether the backend registered, and
nothing else in the package references numba.  When present, the
backend packs the instruction stream into flat arrays (opcode / dst /
src / table-row index) plus one stacked ``(num_tables, 256)`` uint8
table matrix, and a cached ``@njit`` kernel walks the whole stream
symbol-by-symbol in compiled code — no per-instruction ufunc dispatch
at all.

Only w=8 programs are JITted (the stacked-row layout is the mul8 row
table); other widths report ``supports() == False`` and the executor
never selects the backend for them.  Any runtime failure (a numba
installation breaking mid-process included) is caught by the executor,
which falls back to the baseline, quarantines this backend and bumps
the ``backend_fallbacks`` stat — see the executor docs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..ir import OP_MUL, OP_MULXOR
from .base import ExecutorBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...gf.field import GF
    from ..ir import RegionProgram

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the common case in CI images
    _numba = None


def numba_available() -> bool:
    """Whether numba imported at package load (backend registered)."""
    return _numba is not None


_KERNEL = None


def _kernel():  # pragma: no cover - requires numba
    """Build (once) the jitted instruction-stream interpreter."""
    global _KERNEL
    if _KERNEL is None:
        @_numba.njit(cache=True)
        def run(ops, dsts, srcs, rows, tables, pool, n):
            for j in range(ops.shape[0]):
                op = ops[j]
                d = pool[dsts[j]]
                if op == 2:  # OP_XOR
                    s = pool[srcs[j]]
                    for k in range(n):
                        # nopython-compiled, not a Python-level loop
                        d[k] ^= s[k]  # ppm: noqa[PPM003]
                elif op == 4:  # OP_MULXOR
                    s = pool[srcs[j]]
                    t = tables[rows[j]]
                    for k in range(n):
                        d[k] ^= t[s[k]]  # ppm: noqa[PPM003]
                elif op == 3:  # OP_MUL
                    s = pool[srcs[j]]
                    t = tables[rows[j]]
                    for k in range(n):
                        d[k] = t[s[k]]
                elif op == 1:  # OP_COPY
                    s = pool[srcs[j]]
                    for k in range(n):
                        d[k] = s[k]
                else:  # OP_ZERO
                    for k in range(n):
                        d[k] = 0

        _KERNEL = run
    return _KERNEL


class NumbaBackend(ExecutorBackend):
    """JIT-compiled instruction-stream backend (w=8, optional)."""

    name = "numba"

    def supports(self, field: "GF", program: "RegionProgram") -> bool:
        return _numba is not None and field.w == 8

    def bind(self, field: "GF", program: "RegionProgram") -> tuple:
        if _numba is None:  # defensive: bind after a broken install
            raise RuntimeError("numba is not available")
        instrs = program.instructions
        ops = np.array([i[0] for i in instrs], dtype=np.int64)
        dsts = np.array([i[1] for i in instrs], dtype=np.int64)
        srcs = np.array([max(i[2], 0) for i in instrs], dtype=np.int64)
        consts = sorted({i[3] for i in instrs if i[0] in (OP_MUL, OP_MULXOR)})
        row_of = {c: r for r, c in enumerate(consts)}
        rows = np.array(
            [row_of.get(i[3], 0) if i[0] in (OP_MUL, OP_MULXOR) else 0 for i in instrs],
            dtype=np.int64,
        )
        tables = np.stack(
            [field.mul8_table[c] for c in consts]
        ) if consts else np.zeros((1, 256), dtype=np.uint8)
        for arr in (ops, dsts, srcs, rows):
            arr.setflags(write=False)
        return (ops, dsts, srcs, rows, np.ascontiguousarray(tables))

    def execute_chunk(
        self,
        bound: tuple,
        pool: Sequence[np.ndarray],
        n: int,
        scratch: object,
    ) -> None:  # pragma: no cover - requires numba
        ops, dsts, srcs, rows, tables = bound
        # typed list: numba reflects a homogeneous list of 1-D uint8 views
        _kernel()(ops, dsts, srcs, rows, tables, list(pool), n)
