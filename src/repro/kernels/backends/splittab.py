"""Split-table backend for wide words: fused 16-bit-lane gathers.

The baseline executes w=16/32 multiplies through *byte*-lane SPLIT
tables: ``w/8`` strided gathers plus as many XORs per ``MULXOR``.  This
backend fuses adjacent byte lanes into halfword lanes, halving both:

- **w=16** — one 64K-entry table per constant, built through the
  field's log/antilog tables (``T[v] = exp[log[c] + log[v]]``,
  vectorised by :meth:`repro.gf.field.GF.mul`): a ``MULXOR`` is a
  single ``np.take`` + XOR instead of two gathers + two XORs;
- **w=32** — GF(2^32) has no practical log table (2^32 entries), so the
  two halfword tables are composed from the byte-lane SPLIT products
  instead: ``T_lo[b1*256+b0] = c*(b1<<8) ^ c*b0`` is the XOR-outer of
  the two low byte-lane tables (and ``T_hi`` of the two high ones) —
  two gathers + two XORs per ``MULXOR`` instead of four of each.

Tables are 128 KiB (w=16) / 2 x 256 KiB (w=32) per constant, cached per
``(w, polynomial, constant)``.  Indices for w=32 are computed with two
in-place mask/shift passes into a uint32 scratch; w=16 regions index
their table directly, so any length and alignment is fine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ...gf.split import split_tables
from ..ir import OP_COPY, OP_MUL, OP_MULXOR, OP_XOR
from .base import ExecutorBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...gf.field import GF
    from ..ir import RegionProgram


def halfword_tables(field: "GF", const: int) -> tuple[np.ndarray, ...]:
    """The fused halfword-lane tables for ``const`` (1 for w=16, 2 for
    w=32), each read-only with 65536 entries in the field dtype."""
    if field.w == 16:
        # log/antilog build: field.mul vectorises exp[log[c] + log[v]]
        table = field.mul(
            field.dtype.type(const), np.arange(65536, dtype=field.dtype)
        )
        table.setflags(write=False)
        return (table,)
    lanes = split_tables(field, const)  # 4 byte-lane tables for w=32
    lo = np.bitwise_xor.outer(lanes[1], lanes[0]).ravel()
    hi = np.bitwise_xor.outer(lanes[3], lanes[2]).ravel()
    lo.setflags(write=False)
    hi.setflags(write=False)
    return (lo, hi)


class SplitTableBackend(ExecutorBackend):
    """Halfword split-table backend for w=16/32 (see module docstring)."""

    name = "splittab"

    def supports(self, field: "GF", program: "RegionProgram") -> bool:
        return field.w in (16, 32)

    def _tables_for(self, field: "GF", const: int) -> tuple[np.ndarray, ...]:
        key = (field.w, field.polynomial, const)
        return self._cached_table(key, lambda: halfword_tables(field, const))

    def bind(self, field: "GF", program: "RegionProgram") -> tuple:
        bound = []
        for op, dst, src, const in program.instructions:
            if op in (OP_MUL, OP_MULXOR):
                bound.append((op, dst, src, self._tables_for(field, const)))
            else:
                bound.append((op, dst, src, None))
        return tuple(bound)

    def make_scratch(self, field: "GF", chunk_symbols: int) -> object:
        # multiply buffer + (for w=32) an index buffer for the mask/shift
        return (
            np.empty(chunk_symbols, dtype=field.dtype),
            np.empty(chunk_symbols, dtype=field.dtype),
        )

    def execute_chunk(
        self,
        bound: tuple,
        pool: Sequence[np.ndarray],
        n: int,
        scratch: object,
    ) -> None:
        ms = scratch[0][:n]
        idx = scratch[1][:n]
        for op, dst, src, tables in bound:
            d = pool[dst]
            if op == OP_XOR:
                np.bitwise_xor(d, pool[src], out=d)
            elif op == OP_MULXOR:
                if len(tables) == 1:  # w=16: the value is the index
                    np.take(tables[0], pool[src], out=ms)
                    np.bitwise_xor(d, ms, out=d)
                else:  # w=32: low then high halfword lanes
                    np.bitwise_and(pool[src], 0xFFFF, out=idx)
                    np.take(tables[0], idx, out=ms)
                    np.bitwise_xor(d, ms, out=d)
                    np.right_shift(pool[src], 16, out=idx)
                    np.take(tables[1], idx, out=ms)
                    np.bitwise_xor(d, ms, out=d)
            elif op == OP_MUL:
                if len(tables) == 1:
                    np.take(tables[0], pool[src], out=d)
                else:
                    np.bitwise_and(pool[src], 0xFFFF, out=idx)
                    np.take(tables[0], idx, out=d)
                    np.right_shift(pool[src], 16, out=idx)
                    np.take(tables[1], idx, out=ms)
                    np.bitwise_xor(d, ms, out=d)
            elif op == OP_COPY:
                np.copyto(d, pool[src])
            else:  # OP_ZERO
                d.fill(0)
