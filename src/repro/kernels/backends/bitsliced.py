"""Bitsliced GF(2^8) backend: paired bit-plane gathers over uint16 views.

A constant multiply over GF(2^8) is linear over GF(2): the product
table ``T8[v] = c*v`` is the XOR of the bit-plane images ``c*2^i`` the
set bits of ``v`` select.  Instead of gathering one *byte* per symbol
through ``T8``, this backend precomputes, per constant, the paired
table over two adjacent symbols::

    T16[(hi << 8) | lo] = (T8[hi] << 8) | T8[lo]

— i.e. the XOR of the two byte-lane plane images, fused into one 64K ×
uint16 table (128 KiB) — and then gathers *two symbols per lookup* by
viewing the region as ``uint16``.  Halving the gather count pays once
the region is long enough to amortise the paired table's cache
footprint: below ~16K symbols the 128 KiB-per-constant tables thrash
and the 256-byte baseline tables win (the auto-tuner keeps the
baseline there), while at 64K-symbol regions the backend measures
~1.5-1.6x and the CI gate checks ≥1.2x.  XOR/COPY ops run exactly as
the baseline.

Odd-length chunks handle their final symbol through the ordinary byte
table; misaligned caller buffers (a uint16 view needs 2-byte-aligned
data) raise :class:`~repro.kernels.backends.base.RegionAlignmentError`
from the view construction itself, and the executor re-runs the call on
the baseline without quarantining.  w=4 regions (one nibble-valued
symbol per byte) use the same pairing over a zero-padded byte table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..ir import OP_COPY, OP_MUL, OP_MULXOR, OP_XOR
from .base import ExecutorBackend, RegionAlignmentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...gf.field import GF
    from ..ir import RegionProgram


def _byte_table(field: "GF", const: int) -> np.ndarray:
    """256-entry ``uint8`` product table (zero-padded for w=4)."""
    if field.w == 8:
        return field.mul8_table[const]
    # w=4: symbols are 0..15 stored one per byte, so only the first 16
    # entries are ever indexed; the padding keeps the pairing math unified
    table = np.zeros(256, dtype=np.uint8)
    table[:16] = field.mul(field.dtype.type(const), np.arange(16, dtype=field.dtype))
    return table


def paired_table(field: "GF", const: int) -> np.ndarray:
    """The fused two-symbol table ``T16`` (read-only, 64K x uint16)."""
    t8 = _byte_table(field, const).astype(np.uint16)
    # entry [hi, lo] = plane image of the high byte ^ image of the low
    # byte; ravel() makes the little-endian uint16 view the direct index
    t16 = np.bitwise_xor.outer(t8 << 8, t8).ravel()
    t16.setflags(write=False)
    return t16


class BitslicedBackend(ExecutorBackend):
    """Paired-gather GF(2^8)/GF(2^4) backend (see module docstring)."""

    name = "bitsliced"
    alignment = 2  # regions are re-viewed as uint16 two-symbol pairs

    def supports(self, field: "GF", program: "RegionProgram") -> bool:
        return field.w in (4, 8)

    def _tables_for(self, field: "GF", const: int) -> tuple[np.ndarray, np.ndarray]:
        key = (field.w, field.polynomial, const)

        def build() -> tuple[np.ndarray, np.ndarray]:
            t8 = _byte_table(field, const)
            return paired_table(field, const), t8

        return self._cached_table(key, build)

    def bind(self, field: "GF", program: "RegionProgram") -> tuple:
        bound = []
        for op, dst, src, const in program.instructions:
            if op in (OP_MUL, OP_MULXOR):
                t16, t8 = self._tables_for(field, const)
                bound.append((op, dst, src, t16, t8))
            else:
                bound.append((op, dst, src, None, None))
        return tuple(bound)

    def execute_chunk(
        self,
        bound: tuple,
        pool: Sequence[np.ndarray],
        n: int,
        scratch: object,
    ) -> None:
        half = n >> 1
        even = half << 1
        # one uint16 view per pool slot, shared by every instruction in
        # the chunk (view construction amortises over the whole stream);
        # numpy refuses the dtype change on odd data pointers, which is
        # exactly the bypass signal the executor handles
        try:
            pool16 = [region[:even].view(np.uint16) for region in pool]
        except ValueError as exc:
            raise RegionAlignmentError(str(exc)) from None
        ms16 = scratch[:even].view(np.uint16)
        tail = n - even  # 0 or 1
        for op, dst, src, t16, t8 in bound:
            d = pool[dst]
            if op == OP_XOR:
                np.bitwise_xor(d, pool[src], out=d)
            elif op == OP_MULXOR:
                np.take(t16, pool16[src], out=ms16)
                np.bitwise_xor(pool16[dst], ms16, out=pool16[dst])
                if tail:
                    # single odd trailing symbol per chunk, not a region loop
                    d[even] = d[even] ^ t8[pool[src][even]]  # ppm: noqa[PPM003]
            elif op == OP_MUL:
                np.take(t16, pool16[src], out=pool16[dst])
                if tail:
                    d[even] = t8[pool[src][even]]
            elif op == OP_COPY:
                np.copyto(d, pool[src])
            else:  # OP_ZERO
                d.fill(0)
