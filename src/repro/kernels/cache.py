"""LRU cache of compiled RegionPrograms, the sibling of PR 2's PlanCache.

Two key families:

- **content keys** for matrix / chain / row programs —
  ``GFMatrix.array`` returns a fresh read-only view on every access, so
  identity is useless; the key hashes the coefficient bytes instead
  (coding matrices are tiny, a few hundred bytes at most);
- **identity keys** for plan programs — :class:`DecodePlan` objects are
  long-lived (pinned by the decoders' plan caches and the pipeline's
  ``PlanCache``), so ``id(plan)`` is stable; the entry pins the plan to
  keep it that way.

Compilation happens *outside* the lock (lowering can take milliseconds
for large plans); a double-checked insert keeps concurrent misses
correct, at worst compiling the same program twice and keeping one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..gf.field import GF
from .backends import BackendTuning
from .ir import RegionProgram
from .lower import (
    PlanProgram,
    lower_encode,
    lower_linear_combination,
    lower_matrix,
    lower_matrix_chain,
    lower_plan,
)

#: Default capacity: programs are small (hundreds of instruction tuples),
#: and a rebuild workload touches a handful of failure geometries.
DEFAULT_PROGRAM_CACHE_SIZE = 256


@dataclass
class ProgramCacheStats:
    """Hit/miss/eviction tallies for a :class:`ProgramCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _matrix_key(field: GF, matrix: np.ndarray) -> tuple:
    return (
        "matrix",
        field.w,
        field.polynomial,
        matrix.shape,
        matrix.tobytes(),
    )


class ProgramCache:
    """Thread-safe LRU of compiled programs (see module docstring).

    ``verify_admission`` (default on) runs the cheap static dataflow
    pass (:func:`repro.verify.dataflow.check_program`) on every program
    admitted through a cache miss, so a buggy builder or optimiser pass
    can never park a corrupting program where every later decode will
    find it.  The check is one linear scan — noise next to lowering.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_PROGRAM_CACHE_SIZE,
        verify_admission: bool = True,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.verify_admission = verify_admission
        self._lock = threading.Lock()
        # key -> (value, pin); pin keeps identity-keyed objects alive
        self._entries: OrderedDict[tuple, tuple[object, object]] = OrderedDict()
        self.stats = ProgramCacheStats()
        #: Backend auto-tune state (winners + quarantine), shared by
        #: every executor built over this cache so a winner measured
        #: for a program class survives as long as the programs do.
        self.tuning = BackendTuning()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _admit(self, value: object) -> None:
        # deferred: verify imports kernels (cycle guard)
        from ..verify.dataflow import check_program

        program = value.program if isinstance(value, PlanProgram) else value
        if isinstance(program, RegionProgram):
            check_program(program)

    def _get_or_build(self, key: tuple, build: Callable[[], object], pin: object = None):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry[0]
        value = build()  # compile outside the lock
        if self.verify_admission:
            self._admit(value)  # raises before a bad program is cached
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:  # a concurrent miss beat us to it
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry[0]
            self.stats.misses += 1
            self._entries[key] = (value, pin)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value

    # -- lookups -----------------------------------------------------------

    def matrix_program(
        self, field: GF, matrix: np.ndarray, optimize: bool = True
    ) -> RegionProgram:
        key = _matrix_key(field, matrix) + (optimize,)
        return self._get_or_build(
            key, lambda: lower_matrix(field, matrix, optimize=optimize)
        )

    def chain_program(
        self, field: GF, matrices: Sequence[np.ndarray], optimize: bool = True
    ) -> RegionProgram:
        key = (
            "chain",
            field.w,
            field.polynomial,
            tuple(m.shape for m in matrices),
            tuple(m.tobytes() for m in matrices),
            optimize,
        )
        return self._get_or_build(
            key, lambda: lower_matrix_chain(field, matrices, optimize=optimize)
        )

    def row_program(
        self, field: GF, coefficients: np.ndarray, optimize: bool = True
    ) -> RegionProgram:
        key = (
            "row",
            field.w,
            field.polynomial,
            coefficients.shape,
            coefficients.tobytes(),
            optimize,
        )
        return self._get_or_build(
            key, lambda: lower_linear_combination(field, coefficients, optimize=optimize)
        )

    def plan_program(self, field: GF, plan, optimize: bool = True) -> PlanProgram:
        key = ("plan", field.w, field.polynomial, id(plan), optimize)
        return self._get_or_build(
            key, lambda: lower_plan(field, plan, optimize=optimize), pin=plan
        )

    def encode_program(
        self, field: GF, code, policy=None, optimize: bool = True
    ) -> PlanProgram:
        """The fused all-parities encode program for ``code``.

        Content-keyed on the parity-check matrix (plus the sequence
        policy), so equivalent code instances — e.g. one per pipeline
        worker — share one compiled program.
        """
        key = (
            "encode",
            field.w,
            field.polynomial,
            code.H.array.shape,
            code.H.array.tobytes(),
            None if policy is None else policy.value,
            optimize,
        )
        return self._get_or_build(
            key, lambda: lower_encode(field, code, policy=policy, optimize=optimize)
        )
