"""Lowering: coefficient matrices and DecodePlans → RegionProgram IR.

Lowering is where the paper's cost model is frozen into the program:
every nonzero coefficient of every applied matrix becomes exactly one
*model* ``mult_XOR`` (recorded in :attr:`RegionProgram.mult_xors`
before any CSE), so a compiled program books the same counts the
interpreted :class:`~repro.gf.region.RegionOps` path would.  A full
:class:`~repro.core.planner.DecodePlan` lowers to ONE fused program:
group stages feed their recovered slots straight into the rest stage
(the paper's Step 4) with no intermediate block dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..gf.field import GF
from .ir import (
    OP_COPY,
    OP_MUL,
    OP_MULXOR,
    OP_XOR,
    OP_ZERO,
    Instruction,
    RegionProgram,
)
from .optimize import Term, optimize_program, share_pairs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports kernels)
    from ..codes.base import ErasureCode
    from ..core.planner import DecodePlan
    from ..core.sequences import SequencePolicy


class ProgramBuilder:
    """Incrementally assemble a :class:`RegionProgram`.

    A *stage* is one matrix application: a list of rows, each row a list
    of ``(slot, const)`` terms with nonzero constants.  Model op counts
    are taken from the rows as given — i.e. before pair sharing — so
    optimisation never changes what the counter will report.
    """

    def __init__(self, field: GF, num_inputs: int, label: str = ""):
        if num_inputs < 1:
            raise ValueError("a region program needs at least one input")
        self.field = field
        self.num_inputs = num_inputs
        self.next_slot = num_inputs
        self.instructions: list[Instruction] = []
        self.mult_xors = 0
        self.xor_only = 0
        self.label = label

    def new_slot(self) -> int:
        slot = self.next_slot
        # builders are call-local to one lower_* invocation, never shared
        self.next_slot += 1  # ppm: noqa[PPM010]
        return slot

    def emit_terms(self, dst: int, terms: Sequence[Term]) -> None:
        """Emit ``pool[dst] = XOR_j const_j * pool[slot_j]`` (uncounted)."""
        if not terms:
            self.instructions.append((OP_ZERO, dst, -1, 0))  # ppm: noqa[PPM010]
            return
        slot, const = terms[0]
        if const == 1:
            self.instructions.append((OP_COPY, dst, slot, 1))
        else:
            self.instructions.append((OP_MUL, dst, slot, const))
        for slot, const in terms[1:]:
            if const == 1:
                self.instructions.append((OP_XOR, dst, slot, 1))
            else:
                self.instructions.append((OP_MULXOR, dst, slot, const))

    def emit_stage(self, rows: list[list[Term]], share: bool = True) -> list[int]:
        """Emit one matrix application; returns the output slot per row."""
        for row in rows:
            self.mult_xors += len(row)  # ppm: noqa[PPM010] - call-local builder
            self.xor_only += sum(  # ppm: noqa[PPM010] - call-local builder
                1 for _slot, const in row if const == 1
            )
        if share:
            pair_defs, rows, self.next_slot = share_pairs(rows, self.next_slot)
            for slot, pair in pair_defs:
                self.emit_terms(slot, pair)
        out_slots = []
        for row in rows:
            dst = self.new_slot()
            self.emit_terms(dst, row)
            out_slots.append(dst)
        return out_slots

    def finish(self, outputs: Sequence[int], optimize: bool = True) -> RegionProgram:
        program = RegionProgram(
            w=self.field.w,
            num_inputs=self.num_inputs,
            pool_size=self.next_slot,
            instructions=tuple(self.instructions),
            outputs=tuple(outputs),
            mult_xors=self.mult_xors,
            xor_only=self.xor_only,
            label=self.label,
        )
        if optimize:
            program = optimize_program(program)
        program.validate()
        # deferred: verify imports kernels, so kernels cannot import
        # verify at module scope.  The cheap (non-strict) dataflow pass
        # is the admission gate for every freshly compiled program.
        from ..verify.dataflow import check_program

        return check_program(program)


def _matrix_rows(matrix: np.ndarray, slots: Sequence[int]) -> list[list[Term]]:
    """Rows of (slot, const) terms, one per matrix row, zeros dropped."""
    rows: list[list[Term]] = []
    for i in range(matrix.shape[0]):
        rows.append(
            [
                (slots[j], int(matrix[i, j]))
                for j in range(matrix.shape[1])
                if int(matrix[i, j]) != 0
            ]
        )
    return rows


def lower_matrix(
    field: GF,
    matrix: np.ndarray,
    *,
    optimize: bool = True,
    share: bool = True,
    label: str = "matrix",
) -> RegionProgram:
    """Compile one matrix-times-block-vector product."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D coefficient matrix, got shape {matrix.shape}")
    if matrix.shape[1] == 0:
        raise ValueError("cannot lower a matrix with zero input columns")
    builder = ProgramBuilder(field, matrix.shape[1], label=label)
    outs = builder.emit_stage(_matrix_rows(matrix, range(matrix.shape[1])), share=share)
    return builder.finish(outs, optimize=optimize)


def lower_matrix_chain(
    field: GF,
    matrices: Sequence[np.ndarray],
    *,
    optimize: bool = True,
    share: bool = True,
    label: str = "chain",
) -> RegionProgram:
    """Compile ``regions -> m1 -> m2 -> ...`` as one fused program.

    This is the *normal* calculation sequence (``S`` then ``F^-1``)
    without the intermediate block lists the interpreted path allocates.
    """
    mats = [np.asarray(m) for m in matrices]
    if not mats:
        raise ValueError("cannot lower an empty matrix chain")
    if mats[0].shape[1] == 0:
        raise ValueError("cannot lower a matrix with zero input columns")
    builder = ProgramBuilder(field, mats[0].shape[1], label=label)
    current = list(range(mats[0].shape[1]))
    for m in mats:
        if m.ndim != 2 or m.shape[1] != len(current):
            raise ValueError(
                f"matrix shape {m.shape} incompatible with {len(current)} inputs"
            )
        current = builder.emit_stage(_matrix_rows(m, current), share=share)
    return builder.finish(current, optimize=optimize)


def lower_linear_combination(
    field: GF,
    coefficients: np.ndarray,
    *,
    optimize: bool = True,
    label: str = "row",
) -> RegionProgram:
    """Compile one linear combination (a single-row matrix apply)."""
    coefficients = np.asarray(coefficients)
    if coefficients.ndim != 1:
        raise ValueError("coefficients must be 1-D")
    return lower_matrix(
        field,
        coefficients.reshape(1, -1),
        optimize=optimize,
        share=False,
        label=label,
    )


@dataclass(frozen=True)
class PlanProgram:
    """A compiled :class:`~repro.core.planner.DecodePlan`.

    ``input_ids`` are the block ids the program reads (the true
    survivors — blocks the group stages recover internally are *not*
    inputs), in slot order; ``output_ids`` are the recovered block ids,
    aligned with ``program.outputs``.
    """

    program: RegionProgram
    input_ids: tuple[int, ...]
    output_ids: tuple[int, ...]


def lower_plan(
    field: GF,
    plan: "DecodePlan",
    *,
    optimize: bool = True,
    share: bool = True,
) -> PlanProgram:
    """Fuse an entire decode plan into one region program.

    The emitted stages follow the plan's execution mode exactly:

    - traditional matrix-first: one ``W`` stage (cost C2);
    - traditional normal: ``S`` then ``F^-1`` (cost C1);
    - partitioned: one ``W_i`` stage per group, whose outputs feed the
      rest stage as recovered survivors, then the rest stage in
      matrix-first (C3) or normal (C4) form.

    By construction ``program.mult_xors == plan.predicted_cost``.
    """
    from ..core.sequences import ExecutionMode  # deferred: core imports kernels

    matrix_first_modes = (
        ExecutionMode.TRADITIONAL_MATRIX_FIRST,
        ExecutionMode.PPM_REST_MATRIX_FIRST,
    )
    if plan.uses_partition:
        recovered: set[int] = set()
        needed: set[int] = set()
        for group in plan.groups:
            recovered.update(group.faulty_ids)
            needed.update(group.survivor_ids)
        if plan.rest is not None:
            needed.update(plan.rest.survivor_ids)
        input_ids = tuple(sorted(needed - recovered))
    else:
        input_ids = tuple(plan.traditional.survivor_ids)
    if not input_ids:
        raise ValueError("plan reads no survivor blocks; nothing to compile")
    slot_of = {block_id: slot for slot, block_id in enumerate(input_ids)}
    builder = ProgramBuilder(
        field, len(input_ids), label=f"plan:{plan.mode.value}"
    )

    def emit_split(sub, use_weights: bool) -> None:
        src = [slot_of[b] for b in sub.survivor_ids]
        if use_weights:
            outs = builder.emit_stage(_matrix_rows(sub.weights.array, src), share=share)
        else:
            temps = builder.emit_stage(_matrix_rows(sub.s.array, src), share=share)
            outs = builder.emit_stage(_matrix_rows(sub.f_inv.array, temps), share=share)
        for block_id, slot in zip(sub.faulty_ids, outs):
            slot_of[block_id] = slot

    if plan.uses_partition:
        for group in plan.groups:
            emit_split(group, use_weights=True)
        if plan.rest is not None:
            emit_split(plan.rest, use_weights=plan.mode in matrix_first_modes)
    else:
        emit_split(plan.traditional, use_weights=plan.mode in matrix_first_modes)

    output_ids = tuple(plan.faulty_ids)
    program = builder.finish(
        [slot_of[b] for b in output_ids], optimize=optimize
    )
    return PlanProgram(program=program, input_ids=input_ids, output_ids=output_ids)


def lower_encode(
    field: GF,
    code: "ErasureCode",
    *,
    policy: "SequencePolicy | None" = None,
    optimize: bool = True,
    share: bool = True,
) -> PlanProgram:
    """Compile all parity computations of ``code`` into one fused program.

    Encoding is decoding with every parity position faulty (paper,
    footnote 1), so this lowers that decode plan; under the default
    ``matrix_first`` policy the single emitted stage *is* the generator
    matrix's parity rows (``W = F^-1 S``).  ``input_ids`` are the data
    blocks the program reads, ``output_ids`` the parity blocks it
    produces.  Pass the decoder's own ``policy`` to book exactly the op
    counts its per-stripe encode path would.
    """
    from ..core.planner import plan_decode  # deferred: core imports kernels
    from ..core.sequences import SequencePolicy

    if policy is None:
        policy = SequencePolicy.MATRIX_FIRST
    plan = plan_decode(code.H, code.parity_block_ids, policy=policy)
    lowered = lower_plan(field, plan, optimize=optimize, share=share)
    program = replace(lowered.program, label=f"encode:{plan.mode.value}")
    return PlanProgram(
        program=program,
        input_ids=lowered.input_ids,
        output_ids=lowered.output_ids,
    )
