"""The RegionProgram IR: flat GF(2^w) region programs.

A :class:`RegionProgram` is the compiled form of a decode computation —
a flat list of ``(op, dst, src, const)`` instructions over a slot pool
whose first ``num_inputs`` slots are the input regions (survivor
sectors).  The opcodes mirror :class:`~repro.gf.region.RegionOps` but
with every per-call decision (``a == 0/1`` branching, table-row lookup,
argument checking, op accounting) hoisted to compile time:

==========  ======================================  =================
opcode      semantics                               table bound
==========  ======================================  =================
``ZERO``    ``pool[dst] = 0``                       —
``COPY``    ``pool[dst] = pool[src]``               —
``XOR``     ``pool[dst] ^= pool[src]``              —
``MUL``     ``pool[dst] = const * pool[src]``       once per program
``MULXOR``  ``pool[dst] ^= const * pool[src]``      once per program
==========  ======================================  =================

A program carries two op counts.  ``mult_xors``/``xor_only`` are the
*paper-model* counts — the number of nonzero coefficient applications
the source matrices contain, identical to what the interpreted
:class:`~repro.gf.region.RegionOps` path records — and are what the
executor books into the :class:`~repro.gf.region.OpCounter`.  The
*executed* instruction counts (:attr:`RegionProgram.gathers`,
:attr:`RegionProgram.xors`) reflect the optimised program and may be
lower after common-subexpression elimination; they are diagnostics, not
cost-model quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Opcodes (stable small ints: programs are pure data).
OP_ZERO = 0
OP_COPY = 1
OP_XOR = 2
OP_MUL = 3
OP_MULXOR = 4

OP_NAMES = ("zero", "copy", "xor", "mul", "mulxor")

#: One instruction: ``(op, dst, src, const)``.  ``src`` is ``-1`` and
#: ``const`` is 0 for ``ZERO``; ``const`` is 1 for ``COPY``/``XOR``.
Instruction = tuple[int, int, int, int]


@dataclass(frozen=True)
class RegionProgram:
    """An executable flat region program (see module docstring).

    Attributes
    ----------
    w:
        Field word size the constants live in.
    num_inputs:
        Pool slots ``0 .. num_inputs-1`` are bound to the input regions.
    pool_size:
        Total slot count (inputs + temporaries + outputs).
    instructions:
        The flat ``(op, dst, src, const)`` sequence, in execution order.
    outputs:
        Pool slots holding the results, in output order.
    mult_xors / xor_only:
        Paper-model op counts of the *source* computation (see module
        docstring); ``xor_only`` is the subset with coefficient 1.
    label:
        Human-readable tag for diagnostics (``"plan"``, ``"matrix"``...).
    """

    w: int
    num_inputs: int
    pool_size: int
    instructions: tuple[Instruction, ...]
    outputs: tuple[int, ...]
    mult_xors: int
    xor_only: int
    label: str = ""

    @property
    def gathers(self) -> int:
        """Executed table-gather instructions (``MUL`` + ``MULXOR``)."""
        return sum(1 for op, _d, _s, _c in self.instructions if op in (OP_MUL, OP_MULXOR))

    @property
    def xors(self) -> int:
        """Executed region-XOR passes (``XOR`` + ``MULXOR``)."""
        return sum(1 for op, _d, _s, _c in self.instructions if op in (OP_XOR, OP_MULXOR))

    @property
    def executed_ops(self) -> int:
        """Total executed instructions (post-optimisation)."""
        return len(self.instructions)

    @property
    def constants(self) -> tuple[int, ...]:
        """Distinct multiply constants, sorted — one table binding each."""
        return tuple(
            sorted(
                {c for op, _d, _s, c in self.instructions if op in (OP_MUL, OP_MULXOR)}
            )
        )

    def validate(self) -> None:
        """Structural soundness; raises :class:`ValueError` on violation.

        Checks slot bounds, input immutability, no read-before-define,
        accumulate-into-defined-slot, constant ranges and that every
        output slot is defined.  The *semantic* check (does the program
        compute the plan's transfer matrix) lives in
        :func:`repro.verify.verify_program`.
        """
        if self.num_inputs < 1:
            raise ValueError("a region program needs at least one input")
        if self.pool_size < self.num_inputs:
            raise ValueError(
                f"pool_size {self.pool_size} < num_inputs {self.num_inputs}"
            )
        order = 1 << self.w
        defined = set(range(self.num_inputs))
        for index, (op, dst, src, const) in enumerate(self.instructions):
            where = f"instruction {index} ({OP_NAMES[op] if 0 <= op < len(OP_NAMES) else op})"
            if op not in (OP_ZERO, OP_COPY, OP_XOR, OP_MUL, OP_MULXOR):
                raise ValueError(f"{where}: unknown opcode {op}")
            if not (self.num_inputs <= dst < self.pool_size):
                raise ValueError(
                    f"{where}: dst {dst} outside temp/output range "
                    f"[{self.num_inputs}, {self.pool_size})"
                )
            if op is not OP_ZERO:
                if not (0 <= src < self.pool_size):
                    raise ValueError(f"{where}: src {src} out of range")
                if src == dst:
                    raise ValueError(f"{where}: src aliases dst")
                if src not in defined:
                    raise ValueError(f"{where}: src {src} read before definition")
            if op in (OP_XOR, OP_MULXOR) and dst not in defined:
                raise ValueError(
                    f"{where}: accumulate into undefined slot {dst}"
                )
            if op in (OP_MUL, OP_MULXOR):
                if not (2 <= const < order):
                    raise ValueError(
                        f"{where}: constant {const} outside [2, {order}) "
                        "(0/1 must lower to ZERO/COPY/XOR)"
                    )
            defined.add(dst)
        for slot in self.outputs:
            if not (0 <= slot < self.pool_size):
                raise ValueError(f"output slot {slot} out of range")
            if slot not in defined:
                raise ValueError(f"output slot {slot} never defined")
