"""Numerical analysis: the paper's closed-form cost model and the
predicted-improvement calculators built on it."""

from __future__ import annotations

from .costmodel import PAPER_RANGES, SDConfig, c1_minus_c4, c3_minus_c2, sd_costs
from .energy import (
    EnergyBill,
    EnergyComparison,
    EnergyModel,
    decode_energy,
    energy_comparison,
)
from .improvement import (
    ImprovementBreakdown,
    cost_only_improvement,
    predicted_improvement,
)
from .reliability import (
    MTTDLEstimate,
    ReliabilityModel,
    mttdl,
    mttdl_improvement,
    rebuild_hours,
)

__all__ = [
    "PAPER_RANGES",
    "SDConfig",
    "c1_minus_c4",
    "c3_minus_c2",
    "sd_costs",
    "EnergyBill",
    "EnergyComparison",
    "EnergyModel",
    "decode_energy",
    "energy_comparison",
    "ImprovementBreakdown",
    "cost_only_improvement",
    "predicted_improvement",
    "MTTDLEstimate",
    "ReliabilityModel",
    "mttdl",
    "mttdl_improvement",
    "rebuild_hours",
]
