"""Energy model for encode/decode — the paper's deferred evaluation.

Section IV: "The extra power consumption of PPM is also not high (our
test results show that it is no more than two watts).  But power/energy
is not our focus in this paper, so we did not do detailed evaluation."
This module does that detailed evaluation under a simple, standard model:

    E = E_op * mult_XORs * symbols            (compute energy)
      + P_static * wall_time                  (leakage/base power)
      + E_thread * threads_spawned            (threading overhead)

PPM changes each term differently: it *reduces* compute energy by the
C1 -> min(C2, C4) op reduction, *reduces* static energy via shorter wall
time, and *adds* a small threading term (the paper's "< 2 W" while
active).  :func:`decode_energy` evaluates the model for any plan on any
CPU profile, and :func:`energy_comparison` gives the traditional-vs-PPM
bill the paper left as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.planner import DecodePlan
from ..parallel.simulate import CPUProfile, simulate_ppm_time, simulate_traditional_time


@dataclass(frozen=True)
class EnergyModel:
    """Energy parameters (defaults: server-class magnitudes).

    ``joules_per_symbol_op`` — energy of one mult_XORs on one symbol
    (~0.5 nJ: a few pJ/byte for load+lookup+xor+store at DRAM distance);
    ``static_watts`` — package + DRAM base power attributed to the job;
    ``thread_joules`` — energy to spawn and retire one worker;
    ``active_thread_watts`` — extra power per busy worker (the paper's
    "no more than two watts" observation, per-thread share).
    """

    joules_per_symbol_op: float = 0.5e-9
    static_watts: float = 20.0
    thread_joules: float = 1e-4
    active_thread_watts: float = 0.5


@dataclass(frozen=True)
class EnergyBill:
    """Decomposed energy of one decode (joules)."""

    compute_j: float
    static_j: float
    threading_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.static_j + self.threading_j


def decode_energy(
    plan: DecodePlan,
    profile: CPUProfile,
    threads: int,
    sector_symbols: int,
    model: EnergyModel | None = None,
    traditional: bool = False,
) -> EnergyBill:
    """Energy bill for decoding one stripe under the model."""
    model = model if model is not None else EnergyModel()
    if traditional:
        ops = plan.costs.c1
        sim = simulate_traditional_time(plan, profile, sector_symbols)
        active_threads = 1
        spawned = 0
    else:
        ops = plan.predicted_cost
        sim = simulate_ppm_time(plan, profile, threads, sector_symbols)
        active_threads = min(threads, max(1, plan.p)) if plan.uses_partition else 1
        spawned = active_threads if active_threads > 1 else 0
    compute = model.joules_per_symbol_op * ops * sector_symbols
    static = model.static_watts * sim.total_seconds
    threading = (
        model.thread_joules * spawned
        + model.active_thread_watts * (active_threads - 1) * sim.phase1_seconds
    )
    return EnergyBill(compute_j=compute, static_j=static, threading_j=threading)


@dataclass(frozen=True)
class EnergyComparison:
    """Traditional-vs-PPM energy for one scenario."""

    traditional: EnergyBill
    ppm: EnergyBill

    @property
    def saving(self) -> float:
        """Fraction of the traditional bill PPM saves (can be negative)."""
        if self.traditional.total_j == 0:
            return 0.0
        return 1.0 - self.ppm.total_j / self.traditional.total_j

    @property
    def extra_threading_watts(self) -> float:
        """Average extra power PPM draws while threading (the '< 2 W' check)."""
        # threading joules over the PPM decode duration
        duration = max(self.ppm.static_j, 1e-12)
        # static_j = static_watts * time -> time = static_j / static_watts
        return self.ppm.threading_j / (duration / EnergyModel().static_watts)


def energy_comparison(
    plan: DecodePlan,
    profile: CPUProfile,
    threads: int,
    sector_symbols: int,
    model: EnergyModel | None = None,
) -> EnergyComparison:
    """The paper's deferred evaluation: full energy bills for both methods."""
    return EnergyComparison(
        traditional=decode_energy(
            plan, profile, threads, sector_symbols, model, traditional=True
        ),
        ppm=decode_energy(plan, profile, threads, sector_symbols, model),
    )
