"""Reliability analysis: what faster decoding buys in MTTDL.

The paper's premise is that decode speed matters because repair time
sits inside the reliability equation: while a rebuild runs, further
failures accumulate.  The classic Markov-chain estimate for an
f-fault-tolerant array of N devices with failure rate λ (per device) and
repair rate μ (per repair):

    MTTDL ≈ μ^f / (N * (N-1) * ... * (N-f) * λ^(f+1))

Halving repair time doubles μ and multiplies MTTDL by 2^f.  This module
evaluates that for a code instance, using the decode-time model to set
the repair rate — so the PPM-vs-traditional decode improvement becomes a
concrete MTTDL ratio (``mttdl_improvement``).  Rebuild time combines the
compute component (from the plan and CPU profile) with a configurable
media-read floor, since real rebuilds are disk-bound once compute is
fast enough — which caps how much decode speed can help and reproduces
the diminishing-returns story.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from ..core.planner import DecodePlan
from ..parallel.simulate import CPUProfile


@dataclass(frozen=True)
class ReliabilityModel:
    """Array-level reliability parameters.

    ``disk_afr``: annual failure rate per device;
    ``capacity_bytes``: per-device data to rebuild;
    ``media_bytes_per_s``: sequential read/write floor of the rebuild
    (0 disables the floor and makes rebuilds purely compute-bound).
    """

    disk_afr: float = 0.04
    capacity_bytes: float = 4e12
    media_bytes_per_s: float = 150e6


HOURS_PER_YEAR = 24 * 365.0


@dataclass(frozen=True)
class MTTDLEstimate:
    """One MTTDL evaluation."""

    repair_hours: float
    mttdl_years: float


def rebuild_hours(
    plan: DecodePlan,
    profile: CPUProfile,
    threads: int,
    model: ReliabilityModel,
    use_ppm: bool = True,
) -> float:
    """Wall time to rebuild one failed device's worth of data.

    Compute time scales the per-stripe decode to the device capacity;
    the media floor adds the sequential transfer of the capacity.
    """
    # per-symbol decode cost over one full device: symbols == capacity /
    # word size, and each lost symbol costs (C / faults) mult_XORs
    word = 1  # costs are per symbol; capacity is in bytes of w=8 symbols
    symbols = model.capacity_bytes / word
    cost_per_symbol = (
        plan.predicted_cost if use_ppm else plan.costs.c1
    ) / max(1, len(plan.faulty_ids))
    # spawn overheads are negligible at device scale; the PPM run uses
    # up to min(threads, cores) workers for its parallel share
    concurrency = min(threads, profile.cores) if use_ppm else 1
    compute_s = cost_per_symbol * symbols / (profile.throughput * concurrency)
    media_s = (
        model.capacity_bytes / model.media_bytes_per_s
        if model.media_bytes_per_s > 0
        else 0.0
    )
    return (compute_s + media_s) / 3600.0


def mttdl(
    num_devices: int,
    fault_tolerance: int,
    repair_hours: float,
    model: ReliabilityModel,
) -> MTTDLEstimate:
    """Markov-chain MTTDL for an f-fault-tolerant group of N devices."""
    if num_devices <= fault_tolerance:
        raise ValueError("need more devices than the fault tolerance")
    if repair_hours <= 0:
        raise ValueError("repair_hours must be positive")
    lam = model.disk_afr / HOURS_PER_YEAR  # failures per device-hour
    mu = 1.0 / repair_hours
    f = fault_tolerance
    numerator = mu**f
    denominator = prod(num_devices - i for i in range(f + 1)) * lam ** (f + 1)
    hours = numerator / denominator
    return MTTDLEstimate(repair_hours=repair_hours, mttdl_years=hours / HOURS_PER_YEAR)


def mttdl_improvement(
    plan: DecodePlan,
    num_devices: int,
    fault_tolerance: int,
    profile: CPUProfile,
    threads: int = 4,
    model: ReliabilityModel | None = None,
) -> tuple[MTTDLEstimate, MTTDLEstimate]:
    """(traditional, PPM) MTTDL pair for one failure geometry.

    The ratio quantifies the system-level value of the decode speedup;
    with a nonzero media floor it saturates, showing where decode stops
    being the bottleneck.
    """
    model = model if model is not None else ReliabilityModel()
    t_hours = rebuild_hours(plan, profile, threads, model, use_ppm=False)
    p_hours = rebuild_hours(plan, profile, threads, model, use_ppm=True)
    return (
        mttdl(num_devices, fault_tolerance, t_hours, model),
        mttdl(num_devices, fault_tolerance, p_hours, model),
    )
