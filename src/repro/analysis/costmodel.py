"""The paper's closed-form SD cost model (Section III-B).

For an SD worst-case failure (m whole disks + s sectors confined to z
rows) the paper gives::

    C1 = n*r*(m+s) + m*(m*r+s)*(z-1) + m^2*(r-z)
    C2 = (n*r - (m*r+s))*(m*z+s) + m*(n-m)*(r-z)
    C3 = (n*r - (m+s))*(m*z+s) + m*(n-m)*(r-z)
    C4 = n*r*(m+s) + m*(m*z+s)*(z-1) - m^2*(r-z)

valid over 4 <= n <= 24, 4 <= r <= 24, 1 <= m <= 3, 1 <= s <= 3,
1 <= z <= s.  The paper derived them by counting nonzero coefficients in
simulated matrices; they are exact for generic coefficient patterns and
upper bounds when matrix products happen to produce zero coefficients
(our tests quantify the gap at <= ~2%).

Two consequences the paper highlights (both verified in tests):

- ``C1 - C4 = m^2 * (z+1) * (r-1) > 0``  (at z == 1; the paper prints
  both (r-1) and (r-z) variants — they agree at z=1, and the formula
  difference above is what the C1/C4 expressions actually give)
- ``C3 - C2 = m*(r-1)*(m*z+s) > 0``, so C3 never wins and the choice
  reduces to min(C2, C4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sequences import SequenceCosts

#: Parameter ranges the paper states the formulas for.
PAPER_RANGES = {"n": (4, 24), "r": (4, 24), "m": (1, 3), "s": (1, 3)}


@dataclass(frozen=True)
class SDConfig:
    """One SD worst-case configuration of the numerical analysis."""

    n: int
    r: int
    m: int
    s: int
    z: int = 1

    def __post_init__(self):
        if not (1 <= self.m < self.n):
            raise ValueError(f"need 1 <= m < n, got m={self.m}, n={self.n}")
        if self.s < 1:
            raise ValueError(f"closed forms need s >= 1, got s={self.s}")
        if not (1 <= self.z <= min(self.s, self.r)):
            raise ValueError(f"need 1 <= z <= min(s, r), got z={self.z}")

    def in_paper_ranges(self) -> bool:
        return all(
            lo <= getattr(self, name) <= hi
            for name, (lo, hi) in PAPER_RANGES.items()
        )


def sd_costs(n: int, r: int, m: int, s: int, z: int = 1) -> SequenceCosts:
    """Closed-form C1..C4 for the SD worst case (paper, Section III-B)."""
    cfg = SDConfig(n, r, m, s, z)  # validates
    n, r, m, s, z = cfg.n, cfg.r, cfg.m, cfg.s, cfg.z
    c1 = n * r * (m + s) + m * (m * r + s) * (z - 1) + m * m * (r - z)
    c2 = (n * r - (m * r + s)) * (m * z + s) + m * (n - m) * (r - z)
    c3 = (n * r - (m + s)) * (m * z + s) + m * (n - m) * (r - z)
    c4 = n * r * (m + s) + m * (m * z + s) * (z - 1) - m * m * (r - z)
    return SequenceCosts(c1=c1, c2=c2, c3=c3, c4=c4)


def c1_minus_c4(n: int, r: int, m: int, s: int, z: int = 1) -> int:
    """The cost PPM saves vs the traditional method, closed form."""
    costs = sd_costs(n, r, m, s, z)
    return costs.c1 - costs.c4


def c3_minus_c2(n: int, r: int, m: int, s: int, z: int = 1) -> int:
    """Why C3 is never chosen: always positive (paper's identity)."""
    costs = sd_costs(n, r, m, s, z)
    return costs.c3 - costs.c2
