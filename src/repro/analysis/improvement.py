"""Predicted PPM improvement ratios from the cost + parallel models.

Combines Section III-B's closed-form costs with Section III-C's
parallel-saving analysis to predict the improvement the paper measures in
Section IV, without touching sector data.  The benchmark harness reports
these predictions next to measured / simulated values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.planner import DecodePlan
from ..parallel.simulate import (
    CPUProfile,
    improvement_ratio,
    simulate_ppm_time,
    simulate_traditional_time,
)
from .costmodel import sd_costs


@dataclass(frozen=True)
class ImprovementBreakdown:
    """Where a predicted improvement comes from.

    ``sequential`` is the cost-reduction-only gain (C1/C4 - 1, no
    threads); ``total`` additionally includes the parallel saving at the
    given T; ``parallel_share`` is the fraction of the total gain the
    parallelism contributes.
    """

    sequential: float
    total: float

    @property
    def parallel_share(self) -> float:
        if self.total <= 0:
            return 0.0
        return max(0.0, (self.total - self.sequential) / self.total)


def cost_only_improvement(n: int, r: int, m: int, s: int, z: int = 1) -> float:
    """Closed-form improvement with T = 1: C1 / C4 - 1."""
    costs = sd_costs(n, r, m, s, z)
    best = min(costs.c2, costs.c4)
    return costs.c1 / best - 1.0


def predicted_improvement(
    plan: DecodePlan,
    profile: CPUProfile,
    threads: int,
    sector_symbols: int,
) -> ImprovementBreakdown:
    """Model-predicted improvement of PPM over the traditional decoder."""
    trad = simulate_traditional_time(plan, profile, sector_symbols)
    ppm_serial = simulate_ppm_time(plan, profile, threads=1, sector_symbols=sector_symbols)
    ppm_parallel = simulate_ppm_time(plan, profile, threads=threads, sector_symbols=sector_symbols)
    return ImprovementBreakdown(
        sequential=improvement_ratio(trad, ppm_serial),
        total=improvement_ratio(trad, ppm_parallel),
    )
