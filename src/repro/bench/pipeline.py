"""Measured throughput of the batched decode pipeline vs per-stripe decode.

The acceptance experiment for :mod:`repro.pipeline`: on a disk-loss
shaped workload — many stripes, one shared worst-case erasure pattern —
compare

- the **baseline**: a loop calling ``PPMDecoder.decode`` once per
  stripe with ``compile=False`` (plans re-planned per decoder call,
  one interpreted Python dispatch per region op per stripe);
- the **pipeline**: one ``DecodePipeline.decode_batch`` submission,
  where every stripe's plan comes from the LRU cache and all stripes
  sharing the pattern are fused into a single region-op sweep — run
  both interpreted (``compile=False``) and compiled (the default), so
  the report separates the batching win from the kernel win
  (``compiled_speedup`` is compiled-vs-interpreted *pipeline*).

All sides recover the same bytes; the helper asserts bit-equality
before reporting throughput, so a speedup can never come from skipped
work.  Shared by ``ppm pipeline-bench`` and
``benchmarks/bench_pipeline.py``.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import PPMDecoder, SequencePolicy, TraditionalDecoder
from ..pipeline import DecodePipeline
from ..stripes import Stripe, StripeLayout, worst_case_sd
from ..codes import SDCode


def build_batch(
    code, num_stripes: int, sector_symbols: int, seed: int = 2015
) -> list[Stripe]:
    """``num_stripes`` independently-encoded, code-valid stripes."""
    layout = StripeLayout.of_code(code)
    rng = np.random.default_rng(seed)
    encoder = TraditionalDecoder()
    stripes = []
    for _ in range(num_stripes):
        stripe = Stripe.random(layout, code.field, sector_symbols, rng)
        encoder.encode_into(code, stripe)
        stripes.append(stripe)
    return stripes


def run_pipeline_bench(
    n: int = 10,
    r: int = 8,
    m: int = 2,
    s: int = 2,
    num_stripes: int = 64,
    sector_symbols: int = 512,
    workers: int = 4,
    pool: str = "thread",
    repeats: int = 3,
    seed: int = 2015,
    policy: SequencePolicy = SequencePolicy.PAPER,
) -> dict:
    """Run the baseline-vs-pipeline comparison; returns a JSON-ready dict.

    Times are best-of-``repeats``.  The pipeline (and its plan cache and
    worker pool) persists across repeats, exactly as it would across
    batches in a long-running rebuild — that persistence *is* the thing
    being measured.
    """
    code = SDCode(n, r, m, s)
    scenario = worst_case_sd(code, z=1, rng=seed)
    faulty = list(scenario.faulty_blocks)
    stripes = build_batch(code, num_stripes, sector_symbols, seed=seed)

    # baseline: per-stripe interpreted decode loop, fresh decoder
    # (per-stripe planning, no compiled kernels — the pre-pipeline,
    # pre-compiler state of the repo)
    base_best = float("inf")
    expected = None
    for _ in range(repeats):
        decoder = PPMDecoder(parallel=False, policy=policy, compile=False)
        t0 = time.perf_counter()
        outs = [decoder.decode(code, stripe, faulty) for stripe in stripes]
        base_best = min(base_best, time.perf_counter() - t0)
        expected = outs

    def run_pipe(pipe: DecodePipeline):
        best = float("inf")
        got = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            got = pipe.decode_batch(code, stripes, faulty)
            best = min(best, time.perf_counter() - t0)
        for exp, out in zip(expected, got):
            for bid in exp:
                if not np.array_equal(exp[bid], out[bid]):
                    raise AssertionError(
                        f"pipeline result differs from baseline on block {bid}"
                    )
        return best

    with DecodePipeline(
        workers=workers, pool=pool, policy=policy, compile=False
    ) as interp_pipe:
        interp_best = run_pipe(interp_pipe)
    pipe = DecodePipeline(workers=workers, pool=pool, policy=policy)
    try:
        pipe_best = run_pipe(pipe)
        metrics = pipe.metrics()
    finally:
        pipe.close()

    base_sps = num_stripes / base_best
    interp_sps = num_stripes / interp_best
    pipe_sps = num_stripes / pipe_best
    return {
        "workload": {
            "code": f"SD(n={n}, r={r}, m={m}, s={s})",
            "faulty_blocks": faulty,
            "num_stripes": num_stripes,
            "sector_symbols": sector_symbols,
            "repeats": repeats,
            "policy": policy.name,
        },
        "baseline": {
            "decoder": "PPMDecoder(parallel=False, compile=False) per-stripe loop",
            "seconds": base_best,
            "stripes_per_sec": base_sps,
        },
        "interpreted_pipeline": {
            "workers": workers,
            "pool": pool,
            "seconds": interp_best,
            "stripes_per_sec": interp_sps,
        },
        "pipeline": {
            "workers": workers,
            "pool": pool,
            "seconds": pipe_best,
            "stripes_per_sec": pipe_sps,
            "metrics": metrics.as_dict(),
        },
        "speedup": base_sps and pipe_sps / base_sps,
        "compiled_speedup": interp_sps and pipe_sps / interp_sps,
        "plan_cache_hit_rate": metrics.plan_cache_hit_rate,
        "results_match": True,
    }


def format_pipeline_report(result: dict) -> str:
    """Human-readable summary of :func:`run_pipeline_bench` output."""
    wl = result["workload"]
    base = result["baseline"]
    interp = result["interpreted_pipeline"]
    pipe = result["pipeline"]
    lines = [
        f"workload       {wl['code']} x {wl['num_stripes']} stripes, "
        f"{wl['sector_symbols']} symbols/sector, faulty={wl['faulty_blocks']}",
        f"baseline       {base['stripes_per_sec']:.1f} stripes/s "
        f"({base['seconds'] * 1e3:.2f} ms)  [{base['decoder']}]",
        f"pipeline       {interp['stripes_per_sec']:.1f} stripes/s "
        f"({interp['seconds'] * 1e3:.2f} ms)  "
        f"[interpreted, {interp['pool']} x {interp['workers']} workers]",
        f"pipeline       {pipe['stripes_per_sec']:.1f} stripes/s "
        f"({pipe['seconds'] * 1e3:.2f} ms)  "
        f"[compiled, {pipe['pool']} x {pipe['workers']} workers]",
        f"speedup        {result['speedup']:.2f}x vs baseline, "
        f"{result['compiled_speedup']:.2f}x compiled vs interpreted pipeline",
        f"plan cache     {result['plan_cache_hit_rate']:.1%} hit rate",
        "results match  yes (bit-identical to baseline)",
    ]
    return "\n".join(lines)
