"""Acceptance benchmark: online repair under live foreground load.

Simulates the scenario the repair subsystem exists for — a store with
silently corrupted stripes *and* a node loss, serving foreground reads
the whole time — and answers the two questions its acceptance bar
asks:

1. **Does the array heal?**  After the load completes, the manager
   must scrub-and-repair to *zero* nonzero-syndrome stripes, and every
   block must verify against ground truth.
2. **What does repair cost the foreground?**  The same seeded schedule
   runs against an identical store with repair disabled; the
   repair-on side's p99 must stay within ``max_p99_ratio`` (default
   2x) of that baseline.

Both sides are built bit-identically (same stores, same damage, same
corruption, same schedule, same fault streams) so the p99 ratio
isolates exactly the cost of scrubbing + background repair batches
sharing the pipeline.  Checked by ``benchmarks/bench_repair.py`` and
the CI ``repair-smoke`` job via ``ppm repair-bench``.
"""

from __future__ import annotations

import asyncio

from ..codes import SDCode
from ..repair import RepairConfig
from ..service import (
    BlobService,
    BlobStore,
    FaultInjector,
    ServiceConfig,
    build_request_schedule,
    corrupt_store,
    damage_store,
    run_loadgen,
)


def _build_store(
    n: int,
    r: int,
    m: int,
    s: int,
    num_stripes: int,
    sector_symbols: int,
    fault_rate: float,
    damaged_fraction: float,
    corrupt_fraction: float,
    seed: int,
) -> BlobStore:
    code = SDCode(n, r, m, s)
    store = BlobStore.build(
        code,
        num_stripes,
        sector_symbols,
        rng=seed,
        faults=FaultInjector(fault_rate, rng=seed),
    )
    damage_store(store, fraction=damaged_fraction, seed=seed)
    corrupt_store(store, fraction=corrupt_fraction, seed=seed)
    return store


def _count_unhealthy(store: BlobStore) -> int:
    """Stripes whose syndromes are nonzero or whose blocks are erased."""
    from ..repair import StoreScrubber

    return len(StoreScrubber(store).scan_full_pass().findings)


def _verify_against_truth(store: BlobStore) -> bool:
    for sid in store.stripe_ids:
        stripe = store.stripe(sid)
        if stripe.erased_ids:
            return False
        for block in stripe.present_ids:
            if not store.verify_block(sid, block, stripe.get(block)):
                return False
    return True


async def _run_side(
    store: BlobStore,
    config: ServiceConfig,
    schedule,
    concurrency: int,
    heal_timeout_s: float,
) -> tuple[dict, dict, dict]:
    """Serve the schedule; with repair configured, also wait for heal."""
    async with BlobService(store, config=config) as service:
        summary = await run_loadgen(
            service, schedule, concurrency=concurrency, verify=False
        )
        heal = {"enabled": service.repair is not None, "healed": None}
        if service.repair is not None:
            heal["healed"] = await service.repair.wait_healthy(
                timeout_s=heal_timeout_s
            )
        return summary, service.metrics_dict(), heal


def run_repair_bench(
    n: int = 10,
    r: int = 8,
    m: int = 2,
    s: int = 2,
    num_stripes: int = 32,
    sector_symbols: int = 512,
    requests: int = 200,
    concurrency: int = 16,
    fault_rate: float = 0.0,
    damaged_fraction: float = 0.25,
    corrupt_fraction: float = 0.05,
    degraded_fraction: float = 0.5,
    scrub_stripes: int = 8,
    rate_blocks_per_s: float = 0.0,
    heal_timeout_s: float = 30.0,
    max_p99_ratio: float = 2.0,
    seed: int = 2015,
) -> dict:
    """Repair-on vs repair-off under identical load; JSON-ready dict.

    Note: loadgen verification is off for this bench — corrupted blocks
    *will* serve wrong bytes until the scrubber reaches them; what is
    gated here is that the array fully heals afterwards and that
    foreground latency stays within ``max_p99_ratio`` of the no-repair
    baseline.  (The serving-correctness gate lives in
    :mod:`repro.bench.service`.)
    """

    def fresh_store() -> BlobStore:
        return _build_store(
            n, r, m, s, num_stripes, sector_symbols,
            fault_rate, damaged_fraction, corrupt_fraction, seed,
        )

    store = fresh_store()
    unhealthy_before = _count_unhealthy(store)
    schedule = build_request_schedule(
        store, requests, seed=seed, degraded_fraction=degraded_fraction
    )

    base_summary, base_metrics, _ = asyncio.run(
        _run_side(
            fresh_store(),
            ServiceConfig(max_retries=3),
            schedule,
            concurrency,
            heal_timeout_s,
        )
    )
    repair_config = RepairConfig(
        scrub_interval_s=0.002,
        scrub_stripes=scrub_stripes,
        rate_blocks_per_s=rate_blocks_per_s,
    )
    repair_summary, repair_metrics, heal = asyncio.run(
        _run_side(
            store,
            ServiceConfig(max_retries=3, repair=repair_config),
            schedule,
            concurrency,
            heal_timeout_s,
        )
    )

    unhealthy_after = _count_unhealthy(store)
    truth_ok = _verify_against_truth(store)
    base_p99 = base_summary["latency"]["p99_s"]
    repair_p99 = repair_summary["latency"]["p99_s"]
    return {
        "workload": {
            "code": f"SD(n={n}, r={r}, m={m}, s={s})",
            "num_stripes": num_stripes,
            "sector_symbols": sector_symbols,
            "requests": requests,
            "concurrency": concurrency,
            "fault_rate": fault_rate,
            "damaged_fraction": damaged_fraction,
            "corrupt_fraction": corrupt_fraction,
            "degraded_fraction": degraded_fraction,
            "scrub_stripes": scrub_stripes,
            "rate_blocks_per_s": rate_blocks_per_s,
            "seed": seed,
        },
        "baseline": {"loadgen": base_summary, "service": base_metrics},
        "repair": {"loadgen": repair_summary, "service": repair_metrics},
        "unhealthy_stripes_before": unhealthy_before,
        "unhealthy_stripes_after": unhealthy_after,
        "healed": bool(heal["healed"]) and unhealthy_after == 0,
        "truth_verified": truth_ok,
        "baseline_p99_s": base_p99,
        "repair_p99_s": repair_p99,
        "p99_ratio": (repair_p99 / base_p99) if base_p99 > 0 else 0.0,
        "max_p99_ratio": max_p99_ratio,
        "p99_within_bound": (
            base_p99 <= 0 or repair_p99 / base_p99 <= max_p99_ratio
        ),
        "failed_requests": base_summary["failed"] + repair_summary["failed"],
    }


def format_repair_report(result: dict) -> str:
    """Human-readable summary of :func:`run_repair_bench` output."""
    wl = result["workload"]
    base = result["baseline"]["loadgen"]
    rep = result["repair"]["loadgen"]
    rm = result["repair"]["service"].get("repair", {})
    scrub = rm.get("scrub", {})
    fix = rm.get("repair", {})
    lines = [
        f"workload       {wl['code']} x {wl['num_stripes']} stripes, "
        f"{wl['requests']} requests @ concurrency {wl['concurrency']}; "
        f"{wl['damaged_fraction']:.0%} damaged, "
        f"{wl['corrupt_fraction']:.0%} silently corrupted",
        f"damage         {result['unhealthy_stripes_before']} unhealthy stripes "
        f"before -> {result['unhealthy_stripes_after']} after "
        f"({'HEALED' if result['healed'] else 'NOT healed'}, truth "
        f"{'verified' if result['truth_verified'] else 'MISMATCH'})",
        f"scrubbing      {scrub.get('stripes_scrubbed', 0)} stripes scrubbed, "
        f"{scrub.get('corruptions_found', 0)} corruptions / "
        f"{scrub.get('erasures_found', 0)} erasures / "
        f"{scrub.get('ambiguous_found', 0)} ambiguous found",
        f"repairs        {fix.get('stripes_repaired', 0)} stripes "
        f"({fix.get('blocks_repaired', 0)} blocks) in "
        f"{fix.get('batches', 0)} background batches, "
        f"{fix.get('failures', 0)} failures, "
        f"{fix.get('verify_failures', 0)} verify failures, "
        f"rate-limited {fix.get('rate_wait_seconds', 0.0):.3f}s",
        f"baseline       {base['requests_per_sec']:.1f} req/s  "
        f"p99 {result['baseline_p99_s'] * 1e3:.2f} ms  [repair off]",
        f"with repair    {rep['requests_per_sec']:.1f} req/s  "
        f"p99 {result['repair_p99_s'] * 1e3:.2f} ms  [scrub + heal online]",
        f"p99 ratio      {result['p99_ratio']:.2f}x "
        f"(bound {result['max_p99_ratio']:.1f}x: "
        f"{'ok' if result['p99_within_bound'] else 'EXCEEDED'})",
    ]
    return "\n".join(lines)
