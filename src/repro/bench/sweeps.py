"""Full-grid cost-model sweeps — the dataset behind Figures 4-6.

The paper summarises its numerical analysis with "the average value of
C4/C1 is equal to 85.78% (in the range from 47.97% to 98.06%)".  Sweeping
our closed-form model over the Figure-4 grid (n = 6..24, r = 16, z = 1,
m and s in 1..3) reproduces those three numbers to four decimals —
mean 0.8579, range 0.4798..0.9807 — pinning down that the implemented
formulas and the paper's are one and the same
(``tests/bench/test_sweeps.py`` asserts it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from ..analysis import sd_costs
from .report import Report


@dataclass(frozen=True)
class SweepStats:
    """Summary statistics of a ratio sweep."""

    count: int
    mean: float
    minimum: float
    maximum: float


def c4_over_c1_sweep(
    ns: Iterable[int] = range(6, 25),
    rs: Iterable[int] = (16,),
    ms: Iterable[int] = (1, 2, 3),
    ss: Iterable[int] = (1, 2, 3),
    zs: Iterable[int] | None = None,
) -> list[tuple[int, int, int, int, int, float]]:
    """All (n, r, m, s, z, C4/C1) points of a configuration grid.

    Defaults are the Figure-4 grid (z = 1 via ``zs=None``).
    """
    points = []
    for n, r, m, s in itertools.product(ns, rs, ms, ss):
        if m >= n:
            continue
        z_values = (1,) if zs is None else tuple(z for z in zs if z <= min(s, r))
        for z in z_values:
            costs = sd_costs(n, r, m, s, z)
            points.append((n, r, m, s, z, costs.c4 / costs.c1))
    return points


def sweep_stats(points: list[tuple[int, int, int, int, int, float]]) -> SweepStats:
    """Mean/min/max of the ratio column."""
    ratios = [p[5] for p in points]
    if not ratios:
        raise ValueError("empty sweep")
    return SweepStats(
        count=len(ratios),
        mean=sum(ratios) / len(ratios),
        minimum=min(ratios),
        maximum=max(ratios),
    )


def paper_average_report() -> Report:
    """The paper's 85.78% / 47.97%-98.06% summary, regenerated."""
    points = c4_over_c1_sweep()
    stats = sweep_stats(points)
    report = Report(
        title="Cost-model sweep: C4/C1 over the Figure-4 grid (r=16, z=1)",
        headers=("statistic", "reproduced", "paper"),
    )
    report.add("configurations", stats.count, "-")
    report.add("mean C4/C1", stats.mean, 0.8578)
    report.add("min C4/C1", stats.minimum, 0.4797)
    report.add("max C4/C1", stats.maximum, 0.9806)
    report.note("closed-form Section III-B model over n=6..24, m,s in 1..3")
    return report
