"""Workload construction for the evaluation harness.

Builds the (code, failure scenario, plan, stripe) tuples each figure
driver needs, translating the paper's workload descriptions (stripe
sizes in MB, worst-case failures, storage-cost families) into concrete
objects.  All randomness is seeded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codes import LRCCode, RSCode, SDCode
from ..codes.base import ErasureCode
from ..core import DecodePlan, SequencePolicy, TraditionalDecoder, plan_decode
from ..stripes import FailureScenario, Stripe, StripeLayout, lrc_scenario, worst_case_sd

#: Fig 11 x-axis: storage cost -> (k, l, g) with four local groups and two
#: globals, k chosen so (k+l+g)/k approximates the cost (see DESIGN.md §5).
LRC_COST_FAMILIES: dict[float, tuple[int, int, int]] = {
    1.1: (60, 4, 2),
    1.2: (30, 4, 2),
    1.3: (20, 4, 2),
    1.4: (15, 4, 2),
    1.5: (12, 4, 2),
    1.6: (10, 4, 2),
    1.7: (9, 4, 2),
}


@dataclass(frozen=True)
class Workload:
    """Everything a figure driver needs for one data point."""

    code: ErasureCode
    scenario: FailureScenario
    plan: DecodePlan
    sector_symbols: int

    @property
    def stripe_bytes(self) -> int:
        return self.code.num_blocks * self.sector_symbols * self.code.field.dtype.itemsize


def sector_symbols_for(code: ErasureCode, stripe_bytes: int) -> int:
    """Symbols per sector for a target stripe size in bytes (>= 1)."""
    word = code.field.dtype.itemsize
    return max(1, stripe_bytes // (code.num_blocks * word))


def sd_workload(
    n: int,
    r: int,
    m: int,
    s: int,
    z: int = 1,
    w: int = 8,
    stripe_bytes: int = 1 << 22,
    seed: int = 2015,
    policy: SequencePolicy = SequencePolicy.PAPER,
) -> Workload:
    """Worst-case SD decode workload (the paper's Figures 4-10 subject)."""
    code = SDCode(n, r, m, s, w)
    scenario = worst_case_sd(code, z=z, rng=seed)
    plan = plan_decode(code, scenario.faulty_blocks, policy)
    return Workload(
        code=code,
        scenario=scenario,
        plan=plan,
        sector_symbols=sector_symbols_for(code, stripe_bytes),
    )


def rs_workload(
    n: int,
    k: int,
    r: int,
    w: int = 8,
    stripe_bytes: int = 1 << 22,
    seed: int = 2015,
) -> Workload:
    """RS baseline: m = n - k whole-disk failures (Figure 8's reference)."""
    code = RSCode(n, k, r=r, w=w)
    rng = np.random.default_rng(seed)
    disks = sorted(int(d) for d in rng.choice(n, size=code.m, replace=False))
    layout = StripeLayout.of_code(code)
    faulty = tuple(sorted(b for d in disks for b in layout.blocks_of_disk(d)))
    scenario = FailureScenario(faulty_blocks=faulty, failed_disks=tuple(disks))
    plan = plan_decode(code, faulty, SequencePolicy.NORMAL)
    return Workload(
        code=code,
        scenario=scenario,
        plan=plan,
        sector_symbols=sector_symbols_for(code, stripe_bytes),
    )


def lrc_workload(
    storage_cost: float,
    fixed: str = "stripe",
    stripe_bytes: int = 1 << 22,
    strip_bytes: int = 1 << 23,
    w: int = 8,
    seed: int = 2015,
    policy: SequencePolicy = SequencePolicy.PAPER,
) -> Workload:
    """LRC decode workload for Figure 11's storage-cost sweep.

    ``fixed="stripe"`` holds the whole-stripe byte size constant as k
    grows (the paper's left panel); ``fixed="strip"`` holds the per-block
    size constant (right panel).
    """
    try:
        k, l, g = LRC_COST_FAMILIES[round(storage_cost, 1)]
    except KeyError:
        raise ValueError(
            f"no LRC family for storage cost {storage_cost}; "
            f"available: {sorted(LRC_COST_FAMILIES)}"
        ) from None
    code = LRCCode(k, l, g, w)
    # the paper's multi-failure pattern: a single failure in every local
    # group (the parallel phase) plus one more forcing a global decode
    scenario = lrc_scenario(code, local_failures=l, extra_failures=1, rng=seed)
    plan = plan_decode(code, scenario.faulty_blocks, policy)
    if fixed == "stripe":
        symbols = sector_symbols_for(code, stripe_bytes)
    elif fixed == "strip":
        symbols = max(1, strip_bytes // code.field.dtype.itemsize)
    else:
        raise ValueError(f"fixed must be 'stripe' or 'strip', got {fixed!r}")
    return Workload(code=code, scenario=scenario, plan=plan, sector_symbols=symbols)


def build_stripe(workload: Workload, seed: int = 0) -> Stripe:
    """A code-valid random stripe for the workload, failures not yet applied."""
    layout = StripeLayout.of_code(workload.code)
    stripe = Stripe.random(layout, workload.code.field, workload.sector_symbols, rng=seed)
    TraditionalDecoder().encode_into(workload.code, stripe)
    return stripe


def erased_blocks(workload: Workload, stripe: Stripe) -> dict:
    """Survivor block mapping after applying the workload's failures."""
    faulty = set(workload.scenario.faulty_blocks)
    return {
        b: stripe.get(b)
        for b in range(workload.code.num_blocks)
        if b not in faulty
    }
