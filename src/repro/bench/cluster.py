"""Acceptance benchmark for the sharded cluster layer.

Three experiments, one JSON document (``BENCH_cluster.json``):

1. **Router throughput** — the same seeded healthy-read workload is
   served by a single :class:`~repro.service.BlobService` and by an
   N-node :class:`~repro.cluster.Cluster` holding the *same total
   stripe population* under the *same per-node service config*,
   including the simulated storage-device envelope
   (:attr:`~repro.service.ServiceConfig.io_latency_s` /
   ``io_queue_depth``).  A single node owns exactly one device envelope
   no matter how fast the CPU is; the router aggregates N of them, so
   sharding must win by roughly the node count on an I/O-bound mix —
   the gate requires ``>= min_speedup`` (default 2x).  Degraded
   decodes are deliberately absent here: they are CPU-bound and belong
   to the pipeline/service benches, not to the sharding story.
2. **Rebuild storm** — a cluster with background repair takes a
   whole-node kill mid-life: the dead node's stripes re-home to
   survivors with a disk-loss erasure, foreground load keeps running
   while the survivors' repair queues rebuild at background priority.
   Gates: the cluster heals to zero erased blocks, every block
   truth-verifies, and foreground p99 under the storm stays within
   ``max_p99_ratio`` (default 2x) of the pre-kill baseline.
3. **Rebalance accounting** — one node joins (taking ~1/N stripes)
   and is then drained; the stripes/blocks/bytes moved and the token-
   bucket wait are recorded.

Checked by ``benchmarks/bench_cluster.py`` and the CI ``cluster-smoke``
job via ``ppm cluster-bench``.
"""

from __future__ import annotations

import asyncio

from ..config import (
    AppConfig,
    apply_overrides,
    build_cluster,
    build_service,
    to_dict,
)
from ..service import build_request_schedule, run_loadgen


def bench_defaults() -> AppConfig:
    """The cluster-bench workload shape, as one config.

    Six nodes over a 48-stripe population, a 4 ms / depth-4 device
    envelope per node (one node caps at ~1000 IOPS before decode cost),
    no transient faults or bit rot (those are other benches' subjects),
    half the stripes pre-damaged, and a repair loop fast enough to
    drain a rebuild storm within the bench window.
    """
    return apply_overrides(
        AppConfig(),
        {
            "store.stripes": 48,
            "store.symbols": 512,
            "store.fault_rate": 0.0,
            "store.damaged": 0.5,
            "store.corrupt_fraction": 0.0,
            "service.io_latency_s": 0.004,
            "service.io_queue_depth": 4,
            "service.repair": True,
            "service.repair.scrub_interval_s": 0.002,
            "service.repair.scrub_stripes": 16,
            "cluster.nodes": 6,
            "cluster.rebalance_blocks_per_s": 2048.0,
            "cluster.rebalance_burst_blocks": 128,
            "workload.requests": 400,
            "workload.concurrency": 64,
        },
    )


async def _throughput_and_rebalance(config: AppConfig) -> tuple[dict, dict]:
    """Experiment 1 + 3: single vs cluster throughput, then join/drain."""
    # A healthy-array read mix: repair off so the scrub loop does not
    # compete for CPU, and no erasures so no request needs a decode.
    # Decode throughput is CPU-bound and covered by pipeline/service
    # benches; this experiment isolates what sharding is supposed to
    # scale — the per-node device envelope.  The storm experiment keeps
    # the degraded mix and the repair loop.
    config = apply_overrides(
        config,
        {
            "service.repair": None,
            "store.damaged": 0.0,
            "workload.degraded_fraction": 0.0,
        },
    )
    workload = config.workload
    service = build_service(config)
    schedule = build_request_schedule(
        service,
        workload.requests,
        seed=config.store.seed,
        degraded_fraction=workload.degraded_fraction,
    )
    async with service:
        single = await run_loadgen(
            service, schedule, concurrency=workload.concurrency, verify=True
        )

    cluster = build_cluster(config)
    schedule = build_request_schedule(
        cluster,
        workload.requests,
        seed=config.store.seed,
        degraded_fraction=workload.degraded_fraction,
    )
    async with cluster:
        clustered = await run_loadgen(
            cluster, schedule, concurrency=workload.concurrency, verify=True
        )
        spread = cluster.metrics.as_dict()["routed"]

        # experiment 3 on the same live cluster: join, then drain
        before = cluster.metrics.as_dict()["rebalance"]
        joined = await cluster.add_node()
        after_join = cluster.metrics.as_dict()["rebalance"]
        await cluster.drain_node(joined)
        after_drain = cluster.metrics.as_dict()["rebalance"]

    def delta(a: dict, b: dict, key: str) -> float:
        return b[key] - a[key]

    single_rps = single["requests_per_sec"]
    cluster_rps = clustered["requests_per_sec"]
    throughput = {
        "nodes": config.cluster.nodes,
        "stripes": config.store.stripes,
        "requests": workload.requests,
        "concurrency": workload.concurrency,
        "io_latency_s": config.service.io_latency_s,
        "io_queue_depth": config.service.io_queue_depth,
        "single": single,
        "cluster": clustered,
        "routed_per_node": spread,
        "single_rps": single_rps,
        "cluster_rps": cluster_rps,
        "speedup": (cluster_rps / single_rps) if single_rps > 0 else 0.0,
    }
    rebalance = {
        "joined_node": joined,
        "join": {
            key: delta(before, after_join, key)
            for key in ("stripes_moved", "blocks_moved", "bytes_moved")
        },
        "drain": {
            key: delta(after_join, after_drain, key)
            for key in ("stripes_moved", "blocks_moved", "bytes_moved")
        },
        "rate_blocks_per_s": config.cluster.rebalance_blocks_per_s,
        "wait_seconds": after_drain["wait_seconds"],
    }
    return throughput, rebalance


async def _storm(config: AppConfig, heal_timeout_s: float) -> dict:
    """Experiment 2: whole-node kill under live foreground load."""
    workload = config.workload
    cluster = build_cluster(config)
    async with cluster:
        baseline_schedule = build_request_schedule(
            cluster,
            workload.requests,
            seed=config.store.seed,
            degraded_fraction=workload.degraded_fraction,
        )
        baseline = await run_loadgen(
            cluster,
            baseline_schedule,
            concurrency=workload.concurrency,
            verify=True,
        )
        # kill the busiest node so the storm is as large as placement allows
        victim = max(
            cluster.nodes.values(), key=lambda node: len(node.store.stripe_ids)
        ).node_id
        loop = asyncio.get_running_loop()
        t_kill = loop.time()
        stormed = await cluster.kill_node(victim)
        storm_run = await run_loadgen(
            cluster,
            baseline_schedule,
            concurrency=workload.concurrency,
            verify=True,
        )
        healed = await cluster.wait_healthy(timeout_s=heal_timeout_s)
        heal_seconds = loop.time() - t_kill
        verify = cluster.verify_all()
        metrics = cluster.metrics_dict()

    base_p99 = baseline["latency"]["p99_s"]
    storm_p99 = storm_run["latency"]["p99_s"]
    return {
        "killed_node": victim,
        "storm_stripes": stormed,
        "baseline": baseline,
        "under_storm": storm_run,
        "baseline_p99_s": base_p99,
        "storm_p99_s": storm_p99,
        "p99_ratio": (storm_p99 / base_p99) if base_p99 > 0 else 0.0,
        "healed": healed,
        "heal_seconds": heal_seconds,
        "verify": verify,
        "truth_verified": verify["erased"] == 0 and verify["mismatched"] == 0,
        "storm_metrics": metrics["cluster"]["storm"],
    }


def run_cluster_bench(
    config: AppConfig | None = None,
    *,
    heal_timeout_s: float = 60.0,
    min_speedup: float = 2.0,
    max_p99_ratio: float = 2.0,
) -> dict:
    """Run all three cluster experiments; returns a JSON-ready dict.

    ``config`` defaults to :func:`bench_defaults`; pass an
    :class:`~repro.config.AppConfig` to reshape the workload (the
    repair section must be enabled for the storm to heal).
    """
    config = config if config is not None else bench_defaults()
    throughput, rebalance = asyncio.run(_throughput_and_rebalance(config))
    storm = asyncio.run(_storm(config, heal_timeout_s))
    result = {
        "config": to_dict(config),
        "throughput": throughput,
        "rebalance": rebalance,
        "storm": storm,
        "gates": {
            "min_speedup": min_speedup,
            "speedup_ok": throughput["speedup"] >= min_speedup,
            "max_p99_ratio": max_p99_ratio,
            "p99_ok": storm["p99_ratio"] <= max_p99_ratio
            or storm["baseline_p99_s"] <= 0,
            "healed_ok": bool(storm["healed"]) and storm["truth_verified"],
        },
    }
    gates = result["gates"]
    result["ok"] = bool(
        gates["speedup_ok"] and gates["p99_ok"] and gates["healed_ok"]
    )
    return result


def format_cluster_report(result: dict) -> str:
    """Human-readable summary of :func:`run_cluster_bench` output."""
    tp = result["throughput"]
    rb = result["rebalance"]
    st = result["storm"]
    gates = result["gates"]
    lines = [
        f"workload       {tp['stripes']} stripes, {tp['requests']} requests @ "
        f"concurrency {tp['concurrency']}; device envelope "
        f"{tp['io_latency_s'] * 1e3:.1f} ms x depth {tp['io_queue_depth']}",
        f"single node    {tp['single_rps']:.1f} req/s  "
        f"p99 {tp['single']['latency']['p99_s'] * 1e3:.2f} ms",
        f"{tp['nodes']}-node router  {tp['cluster_rps']:.1f} req/s  "
        f"p99 {tp['cluster']['latency']['p99_s'] * 1e3:.2f} ms",
        f"speedup        {tp['speedup']:.2f}x "
        f"(gate >= {gates['min_speedup']:.1f}x: "
        f"{'ok' if gates['speedup_ok'] else 'FAILED'})",
        f"rebalance      join moved {rb['join']['stripes_moved']:.0f} stripes "
        f"({rb['join']['bytes_moved']:.0f} bytes), drain moved "
        f"{rb['drain']['stripes_moved']:.0f} stripes "
        f"({rb['drain']['bytes_moved']:.0f} bytes), "
        f"bucket wait {rb['wait_seconds']:.3f}s",
        f"storm          killed {st['killed_node']} "
        f"({st['storm_stripes']} stripes re-homed), healed in "
        f"{st['heal_seconds']:.1f}s: "
        f"{'yes' if st['healed'] else 'NO'}, truth "
        f"{'verified' if st['truth_verified'] else 'MISMATCH'}",
        f"storm p99      {st['storm_p99_s'] * 1e3:.2f} ms vs baseline "
        f"{st['baseline_p99_s'] * 1e3:.2f} ms = {st['p99_ratio']:.2f}x "
        f"(bound {gates['max_p99_ratio']:.1f}x: "
        f"{'ok' if gates['p99_ok'] else 'EXCEEDED'})",
    ]
    return "\n".join(lines)
