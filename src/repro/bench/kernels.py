"""Measured speedup of compiled region programs vs the interpreted path.

The acceptance experiment for :mod:`repro.kernels`: on the canonical
single-stripe decode workload — SD(n=10, r=8, m=2, s=2), one worst-case
erasure pattern, 4 KiB sectors — compare

- the **interpreted** path: ``PPMDecoder(parallel=False,
  compile=False)``, one Python round-trip per ``mult_XORs`` call;
- the **compiled** path: the same decoder with ``compile=True``
  (the default), where the whole plan runs as one fused, cached
  :class:`~repro.kernels.RegionProgram`.

Both sides recover the same bytes and book the *same* model op counts —
asserted before any throughput is reported, so a speedup can never come
from skipped or mis-counted work.  A sharded-counter micro-benchmark
rides along (satellite: the lock-free :class:`~repro.gf.OpCounter`),
as does a dump of the compiled program's model-vs-executed op counts.
Shared by ``ppm kernel-bench`` and ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..codes import SDCode
from ..core import PPMDecoder, SequencePolicy
from ..gf import OpCounter
from ..kernels import lower_plan
from ..stripes import worst_case_sd
from .pipeline import build_batch


def _time_decodes(decoder, code, stripe, faulty, iters: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for ``iters`` decodes of one stripe."""
    best = float("inf")
    decoder.decode(code, stripe, faulty)  # warm plan + program caches
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            decoder.decode(code, stripe, faulty)
        best = min(best, time.perf_counter() - t0)
    return best


def _counter_microbench(
    threads: int = 4, records_per_thread: int = 50_000
) -> dict:
    """Throughput and exactness of the sharded lock-free op counter."""
    counter = OpCounter()

    def worker() -> None:
        for _ in range(records_per_thread):
            counter.record(3, 3 * 1024, xor_only=1)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    t0 = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - t0
    total = threads * records_per_thread
    expected = (3 * total, 1 * total, 3 * 1024 * total)
    got = counter.snapshot()
    return {
        "threads": threads,
        "records": total,
        "seconds": elapsed,
        "records_per_sec": total / elapsed if elapsed > 0 else 0.0,
        "exact": tuple(got) == expected,
    }


def run_kernel_bench(
    n: int = 10,
    r: int = 8,
    m: int = 2,
    s: int = 2,
    sector_symbols: int = 4096,
    iters: int = 20,
    repeats: int = 3,
    seed: int = 2015,
    policy: SequencePolicy = SequencePolicy.PAPER,
) -> dict:
    """Interpreted-vs-compiled single-stripe decode; returns a JSON dict.

    Decoders persist across iterations, so the plan cache and (on the
    compiled side) the program cache are warm — exactly the steady state
    of a long-running rebuild, which is what the compiler amortises for.
    """
    code = SDCode(n, r, m, s)
    scenario = worst_case_sd(code, z=1, rng=seed)
    faulty = list(scenario.faulty_blocks)
    stripe = build_batch(code, 1, sector_symbols, seed=seed)[0]
    truth = {b: stripe.get(b).copy() for b in faulty}
    stripe.erase(faulty)

    # correctness + op accounting first: same bytes, same model counts
    interp = PPMDecoder(parallel=False, policy=policy, compile=False)
    compiled = PPMDecoder(parallel=False, policy=policy, compile=True)
    interp_out, interp_stats = interp.decode(code, stripe, faulty, return_stats=True)
    comp_out, comp_stats = compiled.decode(code, stripe, faulty, return_stats=True)
    for b in faulty:
        if not np.array_equal(interp_out[b], truth[b]):
            raise AssertionError(f"interpreted decode corrupted block {b}")
        if not np.array_equal(comp_out[b], truth[b]):
            raise AssertionError(f"compiled decode corrupted block {b}")
    if comp_stats.mult_xors != interp_stats.mult_xors:
        raise AssertionError(
            f"compiled path books {comp_stats.mult_xors} mult_XORs but the "
            f"interpreted path books {interp_stats.mult_xors}"
        )

    interp_best = _time_decodes(interp, code, stripe, faulty, iters, repeats)
    comp_best = _time_decodes(compiled, code, stripe, faulty, iters, repeats)

    # model vs executed op counts of the fused program itself
    plan = compiled.plan(code, faulty)
    program = lower_plan(code.field, plan).program
    counter_stats = _counter_microbench()

    interp_dps = iters / interp_best
    comp_dps = iters / comp_best
    return {
        "workload": {
            "code": f"SD(n={n}, r={r}, m={m}, s={s})",
            "faulty_blocks": faulty,
            "sector_symbols": sector_symbols,
            "iters": iters,
            "repeats": repeats,
            "policy": policy.name,
        },
        "interpreted": {
            "decoder": "PPMDecoder(parallel=False, compile=False)",
            "seconds": interp_best,
            "decodes_per_sec": interp_dps,
            "mult_xors": interp_stats.mult_xors,
        },
        "compiled": {
            "decoder": "PPMDecoder(parallel=False, compile=True)",
            "seconds": comp_best,
            "decodes_per_sec": comp_dps,
            "mult_xors": comp_stats.mult_xors,
        },
        "speedup": comp_dps / interp_dps if interp_dps else 0.0,
        "program": {
            "label": program.label,
            "instructions": len(program.instructions),
            "pool_size": program.pool_size,
            "model_mult_xors": program.mult_xors,
            "model_xor_only": program.xor_only,
            "executed_ops": program.executed_ops,
            "gathers": program.gathers,
            "xors": program.xors,
            "predicted_cost": plan.predicted_cost,
        },
        "counter": counter_stats,
        "results_match": True,
    }


def format_kernel_report(result: dict) -> str:
    """Human-readable summary of :func:`run_kernel_bench` output."""
    wl = result["workload"]
    interp = result["interpreted"]
    comp = result["compiled"]
    prog = result["program"]
    ctr = result["counter"]
    lines = [
        f"workload       {wl['code']}, {wl['sector_symbols']} symbols/sector, "
        f"faulty={wl['faulty_blocks']}",
        f"interpreted    {interp['decodes_per_sec']:.1f} decodes/s "
        f"({interp['seconds'] * 1e3:.2f} ms / {wl['iters']} decodes)",
        f"compiled       {comp['decodes_per_sec']:.1f} decodes/s "
        f"({comp['seconds'] * 1e3:.2f} ms / {wl['iters']} decodes)",
        f"speedup        {result['speedup']:.2f}x",
        f"op accounting  {comp['mult_xors']} mult_XORs on both paths "
        f"(predicted {prog['predicted_cost']})",
        f"program        {prog['instructions']} instruction(s), "
        f"{prog['pool_size']} slot(s); model {prog['model_mult_xors']} "
        f"mult_XORs ({prog['model_xor_only']} XOR-only) -> executed "
        f"{prog['executed_ops']} ops ({prog['gathers']} gathers, "
        f"{prog['xors']} XORs)",
        f"counter        {ctr['records_per_sec'] / 1e6:.2f} M records/s over "
        f"{ctr['threads']} thread(s), exact={ctr['exact']}",
        "results match  yes (bit-identical to the intact stripe)",
    ]
    return "\n".join(lines)
