"""Measured speedup of compiled region programs vs the interpreted path.

The acceptance experiment for :mod:`repro.kernels`: on the canonical
single-stripe decode workload — SD(n=10, r=8, m=2, s=2), one worst-case
erasure pattern, 4 KiB sectors — compare

- the **interpreted** path: ``PPMDecoder(parallel=False,
  compile=False)``, one Python round-trip per ``mult_XORs`` call;
- the **compiled** path: the same decoder with ``compile=True``
  (the default), where the whole plan runs as one fused, cached
  :class:`~repro.kernels.RegionProgram`.

Both sides recover the same bytes and book the *same* model op counts —
asserted before any throughput is reported, so a speedup can never come
from skipped or mis-counted work.  A sharded-counter micro-benchmark
rides along (satellite: the lock-free :class:`~repro.gf.OpCounter`),
as does a dump of the compiled program's model-vs-executed op counts.

Two further sections (see ``docs/BENCHMARKS.md`` for the schema):

- ``backends`` — the per-backend comparison table: every registered
  executor backend timed on representative (w, region-size) program
  classes, byte-checked against the baseline, with the auto-tuner's
  pick recorded per class (feeds the CI bitsliced gate);
- ``encode`` — the naive per-stripe ``encode`` loop vs the batched
  compiled ``encode_batch`` (feeds the CI encode gate).

Shared by ``ppm kernel-bench`` and ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..codes import SDCode
from ..core import PPMDecoder, SequencePolicy, TraditionalDecoder
from ..gf import GF, OpCounter
from ..kernels import (
    BASELINE_BACKEND,
    ProgramExecutor,
    available_backends,
    get_backend,
    lower_matrix,
    lower_plan,
    set_default_backend,
)
from ..stripes import worst_case_sd
from .pipeline import build_batch


def _time_decodes(decoder, code, stripe, faulty, iters: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for ``iters`` decodes of one stripe."""
    best = float("inf")
    decoder.decode(code, stripe, faulty)  # warm plan + program caches
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            decoder.decode(code, stripe, faulty)
        best = min(best, time.perf_counter() - t0)
    return best


def _counter_microbench(
    threads: int = 4, records_per_thread: int = 50_000
) -> dict:
    """Throughput and exactness of the sharded lock-free op counter."""
    counter = OpCounter()

    def worker() -> None:
        for _ in range(records_per_thread):
            counter.record(3, 3 * 1024, xor_only=1)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    t0 = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - t0
    total = threads * records_per_thread
    expected = (3 * total, 1 * total, 3 * 1024 * total)
    got = counter.snapshot()
    return {
        "threads": threads,
        "records": total,
        "seconds": elapsed,
        "records_per_sec": total / elapsed if elapsed > 0 else 0.0,
        "exact": tuple(got) == expected,
    }


def _time_program(executor, program, inputs, iters: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for ``iters`` program executions."""
    executor.execute(program, inputs)  # warm bind + tables
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            executor.execute(program, inputs)
        best = min(best, time.perf_counter() - t0)
    return best


def _class_case(w: int, symbols: int, seed: int, sd_program=None):
    """One (w, region-size) benchmark class: a program and its inputs."""
    field = GF(w)
    rng = np.random.default_rng(seed + w)
    if sd_program is not None:
        program = sd_program
    else:
        # a dense 4x8 matrix apply: the shape of one group/rest stage
        matrix = rng.integers(1, min(1 << w, 1 << 16), size=(4, 8), dtype=field.dtype)
        program = lower_matrix(field, matrix)
    inputs = [
        rng.integers(0, (1 << w) - 1, size=symbols, dtype=field.dtype)
        for _ in range(program.num_inputs)
    ]
    return field, program, inputs


def _bench_backends(
    sd_program, seed: int, iters: int, repeats: int
) -> dict:
    """The per-backend comparison table over (w, region-size) classes.

    Every registered, supporting backend runs each class; results are
    byte-checked against the baseline before any throughput is
    reported.  The auto-tuner's pick for the class is recorded too
    (what a ``backend="auto"`` executor would use).
    """
    classes = []
    # the w=8 cases run the real SD decode program; 4096 symbols sits
    # below the paired-table cache-residency crossover (the auto-tuner
    # keeps the baseline there), 64K symbols is the CI-gated class
    cases = [
        (8, 4096, sd_program),
        (8, 16384, sd_program),
        (8, 65536, sd_program),
        (16, 16384, None),
        (32, 16384, None),
    ]
    for w, symbols, prog in cases:
        field, program, inputs = _class_case(w, symbols, seed, sd_program=prog)
        baseline_exec = ProgramExecutor(field, backend=BASELINE_BACKEND)
        expected = baseline_exec.execute(program, inputs)
        entry: dict = {
            "w": w,
            "symbols": symbols,
            "program": program.label,
            "instructions": len(program.instructions),
            "backends": {},
        }
        base_seconds = None
        for name in available_backends():
            if not get_backend(name).supports(field, program):
                continue
            executor = ProgramExecutor(field, backend=name)
            got = executor.execute(program, inputs)
            match = all(np.array_equal(g, e) for g, e in zip(got, expected))
            if not match:
                raise AssertionError(
                    f"backend {name!r} diverges from baseline at w={w}"
                )
            seconds = _time_program(executor, program, inputs, iters, repeats)
            if name == BASELINE_BACKEND:
                base_seconds = seconds
            entry["backends"][name] = {
                "seconds": seconds,
                "executions_per_sec": iters / seconds if seconds > 0 else 0.0,
                "match": match,
            }
        for name, row in entry["backends"].items():
            row["speedup_vs_baseline"] = (
                base_seconds / row["seconds"] if row["seconds"] > 0 else 0.0
            )
        # what auto-tune picks for this class (fresh executor, its own
        # tuning state; the micro-benchmark runs on first execute)
        auto_exec = ProgramExecutor(field, backend="auto")
        auto_exec.execute(program, inputs)
        choices = auto_exec.tuning.choices()
        entry["auto_choice"] = next(iter(choices.values())) if choices else None
        entry["auto_speedup_vs_baseline"] = (
            entry["backends"].get(entry["auto_choice"], {}).get(
                "speedup_vs_baseline", 1.0
            )
            if entry["auto_choice"]
            else 1.0
        )
        best = max(
            entry["backends"], key=lambda b: entry["backends"][b]["speedup_vs_baseline"]
        )
        entry["best"] = best
        entry["best_speedup_vs_baseline"] = entry["backends"][best][
            "speedup_vs_baseline"
        ]
        classes.append(entry)
    return {"registered": list(available_backends()), "classes": classes}


def _bench_encode(
    code, sector_symbols: int, stripes: int, seed: int, repeats: int
) -> dict:
    """Naive per-stripe encode loop vs the batched compiled encode."""
    batch = build_batch(code, stripes, sector_symbols, seed=seed)
    blocks_list = [
        {b: st.get(b) for b in code.data_block_ids} for st in batch
    ]
    naive_dec = TraditionalDecoder()
    batch_dec = TraditionalDecoder()
    expected = [naive_dec.encode(code, blocks) for blocks in blocks_list]
    got = batch_dec.encode_batch(code, blocks_list)
    for a, b in zip(expected, got):
        for bid in a:
            if not np.array_equal(a[bid], b[bid]):
                raise AssertionError(f"batched encode corrupted parity {bid}")
    naive_best = batch_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for blocks in blocks_list:
            naive_dec.encode(code, blocks)
        naive_best = min(naive_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batch_dec.encode_batch(code, blocks_list)
        batch_best = min(batch_best, time.perf_counter() - t0)
    return {
        "stripes": stripes,
        "sector_symbols": sector_symbols,
        "naive": {
            "path": "TraditionalDecoder.encode per stripe",
            "seconds": naive_best,
            "stripes_per_sec": stripes / naive_best if naive_best > 0 else 0.0,
        },
        "batched": {
            "path": "TraditionalDecoder.encode_batch (fused program)",
            "seconds": batch_best,
            "stripes_per_sec": stripes / batch_best if batch_best > 0 else 0.0,
        },
        "speedup": naive_best / batch_best if batch_best > 0 else 0.0,
        "results_match": True,
    }


def run_kernel_bench(
    n: int = 10,
    r: int = 8,
    m: int = 2,
    s: int = 2,
    sector_symbols: int = 4096,
    iters: int = 20,
    repeats: int = 3,
    seed: int = 2015,
    policy: SequencePolicy = SequencePolicy.PAPER,
    backend: str = "auto",
    encode_stripes: int = 32,
) -> dict:
    """Interpreted-vs-compiled single-stripe decode; returns a JSON dict.

    Decoders persist across iterations, so the plan cache and (on the
    compiled side) the program cache are warm — exactly the steady state
    of a long-running rebuild, which is what the compiler amortises for.

    ``backend`` pins the compiled side's executor backend for the
    headline interpreted-vs-compiled comparison and the encode section
    (``"auto"`` = per-class auto-tune, the default).  The ``backends``
    comparison table always covers every registered backend regardless.
    """
    code = SDCode(n, r, m, s)
    scenario = worst_case_sd(code, z=1, rng=seed)
    faulty = list(scenario.faulty_blocks)
    stripe = build_batch(code, 1, sector_symbols, seed=seed)[0]
    truth = {b: stripe.get(b).copy() for b in faulty}
    stripe.erase(faulty)

    previous_default = None
    if backend != "auto":
        from ..kernels import default_backend

        previous_default = default_backend()
        set_default_backend(backend)
    try:
        # correctness + op accounting first: same bytes, same model counts
        interp = PPMDecoder(parallel=False, policy=policy, compile=False)
        compiled = PPMDecoder(parallel=False, policy=policy, compile=True)
        interp_out, interp_stats = interp.decode(
            code, stripe, faulty, return_stats=True
        )
        comp_out, comp_stats = compiled.decode(code, stripe, faulty, return_stats=True)
        for b in faulty:
            if not np.array_equal(interp_out[b], truth[b]):
                raise AssertionError(f"interpreted decode corrupted block {b}")
            if not np.array_equal(comp_out[b], truth[b]):
                raise AssertionError(f"compiled decode corrupted block {b}")
        if comp_stats.mult_xors != interp_stats.mult_xors:
            raise AssertionError(
                f"compiled path books {comp_stats.mult_xors} mult_XORs but the "
                f"interpreted path books {interp_stats.mult_xors}"
            )

        interp_best = _time_decodes(interp, code, stripe, faulty, iters, repeats)
        comp_best = _time_decodes(compiled, code, stripe, faulty, iters, repeats)

        # model vs executed op counts of the fused program itself
        plan = compiled.plan(code, faulty)
        program = lower_plan(code.field, plan).program
        counter_stats = _counter_microbench()
        backend_stats = _bench_backends(program, seed, iters, repeats)
        encode_stats = _bench_encode(
            code, sector_symbols, encode_stripes, seed, repeats
        )
    finally:
        if previous_default is not None:
            set_default_backend(previous_default)

    interp_dps = iters / interp_best
    comp_dps = iters / comp_best
    return {
        "workload": {
            "code": f"SD(n={n}, r={r}, m={m}, s={s})",
            "faulty_blocks": faulty,
            "sector_symbols": sector_symbols,
            "iters": iters,
            "repeats": repeats,
            "policy": policy.name,
            "backend": backend,
        },
        "interpreted": {
            "decoder": "PPMDecoder(parallel=False, compile=False)",
            "seconds": interp_best,
            "decodes_per_sec": interp_dps,
            "mult_xors": interp_stats.mult_xors,
        },
        "compiled": {
            "decoder": "PPMDecoder(parallel=False, compile=True)",
            "seconds": comp_best,
            "decodes_per_sec": comp_dps,
            "mult_xors": comp_stats.mult_xors,
        },
        "speedup": comp_dps / interp_dps if interp_dps else 0.0,
        "program": {
            "label": program.label,
            "instructions": len(program.instructions),
            "pool_size": program.pool_size,
            "model_mult_xors": program.mult_xors,
            "model_xor_only": program.xor_only,
            "executed_ops": program.executed_ops,
            "gathers": program.gathers,
            "xors": program.xors,
            "predicted_cost": plan.predicted_cost,
        },
        "counter": counter_stats,
        "backends": backend_stats,
        "encode": encode_stats,
        "results_match": True,
    }


def format_kernel_report(result: dict) -> str:
    """Human-readable summary of :func:`run_kernel_bench` output."""
    wl = result["workload"]
    interp = result["interpreted"]
    comp = result["compiled"]
    prog = result["program"]
    ctr = result["counter"]
    lines = [
        f"workload       {wl['code']}, {wl['sector_symbols']} symbols/sector, "
        f"faulty={wl['faulty_blocks']}",
        f"interpreted    {interp['decodes_per_sec']:.1f} decodes/s "
        f"({interp['seconds'] * 1e3:.2f} ms / {wl['iters']} decodes)",
        f"compiled       {comp['decodes_per_sec']:.1f} decodes/s "
        f"({comp['seconds'] * 1e3:.2f} ms / {wl['iters']} decodes)",
        f"speedup        {result['speedup']:.2f}x",
        f"op accounting  {comp['mult_xors']} mult_XORs on both paths "
        f"(predicted {prog['predicted_cost']})",
        f"program        {prog['instructions']} instruction(s), "
        f"{prog['pool_size']} slot(s); model {prog['model_mult_xors']} "
        f"mult_XORs ({prog['model_xor_only']} XOR-only) -> executed "
        f"{prog['executed_ops']} ops ({prog['gathers']} gathers, "
        f"{prog['xors']} XORs)",
        f"counter        {ctr['records_per_sec'] / 1e6:.2f} M records/s over "
        f"{ctr['threads']} thread(s), exact={ctr['exact']}",
        "results match  yes (bit-identical to the intact stripe)",
    ]
    backends = result.get("backends")
    if backends:
        lines.append("")
        lines.append(
            f"backends       registered: {', '.join(backends['registered'])}"
        )
        pinned = result["workload"].get("backend", "auto")
        for entry in backends["classes"]:
            rows = ", ".join(
                f"{name} {row['speedup_vs_baseline']:.2f}x"
                for name, row in sorted(entry["backends"].items())
            )
            if entry["auto_choice"] is not None:
                pick = f"auto picks {entry['auto_choice']}"
            elif pinned != "auto":
                pick = f"pinned to {pinned}"
            else:
                pick = "auto picks baseline"
            lines.append(
                f"  w={entry['w']:<2} {entry['symbols']:>6} sym  {rows}  ({pick})"
            )
    encode = result.get("encode")
    if encode:
        lines.append("")
        lines.append(
            f"encode         naive {encode['naive']['stripes_per_sec']:.1f} "
            f"stripes/s -> batched {encode['batched']['stripes_per_sec']:.1f} "
            f"stripes/s ({encode['speedup']:.2f}x, {encode['stripes']} stripes "
            f"x {encode['sector_symbols']} symbols)"
        )
    return "\n".join(lines)
