"""Measured (wall-clock) decode experiments on this host.

Complements the calibrated model in :mod:`repro.parallel`: these helpers
run the real decoders over real sector data and report decode speed and
improvement ratios.  On the 1-core host the measurable PPM gain is the
sequence-optimisation share; the harness prints it next to the simulated
multi-core figure (DESIGN.md, substitutions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core import PPMDecoder, SequencePolicy, TraditionalDecoder
from .workloads import Workload, build_stripe, erased_blocks


@dataclass(frozen=True)
class MeasuredDecode:
    """One measured decode: wall seconds (best of repeats) and derived speed."""

    seconds: float
    stripe_bytes: int
    mult_xors: int

    @property
    def mb_per_s(self) -> float:
        """Decode speed in stripe megabytes per second (paper's Figure 8 unit)."""
        return self.stripe_bytes / self.seconds / 1e6


def measure_decoder(
    workload: Workload,
    decoder,
    repeats: int = 3,
    seed: int = 0,
    blocks=None,
) -> MeasuredDecode:
    """Best-of-N wall time for decoding the workload's scenario once.

    ``blocks`` (survivor regions) may be passed in to share one encoded
    stripe across several decoders.
    """
    if blocks is None:
        stripe = build_stripe(workload, seed=seed)
        blocks = erased_blocks(workload, stripe)
    faulty = workload.scenario.faulty_blocks
    decoder.plan(workload.code, faulty)  # exclude planning, as the paper's
    # per-decode timing excludes one-time matrix setup amortised over stripes
    best = float("inf")
    mult_xors = 0
    for _ in range(repeats):
        _, stats = decoder.decode(workload.code, blocks, faulty, return_stats=True)
        best = min(best, stats.wall_seconds)
        mult_xors = stats.mult_xors
    return MeasuredDecode(
        seconds=best, stripe_bytes=workload.stripe_bytes, mult_xors=mult_xors
    )


@dataclass(frozen=True)
class MeasuredImprovement:
    """Traditional vs PPM measured on this host (serial execution)."""

    traditional: MeasuredDecode
    ppm: MeasuredDecode

    @property
    def ratio(self) -> float:
        """Improvement ratio t_trad / t_ppm - 1 (the paper's metric)."""
        return self.traditional.seconds / self.ppm.seconds - 1.0


def measure_improvement(
    workload: Workload,
    repeats: int = 3,
    seed: int = 0,
    policy: SequencePolicy = SequencePolicy.PAPER,
) -> MeasuredImprovement:
    """Measured serial improvement of PPM over the traditional decoder."""
    stripe = build_stripe(workload, seed=seed)
    blocks = erased_blocks(workload, stripe)
    trad = measure_decoder(
        workload, TraditionalDecoder(policy="normal"), repeats, seed, blocks=blocks
    )
    ppm = measure_decoder(
        workload, PPMDecoder(parallel=False, policy=policy), repeats, seed, blocks=blocks
    )
    return MeasuredImprovement(traditional=trad, ppm=ppm)


def measure_wall(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of a thunk, for ad-hoc kernels."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
